"""Plain-text report tables mirroring the paper's tables.

Renderers take measured results (plus the paper's published numbers where
available) and produce aligned ASCII tables, used by the benchmark
harness and recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np

from ..datasets.tasks import TASKS
from ..obs import format_span_tree

__all__ = [
    "format_table",
    "render_table3",
    "render_table4",
    "render_edge_report",
    "render_profile_report",
    "render_faults_report",
    "render_alert_report",
    "render_slo_report",
    "aggregate_fold_metrics",
]


def format_table(headers, rows, title=None) -> str:
    """Render a list-of-rows table with aligned columns."""
    rendered = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in rendered) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(rendered[0], widths)))
    lines.append(sep)
    for row in rendered[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def aggregate_fold_metrics(fold_results) -> dict:
    """Average accuracy/precision/recall/F1 over CV folds (as percentages)."""
    keys = ("accuracy", "precision", "recall", "f1")
    return {
        k: 100.0 * float(np.mean([fr.metrics[k] for fr in fold_results]))
        for k in keys
    }


#: Paper Table III values: {window_ms: {model: (acc, prec, rec, f1)}} (%).
PAPER_TABLE3 = {
    200: {
        "MLP": (96.76, 51.24, 50.00, 49.18),
        "LSTM": (97.28, 80.92, 68.62, 72.98),
        "ConvLSTM2D": (97.12, 81.24, 61.61, 66.37),
        "CNN (Proposed)": (97.93, 85.61, 78.85, 81.75),
    },
    300: {
        "MLP": (96.62, 53.02, 55.39, 54.13),
        "LSTM": (97.43, 82.51, 72.08, 75.93),
        "ConvLSTM2D": (97.21, 83.67, 63.55, 68.53),
        "CNN (Proposed)": (98.01, 86.38, 80.03, 82.85),
    },
    400: {
        "MLP": (96.45, 60.23, 54.63, 54.25),
        "LSTM": (97.60, 85.97, 75.74, 79.81),
        "ConvLSTM2D": (97.10, 85.57, 65.36, 70.75),
        "CNN (Proposed)": (98.28, 90.40, 83.95, 86.69),
    },
}

#: Paper Table IVa (falls missed, %) and IVb (ADL false positives, %).
PAPER_TABLE4_FALL_MISS = {
    39: 16.00, 40: 12.00, 21: 9.47, 22: 8.42, 41: 8.00, 33: 6.95, 27: 5.35,
    29: 4.42, 37: 4.00, 42: 4.00, 30: 3.85, 31: 3.37, 32: 3.17, 28: 2.73,
    34: 2.72, 26: 2.19, 23: 2.17, 24: 1.61, 25: 1.60, 20: 1.60, 38: 0.00,
}
PAPER_TABLE4_ADL_FP = {
    44: 20.00, 15: 11.29, 19: 6.74, 4: 6.35, 5: 2.16, 10: 2.13, 14: 1.63,
    8: 1.62, 18: 1.10, 9: 0.56, 16: 0.56, 3: 0.54, 1: 0.00, 2: 0.00, 6: 0.00,
    7: 0.00, 11: 0.00, 12: 0.00, 13: 0.00, 17: 0.00, 35: 0.00, 36: 0.00,
    43: 0.00,
}
PAPER_TABLE4_SUMMARY = {"fall_miss": 4.17, "adl_fp": 2.04,
                        "red_fp": 3.34, "green_fp": 0.46}


def render_table3(measured: dict, title="Table III") -> str:
    """``measured``: {window_ms: {model: metrics-%-dict}} -> ASCII table."""
    headers = ["Model", "WS (ms)",
               "Acc (meas/paper)", "Prec (meas/paper)",
               "Rec (meas/paper)", "F1 (meas/paper)"]
    rows = []
    for window in sorted(measured):
        for model, metrics in measured[window].items():
            paper = PAPER_TABLE3.get(window, {}).get(model)
            cells = []
            for i, key in enumerate(("accuracy", "precision", "recall", "f1")):
                got = f"{metrics[key]:6.2f}"
                ref = f"{paper[i]:6.2f}" if paper else "   n/a"
                cells.append(f"{got} / {ref}")
            rows.append([model, window, *cells])
    return format_table(headers, rows, title=title)


def render_table4(event_report, title="Table IV") -> str:
    """Event-level per-task table with the paper's numbers alongside."""
    rows = []
    miss = event_report.per_task_miss()
    for tid in sorted(miss, key=lambda t: -miss[t]):
        paper = PAPER_TABLE4_FALL_MISS.get(tid)
        rows.append(
            [f"T{tid:02d}", "fall missed", f"{miss[tid]:6.2f}",
             f"{paper:6.2f}" if paper is not None else "   n/a",
             TASKS[tid].description[:48]]
        )
    fp = event_report.per_task_false_positive()
    for tid in sorted(fp, key=lambda t: -fp[t]):
        paper = PAPER_TABLE4_ADL_FP.get(tid)
        rows.append(
            [f"T{tid:02d}", "ADL false pos", f"{fp[tid]:6.2f}",
             f"{paper:6.2f}" if paper is not None else "   n/a",
             TASKS[tid].description[:48]]
        )
    rg = event_report.red_green_false_positive()
    rows.append(["all", "falls missed", f"{event_report.fall_miss_rate:6.2f}",
                 f"{PAPER_TABLE4_SUMMARY['fall_miss']:6.2f}", "average"])
    rows.append(["all", "ADL false pos",
                 f"{event_report.adl_false_positive_rate:6.2f}",
                 f"{PAPER_TABLE4_SUMMARY['adl_fp']:6.2f}", "average"])
    rows.append(["red", "ADL false pos", f"{rg['red']:6.2f}",
                 f"{PAPER_TABLE4_SUMMARY['red_fp']:6.2f}",
                 "unconventional ADLs"])
    rows.append(["green", "ADL false pos", f"{rg['green']:6.2f}",
                 f"{PAPER_TABLE4_SUMMARY['green_fp']:6.2f}", "everyday ADLs"])
    return format_table(
        ["Task", "Kind", "Measured %", "Paper %", "Description"], rows,
        title=title,
    )


#: Paper Section IV-C deployment figures.
PAPER_EDGE = {"flash_kib": 67.03, "ram_kib": 16.87, "latency_ms": 4.0,
              "fusion_ms": 3.0}


def render_edge_report(report: dict, title="On-edge deployment") -> str:
    """Footprint/latency table with the paper's measurements alongside."""
    rows = [
        ["model flash", f"{report['flash_kib']:.2f} KiB",
         f"{PAPER_EDGE['flash_kib']:.2f} KiB"],
        ["activation RAM", f"{report['ram_kib']:.2f} KiB",
         f"{PAPER_EDGE['ram_kib']:.2f} KiB"],
        ["inference latency", f"{report['latency_ms']:.2f} ms",
         f"{PAPER_EDGE['latency_ms']:.1f} ms"],
        ["sensor fusion", f"{report.get('fusion_ms', 0.0):.2f} ms",
         f"{PAPER_EDGE['fusion_ms']:.1f} ms"],
    ]
    energy = report.get("energy")
    if energy:
        rows.append(["energy / inference",
                     f"{energy['inference_energy_uj']:.0f} uJ",
                     "not reported"])
        rows.append(["mean detector power",
                     f"{energy['mean_power_mw']:.2f} mW",
                     "not reported"])
    return format_table(["Quantity", "Measured (model)", "Paper (STM32F722)"],
                        rows, title=title)


def render_profile_report(result: dict, title="Profile report") -> str:
    """Paper-vs-measured view of a ``run_profile_workload`` result.

    Three blocks: the span tree (per-stage wall-clock totals), the
    detector's per-window inference latency histogram summary against the
    real-time deadline, and the airbag-margin statistics against the
    paper's 150 ms inflation budget / 4 ms STM32F722 inference latency.
    """
    latency = result["latency"]
    margin = result["margin"]
    lines = [title, ""]
    lines.append(format_span_tree(result["records"],
                                  title="Span tree (per-stage totals)"))
    lines.append("")
    latency_rows = [
        ["window inferences", f"{latency['inferences']}", "-"],
        ["latency p50", f"{latency['p50_ms']:8.3f} ms",
         f"{PAPER_EDGE['latency_ms']:.1f} ms"],
        ["latency p95", f"{latency['p95_ms']:8.3f} ms", "-"],
        ["latency p99", f"{latency['p99_ms']:8.3f} ms", "-"],
        ["latency max", f"{latency['max_ms']:8.3f} ms", "-"],
        ["deadline", f"{latency['deadline_ms']:8.3f} ms", "hop interval"],
        ["deadline violations",
         f"{latency['violations']} ({100 * latency['violation_rate']:.2f} %)",
         "0 expected"],
    ]
    lines.append(format_table(
        ["Quantity", "Measured", "Paper (STM32F722)"], latency_rows,
        title="Detector inference latency (per 400 ms window)",
    ))
    lines.append("")
    block = result.get("block")
    int8 = result.get("int8")
    if block is not None:
        blk = block["latency"]
        arms = [latency, blk]
        headers = ["Quantity", "push (per-sample)", "push_block (vectorized)"]
        detections = [result["stream_detections"], block["detections"]]
        if int8 is not None:
            arms.append(int8["latency"])
            headers.append("push_block (int8)")
            detections.append(int8["detections"])
        block_rows = [
            ["window inferences"] + [f"{a['inferences']}" for a in arms],
            ["latency p50"] + [f"{a['p50_ms']:8.3f} ms" for a in arms],
            ["latency p99"] + [f"{a['p99_ms']:8.3f} ms" for a in arms],
            ["deadline violations"] + [f"{a['violations']}" for a in arms],
            ["detections"] + [f"{d}" for d in detections],
        ]
        lines.append(format_table(
            headers, block_rows,
            title="Serving paths (same stream, hop-sized blocks)",
        ))
        lines.append("")
    if int8 is not None:
        op_rows = [
            [row["name"], row["kind"], f"{row['macs']}",
             f"{row['weight_bytes']}", f"{row['bias_bytes']}"]
            for row in int8["table"]
        ]
        op_rows.append(["total", "-", f"{int8['macs']}",
                        f"{int8['weight_bytes']}", "-"])
        lines.append(format_table(
            ["Op", "Kind", "MACs", "Weight B", "Bias B"], op_rows,
            title="Lowered int8 graph (per-op cost)",
        ))
        lines.append("")
    margin_rows = [
        ["inflation budget", f"{margin['inflation_budget_ms']:8.1f} ms",
         "150 ms"],
        ["reaction p50 (inflate + infer)",
         f"{margin['reaction_p50_ms']:8.3f} ms", "~154 ms"],
        ["reaction p99 (inflate + infer)",
         f"{margin['reaction_p99_ms']:8.3f} ms", "-"],
        ["deadline headroom at p99",
         f"{margin['budget_headroom_ms']:8.3f} ms", "-"],
    ]
    lines.append(format_table(
        ["Quantity", "Measured", "Paper"], margin_rows,
        title="Airbag margin (150 ms budget)",
    ))
    lines.append("")
    lines.append(
        f"workload: scale={result['scale']}  "
        f"epochs_trained={result['epochs_trained']}  "
        f"train_segments={result['train_segments']}  "
        f"stream_detections={result['stream_detections']}"
    )
    return "\n".join(lines)


def render_faults_report(results: dict, title="Fault-scenario robustness") -> str:
    """Clean-vs-faulted comparison table from ``run_fault_scenarios``.

    One row per scenario with event-level sensitivity / false-alarm rate,
    their deltas against the clean baseline, the worst health state the
    detector reached, and the headline anomaly counters.
    """

    def _fmt_rate(value):
        return "-" if value != value else f"{value:6.1f}"  # NaN-safe

    def _fmt_delta(value, clean):
        if value != value or clean != clean:
            return "-"
        return f"{value - clean:+6.1f}"

    clean = results["clean"]
    rows = []
    for name, stats in [("clean", clean)] + sorted(
        results["scenarios"].items()
    ):
        worst = stats["states_seen"][-1] if stats["states_seen"] else "-"
        for state in ("fault", "degraded", "healthy"):
            if state in stats["states_seen"]:
                worst = state
                break
        rows.append([
            name,
            f"{stats['falls_detected']}/{stats['falls']}",
            _fmt_rate(stats["sensitivity"]),
            "-" if name == "clean" else _fmt_delta(
                stats["sensitivity"], clean["sensitivity"]),
            _fmt_rate(stats["false_alarm_rate"]),
            "-" if name == "clean" else _fmt_delta(
                stats["false_alarm_rate"], clean["false_alarm_rate"]),
            worst,
            f"{stats['repaired_samples']}",
            f"{stats['gap_filled_samples']}",
            f"{stats['stream_resets']}",
            f"{stats['fallback_detections']}",
            f"{stats['deadline_violations']}",
        ])
    table = format_table(
        ["Scenario", "Falls", "Sens %", "ΔSens", "ADL FP %", "ΔFP",
         "Worst health", "Repaired", "Gap-fill", "Resets", "Fallback",
         "Deadline viol."],
        rows, title=title,
    )
    footer = (
        f"stream subject: {results['stream_subject']}  "
        f"recordings: {results['recordings']}  "
        f"detector mode: {results['mode']}"
    )
    return f"{table}\n{footer}"


def render_slo_report(results: dict,
                      title="SLOs and latency-budget attribution") -> str:
    """Budget-attribution + error-budget view from ``run_slo_eval``.

    Two tables: how the airbag's latency budget splits across the
    pipeline stages (clean condition; stages sum to the measured
    end-to-end by construction), then per-condition error-budget status
    and the burn-rate alerts each condition drove through the alert
    manager — the synthetic overload condition is the one expected to
    page.
    """
    budget = results["latency_budget_ms"]
    lines = [title, ""]
    clean = results["conditions"]["clean"]
    attribution = clean.get("attribution")
    if attribution:
        rows = [
            [row["stage"], f"{row['mean_ms']:8.4f}", f"{row['p99_ms']:8.4f}",
             f"{100 * row['share_of_e2e']:6.2f}",
             f"{100 * row['share_of_budget']:6.3f}"]
            for row in attribution
        ]
        e2e = clean["stage_report"]["e2e"]
        rows.append(["e2e (sum)", f"{e2e['mean']:8.4f}",
                     f"{e2e['p99']:8.4f}", f"{100.0:6.2f}",
                     f"{100 * e2e['mean'] / budget:6.3f}"])
        lines.append(format_table(
            ["Stage", "mean ms", "p99 ms", "% of e2e", "% of budget"],
            rows,
            title=f"Attribution of the {budget:g} ms budget "
                  f"(clean, per window)",
        ))
        lines.append("")
        shares = ", ".join(
            f"{row['stage']} {100 * row['share_of_budget']:.3f}%"
            for row in attribution
        )
        lines.append(f"{budget:g} ms budget: {shares}")
        lines.append("")
    rows = []
    for name, stats in results["conditions"].items():
        latency = stats["objectives"]["window_latency_p99"]
        deadline = stats["objectives"]["deadline_miss"]
        rows.append([
            name,
            f"{stats['windows']}",
            f"{100 * latency['bad_fraction']:6.2f}",
            f"{100 * latency['budget_remaining']:+7.1f}",
            f"{100 * deadline['bad_fraction']:6.2f}",
            f"{stats['alerts_raised']}",
            f"{stats['alerts_resolved']}",
            ",".join(stats["burning"]) or "-",
        ])
    lines.append(format_table(
        ["Condition", "Windows", ">budget %", "Budget left %",
         "Deadline miss %", "Raised", "Resolved", "Burning"],
        rows, title="Error-budget status by condition",
    ))
    rules = ", ".join(
        f"{name} {rule['threshold']:g}x over {rule['short_window_s']:g}s/"
        f"{rule['long_window_s']:g}s -> {rule['severity']}"
        for name, rule in results["rules"].items()
    )
    lines.append(
        f"fleet: {results['n_streams']} streams "
        f"({results['faulted_streams']} faulted), "
        f"{results['duration_s']:.0f} s  overload charge: "
        f"{results['overload_latency_ms']:g} ms/batch  rules: {rules}"
    )
    return "\n".join(lines)


def render_alert_report(results: dict,
                        title="Alert-pipeline behaviour by scenario") -> str:
    """Per-scenario alert lifecycle table from ``run_alert_eval``.

    One row per condition: raw detections, alerts raised split by
    severity, and the dedup / expiry / auto-resolve counters that show
    the pipeline absorbing false-positive bursts instead of paging on
    every spike.  The clean baseline rides first.
    """
    rows = []
    for name, stats in [("clean", results["clean"])] + sorted(
        results["scenarios"].items()
    ):
        store = stats["store_events"]
        rows.append([
            name,
            f"{stats['detections']}",
            f"{stats['raised']}",
            f"{stats['critical']}",
            f"{stats['suspect']}",
            f"{stats['deduped']}",
            f"{stats['expired']}",
            f"{stats['resolved']}",
            ",".join(stats["alert_streams"]) or "-",
            "-" if store is None else f"{store}",
        ])
    table = format_table(
        ["Scenario", "Detect", "Raised", "Crit", "Susp", "Dedup",
         "Expired", "Resolved", "Alerting streams", "Store ev."],
        rows, title=title,
    )
    policy = results["policy"]
    footer = (
        f"fleet: {results['n_streams']} streams "
        f"({results['faulted_streams']} faulted), "
        f"{results['duration_s']:.0f} s  policy: confirm "
        f"{policy['confirm_detections']} in {policy['confirm_window_s']}s, "
        f"auto-resolve {policy['auto_resolve_s']}s, "
        f"dedup {policy['dedup_horizon_s']}s"
    )
    return f"{table}\n{footer}"
