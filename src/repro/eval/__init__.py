"""``repro.eval`` — metrics and paper-style report tables."""

from .curves import auc, pr_curve, roc_curve, threshold_for_fp_budget
from .metrics import binary_report, confusion, segment_metrics
from .reports import (
    PAPER_EDGE,
    PAPER_TABLE3,
    PAPER_TABLE4_ADL_FP,
    PAPER_TABLE4_FALL_MISS,
    PAPER_TABLE4_SUMMARY,
    aggregate_fold_metrics,
    format_table,
    render_edge_report,
    render_table3,
    render_table4,
)

__all__ = [
    "confusion",
    "binary_report",
    "segment_metrics",
    "roc_curve",
    "pr_curve",
    "auc",
    "threshold_for_fp_budget",
    "format_table",
    "render_table3",
    "render_table4",
    "render_edge_report",
    "aggregate_fold_metrics",
    "PAPER_TABLE3",
    "PAPER_TABLE4_FALL_MISS",
    "PAPER_TABLE4_ADL_FP",
    "PAPER_TABLE4_SUMMARY",
    "PAPER_EDGE",
]
