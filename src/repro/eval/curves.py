"""Threshold curves and operating-point selection.

The paper states it "configured our model to minimize false positives,
even at the cost of missing the detection of some actual falls" — i.e. the
deployment threshold is chosen on the precision-heavy end of the ROC/PR
trade-off.  This module provides the curves and a selector that picks the
lowest threshold meeting a false-positive budget on validation data.
"""

from __future__ import annotations

import numpy as np

__all__ = ["roc_curve", "pr_curve", "auc", "threshold_for_fp_budget"]


def _validate(y_true, scores):
    y_true = np.asarray(y_true).reshape(-1).astype(int)
    scores = np.asarray(scores, dtype=float).reshape(-1)
    if y_true.shape != scores.shape:
        raise ValueError(
            f"labels and scores disagree: {y_true.shape} vs {scores.shape}"
        )
    if y_true.size == 0:
        raise ValueError("empty evaluation set")
    return y_true, scores


def roc_curve(y_true, scores):
    """ROC points swept over every distinct score.

    Returns ``(fpr, tpr, thresholds)`` sorted by ascending FPR, with the
    conventional (0,0) and (1,1) endpoints included.
    """
    y_true, scores = _validate(y_true, scores)
    pos = int(y_true.sum())
    neg = y_true.size - pos
    if pos == 0 or neg == 0:
        raise ValueError("ROC needs both classes present")
    order = np.argsort(-scores, kind="stable")
    sorted_true = y_true[order]
    tps = np.cumsum(sorted_true)
    fps = np.cumsum(1 - sorted_true)
    # Keep the last point of each tied-score block.
    distinct = np.flatnonzero(np.diff(scores[order], append=-np.inf))
    tpr = np.concatenate([[0.0], tps[distinct] / pos])
    fpr = np.concatenate([[0.0], fps[distinct] / neg])
    thresholds = np.concatenate([[np.inf], scores[order][distinct]])
    return fpr, tpr, thresholds


def pr_curve(y_true, scores):
    """Precision-recall points; returns ``(recall, precision, thresholds)``."""
    y_true, scores = _validate(y_true, scores)
    pos = int(y_true.sum())
    if pos == 0:
        raise ValueError("PR curve needs at least one positive")
    order = np.argsort(-scores, kind="stable")
    sorted_true = y_true[order]
    tps = np.cumsum(sorted_true)
    predicted = np.arange(1, y_true.size + 1)
    distinct = np.flatnonzero(np.diff(scores[order], append=-np.inf))
    recall = tps[distinct] / pos
    precision = tps[distinct] / predicted[distinct]
    return recall, precision, scores[order][distinct]


def auc(x, y) -> float:
    """Trapezoidal area under a curve given by sorted ``x`` and ``y``."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.size < 2:
        raise ValueError("auc needs two equal-length arrays of >= 2 points")
    order = np.argsort(x, kind="stable")
    return float(np.trapezoid(y[order], x[order]))


def threshold_for_fp_budget(y_true, scores, max_fpr: float = 0.02) -> float:
    """Lowest threshold whose validation FPR stays within ``max_fpr``.

    This mirrors the paper's deployment tuning: prioritise not firing the
    airbag spuriously.  Returns 0.5 if even that violates the budget is
    impossible to satisfy (degenerate scores) — callers can inspect the
    curve for diagnostics.
    """
    if not 0.0 <= max_fpr <= 1.0:
        raise ValueError(f"max_fpr must be in [0, 1], got {max_fpr}")
    fpr, tpr, thresholds = roc_curve(y_true, scores)
    ok = np.flatnonzero(fpr <= max_fpr)
    if ok.size == 0:
        return 0.5
    # Among budget-respecting points take the one with the best TPR
    # (lowest usable threshold).
    best = ok[np.argmax(tpr[ok])]
    threshold = thresholds[best]
    if not np.isfinite(threshold):
        return 1.0
    return float(threshold)
