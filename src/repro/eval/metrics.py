"""Segment-level classification metrics.

Table III reports Accuracy / Precision / Recall / F1 in a *macro-averaged*
form: the MLP row (accuracy 96.8 %, precision 51.2 %, recall 50.0 %) is
only consistent with averaging the per-class scores of a collapsed
predict-everything-negative model — per-positive-class recall would be
0 %, not 50 %.  We therefore compute per-class scores and macro averages,
and expose both.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "confusion",
    "binary_report",
    "segment_metrics",
]


def confusion(y_true, y_pred) -> dict:
    """Binary confusion counts: tp/fp/tn/fn (positive class = falling)."""
    y_true = np.asarray(y_true).reshape(-1).astype(int)
    y_pred = np.asarray(y_pred).reshape(-1).astype(int)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: {y_true.shape} vs {y_pred.shape}"
        )
    tp = int(np.sum((y_true == 1) & (y_pred == 1)))
    tn = int(np.sum((y_true == 0) & (y_pred == 0)))
    fp = int(np.sum((y_true == 0) & (y_pred == 1)))
    fn = int(np.sum((y_true == 1) & (y_pred == 0)))
    return {"tp": tp, "tn": tn, "fp": fp, "fn": fn}


def _prf(tp: int, fp: int, fn: int) -> tuple[float, float, float]:
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = (
        2.0 * precision * recall / (precision + recall)
        if precision + recall
        else 0.0
    )
    return precision, recall, f1


def binary_report(y_true, y_pred) -> dict:
    """Full per-class + macro report from hard predictions."""
    counts = confusion(y_true, y_pred)
    tp, tn, fp, fn = counts["tp"], counts["tn"], counts["fp"], counts["fn"]
    total = tp + tn + fp + fn
    if total == 0:
        raise ValueError("empty evaluation set")
    p_pos, r_pos, f_pos = _prf(tp, fp, fn)
    # Negative class scores: swap the roles.
    p_neg, r_neg, f_neg = _prf(tn, fn, fp)
    return {
        "accuracy": (tp + tn) / total,
        "precision_pos": p_pos,
        "recall_pos": r_pos,
        "f1_pos": f_pos,
        "precision_neg": p_neg,
        "recall_neg": r_neg,
        "f1_neg": f_neg,
        "precision_macro": (p_pos + p_neg) / 2.0,
        "recall_macro": (r_pos + r_neg) / 2.0,
        "f1_macro": (f_pos + f_neg) / 2.0,
        "confusion": counts,
    }


def segment_metrics(y_true, probabilities, threshold: float = 0.5) -> dict:
    """Paper-style metric dict from sigmoid probabilities.

    The headline ``accuracy``/``precision``/``recall``/``f1`` keys are the
    macro-averaged values Table III reports; per-class values remain
    available under their explicit names.
    """
    probabilities = np.asarray(probabilities).reshape(-1)
    y_pred = (probabilities >= threshold).astype(int)
    report = binary_report(y_true, y_pred)
    report.update(
        {
            "accuracy": report["accuracy"],
            "precision": report["precision_macro"],
            "recall": report["recall_macro"],
            "f1": report["f1_macro"],
            "threshold": threshold,
        }
    )
    return report
