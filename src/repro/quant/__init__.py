"""``repro.quant`` — post-training int8 quantization (Section III-D)."""

from .calibrate import calibrate_activations
from .prune import (
    PruneReport,
    fine_tune,
    magnitude_prune,
    sparsity_report,
    structured_prune,
)
from .qmodel import QOp, QuantizedModel
from .qtensor import (
    INT8_MAX,
    INT8_MIN,
    FixedPointMultiplier,
    QuantParams,
    RequantPlan,
    activation_qparams,
    dequantize,
    pack_multipliers,
    quantize,
    quantize_weights_per_channel,
    requantize,
    requantize_block,
    requantize_block_fast,
    requantize_lut,
    weight_qparams_per_channel,
)

__all__ = [
    "QuantParams",
    "quantize",
    "dequantize",
    "activation_qparams",
    "weight_qparams_per_channel",
    "quantize_weights_per_channel",
    "FixedPointMultiplier",
    "requantize",
    "pack_multipliers",
    "requantize_block",
    "requantize_block_fast",
    "requantize_lut",
    "RequantPlan",
    "calibrate_activations",
    "QuantizedModel",
    "QOp",
    "INT8_MIN",
    "INT8_MAX",
    "magnitude_prune",
    "structured_prune",
    "fine_tune",
    "sparsity_report",
    "PruneReport",
]
