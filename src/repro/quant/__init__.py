"""``repro.quant`` — post-training int8 quantization (Section III-D)."""

from .calibrate import calibrate_activations
from .qmodel import QOp, QuantizedModel
from .qtensor import (
    INT8_MAX,
    INT8_MIN,
    FixedPointMultiplier,
    QuantParams,
    activation_qparams,
    dequantize,
    quantize,
    quantize_weights_per_channel,
    requantize,
    weight_qparams_per_channel,
)

__all__ = [
    "QuantParams",
    "quantize",
    "dequantize",
    "activation_qparams",
    "weight_qparams_per_channel",
    "quantize_weights_per_channel",
    "FixedPointMultiplier",
    "requantize",
    "calibrate_activations",
    "QuantizedModel",
    "QOp",
    "INT8_MIN",
    "INT8_MAX",
]
