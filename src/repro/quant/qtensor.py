"""Affine int8 quantization primitives.

Follows the TFLite/CMSIS-NN integer contract the STM32 deployment chain
(X-CUBE-AI) implements:

* activations — per-tensor affine int8: ``q = round(x / s) + z``;
* weights — per-output-channel *symmetric* int8 (zero point 0);
* biases — int32 at scale ``s_input * s_weight`` (zero point 0);
* requantization — multiplication by a Q31 fixed-point multiplier plus a
  rounding right shift (no floating point anywhere on the datapath).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "QuantParams",
    "quantize",
    "dequantize",
    "activation_qparams",
    "weight_qparams_per_channel",
    "quantize_weights_per_channel",
    "FixedPointMultiplier",
    "requantize",
    "pack_multipliers",
    "requantize_block",
    "RequantPlan",
    "requantize_block_fast",
    "requantize_lut",
]

INT8_MIN, INT8_MAX = -128, 127


@dataclass(frozen=True)
class QuantParams:
    """Per-tensor affine quantization parameters."""

    scale: float
    zero_point: int

    def __post_init__(self):
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if not INT8_MIN <= self.zero_point <= INT8_MAX:
            raise ValueError(
                f"zero point must fit int8, got {self.zero_point}"
            )


def quantize(x: np.ndarray, params: QuantParams) -> np.ndarray:
    """Float -> int8 with round-to-nearest-even and saturation."""
    q = np.rint(np.asarray(x, dtype=np.float64) / params.scale) + params.zero_point
    return np.clip(q, INT8_MIN, INT8_MAX).astype(np.int8)


def dequantize(q: np.ndarray, params: QuantParams) -> np.ndarray:
    """int8 -> float."""
    return (np.asarray(q, dtype=np.int32) - params.zero_point) * params.scale


def activation_qparams(min_val: float, max_val: float) -> QuantParams:
    """Asymmetric per-tensor parameters covering ``[min, max]``.

    The range is widened to include 0 (so zero maps exactly, a TFLite
    requirement that keeps padding/ReLU exact) and degenerate ranges get a
    tiny span instead of a zero scale.
    """
    lo = min(float(min_val), 0.0)
    hi = max(float(max_val), 0.0)
    if hi - lo < 1e-8:
        hi = lo + 1e-8
    scale = (hi - lo) / (INT8_MAX - INT8_MIN)
    zero_point = int(np.clip(round(INT8_MIN - lo / scale), INT8_MIN, INT8_MAX))
    return QuantParams(scale=scale, zero_point=zero_point)


def weight_qparams_per_channel(weights: np.ndarray, channel_axis: int) -> np.ndarray:
    """Symmetric per-channel scales: ``max|w| / 127`` along ``channel_axis``."""
    w = np.asarray(weights, dtype=np.float64)
    reduce_axes = tuple(ax for ax in range(w.ndim) if ax != channel_axis)
    peak = np.max(np.abs(w), axis=reduce_axes)
    peak = np.where(peak < 1e-12, 1e-12, peak)
    return peak / INT8_MAX


def quantize_weights_per_channel(
    weights: np.ndarray, channel_axis: int
) -> tuple[np.ndarray, np.ndarray]:
    """Returns ``(q_weights int8, scales per channel)``."""
    scales = weight_qparams_per_channel(weights, channel_axis)
    shape = [1] * np.ndim(weights)
    shape[channel_axis] = -1
    q = np.rint(np.asarray(weights, dtype=np.float64) / scales.reshape(shape))
    return np.clip(q, INT8_MIN, INT8_MAX).astype(np.int8), scales


@dataclass(frozen=True)
class FixedPointMultiplier:
    """A real multiplier encoded as ``m0 * 2^-31 * 2^-right_shift``.

    ``m0`` is an int32 in ``[2^30, 2^31)`` (Q31 in [0.5, 1)); negative
    ``right_shift`` means a left shift (multiplier >= 1).
    """

    m0: int
    right_shift: int

    @staticmethod
    def from_real(multiplier: float) -> "FixedPointMultiplier":
        if multiplier <= 0:
            raise ValueError(f"multiplier must be positive, got {multiplier}")
        shift = 0
        m = float(multiplier)
        while m < 0.5:
            m *= 2.0
            shift += 1
        while m >= 1.0:
            m /= 2.0
            shift -= 1
        m0 = int(round(m * (1 << 31)))
        if m0 == (1 << 31):  # rounding pushed it to exactly 1.0
            m0 //= 2
            shift -= 1
        return FixedPointMultiplier(m0=m0, right_shift=shift)

    @property
    def real_value(self) -> float:
        return self.m0 * 2.0**-31 * 2.0**-self.right_shift


def requantize(acc: np.ndarray, mult: FixedPointMultiplier,
               zero_point: int) -> np.ndarray:
    """int32 accumulator -> int8 output, integer arithmetic only.

    Implements TFLite's ``SaturatingRoundingDoublingHighMul`` followed by a
    rounding right shift, then adds the output zero point and saturates.
    """
    acc = np.asarray(acc, dtype=np.int64)
    shift = mult.right_shift
    if shift < 0:
        # Left shift *before* the high-multiply (TFLite order) so the Q31
        # rounding happens at full precision.
        acc = acc << (-shift)
    # High 32 bits of (acc * m0), with nudge for round-to-nearest.
    prod = acc * int(mult.m0)
    nudge = 1 << 30
    high = (prod + nudge) >> 31
    if shift > 0:
        point = np.int64(1) << (shift - 1)
        # Rounding right shift (round half away from zero for negatives).
        high = (high + point + np.where(high < 0, -1, 0)) >> shift
    out = high + zero_point
    return np.clip(out, INT8_MIN, INT8_MAX).astype(np.int8)


def pack_multipliers(
    mults: "list[FixedPointMultiplier]",
) -> tuple[np.ndarray, np.ndarray]:
    """Pack per-channel multipliers into ``(m0s, shifts)`` int64 arrays."""
    m0s = np.asarray([m.m0 for m in mults], dtype=np.int64)
    shifts = np.asarray([m.right_shift for m in mults], dtype=np.int64)
    return m0s, shifts


def requantize_block(acc: np.ndarray, m0s: np.ndarray, shifts: np.ndarray,
                     zero_point: int) -> np.ndarray:
    """Vectorized per-channel :func:`requantize` over the last axis.

    ``m0s``/``shifts`` hold one multiplier per output channel (the last
    axis of ``acc``); the whole accumulator block is requantized in a
    handful of numpy ops instead of one Python call per channel.
    Elementwise identical to :func:`requantize` — same left-shift order,
    same Q31 nudge, same rounding right shift — so the fast batched
    kernels stay bit-for-bit on the deployed-arithmetic contract.
    """
    acc = np.asarray(acc, dtype=np.int64)
    # Negative right_shift means a pre-multiply left shift; a right shift
    # of 0 is the identity, so both directions vectorize as clamped arms.
    acc = acc << np.maximum(-shifts, 0)
    high = (acc * m0s + (1 << 30)) >> 31
    right = np.maximum(shifts, 0)
    point = (np.int64(1) << right) >> 1  # 2^(rs-1), or 0 when rs == 0
    adjust = np.where((high < 0) & (right > 0), -1, 0)
    out = ((high + point + adjust) >> right) + zero_point
    return np.clip(out, INT8_MIN, INT8_MAX).astype(np.int8)


def requantize_lut(mult: FixedPointMultiplier, in_zero_point: int,
                   out_zero_point: int) -> np.ndarray:
    """256-entry int8 -> int8 table for a per-tensor rescale.

    Built by running the scalar reference :func:`requantize` over every
    possible int8 input, so a table lookup is bit-identical to the
    reference by construction.  The table is laid out for direct raw-int8
    indexing: ``lut[q]`` with negative ``q`` wraps to the upper half.
    """
    q = np.arange(INT8_MIN, INT8_MAX + 1, dtype=np.int64)
    out = requantize(q - in_zero_point, mult, out_zero_point)
    lut = np.empty(256, dtype=np.int8)
    lut[q % 256] = out
    return lut


class RequantPlan:
    """Precomputed per-channel constants for the batched requantize paths.

    Beyond packing the multipliers into arrays, this derives the exact
    float64 formulation of the Q31 pipeline used by
    :func:`requantize_block_fast`:

    * ``m_prime = (m0 / 2^31) * 2^ls`` folds the pre-multiply left shift
      into the real Q31 mantissa — both factors are dyadic, so ``m_prime``
      is an exact float64;
    * the high-multiply ``(acc * m0 + 2^30) >> 31`` equals
      ``floor(acc * m_prime + 0.5)``, and the product ``acc * m_prime``
      is *exact* in float64 whenever ``|acc| * m0 * 2^ls < 2^52`` (the
      numerator then fits the 53-bit mantissa, with headroom for the
      ``+0.5`` nudge).  With ``m0 < 2^31`` that holds for every channel
      when ``|acc| < 2^21 / 2^max_ls`` — ``float_max_abs`` below;
    * ``inv_pow = 2^-rs`` makes the rounding right shift a pair of exact
      dyadic-scaling ops (see :func:`requantize_block_fast`).
    """

    __slots__ = ("m0s", "shifts", "m_prime", "inv_pow", "float_max_abs")

    def __init__(self, mults: "list[FixedPointMultiplier]"):
        self.m0s, self.shifts = pack_multipliers(mults)
        ls = np.maximum(-self.shifts, 0)
        rs = np.maximum(self.shifts, 0)
        self.m_prime = (self.m0s / float(2**31)) * np.exp2(ls.astype(np.float64))
        self.inv_pow = np.exp2(-rs.astype(np.float64))
        max_ls = int(ls.max()) if len(ls) else 0
        self.float_max_abs = float(2**21 >> max_ls) if max_ls < 21 else 0.0


def requantize_block_fast(accf: np.ndarray, plan: RequantPlan,
                          zero_point: int, lo: int = INT8_MIN) -> np.ndarray:
    """Requantize a float64 block of *exact-integer* accumulators.

    ``accf`` holds integer accumulators produced by the exact float64
    GEMM fast path (per-channel along the last axis).  When every value
    is below ``plan.float_max_abs`` the whole Q31 double rounding runs as
    in-place float64 ops, each step exact:

    * first rounding: ``floor(acc * m_prime + 0.5)`` ≡ the Q31 nudge +
      ``>> 31`` (see :class:`RequantPlan` for the exactness bound);
    * second rounding: the reference's rounding right shift is
      round-half-away-from-zero of ``high / 2^rs`` — computed as
      ``trunc(v + copysign(0.5, v))`` on the exact dyadic ``v = high *
      2^-rs`` (and the ``rs == 0`` channels pass through unchanged, since
      ``trunc(h ± 0.5) == h`` for integral ``h``).

    Larger accumulators fall back to the int64 :func:`requantize_block`.
    Both arms are bit-identical to the scalar :func:`requantize`.

    ``lo`` folds a following ReLU into the saturation: ``max(clip(x,
    INT8_MIN, INT8_MAX), zp) == clip(x, zp, INT8_MAX)`` for int8 ``zp``.
    """
    if accf.size == 0:
        return np.empty(accf.shape, dtype=np.int8)
    peak = max(float(accf.max()), -float(accf.min()))
    if not peak < plan.float_max_abs:  # also catches NaN (never expected)
        out = requantize_block(np.rint(accf).astype(np.int64),
                               plan.m0s, plan.shifts, zero_point)
        return np.maximum(out, np.int8(lo)) if lo > INT8_MIN else out
    return _requant_float_pipeline(accf, plan.m_prime, plan.inv_pow,
                                   zero_point, lo)


def _requant_float_pipeline(accf, m_prime, inv_pow, zero_point, lo):
    """The exact float64 Q31 pipeline body (see requantize_block_fast).

    Callers are responsible for the ``float_max_abs`` exactness check.

    When ``lo >= zero_point`` (a fused ReLU) the rounding right shift
    collapses: every ``v < 0`` lands at ``lo`` after saturation either
    way, and for ``v >= 0`` round-half-away-from-zero is plain
    round-half-up, so the second rounding becomes one ``floor`` with the
    zero point folded into its constant.
    """
    u = accf * m_prime
    u += 0.5
    np.floor(u, out=u)
    u *= inv_pow
    if lo >= zero_point:
        u += 0.5 + zero_point
        np.floor(u, out=u)
    else:
        u += np.copysign(0.5, u)
        np.trunc(u, out=u)
        u += zero_point
    out = np.empty(u.shape, dtype=np.int8)
    np.clip(u, lo, INT8_MAX, out=out, casting="unsafe")
    return out
