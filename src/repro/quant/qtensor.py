"""Affine int8 quantization primitives.

Follows the TFLite/CMSIS-NN integer contract the STM32 deployment chain
(X-CUBE-AI) implements:

* activations — per-tensor affine int8: ``q = round(x / s) + z``;
* weights — per-output-channel *symmetric* int8 (zero point 0);
* biases — int32 at scale ``s_input * s_weight`` (zero point 0);
* requantization — multiplication by a Q31 fixed-point multiplier plus a
  rounding right shift (no floating point anywhere on the datapath).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "QuantParams",
    "quantize",
    "dequantize",
    "activation_qparams",
    "weight_qparams_per_channel",
    "quantize_weights_per_channel",
    "FixedPointMultiplier",
    "requantize",
]

INT8_MIN, INT8_MAX = -128, 127


@dataclass(frozen=True)
class QuantParams:
    """Per-tensor affine quantization parameters."""

    scale: float
    zero_point: int

    def __post_init__(self):
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if not INT8_MIN <= self.zero_point <= INT8_MAX:
            raise ValueError(
                f"zero point must fit int8, got {self.zero_point}"
            )


def quantize(x: np.ndarray, params: QuantParams) -> np.ndarray:
    """Float -> int8 with round-to-nearest-even and saturation."""
    q = np.rint(np.asarray(x, dtype=np.float64) / params.scale) + params.zero_point
    return np.clip(q, INT8_MIN, INT8_MAX).astype(np.int8)


def dequantize(q: np.ndarray, params: QuantParams) -> np.ndarray:
    """int8 -> float."""
    return (np.asarray(q, dtype=np.int32) - params.zero_point) * params.scale


def activation_qparams(min_val: float, max_val: float) -> QuantParams:
    """Asymmetric per-tensor parameters covering ``[min, max]``.

    The range is widened to include 0 (so zero maps exactly, a TFLite
    requirement that keeps padding/ReLU exact) and degenerate ranges get a
    tiny span instead of a zero scale.
    """
    lo = min(float(min_val), 0.0)
    hi = max(float(max_val), 0.0)
    if hi - lo < 1e-8:
        hi = lo + 1e-8
    scale = (hi - lo) / (INT8_MAX - INT8_MIN)
    zero_point = int(np.clip(round(INT8_MIN - lo / scale), INT8_MIN, INT8_MAX))
    return QuantParams(scale=scale, zero_point=zero_point)


def weight_qparams_per_channel(weights: np.ndarray, channel_axis: int) -> np.ndarray:
    """Symmetric per-channel scales: ``max|w| / 127`` along ``channel_axis``."""
    w = np.asarray(weights, dtype=np.float64)
    reduce_axes = tuple(ax for ax in range(w.ndim) if ax != channel_axis)
    peak = np.max(np.abs(w), axis=reduce_axes)
    peak = np.where(peak < 1e-12, 1e-12, peak)
    return peak / INT8_MAX


def quantize_weights_per_channel(
    weights: np.ndarray, channel_axis: int
) -> tuple[np.ndarray, np.ndarray]:
    """Returns ``(q_weights int8, scales per channel)``."""
    scales = weight_qparams_per_channel(weights, channel_axis)
    shape = [1] * np.ndim(weights)
    shape[channel_axis] = -1
    q = np.rint(np.asarray(weights, dtype=np.float64) / scales.reshape(shape))
    return np.clip(q, INT8_MIN, INT8_MAX).astype(np.int8), scales


@dataclass(frozen=True)
class FixedPointMultiplier:
    """A real multiplier encoded as ``m0 * 2^-31 * 2^-right_shift``.

    ``m0`` is an int32 in ``[2^30, 2^31)`` (Q31 in [0.5, 1)); negative
    ``right_shift`` means a left shift (multiplier >= 1).
    """

    m0: int
    right_shift: int

    @staticmethod
    def from_real(multiplier: float) -> "FixedPointMultiplier":
        if multiplier <= 0:
            raise ValueError(f"multiplier must be positive, got {multiplier}")
        shift = 0
        m = float(multiplier)
        while m < 0.5:
            m *= 2.0
            shift += 1
        while m >= 1.0:
            m /= 2.0
            shift -= 1
        m0 = int(round(m * (1 << 31)))
        if m0 == (1 << 31):  # rounding pushed it to exactly 1.0
            m0 //= 2
            shift -= 1
        return FixedPointMultiplier(m0=m0, right_shift=shift)

    @property
    def real_value(self) -> float:
        return self.m0 * 2.0**-31 * 2.0**-self.right_shift


def requantize(acc: np.ndarray, mult: FixedPointMultiplier,
               zero_point: int) -> np.ndarray:
    """int32 accumulator -> int8 output, integer arithmetic only.

    Implements TFLite's ``SaturatingRoundingDoublingHighMul`` followed by a
    rounding right shift, then adds the output zero point and saturates.
    """
    acc = np.asarray(acc, dtype=np.int64)
    shift = mult.right_shift
    if shift < 0:
        # Left shift *before* the high-multiply (TFLite order) so the Q31
        # rounding happens at full precision.
        acc = acc << (-shift)
    # High 32 bits of (acc * m0), with nudge for round-to-nearest.
    prod = acc * int(mult.m0)
    nudge = 1 << 30
    high = (prod + nudge) >> 31
    if shift > 0:
        point = np.int64(1) << (shift - 1)
        # Rounding right shift (round half away from zero for negatives).
        high = (high + point + np.where(high < 0, -1, 0)) >> shift
    out = high + zero_point
    return np.clip(out, INT8_MIN, INT8_MAX).astype(np.int8)
