"""Pruning: magnitude (unstructured) and filter-level (structured).

Two regimes, composing with post-training quantization:

* :func:`magnitude_prune` zeroes the smallest-|w| fraction of each
  weight matrix in place and returns the masks; :func:`fine_tune`
  re-applies the masks after every optimizer step so the zeros survive
  training.  Sparsity here is *logical* — the tensors keep their shape —
  which recovers accuracy but does not shrink the lowered model.
* :func:`structured_prune` removes whole Conv1D filters (ranked by L1
  norm, the classic filter-pruning criterion) and rebuilds the graph so
  the surviving channels are *physically* smaller: downstream MaxPool /
  Flatten / Concatenate / Dense weights are re-indexed to the kept
  channels.  The pruned model quantizes like any other, so
  ``QuantizedModel`` sees fewer MACs and smaller ``weight_bytes`` and
  the edge cost model picks the reduction up for free.

The channel bookkeeping threads a ``keep`` index array (original
last-axis feature indices that survive) through the graph walk:
Flatten maps channel ``c`` at time-step ``l`` to feature ``l*C + c``
(channels-last layout), Concatenate offsets each input's indices by the
*original* widths of its predecessors, and Dense slices its weight rows
at the surviving feature indices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn import graph as nn_graph
from ..nn import layers as L
from ..nn.model import Model
from ..obs import get_logger, get_registry

_logger = get_logger(__name__)

__all__ = [
    "magnitude_prune",
    "apply_masks",
    "structured_prune",
    "fine_tune",
    "sparsity_report",
    "PruneReport",
]


# ----------------------------------------------------------------------
# Magnitude (unstructured) pruning
# ----------------------------------------------------------------------
def magnitude_prune(
    model: Model,
    sparsity: float,
    skip_layers: tuple[str, ...] | None = None,
) -> dict[str, np.ndarray]:
    """Zero the smallest-magnitude ``sparsity`` fraction of each ``W``.

    The threshold is the per-layer ``sparsity`` quantile of ``|W|``
    (layer-wise pruning, as in the classic Han et al. recipe), applied to
    every layer with a ``W`` parameter except ``skip_layers`` (default:
    the output layer, whose few weights are disproportionately
    load-bearing for the sigmoid logit).  Biases are never pruned.

    Returns ``{layer_name: boolean keep-mask}`` for :func:`apply_masks` /
    :func:`fine_tune`; the model's weights are modified in place.
    """
    if not 0.0 <= sparsity < 1.0:
        raise ValueError(f"sparsity must be in [0, 1), got {sparsity}")
    if skip_layers is None:
        out_layer = model.output_node.layer
        skip_layers = (out_layer.name,) if out_layer is not None else ()
    masks: dict[str, np.ndarray] = {}
    for layer in model.layers:
        if layer.name in skip_layers or "W" not in layer.params:
            continue
        w = layer.params["W"]
        threshold = float(np.quantile(np.abs(w), sparsity))
        mask = np.abs(w) > threshold
        layer.params["W"] = w * mask
        masks[layer.name] = mask
    return masks


def apply_masks(model: Model, masks: dict[str, np.ndarray]) -> None:
    """Re-zero pruned weights (call after every optimizer step)."""
    for layer in model.layers:
        mask = masks.get(layer.name)
        if mask is not None:
            layer.params["W"] *= mask


def sparsity_report(model: Model) -> dict[str, float]:
    """Fraction of exactly-zero weights, per layer and ``"total"``."""
    report: dict[str, float] = {}
    zeros = total = 0
    for layer in model.layers:
        w = layer.params.get("W")
        if w is None:
            continue
        z = int(np.count_nonzero(w == 0.0))
        report[layer.name] = z / w.size
        zeros += z
        total += w.size
    report["total"] = zeros / total if total else 0.0
    return report


# ----------------------------------------------------------------------
# Structured (filter-level) pruning
# ----------------------------------------------------------------------
@dataclass
class PruneReport:
    """What :func:`structured_prune` removed."""

    fraction: float
    filters: dict[str, tuple[int, int]] = field(default_factory=dict)
    params_before: int = 0
    params_after: int = 0

    def summary(self) -> str:
        kept = ", ".join(
            f"{name} {orig}->{new}" for name, (orig, new) in self.filters.items()
        )
        return (
            f"structured prune {self.fraction:.0%}: {kept}; "
            f"params {self.params_before} -> {self.params_after}"
        )


def _conv_keep(layer, fraction: float, min_filters: int) -> np.ndarray:
    """Indices of Conv1D filters to keep, ranked by L1 norm."""
    w = layer.params["W"]  # (k, cin, cout)
    norms = np.abs(w).sum(axis=(0, 1))
    n_keep = max(min_filters, int(round((1.0 - fraction) * len(norms))))
    # Ties broken by filter index (stable argsort) for determinism.
    order = np.argsort(-norms, kind="stable")[:n_keep]
    return np.sort(order)


def structured_prune(
    model: Model,
    fraction: float,
    min_filters: int = 1,
) -> tuple[Model, PruneReport]:
    """Remove the lowest-L1 ``fraction`` of every Conv1D's filters.

    Rebuilds the graph with physically smaller layers (new instances,
    original weights sliced to the surviving channels), so the result
    has fewer parameters and MACs — not just zeros.  Dense units are
    kept; only their weight *rows* shrink to match the surviving
    flattened features.  The input model is not modified.
    """
    if not 0.0 <= fraction < 1.0:
        raise ValueError(f"fraction must be in [0, 1), got {fraction}")
    report = PruneReport(
        fraction=fraction, params_before=model.count_params()
    )
    new_nodes: dict[int, nn_graph.Node] = {}
    # Per original node: surviving original last-axis feature indices.
    keep: dict[int, np.ndarray] = {}

    for node in model.nodes:
        if node.is_input:
            new_nodes[node.uid] = nn_graph.Input(node.shape, name=node.name)
            keep[node.uid] = np.arange(node.shape[-1])
            continue
        layer = node.layer
        parents = [new_nodes[p.uid] for p in node.parents]
        parent = node.parents[0]
        keep_in = keep[parent.uid]

        if isinstance(layer, L.Slice):
            new = L.Slice(layer.axis, layer.start, layer.stop,
                          name=layer.name)(parents[0])
            axis = layer.axis if layer.axis >= 0 else len(parent.shape) + layer.axis
            if axis == len(parent.shape) - 1:
                if len(keep_in) != parent.shape[-1]:
                    raise ValueError(
                        f"cannot slice channel axis of pruned tensor at "
                        f"{layer.name!r}"
                    )
                keep[node.uid] = np.arange(layer.stop - layer.start)
            else:
                keep[node.uid] = keep_in
        elif isinstance(layer, L.Conv1D):
            keep_f = _conv_keep(layer, fraction, min_filters)
            new_layer = L.Conv1D(
                len(keep_f),
                layer.kernel_size,
                strides=layer.strides,
                padding=layer.padding,
                activation=layer.activation_name,
                use_bias=layer.use_bias,
                name=layer.name,
            )
            new = new_layer(parents[0])
            w = layer.params["W"][:, keep_in, :][:, :, keep_f]
            new_layer.params["W"] = w.astype(
                new_layer.params["W"].dtype
            ).copy()
            if layer.use_bias:
                new_layer.params["b"] = (
                    layer.params["b"][keep_f]
                    .astype(new_layer.params["b"].dtype)
                    .copy()
                )
            report.filters[layer.name] = (layer.filters, len(keep_f))
            keep[node.uid] = keep_f
        elif isinstance(layer, L.MaxPool1D):
            new = L.MaxPool1D(layer.pool_size, strides=layer.strides,
                              name=layer.name)(parents[0])
            keep[node.uid] = keep_in
        elif isinstance(layer, L.Flatten):
            new = L.Flatten(name=layer.name)(parents[0])
            length, channels = parent.shape
            keep[node.uid] = (
                np.arange(length)[:, None] * channels + keep_in[None, :]
            ).ravel()
        elif isinstance(layer, L.Concatenate):
            new = L.Concatenate(axis=layer.axis, name=layer.name)(parents)
            offset = 0
            parts = []
            for p in node.parents:
                parts.append(keep[p.uid] + offset)
                offset += p.shape[-1]
            keep[node.uid] = np.concatenate(parts)
        elif isinstance(layer, L.Dense):
            new_layer = L.Dense(
                layer.units,
                activation=layer.activation_name,
                use_bias=layer.use_bias,
                name=layer.name,
            )
            new = new_layer(parents[0])
            new_layer.params["W"] = (
                layer.params["W"][keep_in, :]
                .astype(new_layer.params["W"].dtype)
                .copy()
            )
            if layer.use_bias:
                new_layer.params["b"] = (
                    layer.params["b"]
                    .astype(new_layer.params["b"].dtype)
                    .copy()
                )
            keep[node.uid] = np.arange(layer.units)
        elif isinstance(layer, L.Dropout):
            new = L.Dropout(layer.rate, name=layer.name)(parents[0])
            keep[node.uid] = keep_in
        else:
            raise ValueError(
                f"structured_prune does not support layer type "
                f"{type(layer).__name__} ({layer.name!r})"
            )
        new_nodes[node.uid] = new

    pruned = Model(
        new_nodes[model.input_node.uid],
        new_nodes[model.output_node.uid],
        name=f"{model.name}_pruned",
    )
    report.params_after = pruned.count_params()
    registry = get_registry()
    registry.gauge("quant/pruned_params").set(
        report.params_before - report.params_after
    )
    registry.gauge("quant/prune_fraction").set(fraction)
    _logger.info("%s", report.summary())
    return pruned, report


# ----------------------------------------------------------------------
# Fine-tuning
# ----------------------------------------------------------------------
def fine_tune(
    model: Model,
    x: np.ndarray,
    y: np.ndarray,
    masks: dict[str, np.ndarray] | None = None,
    epochs: int = 2,
    batch_size: int = 32,
    sample_weight: np.ndarray | None = None,
    seed: int = 0,
) -> list[float]:
    """Short recovery training after pruning; returns per-epoch losses.

    Unlike ``Model.fit`` this re-applies ``masks`` after *every*
    optimizer step, so unstructured zeros stay zero throughout (for
    structured pruning pass ``masks=None`` — the filters are physically
    gone and plain training suffices).  The model must be compiled.
    """
    model._require_compiled()
    x = np.asarray(x)
    y = np.asarray(y)
    rng = np.random.default_rng(seed)
    n = len(x)
    losses = []
    for _ in range(epochs):
        order = rng.permutation(n)
        epoch_loss = 0.0
        for start in range(0, n, batch_size):
            idx = order[start : start + batch_size]
            sw = None if sample_weight is None else sample_weight[idx]
            epoch_loss += model.train_on_batch(x[idx], y[idx], sw) * len(idx)
            if masks:
                apply_masks(model, masks)
        losses.append(epoch_loss / max(n, 1))
    return losses
