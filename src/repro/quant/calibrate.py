"""Calibration: observe per-node activation ranges on representative data.

Post-training quantization needs the dynamic range of every intermediate
tensor.  We run the float model over a calibration batch and record
min/max per graph node (the model caches node outputs during forward).
"""

from __future__ import annotations

import numpy as np

from ..nn.model import Model
from .qtensor import QuantParams, activation_qparams

__all__ = ["calibrate_activations"]


def calibrate_activations(
    model: Model, calibration_x: np.ndarray, batch_size: int = 256
) -> dict[int, QuantParams]:
    """Return ``node uid -> QuantParams`` for every tensor in the graph.

    Ranges are accumulated over batches (min of mins / max of maxes —
    conservative coverage, like TFLite's default MinMax observer).
    """
    # Cast once up front: slicing a float32 array yields float32 views, so
    # the per-batch re-cast (a second full copy) is unnecessary.
    calibration_x = np.asarray(calibration_x, dtype=np.float32)
    if len(calibration_x) == 0:
        raise ValueError("calibration set is empty")
    mins: dict[int, float] = {}
    maxs: dict[int, float] = {}
    for start in range(0, len(calibration_x), batch_size):
        model._forward(calibration_x[start : start + batch_size],
                       training=False)
        for uid, value in model._values.items():
            v = np.asarray(value)
            mins[uid] = min(mins.get(uid, np.inf), float(v.min()))
            maxs[uid] = max(maxs.get(uid, -np.inf), float(v.max()))
        # Release the cached node outputs between batches so calibrating
        # over large sets doesn't hold a whole activation graph live.
        model._values = {}
    return {
        uid: activation_qparams(mins[uid], maxs[uid]) for uid in mins
    }
