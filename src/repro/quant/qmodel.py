"""Post-training int8 quantization of a trained graph model.

``QuantizedModel.convert`` walks the float graph, quantizes weights
per-channel, calibrates activation ranges, and lowers every layer to an
integer op.  The resulting executor uses int8 tensors, int32 accumulators
and fixed-point requantization only — the same arithmetic an STM32F722
would run — so its accuracy *is* the deployed accuracy ("the model's
performance remains unchanged after quantization", Section IV-C).

The final sigmoid is evaluated by dequantizing the logit, as deployment
stacks do with a look-up table.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..nn.layers import (
    Concatenate,
    Conv1D,
    Dense,
    Dropout,
    Flatten,
    MaxPool1D,
    Reshape,
    Slice,
)
from ..nn.model import Model
from .calibrate import calibrate_activations
from .qtensor import (
    INT8_MIN,
    FixedPointMultiplier,
    QuantParams,
    RequantPlan,
    dequantize,
    quantize,
    quantize_weights_per_channel,
    requantize_block_fast,
    requantize_lut,
)

#: Largest centered-input × weight dot length for which the float64 GEMM
#: fast path is exact: every partial sum is an integer bounded by
#: ``K * 255 * 128``, and float64 represents integers exactly below 2^53.
_EXACT_GEMM_MAX_K = 2**53 // (255 * 128)


#: Largest float32 GEMM chunk: every partial sum stays below 2^24, exact
#: in float32's 24-bit mantissa.
_F32_CHUNK = (2**24 - 1) // (255 * 128)


def _gemm_dtype(k_dot: int, q_bias: np.ndarray) -> type:
    """float32 when every partial sum *and* the biased accumulator stay
    below 2^24 (exact in a 24-bit mantissa); float64 otherwise."""
    bias_peak = int(np.abs(q_bias).max()) if q_bias.size else 0
    if k_dot * 255 * 128 + bias_peak < 2**24:
        return np.float32
    return np.float64

__all__ = ["QuantizedModel", "QOp"]


class QOp:
    """One lowered integer operation."""

    def __init__(self, name: str, kind: str, input_uids: list[int],
                 output_uid: int, out_params: QuantParams):
        self.name = name
        self.kind = kind
        self.input_uids = input_uids
        self.output_uid = output_uid
        self.out_params = out_params
        # Filled by specific lowerings:
        self.weight_bytes = 0
        self.bias_bytes = 0
        self.macs_per_inference = 0
        self.q_weights: np.ndarray | None = None
        self.q_bias: np.ndarray | None = None

    def run(self, inputs: list[np.ndarray]) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def run_reference(self, inputs: list[np.ndarray]) -> np.ndarray:
        """Per-sample-era reference lowering (scalar requantize loop).

        Ops whose ``run`` gained a vectorized fast path override this with
        the original body; for pure-reindexing ops the two coincide.
        """
        return self.run(inputs)


class _Passthrough(QOp):
    """Slice/Flatten/Reshape/Dropout: reindexing only, no arithmetic."""

    def __init__(self, layer, node, out_params, fn):
        super().__init__(layer.name, type(layer).__name__.lower(),
                         [p.uid for p in node.parents], node.uid, out_params)
        self._fn = fn

    def run(self, inputs):
        return self._fn(inputs[0])


class _QMaxPool(QOp):
    def __init__(self, layer: MaxPool1D, node, out_params):
        super().__init__(layer.name, "maxpool1d",
                         [p.uid for p in node.parents], node.uid, out_params)
        self.pool = layer.pool_size
        self.strides = layer.strides

    def run(self, inputs):
        x = inputs[0]
        starts = self.strides * np.arange(
            (x.shape[1] - self.pool) // self.strides + 1
        )
        idx = starts[:, None] + np.arange(self.pool)[None, :]
        return x[:, idx, :].max(axis=2)


class _QConcatenate(QOp):
    """Concatenate with per-input rescaling to the shared output scale."""

    def __init__(self, layer: Concatenate, node, in_params, out_params):
        super().__init__(layer.name, "concatenate",
                         [p.uid for p in node.parents], node.uid, out_params)
        self.axis = layer.axis
        self.in_params = in_params
        self.mults = [
            FixedPointMultiplier.from_real(p.scale / out_params.scale)
            for p in in_params
        ]

        # Per-tensor int8 -> int8 rescale: one 256-entry table per input,
        # built with the scalar reference requantize over every possible
        # value — lookup is bit-identical by construction.
        self._luts = [
            requantize_lut(mult, p.zero_point, out_params.zero_point)
            for mult, p in zip(self.mults, in_params)
        ]

    def run(self, inputs):
        axis = self.axis if self.axis >= 0 else inputs[0].ndim + self.axis
        rescaled = [lut[x] for lut, x in zip(self._luts, inputs)]
        return np.concatenate(rescaled, axis=axis)

    def run_reference(self, inputs):
        from .qtensor import requantize

        rescaled = []
        for x, params, mult in zip(inputs, self.in_params, self.mults):
            centered = x.astype(np.int32) - params.zero_point
            rescaled.append(requantize(centered, mult,
                                       self.out_params.zero_point))
        axis = self.axis if self.axis >= 0 else inputs[0].ndim + self.axis
        return np.concatenate(rescaled, axis=axis)


def _lower_linear(op: QOp, weights, bias, in_params: QuantParams,
                  out_params: QuantParams, channel_axis: int):
    """Shared weight/bias/multiplier preparation for conv and dense."""
    q_w, w_scales = quantize_weights_per_channel(weights, channel_axis)
    op.q_weights = q_w
    op.weight_bytes = q_w.size  # int8
    bias_scales = in_params.scale * w_scales
    if bias is not None:
        q_b = np.rint(np.asarray(bias, dtype=np.float64) / bias_scales)
        op.q_bias = np.clip(q_b, -(2**31), 2**31 - 1).astype(np.int32)
        op.bias_bytes = op.q_bias.size * 4
    else:
        op.q_bias = np.zeros(q_w.shape[channel_axis], dtype=np.int32)
        op.bias_bytes = 0
    op.mults = [
        FixedPointMultiplier.from_real(s / out_params.scale) for s in bias_scales
    ]
    op.plan = RequantPlan(op.mults)
    op.m0s, op.shifts = op.plan.m0s, op.plan.shifts


def _requantize_per_channel(acc, mults, zero_point):
    from .qtensor import requantize

    out = np.empty(acc.shape, dtype=np.int8)
    for j, mult in enumerate(mults):
        out[..., j] = requantize(acc[..., j], mult, zero_point)
    return out


class _QDense(QOp):
    def __init__(self, layer: Dense, node, in_params, out_params):
        super().__init__(layer.name, "dense",
                         [p.uid for p in node.parents], node.uid, out_params)
        self.in_params = in_params
        self.activation = layer.activation_name
        if self.activation not in (None, "linear", "relu", "sigmoid"):
            raise ValueError(
                f"unsupported dense activation {self.activation!r} for "
                "int8 lowering"
            )
        w = layer.params["W"]
        b = layer.params.get("b")
        if self.activation == "sigmoid":
            # Keep the logit in int8 at a dedicated scale; the sigmoid is
            # evaluated from the dequantized logit (LUT equivalent).
            self.logit_params = out_params
        _lower_linear(self, np.asarray(w, dtype=np.float64),
                      None if b is None else np.asarray(b, dtype=np.float64),
                      in_params, out_params, channel_axis=1)
        self.macs_per_inference = int(w.shape[0] * w.shape[1])
        # Blocked GEMM fast path: int8 products accumulated through a
        # float64 BLAS matmul are exact while K * 255 * 128 < 2^53, so
        # the result is bit-identical to the int64 reference matmul.
        self._exact_gemm = w.shape[0] <= _EXACT_GEMM_MAX_K
        # Chunked float32 GEMM: each chunk's partial sums stay exact in
        # float32, and the float64 combine/bias-add is exact outright —
        # bit-identical to the int64 reference matmul, at sgemm speed.
        k_in = int(w.shape[0])
        self._bounds = [(s, min(s + _F32_CHUNK, k_in))
                        for s in range(0, k_in, _F32_CHUNK)]
        self._wg = [self.q_weights[s:e].astype(np.float32)
                    for s, e in self._bounds]
        self._relu_lo = (self.out_params.zero_point
                         if self.activation == "relu" else INT8_MIN)

    def run(self, inputs):
        if not self._exact_gemm:  # pragma: no cover - needs K > ~2.7e11
            return self.run_reference(inputs)
        xc = inputs[0].astype(np.float32)
        xc -= self.in_params.zero_point
        (s0, e0) = self._bounds[0]
        accf = (xc[..., s0:e0] @ self._wg[0]).astype(np.float64)
        for (s, e), wc in zip(self._bounds[1:], self._wg[1:]):
            accf += xc[..., s:e] @ wc
        accf += self.q_bias
        return requantize_block_fast(accf, self.plan,
                                     self.out_params.zero_point,
                                     lo=self._relu_lo)

    def run_reference(self, inputs):
        x = inputs[0]
        centered = x.astype(np.int32) - self.in_params.zero_point
        acc = centered.astype(np.int64) @ self.q_weights.astype(np.int64)
        acc = acc + self.q_bias
        out = _requantize_per_channel(acc, self.mults,
                                      self.out_params.zero_point)
        if self.activation == "relu":
            out = np.maximum(out, self.out_params.zero_point)
        return out


class _QConv1D(QOp):
    def __init__(self, layer: Conv1D, node, in_params, out_params):
        super().__init__(layer.name, "conv1d",
                         [p.uid for p in node.parents], node.uid, out_params)
        if layer.padding != "valid" or layer.strides != 1:
            raise ValueError(
                "int8 lowering implements the paper's conv variant: "
                "'valid' padding, stride 1"
            )
        self.in_params = in_params
        self.activation = layer.activation_name
        if self.activation not in (None, "linear", "relu"):
            raise ValueError(
                f"unsupported conv activation {self.activation!r} for int8"
            )
        w = np.asarray(layer.params["W"], dtype=np.float64)  # (k, cin, cout)
        b = layer.params.get("b")
        _lower_linear(self, w,
                      None if b is None else np.asarray(b, dtype=np.float64),
                      in_params, out_params, channel_axis=2)
        self.kernel_size = w.shape[0]
        out_len = node.shape[0]
        self.macs_per_inference = int(out_len * w.shape[0] * w.shape[1]
                                      * w.shape[2])
        k_dot = w.shape[0] * w.shape[1]  # im2col dot length: k * cin
        self._exact_gemm = k_dot <= _EXACT_GEMM_MAX_K
        self._dtype = _gemm_dtype(k_dot, self.q_bias)
        self._wg = self.q_weights.reshape(-1, w.shape[2]).astype(self._dtype)
        self._bg = self.q_bias.astype(self._dtype)
        self._relu_lo = (self.out_params.zero_point
                         if self.activation == "relu" else INT8_MIN)

    def _acc_batch(self, x):
        """Exact-integer im2col accumulators (float): (b, out_len, cout)."""
        k = self.kernel_size
        centered = x.astype(self._dtype) - self.in_params.zero_point
        windows = sliding_window_view(centered, k, axis=1)
        windows = np.swapaxes(windows, 2, 3)  # (batch, out_len, k, cin)
        batch, out_len = windows.shape[0], windows.shape[1]
        cols = np.ascontiguousarray(windows).reshape(batch * out_len, -1)
        accf = (cols @ self._wg).reshape(batch, out_len, -1)
        accf += self._bg
        return accf

    def run(self, inputs):
        if not self._exact_gemm:  # pragma: no cover - needs K > ~2.7e11
            return self.run_reference(inputs)
        return requantize_block_fast(self._acc_batch(inputs[0]), self.plan,
                                     self.out_params.zero_point,
                                     lo=self._relu_lo)

    def run_fused_pool(self, inputs, pool: "_QMaxPool"):
        """Conv (+ReLU) + following max-pool in one step, bit-identically.

        Every stage after the accumulator — Q31 requantize, saturation,
        ReLU — is monotone nondecreasing, so max-pooling *accumulators*
        then requantizing equals requantizing then pooling, while doing
        the elementwise requantize work on the pooled (smaller) tensor.
        """
        if not self._exact_gemm:  # pragma: no cover - needs K > ~2.7e11
            return pool.run([self.run_reference(inputs)])
        accf = self._acc_batch(inputs[0])
        length = accf.shape[1]
        if pool.strides == pool.pool and length % pool.pool == 0:
            # Non-overlapping windows covering the length exactly: pool
            # via a free reshape instead of a fancy-index gather.
            pooled = accf.reshape(accf.shape[0], length // pool.pool,
                                  pool.pool, -1).max(axis=2)
        else:
            starts = pool.strides * np.arange(
                (length - pool.pool) // pool.strides + 1
            )
            idx = starts[:, None] + np.arange(pool.pool)[None, :]
            pooled = accf[:, idx, :].max(axis=2)
        return requantize_block_fast(pooled, self.plan,
                                     self.out_params.zero_point,
                                     lo=self._relu_lo)

    def run_reference(self, inputs):
        x = inputs[0]
        k = self.kernel_size
        centered = x.astype(np.int32) - self.in_params.zero_point
        windows = sliding_window_view(centered, k, axis=1)
        windows = np.swapaxes(windows, 2, 3)  # (batch, out_len, k, cin)
        batch, out_len = windows.shape[0], windows.shape[1]
        cols = windows.reshape(batch, out_len, -1).astype(np.int64)
        kernel = self.q_weights.reshape(-1, self.q_weights.shape[2])
        acc = cols @ kernel.astype(np.int64) + self.q_bias
        out = _requantize_per_channel(acc, self.mults,
                                      self.out_params.zero_point)
        if self.activation == "relu":
            out = np.maximum(out, self.out_params.zero_point)
        return out


class _FusedBranches:
    """Schedule-level fusion of parallel slice->conv->pool->flatten
    branches feeding one concatenate.

    The paper's trunk slices the 9-channel window into three 3-channel
    groups and runs an identical conv/pool/flatten stack on each.  When
    every branch reads the same source tensor (slices propagate the
    source's quantization unchanged) and every conv shares the input
    zero-point, the three GEMMs are one *block-diagonal* GEMM over the
    full channel axis: rows outside a branch's slice hold zero weights,
    so each output column accumulates exactly the products its per-branch
    lowering would.  Pool-then-requantize is bit-exact as in
    ``run_fused_pool``, the concat rescale stays the same per-branch
    256-entry LUT (applied per output channel), and a final index
    permutation reproduces the concat-of-flattens feature order.  Like
    the conv+pool fusion this is purely a schedule optimization: per-op
    ``run``/``run_reference`` semantics and ``predict_reference`` are
    untouched.
    """

    def __init__(self, source_uid, source_channels, branches, concat):
        # branches: [(slice_op, conv_op, pool_op, flatten_op)] in concat
        # input order; guards in ``_try_fuse_branches`` hold already.
        self.input_uids = [source_uid]
        self.output_uid = concat.output_uid
        convs = [b[1] for b in branches]
        self.kernel_size = k = convs[0].kernel_size
        self.pool = branches[0][2].pool
        self.zero_point_in = convs[0].in_params.zero_point
        self.zero_point_out = convs[0].out_params.zero_point
        self._relu_lo = convs[0]._relu_lo
        couts = [c._wg.shape[1] for c in convs]
        total = sum(couts)
        q_bias = np.concatenate([c.q_bias for c in convs])
        self._dtype = _gemm_dtype(k * source_channels, q_bias)
        # Block-diagonal im2col weights: row k'*C + c is the source's
        # channel c at tap k'; each branch occupies its slice's rows.
        wg = np.zeros((k * source_channels, total), dtype=self._dtype)
        col = 0
        for (sl, conv, _pool, _flat), cout in zip(branches, couts):
            for tap in range(k):
                rows = slice(tap * source_channels + sl.slice_start,
                             tap * source_channels + sl.slice_stop)
                wg[rows, col:col + cout] = conv.q_weights[tap]
            col += cout
        self._wg = wg
        self._bg = q_bias.astype(self._dtype)
        self.plan = RequantPlan([m for c in convs for m in c.mults])
        # Concat rescale: the branch's per-tensor LUT, laid out per output
        # channel so one gather rescales the whole pooled block.
        big_lut = np.empty((256, total), dtype=np.int8)
        col = 0
        for lut, cout in zip(concat._luts, couts):
            big_lut[:, col:col + cout] = lut[:, None]
            col += cout
        self._lut_flat = big_lut.ravel()  # (value, channel) row-major
        self._ch_idx = np.arange(total)
        # (pooled_len, total) row-major -> concat(branch-flattens) order;
        # built by ``finalize`` once the pooled length is known.
        self._perm = None
        self._total = total
        self._couts = couts

    def finalize(self, pooled_len: int):
        """Build the feature permutation once the pooled length is known."""
        total = self._total
        blocks = []
        ch_off = 0
        for cout in self._couts:
            block = (np.arange(pooled_len)[:, None] * total
                     + ch_off + np.arange(cout)[None, :])
            blocks.append(block.ravel())
            ch_off += cout
        self._perm = np.concatenate(blocks)

    def run(self, inputs):
        k = self.kernel_size
        centered = inputs[0].astype(self._dtype)
        centered -= self.zero_point_in
        windows = sliding_window_view(centered, k, axis=1)
        windows = np.swapaxes(windows, 2, 3)  # (batch, out_len, k, C)
        batch, out_len = windows.shape[0], windows.shape[1]
        cols = np.ascontiguousarray(windows).reshape(batch * out_len, -1)
        accf = cols @ self._wg
        accf += self._bg
        tiles = accf.reshape(batch, out_len // self.pool, self.pool,
                             self._total)
        # Pairwise in-place maximum beats the generic axis reduction.
        pooled = tiles[:, :, 0].copy()
        for j in range(1, self.pool):
            np.maximum(pooled, tiles[:, :, j], out=pooled)
        q8 = requantize_block_fast(pooled, self.plan, self.zero_point_out,
                                   lo=self._relu_lo)
        # Concat rescale: flat-index the (value, channel) table once.
        idx = q8.view(np.uint8).astype(np.intp)
        idx *= self._total
        idx += self._ch_idx
        rescaled = self._lut_flat.take(idx)
        return rescaled.reshape(batch, -1)[:, self._perm]


class QuantizedModel:
    """Integer executor for a converted model."""

    def __init__(self, ops, input_uid, input_params, output_uid,
                 output_op, input_shape, node_shapes, output_shape=(1,)):
        self.ops: list[QOp] = ops
        self.input_uid = input_uid
        self.input_params = input_params
        self.output_uid = output_uid
        self._output_op = output_op
        self.input_shape = input_shape
        self.output_shape = tuple(output_shape)
        #: node uid -> per-sample tensor shape (for the RAM planner).
        self.node_shapes = node_shapes
        self._steps = self._build_steps()

    def _build_steps(self):
        """Execution schedule: fuse conv -> max-pool chains for ``run``.

        A conv whose output feeds *only* a max-pool (and is not the model
        output) is executed through ``run_fused_pool``; the conv node's
        int8 tensor is never materialized.  Per-op ``run``/``run_reference``
        semantics are untouched — this is purely a schedule optimization,
        and ``predict_reference`` always runs op by op.
        """
        consumers: dict[int, list[QOp]] = {}
        for op in self.ops:
            for uid in op.input_uids:
                consumers.setdefault(uid, []).append(op)
        absorbed: set[int] = set()
        fused_trunks: dict[int, _FusedBranches] = {}
        for op in self.ops:
            if isinstance(op, _QConcatenate):
                fused = self._try_fuse_branches(op, consumers)
                if fused is not None:
                    step, branch_ids = fused
                    fused_trunks[id(op)] = step
                    absorbed |= branch_ids
        steps: list[tuple] = []
        fused_pools: set[int] = set()
        for op in self.ops:
            if id(op) in absorbed or id(op) in fused_pools:
                continue
            if id(op) in fused_trunks:
                steps.append((fused_trunks[id(op)],))
                continue
            users = consumers.get(op.output_uid, [])
            if (isinstance(op, _QConv1D) and op.output_uid != self.output_uid
                    and len(users) == 1 and isinstance(users[0], _QMaxPool)):
                steps.append((op, users[0]))
                fused_pools.add(id(users[0]))
            else:
                steps.append((op,))
        return steps

    def _try_fuse_branches(self, concat: _QConcatenate, consumers):
        """Match slice->conv->pool->flatten branches into one fused step.

        Every guard below protects a bit-identity precondition; any miss
        simply falls back to the per-op schedule.
        """
        if concat.axis not in (-1, 1):
            return None
        producers = {op.output_uid: op for op in self.ops}
        branches = []
        for uid in concat.input_uids:
            chain = []
            op = producers.get(uid)
            for expect in ("flatten", _QMaxPool, _QConv1D, "slice"):
                if op is None or op.output_uid == self.output_uid:
                    return None
                if len(consumers.get(op.output_uid, [])) != 1:
                    return None
                if isinstance(expect, str):
                    if op.kind != expect:
                        return None
                elif not isinstance(op, expect):
                    return None
                chain.append(op)
                op = producers.get(op.input_uids[0])
            flat, pool, conv, sl = chain
            branches.append((sl, conv, pool, flat))
        if len(branches) < 2:
            return None
        source_uid = branches[0][0].input_uids[0]
        source_shape = self.node_shapes.get(source_uid)
        if source_shape is None or len(source_shape) != 2:
            return None
        src_len, src_channels = source_shape
        ref_conv, ref_pool = branches[0][1], branches[0][2]
        for sl, conv, pool, _flat in branches:
            start = getattr(sl, "slice_start", None)
            stop = getattr(sl, "slice_stop", None)
            sl_shape = self.node_shapes.get(sl.output_uid)
            out_shape = self.node_shapes.get(conv.output_uid)
            if (sl.input_uids[0] != source_uid
                    or start is None or stop is None
                    # Channel-axis slice: full length, sliced channels.
                    or sl_shape != (src_len, stop - start)
                    or conv.q_weights.shape[1] != stop - start
                    # Identical conv contract across branches.
                    or not conv._exact_gemm
                    or conv.kernel_size != ref_conv.kernel_size
                    or conv.in_params.scale != ref_conv.in_params.scale
                    or conv.in_params.zero_point
                    != ref_conv.in_params.zero_point
                    or conv.out_params.zero_point
                    != ref_conv.out_params.zero_point
                    or conv._relu_lo != ref_conv._relu_lo
                    # Reshape-max pooling must cover the length exactly.
                    or pool.pool != ref_pool.pool
                    or pool.strides != pool.pool
                    or out_shape is None
                    or out_shape[0] % pool.pool != 0):
                return None
        step = _FusedBranches(source_uid, int(src_channels), branches, concat)
        out_len = self.node_shapes[ref_conv.output_uid][0]
        step.finalize(out_len // ref_pool.pool)
        absorbed = {id(op) for branch in branches for op in branch}
        return step, absorbed

    # ------------------------------------------------------------------
    @classmethod
    def convert(cls, model: Model, calibration_x: np.ndarray) -> "QuantizedModel":
        """Lower a trained float model to int8 using calibration data."""
        act_params = calibrate_activations(model, calibration_x)
        ops: list[QOp] = []
        node_shapes = {model.input_node.uid: model.input_node.shape}
        output_op = None
        for node in model.nodes:
            if node.is_input:
                continue
            node_shapes[node.uid] = node.shape
            layer = node.layer
            in_params = [act_params[p.uid] for p in node.parents]
            out_params = act_params[node.uid]
            if isinstance(layer, (Flatten, Reshape, Dropout, Slice)):
                # Reindexing ops keep their input's quantization exactly.
                fn = {
                    Flatten: lambda x: x.reshape(x.shape[0], -1),
                    Reshape: lambda x, s=getattr(layer, "target_shape", None): (
                        x.reshape((x.shape[0],) + s)
                    ),
                    Dropout: lambda x: x,
                }.get(type(layer))
                if isinstance(layer, Slice):

                    def slice_fn(x, layer=layer):
                        axis = layer._array_axis(x.ndim)
                        idx = [slice(None)] * x.ndim
                        idx[axis] = slice(layer.start, layer.stop)
                        return x[tuple(idx)]

                    fn = slice_fn
                op = _Passthrough(layer, node, in_params[0], fn)
                if isinstance(layer, Slice):
                    op.slice_start = layer.start
                    op.slice_stop = layer.stop
                act_params[node.uid] = in_params[0]
            elif isinstance(layer, MaxPool1D):
                op = _QMaxPool(layer, node, in_params[0])
                act_params[node.uid] = in_params[0]
            elif isinstance(layer, Concatenate):
                op = _QConcatenate(layer, node, in_params, out_params)
            elif isinstance(layer, Dense):
                if layer.activation_name == "sigmoid":
                    # Quantize the *logit*: recover it from the calibrated
                    # probability range via a dedicated logit observer run.
                    logit_params = _logit_params(model, node, calibration_x)
                    op = _QDense(layer, node, in_params[0], logit_params)
                    act_params[node.uid] = logit_params
                    output_op = op
                else:
                    op = _QDense(layer, node, in_params[0], out_params)
            elif isinstance(layer, Conv1D):
                op = _QConv1D(layer, node, in_params[0], out_params)
            else:
                raise ValueError(
                    f"layer {layer.name!r} ({type(layer).__name__}) has no "
                    "int8 lowering"
                )
            ops.append(op)
        return cls(
            ops=ops,
            input_uid=model.input_node.uid,
            input_params=act_params[model.input_node.uid],
            output_uid=model.output_node.uid,
            output_op=output_op,
            input_shape=model.input_shape,
            node_shapes=node_shapes,
            output_shape=tuple(model.output_node.shape),
        )

    # ------------------------------------------------------------------
    def predict(self, x: np.ndarray, batch_size: int = 512) -> np.ndarray:
        """Float-in / float-out inference through the integer pipeline.

        Whole batches run through the vectorized int8 kernels; empty input
        keeps the output shape, mirroring ``Model.predict``.
        """
        return self._predict(x, batch_size, reference=False)

    def predict_reference(self, x: np.ndarray,
                          batch_size: int = 512) -> np.ndarray:
        """Same pipeline through each op's per-sample-era reference lowering.

        Exists so tests can prove the batched kernels bit-identical to the
        original scalar requantize path; not a serving entry point.
        """
        return self._predict(x, batch_size, reference=True)

    def _predict(self, x, batch_size, reference):
        x = np.asarray(x, dtype=np.float64)
        if x.shape[1:] != tuple(self.input_shape):
            raise ValueError(
                f"expected per-sample shape {self.input_shape}, got {x.shape[1:]}"
            )
        outs = []
        for start in range(0, len(x), batch_size):
            outs.append(self._predict_batch(x[start : start + batch_size],
                                            reference=reference))
        if not outs:
            return np.empty((0,) + self.output_shape)
        return np.concatenate(outs)

    def _predict_batch(self, x, reference=False):
        values = {self.input_uid: quantize(x, self.input_params)}
        if reference:
            for op in self.ops:
                inputs = [values[uid] for uid in op.input_uids]
                values[op.output_uid] = op.run_reference(inputs)
        else:
            for step in self._steps:
                op = step[0]
                inputs = [values[uid] for uid in op.input_uids]
                if len(step) == 2:  # fused conv -> max-pool
                    values[step[1].output_uid] = op.run_fused_pool(
                        inputs, step[1])
                else:
                    values[op.output_uid] = op.run(inputs)
        out_q = values[self.output_uid]
        if self._output_op is not None:
            logits = dequantize(out_q, self._output_op.out_params)
            return 1.0 / (1.0 + np.exp(-logits))
        # No sigmoid head: return dequantized values of the final node.
        final_params = self.ops[-1].out_params
        return dequantize(out_q, final_params)

    # ------------------------------------------------------------------
    @property
    def weight_bytes(self) -> int:
        return sum(op.weight_bytes for op in self.ops)

    @property
    def bias_bytes(self) -> int:
        return sum(op.bias_bytes for op in self.ops)

    @property
    def total_macs(self) -> int:
        return sum(op.macs_per_inference for op in self.ops)

    def lowered_table(self) -> list[dict]:
        """Per-op MAC / byte accounting rows (for ``repro profile``)."""
        rows = []
        for op in self.ops:
            rows.append({
                "name": op.name,
                "kind": op.kind,
                "output_shape": tuple(self.node_shapes.get(op.output_uid, ())),
                "macs": int(op.macs_per_inference),
                "weight_bytes": int(op.weight_bytes),
                "bias_bytes": int(op.bias_bytes),
            })
        return rows


def _logit_params(model: Model, node, calibration_x) -> QuantParams:
    """Observe the pre-sigmoid logit range of the output dense layer."""
    from .qtensor import activation_qparams

    layer = node.layer
    # Cast once; per-batch slices of a float32 array need no re-cast.
    calibration_x = np.asarray(calibration_x, dtype=np.float32)
    lo, hi = np.inf, -np.inf
    for start in range(0, len(calibration_x), 256):
        model._forward(calibration_x[start : start + 256], training=False)
        parent_value = model._values[node.parents[0].uid]
        z = parent_value @ layer.params["W"]
        if "b" in layer.params:
            z = z + layer.params["b"]
        lo = min(lo, float(z.min()))
        hi = max(hi, float(z.max()))
        # Drop the cached activation graph before the next batch.
        model._values = {}
    return activation_qparams(lo, hi)
