"""Post-training int8 quantization of a trained graph model.

``QuantizedModel.convert`` walks the float graph, quantizes weights
per-channel, calibrates activation ranges, and lowers every layer to an
integer op.  The resulting executor uses int8 tensors, int32 accumulators
and fixed-point requantization only — the same arithmetic an STM32F722
would run — so its accuracy *is* the deployed accuracy ("the model's
performance remains unchanged after quantization", Section IV-C).

The final sigmoid is evaluated by dequantizing the logit, as deployment
stacks do with a look-up table.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..nn.layers import (
    Concatenate,
    Conv1D,
    Dense,
    Dropout,
    Flatten,
    MaxPool1D,
    Reshape,
    Slice,
)
from ..nn.model import Model
from .calibrate import calibrate_activations
from .qtensor import (
    FixedPointMultiplier,
    QuantParams,
    dequantize,
    quantize,
    quantize_weights_per_channel,
)

__all__ = ["QuantizedModel", "QOp"]


class QOp:
    """One lowered integer operation."""

    def __init__(self, name: str, kind: str, input_uids: list[int],
                 output_uid: int, out_params: QuantParams):
        self.name = name
        self.kind = kind
        self.input_uids = input_uids
        self.output_uid = output_uid
        self.out_params = out_params
        # Filled by specific lowerings:
        self.weight_bytes = 0
        self.bias_bytes = 0
        self.macs_per_inference = 0
        self.q_weights: np.ndarray | None = None
        self.q_bias: np.ndarray | None = None

    def run(self, inputs: list[np.ndarray]) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError


class _Passthrough(QOp):
    """Slice/Flatten/Reshape/Dropout: reindexing only, no arithmetic."""

    def __init__(self, layer, node, out_params, fn):
        super().__init__(layer.name, type(layer).__name__.lower(),
                         [p.uid for p in node.parents], node.uid, out_params)
        self._fn = fn

    def run(self, inputs):
        return self._fn(inputs[0])


class _QMaxPool(QOp):
    def __init__(self, layer: MaxPool1D, node, out_params):
        super().__init__(layer.name, "maxpool1d",
                         [p.uid for p in node.parents], node.uid, out_params)
        self.pool = layer.pool_size
        self.strides = layer.strides

    def run(self, inputs):
        x = inputs[0]
        starts = self.strides * np.arange(
            (x.shape[1] - self.pool) // self.strides + 1
        )
        idx = starts[:, None] + np.arange(self.pool)[None, :]
        return x[:, idx, :].max(axis=2)


class _QConcatenate(QOp):
    """Concatenate with per-input rescaling to the shared output scale."""

    def __init__(self, layer: Concatenate, node, in_params, out_params):
        super().__init__(layer.name, "concatenate",
                         [p.uid for p in node.parents], node.uid, out_params)
        self.axis = layer.axis
        self.in_params = in_params
        self.mults = [
            FixedPointMultiplier.from_real(p.scale / out_params.scale)
            for p in in_params
        ]

    def run(self, inputs):
        from .qtensor import requantize

        rescaled = []
        for x, params, mult in zip(inputs, self.in_params, self.mults):
            centered = x.astype(np.int32) - params.zero_point
            rescaled.append(requantize(centered, mult,
                                       self.out_params.zero_point))
        axis = self.axis if self.axis >= 0 else inputs[0].ndim + self.axis
        return np.concatenate(rescaled, axis=axis)


def _lower_linear(op: QOp, weights, bias, in_params: QuantParams,
                  out_params: QuantParams, channel_axis: int):
    """Shared weight/bias/multiplier preparation for conv and dense."""
    q_w, w_scales = quantize_weights_per_channel(weights, channel_axis)
    op.q_weights = q_w
    op.weight_bytes = q_w.size  # int8
    bias_scales = in_params.scale * w_scales
    if bias is not None:
        q_b = np.rint(np.asarray(bias, dtype=np.float64) / bias_scales)
        op.q_bias = np.clip(q_b, -(2**31), 2**31 - 1).astype(np.int32)
        op.bias_bytes = op.q_bias.size * 4
    else:
        op.q_bias = np.zeros(q_w.shape[channel_axis], dtype=np.int32)
        op.bias_bytes = 0
    op.mults = [
        FixedPointMultiplier.from_real(s / out_params.scale) for s in bias_scales
    ]


def _requantize_per_channel(acc, mults, zero_point):
    from .qtensor import requantize

    out = np.empty(acc.shape, dtype=np.int8)
    for j, mult in enumerate(mults):
        out[..., j] = requantize(acc[..., j], mult, zero_point)
    return out


class _QDense(QOp):
    def __init__(self, layer: Dense, node, in_params, out_params):
        super().__init__(layer.name, "dense",
                         [p.uid for p in node.parents], node.uid, out_params)
        self.in_params = in_params
        self.activation = layer.activation_name
        if self.activation not in (None, "linear", "relu", "sigmoid"):
            raise ValueError(
                f"unsupported dense activation {self.activation!r} for "
                "int8 lowering"
            )
        w = layer.params["W"]
        b = layer.params.get("b")
        if self.activation == "sigmoid":
            # Keep the logit in int8 at a dedicated scale; the sigmoid is
            # evaluated from the dequantized logit (LUT equivalent).
            self.logit_params = out_params
        _lower_linear(self, np.asarray(w, dtype=np.float64),
                      None if b is None else np.asarray(b, dtype=np.float64),
                      in_params, out_params, channel_axis=1)
        self.macs_per_inference = int(w.shape[0] * w.shape[1])

    def run(self, inputs):
        x = inputs[0]
        centered = x.astype(np.int32) - self.in_params.zero_point
        acc = centered.astype(np.int64) @ self.q_weights.astype(np.int64)
        acc = acc + self.q_bias
        out = _requantize_per_channel(acc, self.mults,
                                      self.out_params.zero_point)
        if self.activation == "relu":
            out = np.maximum(out, self.out_params.zero_point)
        return out


class _QConv1D(QOp):
    def __init__(self, layer: Conv1D, node, in_params, out_params):
        super().__init__(layer.name, "conv1d",
                         [p.uid for p in node.parents], node.uid, out_params)
        if layer.padding != "valid" or layer.strides != 1:
            raise ValueError(
                "int8 lowering implements the paper's conv variant: "
                "'valid' padding, stride 1"
            )
        self.in_params = in_params
        self.activation = layer.activation_name
        if self.activation not in (None, "linear", "relu"):
            raise ValueError(
                f"unsupported conv activation {self.activation!r} for int8"
            )
        w = np.asarray(layer.params["W"], dtype=np.float64)  # (k, cin, cout)
        b = layer.params.get("b")
        _lower_linear(self, w,
                      None if b is None else np.asarray(b, dtype=np.float64),
                      in_params, out_params, channel_axis=2)
        self.kernel_size = w.shape[0]
        out_len = node.shape[0]
        self.macs_per_inference = int(out_len * w.shape[0] * w.shape[1]
                                      * w.shape[2])

    def run(self, inputs):
        x = inputs[0]
        k = self.kernel_size
        centered = x.astype(np.int32) - self.in_params.zero_point
        windows = sliding_window_view(centered, k, axis=1)
        windows = np.swapaxes(windows, 2, 3)  # (batch, out_len, k, cin)
        batch, out_len = windows.shape[0], windows.shape[1]
        cols = windows.reshape(batch, out_len, -1).astype(np.int64)
        kernel = self.q_weights.reshape(-1, self.q_weights.shape[2])
        acc = cols @ kernel.astype(np.int64) + self.q_bias
        out = _requantize_per_channel(acc, self.mults,
                                      self.out_params.zero_point)
        if self.activation == "relu":
            out = np.maximum(out, self.out_params.zero_point)
        return out


class QuantizedModel:
    """Integer executor for a converted model."""

    def __init__(self, ops, input_uid, input_params, output_uid,
                 output_op, input_shape, node_shapes):
        self.ops: list[QOp] = ops
        self.input_uid = input_uid
        self.input_params = input_params
        self.output_uid = output_uid
        self._output_op = output_op
        self.input_shape = input_shape
        #: node uid -> per-sample tensor shape (for the RAM planner).
        self.node_shapes = node_shapes

    # ------------------------------------------------------------------
    @classmethod
    def convert(cls, model: Model, calibration_x: np.ndarray) -> "QuantizedModel":
        """Lower a trained float model to int8 using calibration data."""
        act_params = calibrate_activations(model, calibration_x)
        ops: list[QOp] = []
        node_shapes = {model.input_node.uid: model.input_node.shape}
        output_op = None
        for node in model.nodes:
            if node.is_input:
                continue
            node_shapes[node.uid] = node.shape
            layer = node.layer
            in_params = [act_params[p.uid] for p in node.parents]
            out_params = act_params[node.uid]
            if isinstance(layer, (Flatten, Reshape, Dropout, Slice)):
                # Reindexing ops keep their input's quantization exactly.
                fn = {
                    Flatten: lambda x: x.reshape(x.shape[0], -1),
                    Reshape: lambda x, s=getattr(layer, "target_shape", None): (
                        x.reshape((x.shape[0],) + s)
                    ),
                    Dropout: lambda x: x,
                }.get(type(layer))
                if isinstance(layer, Slice):

                    def slice_fn(x, layer=layer):
                        axis = layer._array_axis(x.ndim)
                        idx = [slice(None)] * x.ndim
                        idx[axis] = slice(layer.start, layer.stop)
                        return x[tuple(idx)]

                    fn = slice_fn
                op = _Passthrough(layer, node, in_params[0], fn)
                if isinstance(layer, Slice):
                    op.slice_start = layer.start
                    op.slice_stop = layer.stop
                act_params[node.uid] = in_params[0]
            elif isinstance(layer, MaxPool1D):
                op = _QMaxPool(layer, node, in_params[0])
                act_params[node.uid] = in_params[0]
            elif isinstance(layer, Concatenate):
                op = _QConcatenate(layer, node, in_params, out_params)
            elif isinstance(layer, Dense):
                if layer.activation_name == "sigmoid":
                    # Quantize the *logit*: recover it from the calibrated
                    # probability range via a dedicated logit observer run.
                    logit_params = _logit_params(model, node, calibration_x)
                    op = _QDense(layer, node, in_params[0], logit_params)
                    act_params[node.uid] = logit_params
                    output_op = op
                else:
                    op = _QDense(layer, node, in_params[0], out_params)
            elif isinstance(layer, Conv1D):
                op = _QConv1D(layer, node, in_params[0], out_params)
            else:
                raise ValueError(
                    f"layer {layer.name!r} ({type(layer).__name__}) has no "
                    "int8 lowering"
                )
            ops.append(op)
        return cls(
            ops=ops,
            input_uid=model.input_node.uid,
            input_params=act_params[model.input_node.uid],
            output_uid=model.output_node.uid,
            output_op=output_op,
            input_shape=model.input_shape,
            node_shapes=node_shapes,
        )

    # ------------------------------------------------------------------
    def predict(self, x: np.ndarray, batch_size: int = 512) -> np.ndarray:
        """Float-in / float-out inference through the integer pipeline."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape[1:] != tuple(self.input_shape):
            raise ValueError(
                f"expected per-sample shape {self.input_shape}, got {x.shape[1:]}"
            )
        outs = []
        for start in range(0, len(x), batch_size):
            outs.append(self._predict_batch(x[start : start + batch_size]))
        return np.concatenate(outs) if outs else np.empty((0, 1))

    def _predict_batch(self, x):
        values = {self.input_uid: quantize(x, self.input_params)}
        out_q = None
        for op in self.ops:
            inputs = [values[uid] for uid in op.input_uids]
            values[op.output_uid] = op.run(inputs)
        out_q = values[self.output_uid]
        if self._output_op is not None:
            logits = dequantize(out_q, self._output_op.out_params)
            return 1.0 / (1.0 + np.exp(-logits))
        # No sigmoid head: return dequantized values of the final node.
        final_params = self.ops[-1].out_params
        return dequantize(out_q, final_params)

    # ------------------------------------------------------------------
    @property
    def weight_bytes(self) -> int:
        return sum(op.weight_bytes for op in self.ops)

    @property
    def bias_bytes(self) -> int:
        return sum(op.bias_bytes for op in self.ops)

    @property
    def total_macs(self) -> int:
        return sum(op.macs_per_inference for op in self.ops)


def _logit_params(model: Model, node, calibration_x) -> QuantParams:
    """Observe the pre-sigmoid logit range of the output dense layer."""
    from .qtensor import activation_qparams

    layer = node.layer
    lo, hi = np.inf, -np.inf
    for start in range(0, len(calibration_x), 256):
        batch = np.asarray(calibration_x[start : start + 256], dtype=np.float32)
        model._forward(batch, training=False)
        parent_value = model._values[node.parents[0].uid]
        z = parent_value @ layer.params["W"]
        if "b" in layer.params:
            z = z + layer.params["b"]
        lo = min(lo, float(z.min()))
        hi = max(hi, float(z.max()))
    return activation_qparams(lo, hi)
