"""Quant-path benchmark: float32 vs int8 vs int8+pruned serving.

Trains the paper's CNN at the configured experiment scale, converts it
to int8 (and to a structurally pruned + fine-tuned + quantized variant),
then serves the same synthetic fleet through
:class:`~repro.serve.ServeEngine` once per backend arm and reports:

* wall-clock and inference-stage timings per arm (the acceptance gate is
  on the inference stage — that is what the integer kernels buy);
* event-level sensitivity of each arm on the faults-fleet clean replay,
  the paper's "performance remains unchanged after quantization" claim;
* the deployed-arithmetic contract checks (fast path bit-identical to
  the reference lowering, bitwise batch invariance);
* per-op MAC / weight-byte tables and the edge cost model's verdict for
  the quantized and pruned models, so the pruning reduction is visible
  end to end.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.detector import DetectorConfig
from ..obs import get_logger, get_registry
from .prune import fine_tune, structured_prune
from .qmodel import QuantizedModel

__all__ = ["QuantBenchConfig", "run_quant_benchmark", "render_quant_report"]

_logger = get_logger(__name__)

#: Backend arms, in presentation order.
_ARMS = ("float32", "int8", "int8_pruned")


@dataclass(frozen=True)
class QuantBenchConfig:
    """Workload shape for :func:`run_quant_benchmark`."""

    n_streams: int = 32
    duration_s: float = 8.0
    seed: int = 7
    #: Fraction of Conv1D filters removed by structured pruning.
    prune_fraction: float = 0.5
    #: Recovery epochs after structured pruning.
    fine_tune_epochs: int = 2
    #: Training epochs cap (like ``repro profile``, keeps it interactive).
    max_epochs: int = 4
    #: Event-level sensitivity must match float32 within this many
    #: percentage points for each integer arm.
    sensitivity_tolerance_pp: float = 20.0
    #: Calibration windows taken from the training set.
    calibration_windows: int = 256
    #: Timed replays per arm; the minimum is reported (min-of-reps is
    #: the standard defence against scheduler noise on a busy box).
    reps: int = 3
    detector: DetectorConfig = field(default_factory=DetectorConfig)

    def __post_init__(self):
        if self.n_streams < 1:
            raise ValueError("n_streams must be >= 1")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if not 0.0 <= self.prune_fraction < 1.0:
            raise ValueError("prune_fraction must be in [0, 1)")


def _train_model(scale, config: QuantBenchConfig):
    """Short subject-disjoint training run (mirrors the faults runner)."""
    from ..core.architecture import build_lightweight_cnn
    from ..core.trainer import train_model
    from ..experiments.runners import (
        _segments_for,
        build_experiment_dataset,
        training_config,
    )

    window_ms = 1000.0 * config.detector.window_samples / config.detector.fs
    dataset = build_experiment_dataset(scale)
    segments = _segments_for(dataset, window_ms, 0.5)
    subjects = list(segments.subjects)
    if len(subjects) < 3:
        raise ValueError("quant benchmark needs >= 3 subjects")
    train = segments.by_subjects(subjects[:-2])
    val = segments.by_subjects([subjects[-2]])
    tc = training_config(
        scale,
        epochs=min(scale.epochs, config.max_epochs),
        patience=min(scale.patience, config.max_epochs),
    )
    model, _ = train_model(build_lightweight_cnn, train, val, tc)
    return model, train


def _contract_checks(quantized: QuantizedModel, probe: np.ndarray) -> dict:
    """The deployed-arithmetic contract on a probe batch: the fast path
    must be bit-identical to the reference lowering and bitwise
    batch-invariant."""
    fast = quantized.predict(probe)
    reference = quantized.predict_reference(probe)
    solo = np.concatenate(
        [quantized.predict(probe[i : i + 1]) for i in range(len(probe))]
    )
    return {
        "bit_identical": bool(np.array_equal(fast, reference)),
        "batch_invariant": bool(np.array_equal(fast, solo)),
    }


def _run_arm(model, backend: str, streams, config: QuantBenchConfig) -> dict:
    """Replay the synthetic fleet through one engine arm."""
    from ..obs.metrics import MetricsRegistry
    from ..serve.engine import ServeConfig, ServeEngine

    engine = ServeEngine(
        model,
        ServeConfig(detector=config.detector, backend=backend),
        registry=MetricsRegistry(),
    )
    hop = config.detector.hop_samples
    n = max(len(t) for _, _, t in streams.values())
    detections = 0
    t0 = time.perf_counter()
    for i in range(n):
        for stream_id, (accel, gyro, t) in streams.items():
            if i < len(t):
                engine.submit(stream_id, accel[i], gyro[i], t[i])
        if (i + 1) % hop == 0:
            detections += len(engine.step())
    detections += len(engine.step())
    wall_s = time.perf_counter() - t0
    report = engine.report()
    return {
        "backend": backend,
        "wall_s": wall_s,
        "inference_s": engine.inference_seconds,
        "windows_inferred": report["windows_inferred"],
        "batches": report["batches"],
        "mean_batch_size": report["batch_size"]["mean"],
        "detections": detections,
    }


def _sensitivity(scale, model, config: QuantBenchConfig) -> dict:
    """Clean-replay event verdicts on the faults fleet for one arm."""
    from ..experiments.faults_runner import run_fault_scenarios

    window_ms = 1000.0 * config.detector.window_samples / config.detector.fs
    results = run_fault_scenarios(
        scale, scenarios=[], model=model, window_ms=window_ms,
    )
    clean = results["clean"]
    return {
        "sensitivity": clean["sensitivity"],
        "falls_detected": clean["falls_detected"],
        "falls": clean["falls"],
        "false_alarm_rate": clean["false_alarm_rate"],
    }


def run_quant_benchmark(
    config: QuantBenchConfig | None = None, scale=None
) -> dict:
    """Benchmark the three serving backends; returns a report dict."""
    from ..edge import deployment_report
    from ..experiments import get_scale
    from ..serve.bench import ServeBenchConfig, synth_stream

    config = config or QuantBenchConfig()
    scale = scale or get_scale()

    model, train = _train_model(scale, config)
    calibration = train.X[: config.calibration_windows].astype(np.float32)
    quantized = QuantizedModel.convert(model, calibration)

    pruned, prune_report = structured_prune(model, config.prune_fraction)
    pruned.compile("adam", "binary_crossentropy")
    # Same class weighting as the original training run — without it the
    # recovery epochs drift toward the majority (ADL) class and give the
    # sensitivity back.
    from ..core.trainer import class_weights

    weights = class_weights(train.y)
    sample_weight = np.array(
        [weights.get(int(label), 1.0) for label in train.y.astype(int)]
    )
    fine_tune(
        pruned,
        train.X,
        train.y.astype(float)[:, None],
        epochs=config.fine_tune_epochs,
        batch_size=scale.batch_size,
        sample_weight=sample_weight,
        seed=scale.seed,
    )
    quantized_pruned = QuantizedModel.convert(pruned, calibration)

    probe = calibration[:32]
    contracts = {
        "int8": _contract_checks(quantized, probe),
        "int8_pruned": _contract_checks(quantized_pruned, probe),
    }

    stream_cfg = ServeBenchConfig(
        n_streams=config.n_streams,
        duration_s=config.duration_s,
        seed=config.seed,
        detector=config.detector,
    )
    streams = {
        f"s{idx:03d}": synth_stream(idx, stream_cfg)
        for idx in range(config.n_streams)
    }
    arm_models = {
        "float32": model,
        "int8": quantized,
        "int8_pruned": quantized_pruned,
    }
    arm_backends = {
        "float32": "float32",
        "int8": "int8",
        "int8_pruned": "int8",
    }
    # Interleave the arms across reps (A B C, A B C, ...) and keep each
    # arm's fastest replay, so a slow patch of the box cannot punish one
    # arm systematically.
    arms = {}
    for _ in range(max(1, config.reps)):
        for arm in _ARMS:
            run = _run_arm(arm_models[arm], arm_backends[arm], streams,
                           config)
            best = arms.get(arm)
            if best is None or run["inference_s"] < best["inference_s"]:
                arms[arm] = run
    registry = get_registry()
    for arm in _ARMS:
        arms[arm]["sensitivity"] = _sensitivity(scale, arm_models[arm],
                                                config)
        # The quant/ grammar is bounded: arms are the fixed trio above.
        registry.gauge(f"quant/{arm}/inference_ms").set(
            1000.0 * arms[arm]["inference_s"])
        _logger.info(
            "quant-bench arm %s: inference %.3f s, wall %.3f s, "
            "sensitivity %.1f%%",
            arm, arms[arm]["inference_s"], arms[arm]["wall_s"],
            arms[arm]["sensitivity"]["sensitivity"],
        )

    float_infer = arms["float32"]["inference_s"]
    int8_infer = arms["int8"]["inference_s"]
    pruned_infer = arms["int8_pruned"]["inference_s"]
    report = {
        "config": {
            "n_streams": config.n_streams,
            "duration_s": config.duration_s,
            "seed": config.seed,
            "prune_fraction": config.prune_fraction,
            "fine_tune_epochs": config.fine_tune_epochs,
            "sensitivity_tolerance_pp": config.sensitivity_tolerance_pp,
            "scale": scale.name,
        },
        "arms": arms,
        "contracts": contracts,
        "int8_speedup": float_infer / int8_infer if int8_infer else 0.0,
        "pruned_speedup_vs_int8": (int8_infer / pruned_infer
                                   if pruned_infer else 0.0),
        "prune": {
            "fraction": config.prune_fraction,
            "filters": prune_report.filters,
            "params_before": prune_report.params_before,
            "params_after": prune_report.params_after,
        },
        "models": {
            "int8": {
                "macs": quantized.total_macs,
                "weight_bytes": quantized.weight_bytes,
                "table": quantized.lowered_table(),
                "edge": deployment_report(
                    quantized, fs=config.detector.fs,
                    hop_samples=config.detector.hop_samples),
            },
            "int8_pruned": {
                "macs": quantized_pruned.total_macs,
                "weight_bytes": quantized_pruned.weight_bytes,
                "table": quantized_pruned.lowered_table(),
                "edge": deployment_report(
                    quantized_pruned, fs=config.detector.fs,
                    hop_samples=config.detector.hop_samples),
            },
        },
    }
    registry.gauge("quant/int8_speedup").set(report["int8_speedup"])
    registry.gauge("quant/pruned_speedup_vs_int8").set(
        report["pruned_speedup_vs_int8"])
    return report


def _op_table_lines(table: list[dict]) -> list[str]:
    lines = [f"  {'op':18s}{'kind':14s}{'macs':>10s}{'weight B':>10s}"]
    for row in table:
        lines.append(
            f"  {row['name']:18s}{row['kind']:14s}"
            f"{row['macs']:>10d}{row['weight_bytes']:>10d}"
        )
    return lines


def render_quant_report(report: dict) -> str:
    """Human-readable quant-bench summary (callers decide where it goes)."""
    cfg = report["config"]
    arms = report["arms"]
    lines = [
        "quant-bench: float32 vs int8 vs int8+pruned serving",
        "=" * 51,
        f"streams              : {cfg['n_streams']}",
        f"duration             : {cfg['duration_s']:.1f} s "
        f"(seed {cfg['seed']}, scale {cfg['scale']})",
        f"pruning              : {cfg['prune_fraction']:.0%} of conv "
        f"filters, {cfg['fine_tune_epochs']} fine-tune epochs",
        "",
        f"{'arm':14s}{'infer s':>10s}{'wall s':>10s}{'windows':>9s}"
        f"{'sens %':>8s}{'fa %':>7s}",
    ]
    for arm in _ARMS:
        a = arms[arm]
        s = a["sensitivity"]
        lines.append(
            f"{arm:14s}{a['inference_s']:>10.3f}{a['wall_s']:>10.3f}"
            f"{a['windows_inferred']:>9d}"
            f"{s['sensitivity']:>8.1f}{s['false_alarm_rate']:>7.1f}"
        )
    lines += [
        "",
        f"int8 inference speedup vs float32   : "
        f"{report['int8_speedup']:.2f}x",
        f"pruned inference speedup vs int8    : "
        f"{report['pruned_speedup_vs_int8']:.2f}x",
        "",
        "deployed-arithmetic contract:",
    ]
    for name, checks in report["contracts"].items():
        lines.append(
            f"  {name:14s} bit-identical={checks['bit_identical']}  "
            f"batch-invariant={checks['batch_invariant']}"
        )
    prune = report["prune"]
    kept = ", ".join(f"{k} {o}->{n}" for k, (o, n) in prune["filters"].items())
    lines += [
        "",
        f"structured pruning: {kept}",
        f"params: {prune['params_before']} -> {prune['params_after']}",
        "",
    ]
    for name in ("int8", "int8_pruned"):
        info = report["models"][name]
        edge = info["edge"]
        lines.append(
            f"{name}: {info['macs']} MACs, {info['weight_bytes']} weight "
            f"bytes; edge latency {edge['latency_ms']:.3f} ms, flash "
            f"{edge['flash_kib']:.1f} KiB, real-time margin "
            f"{edge['real_time_margin']:.1f}x"
        )
        lines.extend(_op_table_lines(info["table"]))
        lines.append("")
    return "\n".join(lines)
