"""The activity catalogue (Table II of the paper).

44 tasks: 23 ADLs and 21 fall types.  Tasks 1–19 and 35–36 (ADLs) plus
20–34 (falls) form the KFall subset (21 ADLs / 15 falls); the self-collected
dataset adds construction-site ADLs 43–44 and falls 37–42 (falls from
height, ladder falls, backward falls while moving back), matching the
paper's 23 ADLs / 21 falls.

Each task carries the parameters its signal generator needs
(:mod:`repro.datasets.synthesis.generator`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "TaskSpec",
    "TASKS",
    "KFALL_TASK_IDS",
    "SELF_COLLECTED_TASK_IDS",
    "RED_ADL_IDS",
    "GREEN_ADL_IDS",
    "adl_ids",
    "fall_ids",
    "get_task",
]


@dataclass(frozen=True)
class TaskSpec:
    """One catalogue entry.

    Attributes
    ----------
    task_id / description:
        Table II numbering and text.
    kind:
        ``"ADL"`` or ``"FALL"``.
    generator:
        Key into the synthesis dispatch table.
    params:
        Generator-specific parameters.
    duration_s:
        Nominal trial duration (scaled down in quick configurations).
    in_kfall:
        Whether the task exists in the KFall dataset.
    """

    task_id: int
    description: str
    kind: str
    generator: str
    params: dict = field(default_factory=dict)
    duration_s: float = 12.0
    in_kfall: bool = True

    @property
    def is_fall(self) -> bool:
        return self.kind == "FALL"


def _adl(tid, desc, gen, params=None, duration=12.0, kfall=True):
    return TaskSpec(tid, desc, "ADL", gen, params or {}, duration, kfall)


def _fall(tid, desc, params=None, duration=10.0, kfall=True):
    return TaskSpec(tid, desc, "FALL", "fall", params or {}, duration, kfall)


_TASK_LIST = [
    _adl(1, "Stand for 30 seconds", "static", {"posture": "stand"}, 30.0),
    _adl(2, "Stand, slowly bend, tie shoe lace, and get up", "bend",
         {"variant": "tie_shoe"}, 14.0),
    _adl(3, "Pick up an object from the floor", "bend", {"variant": "pickup"}, 10.0),
    _adl(4, "Gently jump (try to reach an object)", "jump", {}, 10.0),
    _adl(5, "Stand, sit to the ground, wait a moment, and get up with normal speed",
         "sit_ground", {}, 16.0),
    _adl(6, "Walk normally with turn", "walk", {"speed": "normal", "turn": True}, 15.0),
    _adl(7, "Walk quickly with turn", "walk", {"speed": "quick", "turn": True}, 13.0),
    _adl(8, "Jog normally with turn", "jog", {"speed": "normal"}, 13.0),
    _adl(9, "Jog quickly with turn", "jog", {"speed": "quick"}, 12.0),
    _adl(10, "Stumble with obstacle while walking", "walk",
         {"speed": "normal", "stumble": True}, 13.0),
    _adl(11, "Sit on a chair for 30 seconds", "static", {"posture": "sit"}, 30.0),
    _adl(12, "Walk downstairs normally", "stairs",
         {"direction": "down", "speed": "normal"}, 14.0),
    _adl(13, "Sit down to a chair normally, and get up from a chair normally",
         "chair", {"speed": "normal"}, 14.0),
    _adl(14, "Sit down to a chair quickly, and get up from a chair quickly",
         "chair", {"speed": "quick"}, 11.0),
    _adl(15, "Sit a moment, trying to get up, and collapse into a chair",
         "chair", {"speed": "normal", "collapse": True}, 14.0),
    _adl(16, "Walk downstairs quickly", "stairs",
         {"direction": "down", "speed": "quick"}, 12.0),
    _adl(17, "Lie on the floor for 30 seconds", "static", {"posture": "lie"}, 30.0),
    _adl(18, "Sit a moment, lie down to the floor normally, and get up normally",
         "lie_floor", {"speed": "normal"}, 18.0),
    _adl(19, "Sit a moment, lie down to the floor quickly, and get up quickly",
         "lie_floor", {"speed": "quick"}, 14.0),
    _fall(20, "Forward fall when trying to sit down",
          {"start": "stand_to_sit", "direction": "forward"}),
    _fall(21, "Backward fall when trying to sit down",
          {"start": "stand_to_sit", "direction": "backward"}),
    _fall(22, "Lateral fall when trying to sit down",
          {"start": "stand_to_sit", "direction": "lateral"}),
    _fall(23, "Forward fall when trying to get up",
          {"start": "sit", "direction": "forward"}),
    _fall(24, "Lateral fall when trying to get up",
          {"start": "sit", "direction": "lateral"}),
    _fall(25, "Forward fall while sitting, caused by fainting",
          {"start": "sit", "direction": "forward", "cause": "faint"}),
    _fall(26, "Lateral fall while sitting, caused by fainting",
          {"start": "sit", "direction": "lateral", "cause": "faint"}),
    _fall(27, "Backward fall while sitting, caused by fainting",
          {"start": "sit", "direction": "backward", "cause": "faint"}),
    _fall(28, "Vertical (forward) fall while walking caused by fainting",
          {"start": "walk", "direction": "vertical", "cause": "faint"}),
    _fall(29, "Fall while walking, use of hands to dampen fall, caused by fainting",
          {"start": "walk", "direction": "forward", "cause": "faint",
           "hands_damp": True}),
    _fall(30, "Forward fall while walking caused by a trip",
          {"start": "walk", "direction": "forward", "cause": "trip"}),
    _fall(31, "Forward fall while jogging caused by a trip",
          {"start": "jog", "direction": "forward", "cause": "trip"}),
    _fall(32, "Forward fall while walking caused by a slip",
          {"start": "walk", "direction": "forward", "cause": "slip"}),
    _fall(33, "Lateral fall while walking caused by a slip",
          {"start": "walk", "direction": "lateral", "cause": "slip"}),
    _fall(34, "Backward fall while walking caused by a slip",
          {"start": "walk", "direction": "backward", "cause": "slip"}),
    _adl(35, "Walk upstairs normally", "stairs",
         {"direction": "up", "speed": "normal"}, 14.0),
    _adl(36, "Walk upstairs quickly", "stairs",
         {"direction": "up", "speed": "quick"}, 12.0),
    _fall(37, "Backward fall while slowly moving back",
          {"start": "move_back", "direction": "backward", "speed": "slow"},
          kfall=False),
    _fall(38, "Backward fall while quickly moving back",
          {"start": "move_back", "direction": "backward", "speed": "quick"},
          kfall=False),
    _fall(39, "Forward fall from height",
          {"start": "height", "direction": "forward"}, kfall=False),
    _fall(40, "Backward fall from height",
          {"start": "height", "direction": "backward"}, kfall=False),
    _fall(41, "Backward fall while trying to climb up the ladder",
          {"start": "ladder", "direction": "backward", "phase": "up"}, kfall=False),
    _fall(42, "Backward fall while trying to climb down the ladder",
          {"start": "ladder", "direction": "backward", "phase": "down"}, kfall=False),
    _adl(43, "Climb up and climb down the stairs", "stairs",
         {"direction": "both", "speed": "normal"}, 20.0, kfall=False),
    _adl(44, "Walk slowly and jump over the obstacle", "walk",
         {"speed": "slow", "obstacle_jump": True}, 14.0, kfall=False),
]

#: task_id -> TaskSpec for the whole catalogue.
TASKS: dict[int, TaskSpec] = {spec.task_id: spec for spec in _TASK_LIST}

#: Tasks present in the KFall dataset (21 ADLs + 15 falls).
KFALL_TASK_IDS: tuple[int, ...] = tuple(
    sorted(tid for tid, spec in TASKS.items() if spec.in_kfall)
)

#: Tasks in the self-collected dataset (all 44: 23 ADLs + 21 falls).
SELF_COLLECTED_TASK_IDS: tuple[int, ...] = tuple(sorted(TASKS))

#: ADLs Table IV marks "red": unconventional for the populations that would
#: wear the airbag (vigorous/dynamic activities).  The paper's figure colours
#: are not machine-readable, so this follows its description — dynamic,
#: rarely performed by elderly people or workers in risky spots.
RED_ADL_IDS: frozenset[int] = frozenset({4, 8, 9, 10, 14, 15, 16, 19, 36, 43, 44})

#: The remaining, everyday ("green") ADLs.
GREEN_ADL_IDS: frozenset[int] = frozenset(
    tid for tid, spec in TASKS.items() if spec.kind == "ADL"
) - RED_ADL_IDS


def adl_ids() -> list[int]:
    """All ADL task ids, ascending."""
    return sorted(tid for tid, spec in TASKS.items() if spec.kind == "ADL")


def fall_ids() -> list[int]:
    """All fall task ids, ascending."""
    return sorted(tid for tid, spec in TASKS.items() if spec.kind == "FALL")


def get_task(task_id: int) -> TaskSpec:
    """Look up a task; raises ``KeyError`` with the valid range on miss."""
    try:
        return TASKS[task_id]
    except KeyError:
        raise KeyError(
            f"unknown task id {task_id}; catalogue covers 1..{max(TASKS)}"
        ) from None
