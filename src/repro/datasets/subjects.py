"""Subject models.

Each synthetic participant gets anthropometrics drawn from the populations
the paper reports (self-collected: 29 subjects, mean age 23.5 ± 6.3 y,
mass 71.5 ± 13.2 kg, height 178 ± 8 cm; KFall: 32 young adults) plus a
*movement style* — per-subject multipliers that make every subject's gait
cadence, vigour, sway and sensor noise slightly different.  Style is what
makes subject-independent cross-validation meaningful on synthetic data:
a model can overfit one subject's style and be punished on held-out ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SubjectProfile", "make_subjects"]


@dataclass(frozen=True)
class SubjectProfile:
    """One participant and their movement style.

    Style multipliers are all centred on 1.0:

    * ``cadence`` — step frequency scale;
    * ``vigor`` — amplitude of dynamic accelerations;
    * ``sway`` — postural sway amplitude;
    * ``smoothness`` — larger = slower, smoother transitions;
    * ``reaction`` — scales fall duration (slower subjects fall longer);
    * ``noise`` — sensor mounting/artefact noise scale.
    """

    subject_id: str
    sex: str
    age: float
    height_cm: float
    mass_kg: float
    cadence: float
    vigor: float
    sway: float
    smoothness: float
    reaction: float
    noise: float

    @property
    def seed_key(self) -> str:
        return self.subject_id


def make_subjects(
    prefix: str,
    count: int,
    seed: int,
    female_fraction: float = 0.17,
    age_mean: float = 23.5,
    age_std: float = 6.3,
    height_mean: float = 178.0,
    height_std: float = 8.0,
    mass_mean: float = 71.5,
    mass_std: float = 13.2,
) -> list[SubjectProfile]:
    """Draw ``count`` subjects deterministically from ``seed``.

    Defaults reproduce the self-collected cohort statistics; the KFall
    builder overrides the demographics.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    rng = np.random.default_rng(seed)
    subjects = []
    for i in range(count):
        sex = "F" if rng.random() < female_fraction else "M"
        style = rng.lognormal(mean=0.0, sigma=0.22, size=6)
        subjects.append(
            SubjectProfile(
                subject_id=f"{prefix}{i + 1:02d}",
                sex=sex,
                age=float(np.clip(rng.normal(age_mean, age_std), 18.0, 65.0)),
                height_cm=float(np.clip(rng.normal(height_mean, height_std), 150, 205)),
                mass_kg=float(np.clip(rng.normal(mass_mean, mass_std), 45, 120)),
                cadence=float(style[0]),
                vigor=float(style[1]),
                sway=float(style[2]),
                smoothness=float(style[3]),
                reaction=float(style[4]),
                noise=float(style[5]),
            )
        )
    return subjects
