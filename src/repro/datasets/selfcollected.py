"""Synthetic stand-in for the paper's self-collected (Protechto) dataset.

29 subjects (24 M / 5 F, 23.5 ± 6.3 y, 71.5 ± 13.2 kg, 178 ± 8 cm), all 44
tasks of Table II including the construction-site additions (falls from
height, ladder falls, obstacle jumping).  Data is delivered in the
canonical frame in g / deg/s — this dataset *defines* the target frame the
KFall data is aligned to.
"""

from __future__ import annotations

from .schema import CANONICAL_FRAME, Dataset
from .subjects import make_subjects
from .synthesis.generator import synthesize_recording
from .tasks import SELF_COLLECTED_TASK_IDS, TASKS

__all__ = ["build_selfcollected"]


def build_selfcollected(
    n_subjects: int = 29,
    trials_per_task: int = 1,
    duration_scale: float = 1.0,
    fs: float = 100.0,
    seed: int = 2002,
    task_ids=None,
) -> Dataset:
    """Generate the self-collected-like dataset (canonical frame, g units)."""
    if n_subjects < 1 or trials_per_task < 1:
        raise ValueError("n_subjects and trials_per_task must be >= 1")
    ids = tuple(task_ids) if task_ids is not None else SELF_COLLECTED_TASK_IDS
    subjects = make_subjects("SC", n_subjects, seed=seed, female_fraction=5 / 29)
    recordings = []
    for subject in subjects:
        for tid in ids:
            for trial in range(trials_per_task):
                recordings.append(
                    synthesize_recording(
                        TASKS[tid], subject, trial=trial, fs=fs,
                        duration_scale=duration_scale, base_seed=seed,
                        dataset="selfcollected",
                    )
                )
    return Dataset("selfcollected", recordings, frame=CANONICAL_FRAME)
