"""Dataset alignment: Rodrigues rotation + unit standardisation.

Replicates Section IV-A of the paper: "since both datasets use identical
sensor placements but not orientation, it was necessary to align the
sensor orientations of the KFall dataset with our own ... using a rotation
matrix computed through Rodrigues' rotation formula.  Additionally, we
standardized the units of measurement across both datasets, converting all
values to gravitational acceleration (g)."

The rotation is *estimated from the data itself*: during quiet standing the
accelerometer measures pure gravity, so the mean low-motion acceleration
direction of the standing task, compared with the canonical "up" axis,
gives the frame rotation via :func:`repro.signal.rotation.rotation_between`.
"""

from __future__ import annotations

import numpy as np

from ..signal.orientation import ComplementaryFilter
from ..signal.rotation import rotation_between, rotate_vectors
from ..signal.units import accel_to_g, gyro_to_dps
from .schema import CANONICAL_FRAME, Dataset, Recording

__all__ = [
    "estimate_gravity_direction",
    "estimate_frame_rotation",
    "align_recording",
    "align_dataset",
]

#: Canonical "up": gravity reaction measured during quiet standing.
_CANONICAL_UP = np.array([0.0, 0.0, 1.0])


def estimate_gravity_direction(
    dataset: Dataset, standing_task_id: int = 1, quantile: float = 0.2
) -> np.ndarray:
    """Mean unit gravity direction over the stillest standing samples.

    Takes the standing trials (task 1), keeps the ``quantile`` of samples
    with the least acceleration-magnitude deviation (the quietest ones),
    and averages their direction.  Works in any acceleration unit since
    only the direction matters.
    """
    samples = []
    for rec in dataset:
        if rec.task_id != standing_task_id:
            continue
        mag = np.linalg.norm(rec.accel, axis=1)
        dev = np.abs(mag - np.median(mag))
        keep = dev <= np.quantile(dev, quantile)
        samples.append(rec.accel[keep])
    if not samples:
        raise ValueError(
            f"dataset {dataset.name!r} has no recordings of standing task "
            f"{standing_task_id}; cannot estimate its frame"
        )
    stacked = np.concatenate(samples, axis=0)
    mean = stacked.mean(axis=0)
    norm = np.linalg.norm(mean)
    if norm == 0:
        raise ValueError("degenerate gravity estimate (zero mean acceleration)")
    return mean / norm


def estimate_frame_rotation(dataset: Dataset, standing_task_id: int = 1) -> np.ndarray:
    """Rotation matrix taking the dataset's frame onto the canonical frame."""
    gravity = estimate_gravity_direction(dataset, standing_task_id)
    return rotation_between(gravity, _CANONICAL_UP)


def align_recording(
    recording: Recording, rotation: np.ndarray, fs: float | None = None
) -> Recording:
    """Rotate + unit-convert one recording into the canonical frame.

    Euler angles are recomputed with the complementary filter in the new
    frame (rotating the angle triplet itself would be wrong — Euler angles
    do not transform linearly).
    """
    accel = rotate_vectors(rotation, accel_to_g(recording.accel,
                                                recording.accel_unit))
    gyro = rotate_vectors(rotation, gyro_to_dps(recording.gyro,
                                                recording.gyro_unit))
    euler = ComplementaryFilter(fs=fs or recording.fs).process(accel, gyro)
    return recording.with_signals(
        accel=accel,
        gyro=gyro,
        euler=euler,
        frame=CANONICAL_FRAME,
        accel_unit="g",
        gyro_unit="deg/s",
    )


def align_dataset(
    dataset: Dataset, rotation: np.ndarray | None = None,
    standing_task_id: int = 1,
) -> Dataset:
    """Align a whole dataset to the canonical frame.

    If ``rotation`` is omitted it is estimated from the data
    (:func:`estimate_frame_rotation`).  Already-canonical datasets pass
    through with only unit checks.
    """
    if dataset.frame == CANONICAL_FRAME and rotation is None:
        return dataset
    if rotation is None:
        rotation = estimate_frame_rotation(dataset, standing_task_id)
    aligned = [align_recording(rec, rotation) for rec in dataset]
    return Dataset(dataset.name, aligned, frame=CANONICAL_FRAME)
