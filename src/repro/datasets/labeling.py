"""Label policy: which samples count as "falling".

The paper's key training decision: the falling phase runs from the
annotated onset to the impact, but **the last 150 ms before impact are
withheld** — that is the airbag inflation time, so a detection inside that
window is operationally useless.  Samples from that withheld window and
from the impact transient itself are *excluded* (they are neither usable
falling evidence nor honest ADL negatives); post-fall lying is a normal
negative, like any other lying activity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .schema import Recording

__all__ = ["LabelPolicy", "sample_labels"]


@dataclass(frozen=True)
class LabelPolicy:
    """How per-sample labels are derived from fall annotations.

    Attributes
    ----------
    airbag_ms:
        Pre-impact truncation (150 ms in the paper — the airbag needs that
        long to reach full extension).  Set to 0 for the "no truncation"
        ablation.
    exclude_impact_ms:
        Width of the exclusion zone *after* impact covering the impact
        transient.
    """

    airbag_ms: float = 150.0
    exclude_impact_ms: float = 400.0

    def __post_init__(self):
        if self.airbag_ms < 0 or self.exclude_impact_ms < 0:
            raise ValueError("label policy durations must be non-negative")


def sample_labels(
    recording: Recording, policy: LabelPolicy | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Per-sample ``(labels, valid)`` arrays for one recording.

    ``labels[i] == 1`` while the subject is falling (usable pre-impact
    evidence), 0 otherwise.  ``valid[i] == False`` marks the excluded zone
    (withheld 150 ms + impact transient) whose samples must not reach
    either training or evaluation segments.
    """
    policy = policy or LabelPolicy()
    n = recording.n_samples
    labels = np.zeros(n, dtype=int)
    valid = np.ones(n, dtype=bool)
    if not recording.is_fall:
        return labels, valid
    onset = int(recording.fall_onset)
    impact = int(recording.impact)
    airbag = int(round(policy.airbag_ms * recording.fs / 1000.0))
    exclude_after = int(round(policy.exclude_impact_ms * recording.fs / 1000.0))
    usable_end = max(impact - airbag, onset)
    labels[onset:usable_end] = 1
    valid[usable_end : min(impact + exclude_after, n)] = False
    return labels, valid
