"""Dataset sanity validation.

When real recordings replace the synthetic corpora (the intended adoption
path), silent data problems — wrong units, swapped channels, inverted
gravity, broken annotations — poison everything downstream.
``validate_dataset`` checks the physical invariants every recording must
satisfy and returns a structured report instead of failing late inside
training.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .schema import Dataset, Recording

__all__ = ["ValidationIssue", "ValidationReport", "validate_recording",
           "validate_dataset"]


@dataclass(frozen=True)
class ValidationIssue:
    """One detected problem."""

    recording: str
    severity: str  # "error" | "warning"
    code: str
    message: str


@dataclass
class ValidationReport:
    """All issues found plus headline counts."""

    issues: list[ValidationIssue] = field(default_factory=list)
    recordings_checked: int = 0

    @property
    def errors(self) -> list[ValidationIssue]:
        return [i for i in self.issues if i.severity == "error"]

    @property
    def warnings(self) -> list[ValidationIssue]:
        return [i for i in self.issues if i.severity == "warning"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def summary(self) -> str:
        return (f"{self.recordings_checked} recordings checked: "
                f"{len(self.errors)} errors, {len(self.warnings)} warnings")


def _check(issues, recording, condition, severity, code, message):
    if not condition:
        issues.append(ValidationIssue(recording.event_id, severity, code,
                                      message))


def validate_recording(recording: Recording,
                       expect_g_units: bool = True) -> list[ValidationIssue]:
    """Physical sanity checks for one recording.

    With ``expect_g_units`` the acceleration is assumed aligned/converted
    (median magnitude ≈ 1 g); pass ``False`` for raw foreign-frame data.
    """
    issues: list[ValidationIssue] = []
    n = recording.n_samples
    _check(issues, recording, n >= 10, "error", "too-short",
           f"only {n} samples")
    _check(issues, recording, recording.fs > 0, "error", "bad-rate",
           f"fs={recording.fs}")
    for name, arr in (("accel", recording.accel), ("gyro", recording.gyro),
                      ("euler", recording.euler)):
        _check(issues, recording, np.isfinite(arr).all(), "error",
               f"nonfinite-{name}", f"{name} contains NaN/inf")
        _check(issues, recording, float(np.abs(arr).max()) > 0, "warning",
               f"flat-{name}", f"{name} is identically zero")

    if expect_g_units and recording.accel_unit == "g":
        mag = np.linalg.norm(recording.accel, axis=1)
        median = float(np.median(mag))
        _check(issues, recording, 0.7 <= median <= 1.3, "error",
               "gravity-scale",
               f"median |accel| = {median:.2f} g (wrong units or frame?)")
        _check(issues, recording, mag.max() < 20.0, "warning",
               "accel-clip", f"|accel| peaks at {mag.max():.1f} g")

    gyro_peak = float(np.abs(recording.gyro).max())
    if recording.gyro_unit == "deg/s":
        _check(issues, recording, gyro_peak < 4000.0, "warning",
               "gyro-range", f"gyro peaks at {gyro_peak:.0f} deg/s")
        # rad/s data mislabelled as deg/s is suspiciously quiet.
        if recording.n_samples > 100 and gyro_peak > 0:
            _check(issues, recording, gyro_peak > 0.5, "warning",
                   "gyro-quiet",
                   f"gyro peak {gyro_peak:.3f} deg/s — rad/s mislabelled?")

    if recording.is_fall:
        onset, impact = recording.fall_onset, recording.impact
        _check(issues, recording, impact - onset >= 2, "error",
               "degenerate-fall",
               f"falling phase spans {impact - onset} samples")
        duration_ms = (impact - onset) * 1000.0 / recording.fs
        _check(issues, recording, 100.0 <= duration_ms <= 2000.0, "warning",
               "fall-duration",
               f"falling phase {duration_ms:.0f} ms outside 100-2000 ms")
        mag = np.linalg.norm(recording.accel, axis=1)
        if recording.accel_unit == "g" and expect_g_units:
            window = mag[impact: impact + int(0.3 * recording.fs)]
            _check(issues, recording,
                   window.size == 0 or window.max() >= 1.5, "warning",
                   "weak-impact",
                   f"no impact transient after the annotated impact "
                   f"(peak {window.max() if window.size else 0:.2f} g)")
    return issues


def validate_dataset(dataset: Dataset,
                     expect_g_units: bool | None = None) -> ValidationReport:
    """Validate every recording; never raises, always reports."""
    if expect_g_units is None:
        expect_g_units = dataset.frame == "canonical"
    report = ValidationReport()
    for recording in dataset:
        report.issues.extend(validate_recording(recording, expect_g_units))
        report.recordings_checked += 1
    return report
