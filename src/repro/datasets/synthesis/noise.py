"""Sensor imperfection model.

Turns the clean kinematic render into what the LIS3DH accelerometer and
companion gyroscope actually deliver: white noise, slowly wandering bias,
1 mg quantisation (the LIS3DH resolution the paper quotes), and full-scale
clipping at ±16 g / ±2000 deg/s.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SensorNoiseModel"]


class SensorNoiseModel:
    """Additive noise + quantisation + clipping for one recording.

    Parameters are per-axis standard deviations in sensor units; the
    subject's ``noise`` style multiplier scales both white-noise terms
    (different garment fits produce different artefact levels).
    """

    def __init__(
        self,
        accel_noise_g: float = 0.02,
        gyro_noise_dps: float = 1.6,
        accel_bias_g: float = 0.012,
        gyro_bias_dps: float = 0.8,
        accel_resolution_g: float = 0.001,
        accel_fullscale_g: float = 16.0,
        gyro_fullscale_dps: float = 2000.0,
    ):
        self.accel_noise_g = float(accel_noise_g)
        self.gyro_noise_dps = float(gyro_noise_dps)
        self.accel_bias_g = float(accel_bias_g)
        self.gyro_bias_dps = float(gyro_bias_dps)
        self.accel_resolution_g = float(accel_resolution_g)
        self.accel_fullscale_g = float(accel_fullscale_g)
        self.gyro_fullscale_dps = float(gyro_fullscale_dps)

    def _wandering_bias(self, n, sigma, rng) -> np.ndarray:
        """Slow random-walk bias (thermal drift), per axis."""
        steps = rng.normal(0.0, sigma / max(np.sqrt(n), 1.0), size=(n, 3))
        walk = np.cumsum(steps, axis=0)
        return walk + rng.normal(0.0, sigma, size=(1, 3))

    def apply(
        self, accel_g: np.ndarray, gyro_dps: np.ndarray,
        rng: np.random.Generator, noise_scale: float = 1.0
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return noisy (accel, gyro); inputs are not modified."""
        accel_g = np.asarray(accel_g, dtype=float)
        gyro_dps = np.asarray(gyro_dps, dtype=float)
        n = accel_g.shape[0]
        accel = (
            accel_g
            + rng.normal(0.0, self.accel_noise_g * noise_scale, size=accel_g.shape)
            + self._wandering_bias(n, self.accel_bias_g, rng)
        )
        gyro = (
            gyro_dps
            + rng.normal(0.0, self.gyro_noise_dps * noise_scale, size=gyro_dps.shape)
            + self._wandering_bias(n, self.gyro_bias_dps, rng)
        )
        # LIS3DH-style quantisation and clipping.
        if self.accel_resolution_g > 0:
            accel = np.round(accel / self.accel_resolution_g) * self.accel_resolution_g
        accel = np.clip(accel, -self.accel_fullscale_g, self.accel_fullscale_g)
        gyro = np.clip(gyro, -self.gyro_fullscale_dps, self.gyro_fullscale_dps)
        return accel, gyro
