"""Top-level synthesis: task spec + subject -> :class:`Recording`.

Pipeline per trial:

1. dispatch to the task's motion generator (ADL or fall) to build the
   kinematic script;
2. render clean accelerometer/gyroscope streams;
3. pass them through the sensor-noise model;
4. run the same complementary filter the acquisition firmware uses to
   compute the on-edge Euler angles;
5. package everything, with fall marks, into a ``Recording``.

Determinism: the per-trial RNG seed is derived from (dataset seed,
subject id, task id, trial), so regenerating a dataset is reproducible
and order-independent.
"""

from __future__ import annotations

import zlib

import numpy as np

from ...signal.orientation import ComplementaryFilter
from ...signal.rotation import rodrigues_matrix
from ..schema import CANONICAL_FRAME, Recording
from ..subjects import SubjectProfile
from ..tasks import TaskSpec
from .adl import ADL_GENERATORS
from .falls import build_fall
from .noise import SensorNoiseModel

__all__ = ["synthesize_recording", "trial_seed", "mounting_rotation"]

#: Std-dev (degrees) of the per-subject garment mounting misalignment and
#: of the additional per-trial re-donning jitter.  A sensor sewn into a
#: jacket never sits identically on two people — this is a major driver of
#: the subject-independent generalisation gap the paper's protocol probes.
_MOUNT_SUBJECT_STD_DEG = 7.0
_MOUNT_TRIAL_STD_DEG = 2.5


def mounting_rotation(
    subject_id: str, trial: int, base_seed: int
) -> np.ndarray:
    """Rotation matrix of the garment misalignment for one trial.

    The subject component is stable across all of a subject's trials (the
    jacket fits them the way it fits them); the small trial component
    models re-donning between recordings.
    """
    subject_rng = np.random.default_rng(
        zlib.crc32(f"mount|{base_seed}|{subject_id}".encode())
    )
    subject_angles = subject_rng.normal(0.0, _MOUNT_SUBJECT_STD_DEG, size=3)
    trial_rng = np.random.default_rng(
        zlib.crc32(f"mount|{base_seed}|{subject_id}|{trial}".encode())
    )
    trial_angles = trial_rng.normal(0.0, _MOUNT_TRIAL_STD_DEG, size=3)
    angles = np.radians(subject_angles + trial_angles)
    rotation = (
        rodrigues_matrix([0.0, 0.0, 1.0], angles[2])
        @ rodrigues_matrix([0.0, 1.0, 0.0], angles[1])
        @ rodrigues_matrix([1.0, 0.0, 0.0], angles[0])
    )
    return rotation


def trial_seed(base_seed: int, subject_id: str, task_id: int, trial: int) -> int:
    """Stable per-trial seed (crc32 of the trial coordinates)."""
    key = f"{base_seed}|{subject_id}|{task_id}|{trial}".encode()
    return zlib.crc32(key)


def synthesize_recording(
    task: TaskSpec,
    subject: SubjectProfile,
    trial: int = 0,
    fs: float = 100.0,
    duration_scale: float = 1.0,
    base_seed: int = 0,
    noise_model: SensorNoiseModel | None = None,
    dataset: str = "selfcollected",
) -> Recording:
    """Generate one complete trial.

    ``duration_scale`` compresses the nominal task duration (used by the
    laptop-scale experiment configurations); fall trials keep a floor of
    6 s so all four fall stages always fit.
    """
    if duration_scale <= 0:
        raise ValueError(f"duration_scale must be positive, got {duration_scale}")
    rng = np.random.default_rng(trial_seed(base_seed, subject.subject_id,
                                           task.task_id, trial))
    duration = task.duration_s * duration_scale
    duration = max(duration, 6.0 if task.is_fall else 4.0)
    # Small natural trial-to-trial length variation.
    duration *= rng.uniform(0.95, 1.08)

    if task.is_fall:
        builder = build_fall(task.params, subject, rng, duration, fs)
    else:
        try:
            generator = ADL_GENERATORS[task.generator]
        except KeyError:
            raise ValueError(
                f"task {task.task_id} references unknown generator "
                f"{task.generator!r}"
            ) from None
        builder = generator(task.params, subject, rng, duration, fs)

    rendered = builder.render()
    # Garment mounting misalignment: rotate the true body-frame signals
    # into this subject's (slightly tilted) sensor frame.
    mount = mounting_rotation(subject.subject_id, trial, base_seed)
    accel_mounted = rendered["accel"] @ mount.T
    gyro_mounted = rendered["gyro"] @ mount.T
    noise = noise_model or SensorNoiseModel()
    accel, gyro = noise.apply(accel_mounted, gyro_mounted, rng,
                              noise_scale=subject.noise)
    euler = ComplementaryFilter(fs=fs).process(accel, gyro)

    marks = rendered["marks"]
    fall_onset = marks.get("fall_onset")
    impact = marks.get("impact")
    if task.is_fall and (fall_onset is None or impact is None):
        raise RuntimeError(
            f"fall generator for task {task.task_id} produced no annotations"
        )
    return Recording(
        subject_id=subject.subject_id,
        task_id=task.task_id,
        trial=trial,
        fs=fs,
        accel=accel,
        gyro=gyro,
        euler=euler,
        fall_onset=fall_onset,
        impact=impact,
        frame=CANONICAL_FRAME,
        accel_unit="g",
        gyro_unit="deg/s",
        dataset=dataset,
        meta={"generator": task.generator, "duration_scale": duration_scale},
    )
