"""Reusable motion fragments composed by the ADL and fall generators.

Amplitudes are tuned for a sensor worn on the lower back (as in both
datasets): walking shows ~0.1 g vertical bounce, jogging ~0.4 g with
impulsive heel strikes, postural sway is sub-degree, ground impacts reach
several g.  Values are scaled by each subject's style multipliers so that
different synthetic subjects are statistically distinguishable.
"""

from __future__ import annotations

import numpy as np

from .trajectory import MotionBuilder

__all__ = [
    "POSTURES",
    "add_postural_sway",
    "add_gait",
    "add_heel_strikes",
    "add_breathing",
]

#: Nominal (pitch, roll) of each static posture, degrees.
POSTURES = {
    "stand": (0.0, 0.0),
    "sit": (10.0, 0.0),
    "sit_ground": (15.0, 0.0),
    "lie": (-82.0, 0.0),
    "lie_prone": (82.0, 0.0),
}

#: Gait parameter presets: (step frequency Hz, vertical bounce g,
#: fore-aft sway g, pitch wobble deg, roll wobble deg).
_GAIT_PRESETS = {
    "walk_slow": (1.5, 0.06, 0.035, 1.2, 1.8),
    "walk": (1.9, 0.10, 0.05, 1.5, 2.2),
    "walk_quick": (2.3, 0.16, 0.08, 1.8, 2.6),
    "jog": (2.7, 0.38, 0.16, 2.4, 3.0),
    "jog_quick": (3.1, 0.52, 0.22, 2.8, 3.4),
    "climb": (1.2, 0.09, 0.05, 2.2, 2.6),
}


def add_postural_sway(
    builder: MotionBuilder,
    t0: float,
    t1: float,
    subject,
    rng: np.random.Generator,
    scale: float = 1.0,
) -> None:
    """Quiet-posture sway: slow, small pitch/roll oscillations."""
    if t1 - t0 < 0.2:
        return
    amp = 0.6 * subject.sway * scale
    builder.oscillate(t0, t1, "pitch", rng.uniform(0.25, 0.45), amp,
                      rng.uniform(0, 2 * np.pi))
    builder.oscillate(t0, t1, "roll", rng.uniform(0.2, 0.4), amp * 0.8,
                      rng.uniform(0, 2 * np.pi))
    builder.oscillate(t0, t1, "az", rng.uniform(0.3, 0.6), 0.004 * scale,
                      rng.uniform(0, 2 * np.pi))


def add_breathing(
    builder: MotionBuilder, t0: float, t1: float, rng: np.random.Generator
) -> None:
    """Respiration artefact visible in a trunk-mounted accelerometer."""
    if t1 - t0 < 1.0:
        return
    builder.oscillate(t0, t1, "az", rng.uniform(0.2, 0.35), 0.003,
                      rng.uniform(0, 2 * np.pi))


def add_gait(
    builder: MotionBuilder,
    t0: float,
    t1: float,
    subject,
    rng: np.random.Generator,
    style: str = "walk",
    intensity: float = 1.0,
) -> float:
    """Rhythmic locomotion between ``t0`` and ``t1``.

    Returns the step frequency actually used (Hz), so callers can align
    other events (e.g. a trip) with the gait cycle.
    """
    try:
        freq, bounce, fore_aft, pitch_amp, roll_amp = _GAIT_PRESETS[style]
    except KeyError:
        raise ValueError(
            f"unknown gait style {style!r}; options: {sorted(_GAIT_PRESETS)}"
        ) from None
    if t1 - t0 < 0.3:
        return freq
    freq *= subject.cadence * rng.uniform(0.95, 1.05)
    vig = subject.vigor * intensity
    phase = rng.uniform(0, 2 * np.pi)
    # Vertical bounce at step frequency, fore-aft at the same frequency but
    # out of phase, trunk wobble at stride (half step) frequency.
    builder.oscillate(t0, t1, "az", freq, bounce * vig, phase)
    builder.oscillate(t0, t1, "ax", freq, fore_aft * vig, phase + np.pi / 2)
    builder.oscillate(t0, t1, "ay", freq / 2.0, fore_aft * 0.5 * vig,
                      phase + np.pi / 4)
    builder.oscillate(t0, t1, "pitch", freq, pitch_amp * subject.sway, phase)
    builder.oscillate(t0, t1, "roll", freq / 2.0, roll_amp * subject.sway,
                      phase + np.pi / 3)
    builder.oscillate(t0, t1, "yaw", freq / 2.0, 2.0 * subject.sway,
                      phase + np.pi / 5)
    return freq


def add_heel_strikes(
    builder: MotionBuilder,
    t0: float,
    t1: float,
    freq_hz: float,
    amp_g: float,
    rng: np.random.Generator,
    channel: str = "az",
) -> None:
    """Impulsive foot-strike transients (jogging, stair descent)."""
    if t1 - t0 <= 0 or freq_hz <= 0:
        return
    period = 1.0 / freq_hz
    t = t0 + rng.uniform(0.0, period)
    while t < t1:
        builder.burst(
            t,
            width=rng.uniform(0.05, 0.09),
            channel=channel,
            amp=amp_g * rng.uniform(0.75, 1.25),
            shape="decay",
        )
        t += period * rng.uniform(0.92, 1.08)
