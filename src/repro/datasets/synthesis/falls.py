"""Fall motion generator.

Produces the four canonical stages of Figure 1 of the paper — pre-fall
activity, falling (pre-impact), impact, post-fall — with frame-accurate
``fall_onset`` and ``impact`` marks.

Physical signatures per stage:

* **falling** — specific force collapses toward free fall (gravity factor
  0.03–0.45 depending on the fall mechanism), trunk orientation rotates
  toward the final lying posture with accelerating easing, flailing
  oscillations ride on top;
* **impact** — a 3–8 g multi-axis transient (shorter and harder for falls
  from height);
* **post-fall** — the subject lies still, with only tremor and breathing.

Fall-category timing reproduces the difficulty ordering behind the paper's
Table IVa: falls from height (tasks 39–42) have the shortest pre-impact
phases and the least pre-impact rotation, so removing the last 150 ms
leaves the classifier the least evidence — they are missed most often.
"""

from __future__ import annotations

import numpy as np

from .primitives import POSTURES, add_gait, add_postural_sway
from .trajectory import MotionBuilder, make_power_ease

__all__ = ["build_fall"]

#: (min, max) seconds of the falling (onset -> impact) phase per start kind.
_FALL_DURATION = {
    "walk": (0.50, 0.90),
    "jog": (0.45, 0.80),
    "sit": (0.45, 0.75),
    "stand_to_sit": (0.40, 0.65),
    "move_back": (0.50, 0.85),
    "height": (0.32, 0.52),
    "ladder": (0.36, 0.58),
}

#: Gravity-factor floor *reached at impact* per start kind.  With the
#: progressive ramp, the unloading visible before the truncated 150 ms is
#: far shallower than these floors.
_GRAVITY_FLOOR = {
    "walk": (0.08, 0.25),
    "jog": (0.08, 0.22),
    "sit": (0.15, 0.35),
    "stand_to_sit": (0.15, 0.35),
    "move_back": (0.10, 0.28),
    "height": (0.02, 0.07),
    "ladder": (0.05, 0.15),
}

#: Peak impact magnitude (g) per start kind, before subject scaling.
_IMPACT_G = {
    "walk": (3.5, 6.0),
    "jog": (4.0, 6.5),
    "sit": (3.0, 5.0),
    "stand_to_sit": (3.0, 5.0),
    "move_back": (3.5, 6.0),
    "height": (5.0, 8.0),
    "ladder": (4.5, 7.0),
}


def _final_orientation(direction: str, rng) -> tuple[float, float]:
    """(pitch, roll) of the body once on the ground."""
    if direction == "forward":
        return rng.uniform(72, 88), rng.normal(0, 6)
    if direction == "backward":
        return -rng.uniform(72, 88), rng.normal(0, 6)
    if direction == "lateral":
        side = rng.choice([-1.0, 1.0])
        return rng.normal(0, 8), side * rng.uniform(70, 85)
    if direction == "vertical":
        # Crumple straight down: modest forward slump.
        return rng.uniform(25, 45), rng.normal(0, 8)
    raise ValueError(f"unknown fall direction {direction!r}")


def _impact_bursts(builder, t_impact, direction, amp, rng, hands_damp=False):
    """Distribute the impact transient over the sensor axes."""
    width = rng.uniform(0.05, 0.09)
    if hands_damp:
        # Catching the fall splits the impact into two softer transients.
        first = amp * rng.uniform(0.4, 0.55)
        builder.burst(t_impact - 0.09, width, "ax", first, shape="decay")
        amp *= rng.uniform(0.55, 0.7)
        width *= 1.2
    axis_main = {"forward": "ax", "backward": "ax", "lateral": "ay",
                 "vertical": "az"}[direction]
    sign = -1.0 if direction == "backward" else 1.0
    # Bursts are centred half a width late so the deceleration transient
    # *follows* ground contact (the annotated impact sample).
    builder.burst(t_impact + width / 2, width, axis_main, sign * amp,
                  shape="decay")
    builder.burst(t_impact + 0.01 + width / 2, width * 1.1, "az", amp * 0.6,
                  shape="decay")
    builder.burst(t_impact + 0.08 + width / 2, width * 1.4, axis_main,
                  sign * amp * 0.25, shape="decay")  # bounce


def _pre_fall_activity(builder, start, params, subject, rng, t_onset):
    """Script the pre-fall stage up to ``t_onset`` and return start angles."""
    lead = 0.8
    if start in ("walk", "jog"):
        builder.hold(lead)
        style = "jog" if start == "jog" else "walk"
        add_gait(builder, lead, t_onset, subject, rng, style=style)
        builder.hold(t_onset - builder.t)
        return
    if start == "move_back":
        builder.hold(lead)
        style = "walk_slow" if params.get("speed") == "slow" else "walk"
        add_gait(builder, lead, t_onset, subject, rng, style=style, intensity=0.8)
        # Slight backward trunk lean while stepping backwards.
        builder.oscillate(lead, t_onset, "pitch", 0.2, 2.0, np.pi)
        builder.hold(t_onset - builder.t)
        return
    if start == "sit":
        # The builder already starts in the sitting posture.
        builder.hold(t_onset - builder.t)
        add_postural_sway(builder, 0.5, t_onset, subject, rng, scale=0.5)
        if params.get("cause") == "faint":
            # Pre-syncope slump in the last moments before letting go.
            builder.oscillate(max(t_onset - 1.2, 0.2), t_onset, "pitch", 0.4, 2.5)
        return
    if start == "stand_to_sit":
        builder.hold(lead)
        add_postural_sway(builder, 0.0, lead, subject, rng)
        # Begin a normal sit-down; the fall interrupts it.
        remaining = t_onset - builder.t
        builder.move(max(remaining, 0.3), pitch=POSTURES["sit"][0] * 0.6,
                     ease="smooth")
        return
    if start in ("height", "ladder"):
        builder.hold(lead)
        # Rung-to-rung climbing rhythm (or platform work).
        add_gait(builder, lead, t_onset, subject, rng, style="climb",
                 intensity=0.9)
        builder.oscillate(lead, t_onset, "pitch", 0.5, 3.0)
        builder.hold(t_onset - builder.t)
        return
    raise ValueError(f"unknown fall start {start!r}")


def build_fall(params, subject, rng, duration, fs) -> MotionBuilder:
    """Render one fall trial; marks ``fall_onset`` and ``impact``."""
    start = params.get("start", "walk")
    direction = params.get("direction", "forward")
    if start not in _FALL_DURATION:
        raise ValueError(f"unknown fall start {start!r}")

    lo, hi = _FALL_DURATION[start]
    fall_time = rng.uniform(lo, hi) * float(np.clip(subject.reaction, 0.8, 1.25))
    post_time = max(2.0, duration * 0.25)
    t_onset = max(duration - post_time - fall_time - 0.15, 1.6)

    start_pitch = POSTURES["sit"][0] if start == "sit" else 0.0
    b = MotionBuilder(fs, start_pitch=start_pitch + rng.normal(0, 1.5))
    _pre_fall_activity(b, start, params, subject, rng, t_onset)
    # Guarantee the onset lands exactly where the marks say.
    if b.t < t_onset:
        b.hold(t_onset - b.t)

    b.mark("fall_onset")
    pitch_f, roll_f = _final_orientation(direction, rng)
    g_lo, g_hi = _GRAVITY_FLOOR[start]
    floor = rng.uniform(g_lo, g_hi)
    t0 = b.t
    if start == "height":
        # Drops barely rotate before impact; most rotation happens on the
        # ground contact itself.  Free fall starts almost immediately
        # (front-loaded ramp), which is what makes drops detectable at all
        # — and still often too late (Table IVa).
        b.move(fall_time, pitch=pitch_f * 0.35, roll=roll_f * 0.35, ease="accel")
        b.gravity_ramp(t0, t0 + fall_time, floor=floor, power=0.6)
    else:
        # Rotation profile varies fall to fall: some subjects pivot early,
        # others crumple late.
        b.move(fall_time, pitch=pitch_f, roll=roll_f,
               ease=make_power_ease(rng.uniform(1.6, 3.2)))
        # Progressive unloading: the body is still partially supported at
        # onset; the deep dip develops toward impact, i.e. mostly inside
        # the 150 ms the detector is *not allowed to use*.
        b.gravity_ramp(t0, t0 + fall_time, floor=floor,
                       power=rng.uniform(1.6, 2.4))
    # Mild flailing during the fall (kept small: pre-impact signals are
    # subtle, that is the whole challenge).
    b.oscillate(t0, t0 + fall_time, "roll", rng.uniform(2.5, 4.0),
                rng.uniform(1.5, 3.5) * subject.sway)
    b.oscillate(t0, t0 + fall_time, "ay", rng.uniform(2.0, 3.5),
                rng.uniform(0.04, 0.1))

    t_impact = b.t
    b.mark("impact")
    amp_lo, amp_hi = _IMPACT_G[start]
    amp = rng.uniform(amp_lo, amp_hi) * float(np.clip(subject.vigor, 0.8, 1.3))
    _impact_bursts(b, t_impact, direction, amp, rng,
                   hands_damp=params.get("hands_damp", False))

    # Settle into the final lying posture.
    if start == "height":
        b.move(0.25, pitch=pitch_f, roll=roll_f, ease="decel")
    elif direction == "vertical":
        # Crumple, then slump sideways to the ground.
        b.move(0.5, pitch=pitch_f + 30, ease="decel")
    b.oscillate(t_impact, min(t_impact + 0.6, t_impact + 0.59), "pitch", 4.0,
                3.0)
    remaining = max(duration - b.t, 1.2)
    t_still = b.t
    b.hold(remaining)
    add_postural_sway(b, t_still + 0.5, b.t, subject, rng, scale=0.2)
    return b
