"""Biomechanical IMU signal synthesis (the stand-in for real data capture)."""

from .adl import ADL_GENERATORS
from .falls import build_fall
from .generator import synthesize_recording, trial_seed
from .noise import SensorNoiseModel
from .trajectory import MotionBuilder

__all__ = [
    "MotionBuilder",
    "SensorNoiseModel",
    "ADL_GENERATORS",
    "build_fall",
    "synthesize_recording",
    "trial_seed",
]
