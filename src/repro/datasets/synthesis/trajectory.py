"""Motion scripting: the kinematic core of the synthetic IMU generator.

A :class:`MotionBuilder` accumulates a *motion script* — orientation
keyframes, rhythmic oscillations, acceleration bursts and free-fall
segments — and renders it into clean (noise-free) sensor streams:

* body orientation (pitch, roll, yaw) interpolated between keyframes with
  selectable easing (falls accelerate, sit-downs decelerate);
* gyroscope = time derivative of the orientation angles;
* accelerometer = gravity resolved into the sensor frame, scaled by a
  *gravity factor* (≈1 quasi-static, →0 in free fall), plus dynamic
  acceleration bursts and oscillations.

The sensor frame matches :mod:`repro.signal.orientation`: x forward,
y left, z up; quiet standing reads ``(0, 0, 1) g``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MotionBuilder", "EASINGS"]


def _ease_smooth(u):
    return u * u * (3.0 - 2.0 * u)


def _ease_accel(u):
    # Quadratic-ish ease-in: bodies falling under gravity rotate faster and
    # faster until impact.
    return u**2.2


def make_power_ease(power: float):
    """Parametric ease-in ``u^power`` (fall-to-fall rotation heterogeneity)."""
    if power <= 0:
        raise ValueError(f"power must be positive, got {power}")

    def _ease(u):
        return u**power

    return _ease


def _ease_decel(u):
    return 1.0 - (1.0 - u) ** 2.2


def _ease_linear(u):
    return u


EASINGS = {
    "smooth": _ease_smooth,
    "accel": _ease_accel,
    "decel": _ease_decel,
    "linear": _ease_linear,
}

_ANGLE_CHANNELS = {"pitch": 0, "roll": 1, "yaw": 2}
_ACCEL_CHANNELS = {"ax": 0, "ay": 1, "az": 2}


class MotionBuilder:
    """Builds one trial's kinematic script and renders it to sensor arrays."""

    def __init__(self, fs: float, start_pitch=0.0, start_roll=0.0, start_yaw=0.0):
        if fs <= 0:
            raise ValueError(f"fs must be positive, got {fs}")
        self.fs = float(fs)
        self.t = 0.0
        # Keyframes: (time, pitch, roll, yaw, ease-name of the segment
        # *ending* at this keyframe).
        self._keys: list[tuple[float, float, float, float, object]] = [
            (0.0, float(start_pitch), float(start_roll), float(start_yaw),
             _ease_linear)
        ]
        self._oscillations: list[tuple[float, float, str, float, float, float]] = []
        self._bursts: list[tuple[float, float, str, float, str]] = []
        self._gravity_dips: list[tuple[float, float, float, float]] = []
        self._marks: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Script construction
    # ------------------------------------------------------------------
    @property
    def angles(self) -> tuple[float, float, float]:
        """Current (pitch, roll, yaw) at the end of the script."""
        _, p, r, y, _ = self._keys[-1]
        return p, r, y

    def hold(self, duration: float) -> "MotionBuilder":
        """Keep the current orientation for ``duration`` seconds."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        p, r, y = self.angles
        self.t += duration
        self._keys.append((self.t, p, r, y, _ease_linear))
        return self

    def move(
        self,
        duration: float,
        pitch=None,
        roll=None,
        yaw=None,
        ease="smooth",
    ) -> "MotionBuilder":
        """Transition to a new orientation over ``duration`` seconds.

        ``ease`` is a name from :data:`EASINGS` or a custom callable
        mapping normalised time ``u in [0, 1]`` to progress.
        """
        if duration <= 0:
            raise ValueError("move duration must be positive")
        if callable(ease):
            ease_fn = ease
        elif ease in EASINGS:
            ease_fn = EASINGS[ease]
        else:
            raise ValueError(f"unknown ease {ease!r}; options: {sorted(EASINGS)}")
        p0, r0, y0 = self.angles
        self.t += duration
        self._keys.append(
            (
                self.t,
                p0 if pitch is None else float(pitch),
                r0 if roll is None else float(roll),
                y0 if yaw is None else float(yaw),
                ease_fn,
            )
        )
        return self

    def oscillate(
        self, t0: float, t1: float, channel: str, freq_hz: float, amp: float,
        phase: float = 0.0,
    ) -> "MotionBuilder":
        """Add a Hann-windowed sinusoid to an angle or acceleration channel.

        ``channel`` is one of pitch/roll/yaw (degrees) or ax/ay/az (g).
        The Hann window avoids derivative discontinuities at the edges.
        """
        if channel not in _ANGLE_CHANNELS and channel not in _ACCEL_CHANNELS:
            raise ValueError(f"unknown channel {channel!r}")
        if t1 <= t0:
            raise ValueError("oscillation needs t1 > t0")
        self._oscillations.append((t0, t1, channel, freq_hz, amp, phase))
        return self

    def burst(
        self, t_center: float, width: float, channel: str, amp: float,
        shape: str = "halfsine",
    ) -> "MotionBuilder":
        """Add a transient to an acceleration channel (impacts, landings).

        Shapes: ``halfsine`` (single hump), ``doublet`` (up-down swing, like
        a foot-strike reaction), ``decay`` (sharp attack, exponential tail —
        ground impacts).
        """
        if channel not in _ACCEL_CHANNELS:
            raise ValueError(f"bursts only apply to ax/ay/az, got {channel!r}")
        if shape not in ("halfsine", "doublet", "decay"):
            raise ValueError(f"unknown burst shape {shape!r}")
        if width <= 0:
            raise ValueError("burst width must be positive")
        self._bursts.append((t_center, width, channel, amp, shape))
        return self

    def gravity_dip(
        self, t0: float, t1: float, floor: float, ramp: float = 0.08
    ) -> "MotionBuilder":
        """Scale the gravity reaction towards ``floor`` over [t0, t1].

        ``floor`` near 0 models free fall (the accelerometer measures
        specific force, which vanishes in free fall); intermediate values
        model partially supported descents.  ``ramp`` seconds are used to
        ease in/out.
        """
        if t1 <= t0:
            raise ValueError("gravity dip needs t1 > t0")
        if not 0.0 <= floor <= 1.0:
            raise ValueError(f"gravity floor must be in [0, 1], got {floor}")
        self._gravity_dips.append(("dip", t0, t1, float(floor), float(ramp)))
        return self

    def gravity_ramp(
        self, t0: float, t1: float, floor: float, power: float = 1.8
    ) -> "MotionBuilder":
        """Progressively unload from 1.0 at ``t0`` to ``floor`` at ``t1``.

        ``factor(t) = 1 - (1 - floor) * u^power`` with ``u`` the normalised
        time.  This is how real falls look to an accelerometer: the body is
        still partially supported at fall onset and approaches free fall
        only just before impact — the deepest (most informative) part of
        the dip therefore lands inside the truncated last 150 ms.
        ``power > 1`` back-loads the unloading; ``power < 1`` front-loads
        it (drops from height).
        """
        if t1 <= t0:
            raise ValueError("gravity ramp needs t1 > t0")
        if not 0.0 <= floor <= 1.0:
            raise ValueError(f"gravity floor must be in [0, 1], got {floor}")
        if power <= 0:
            raise ValueError(f"power must be positive, got {power}")
        self._gravity_dips.append(("ramp", t0, t1, float(floor), float(power)))
        return self

    def mark(self, name: str, t: float | None = None) -> "MotionBuilder":
        """Record a named time (e.g. ``fall_onset``, ``impact``)."""
        self._marks[name] = self.t if t is None else float(t)
        return self

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def _render_angles(self, times: np.ndarray) -> np.ndarray:
        angles = np.empty((times.size, 3))
        keys = self._keys
        key_times = np.array([k[0] for k in keys])
        segment = np.clip(np.searchsorted(key_times, times, side="right") - 1, 0,
                          len(keys) - 2 if len(keys) > 1 else 0)
        for col in range(3):
            values = np.array([(k[1], k[2], k[3])[col] for k in keys])
            if len(keys) == 1:
                angles[:, col] = values[0]
                continue
            t0 = key_times[segment]
            t1 = key_times[segment + 1]
            span = np.where(t1 > t0, t1 - t0, 1.0)
            u = np.clip((times - t0) / span, 0.0, 1.0)
            eased = np.empty_like(u)
            for i, (_, _, _, _, ease_fn) in enumerate(keys[1:], start=1):
                mask = segment == i - 1
                if np.any(mask):
                    eased[mask] = ease_fn(u[mask])
            angles[:, col] = values[segment] + eased * (
                values[segment + 1] - values[segment]
            )
            # Clamp beyond the final keyframe.
            beyond = times >= key_times[-1]
            angles[beyond, col] = values[-1]
        return angles

    def _burst_waveform(self, times, t_center, width, amp, shape) -> np.ndarray:
        out = np.zeros_like(times)
        t0, t1 = t_center - width / 2.0, t_center + width / 2.0
        mask = (times >= t0) & (times <= t1)
        if not np.any(mask):
            return out
        u = (times[mask] - t0) / width
        if shape == "halfsine":
            out[mask] = amp * np.sin(np.pi * u)
        elif shape == "doublet":
            out[mask] = amp * np.sin(2.0 * np.pi * u)
        else:  # decay: gamma-like pulse, sharp attack, exponential tail,
            # normalised so the peak equals ``amp`` (at u = 0.15).
            r = u / 0.15
            out[mask] = amp * r * np.exp(1.0 - r)
        return out

    def render(self) -> dict:
        """Evaluate the script on the sample grid.

        Returns a dict with ``times`` (s), ``accel`` (g, clean), ``gyro``
        (deg/s, clean), ``angles`` (deg, the true orientation) and
        ``marks`` (name -> sample index).
        """
        n = max(2, int(round(self.t * self.fs)))
        times = np.arange(n) / self.fs
        angles = self._render_angles(times)

        # Oscillations on angle channels modify orientation (and thus gyro).
        accel_extra = np.zeros((n, 3))
        for t0, t1, channel, freq, amp, phase in self._oscillations:
            mask = (times >= t0) & (times <= t1)
            if not np.any(mask):
                continue
            local = times[mask] - t0
            window = 0.5 - 0.5 * np.cos(
                2.0 * np.pi * np.clip(local / (t1 - t0), 0.0, 1.0)
            )
            wave = amp * window * np.sin(2.0 * np.pi * freq * local + phase)
            if channel in _ANGLE_CHANNELS:
                angles[mask, _ANGLE_CHANNELS[channel]] += wave
            else:
                accel_extra[mask, _ACCEL_CHANNELS[channel]] += wave

        for t_center, width, channel, amp, shape in self._bursts:
            accel_extra[:, _ACCEL_CHANNELS[channel]] += self._burst_waveform(
                times, t_center, width, amp, shape
            )

        gravity_factor = np.ones(n)
        for kind, t0, t1, floor, param in self._gravity_dips:
            factor = np.ones(n)
            if kind == "dip":
                ramp = min(param, max((t1 - t0) / 2.0, 1e-3))
                core = (times >= t0 + ramp) & (times <= t1 - ramp)
                factor[core] = floor
                rising = (times >= t0) & (times < t0 + ramp)
                factor[rising] = (
                    1.0 + (floor - 1.0) * (times[rising] - t0) / ramp
                )
                falling = (times > t1 - ramp) & (times <= t1)
                factor[falling] = floor + (1.0 - floor) * (
                    times[falling] - (t1 - ramp)
                ) / ramp
            else:  # progressive ramp: deepest right at t1
                inside = (times >= t0) & (times <= t1)
                u = (times[inside] - t0) / (t1 - t0)
                factor[inside] = 1.0 - (1.0 - floor) * u**param
                # Recover over ~120 ms after t1 (impact support builds up).
                recover = (times > t1) & (times <= t1 + 0.12)
                factor[recover] = floor + (1.0 - floor) * (
                    times[recover] - t1
                ) / 0.12
            gravity_factor = np.minimum(gravity_factor, factor)

        pitch = np.radians(angles[:, 0])
        roll = np.radians(angles[:, 1])
        gravity = np.stack(
            [
                np.sin(pitch),
                np.cos(pitch) * np.sin(roll),
                np.cos(pitch) * np.cos(roll),
            ],
            axis=1,
        )
        accel = gravity_factor[:, None] * gravity + accel_extra

        # Gyro: body rates from the orientation derivative (deg/s).
        gyro = np.empty((n, 3))
        gyro[:, 0] = np.gradient(angles[:, 1], times)  # roll rate  -> gx
        gyro[:, 1] = np.gradient(angles[:, 0], times)  # pitch rate -> gy
        gyro[:, 2] = np.gradient(angles[:, 2], times)  # yaw rate   -> gz

        marks = {
            name: int(np.clip(round(t * self.fs), 0, n - 1))
            for name, t in self._marks.items()
        }
        return {
            "times": times,
            "accel": accel,
            "gyro": gyro,
            "angles": angles,
            "marks": marks,
        }
