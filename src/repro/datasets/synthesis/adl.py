"""ADL (activity of daily living) motion generators.

One builder function per generator key in the task catalogue.  The
fall-*like* ADLs are deliberately given fall-adjacent signatures — brief
free-fall dips, impact-like landings, fast trunk rotations — because those
are exactly the activities on which the paper reports event-level false
positives (Table IVb: obstacle jumping 20 %, chair collapse 11.3 %, lying
down quickly 6.7 %, jumping 6.4 %, ...).
"""

from __future__ import annotations

from .primitives import (
    POSTURES,
    add_breathing,
    add_gait,
    add_heel_strikes,
    add_postural_sway,
)
from .trajectory import MotionBuilder

__all__ = ["ADL_GENERATORS"]


def _start(posture: str) -> tuple[float, float]:
    pitch, roll = POSTURES[posture]
    return pitch, roll


def build_static(params, subject, rng, duration, fs) -> MotionBuilder:
    """Tasks 1/11/17: hold a posture (stand, sit, lie) with natural sway."""
    posture = params.get("posture", "stand")
    pitch, roll = _start(posture)
    b = MotionBuilder(fs, start_pitch=pitch + rng.normal(0, 2),
                      start_roll=roll + rng.normal(0, 1.5))
    b.hold(duration)
    sway_scale = {"stand": 1.0, "sit": 0.6, "lie": 0.25}.get(posture, 1.0)
    add_postural_sway(b, 0.0, duration, subject, rng, scale=sway_scale)
    add_breathing(b, 0.0, duration, rng)
    return b


def build_bend(params, subject, rng, duration, fs) -> MotionBuilder:
    """Tasks 2 (tie shoe lace) and 3 (pick up an object)."""
    variant = params.get("variant", "pickup")
    b = MotionBuilder(fs)
    lead = min(2.0, duration * 0.2)
    b.hold(lead)
    slow = subject.smoothness
    if variant == "tie_shoe":
        down, hold, up = 1.6 * slow, max(duration - 2 * lead - 3.2 * slow, 1.5), 1.6 * slow
        bend_pitch = rng.uniform(62, 75)
    else:
        # Picking an object up is deliberate: a controlled, moderately
        # slow bend, unlike the accelerating rotation of a fall.
        down, hold, up = 1.5 * slow, 0.8, 1.3 * slow
        bend_pitch = rng.uniform(48, 62)
    b.move(down, pitch=bend_pitch, ease="smooth")
    t_hold0 = b.t
    b.hold(hold)
    if variant == "tie_shoe":
        # Hand motion while tying shows up as small trunk wobble.
        b.oscillate(t_hold0, b.t, "pitch", 1.2, 1.5 * subject.sway)
        b.oscillate(t_hold0, b.t, "az", 1.2, 0.01)
    b.move(up, pitch=0.0, ease="smooth")
    tail = max(duration - b.t, 0.5)
    b.hold(tail)
    add_postural_sway(b, b.t - tail, b.t, subject, rng)
    return b


def build_jump(params, subject, rng, duration, fs) -> MotionBuilder:
    """Task 4: a vertical reach jump — brief true flight plus landing.

    The flight phase zeroes the specific force exactly like the first part
    of a fall does, which is why this ADL draws false positives.
    """
    b = MotionBuilder(fs)
    lead = min(2.5, duration * 0.3)
    b.hold(lead)
    add_postural_sway(b, 0.0, lead, subject, rng)
    # Crouch.
    crouch = 0.35 * subject.smoothness
    b.move(crouch, pitch=rng.uniform(10, 18), ease="smooth")
    # Push-off: upward reaction spike then flight (near-zero specific force).
    t_push = b.t
    b.burst(t_push + 0.05, 0.16, "az", 0.9 * subject.vigor, shape="doublet")
    flight = rng.uniform(0.25, 0.38)
    b.move(0.18, pitch=0.0, ease="smooth")
    b.gravity_dip(t_push + 0.15, t_push + 0.15 + flight, floor=0.06)
    b.hold(max(flight - 0.18, 0.05))
    # Landing impact.
    t_land = t_push + 0.15 + flight
    b.burst(t_land, 0.09, "az", rng.uniform(2.0, 3.2) * subject.vigor, shape="decay")
    b.burst(t_land + 0.02, 0.07, "ax", rng.uniform(0.5, 1.0), shape="doublet")
    b.oscillate(t_land, min(t_land + 0.5, t_land + 0.49), "pitch", 3.0,
                4.0 * subject.sway)
    tail = max(duration - b.t, 1.0)
    b.hold(tail)
    add_postural_sway(b, b.t - tail, b.t, subject, rng)
    return b


def build_sit_ground(params, subject, rng, duration, fs) -> MotionBuilder:
    """Task 5: stand, sit to the ground, wait, get up."""
    b = MotionBuilder(fs)
    lead = min(2.0, duration * 0.15)
    b.hold(lead)
    add_postural_sway(b, 0.0, lead, subject, rng)
    # Lowering to the floor: partially supported descent.
    down = rng.uniform(1.2, 1.8) * subject.smoothness
    t0 = b.t
    b.move(down, pitch=POSTURES["sit_ground"][0] + rng.normal(0, 3), ease="smooth")
    b.gravity_dip(t0 + down * 0.3, t0 + down * 0.9, floor=0.62)
    b.burst(t0 + down, 0.1, "az", rng.uniform(1.0, 1.6), shape="decay")
    mid = max(duration - b.t - down - 1.5, 1.0)
    t_sit = b.t
    b.hold(mid)
    add_postural_sway(b, t_sit, b.t, subject, rng, scale=0.5)
    t_up = b.t
    b.move(down, pitch=0.0, ease="smooth")
    b.burst(t_up + down * 0.4, 0.2, "az", 0.25 * subject.vigor, shape="halfsine")
    b.hold(max(duration - b.t, 0.8))
    return b


def build_walk(params, subject, rng, duration, fs) -> MotionBuilder:
    """Tasks 6/7 (walk with turn), 10 (stumble), 44 (jump over obstacle)."""
    speed = params.get("speed", "normal")
    style = {"slow": "walk_slow", "normal": "walk", "quick": "walk_quick"}[speed]
    b = MotionBuilder(fs)
    lead = 1.0
    b.hold(lead)
    add_postural_sway(b, 0.0, lead, subject, rng)
    walk_end = duration - 0.8
    freq = add_gait(b, lead, walk_end, subject, rng, style=style)

    if params.get("turn"):
        t_turn = lead + (walk_end - lead) * rng.uniform(0.4, 0.6)
        # Keyframes are sequential: walk to the turn, rotate 180, walk on.
        b.hold(t_turn - b.t)
        b.move(rng.uniform(0.8, 1.2), yaw=180.0, ease="smooth")

    if params.get("stumble"):
        # A trip that is *recovered*: forward jerk, partial unloading,
        # catch-step, and back to steady gait.  No impact, no lying phase.
        t_st = lead + (walk_end - lead) * rng.uniform(0.45, 0.65)
        b.hold(max(t_st - b.t, 0.0))
        jerk = rng.uniform(14, 22)
        b.move(0.22, pitch=jerk, ease="accel")
        b.gravity_dip(t_st, t_st + 0.28, floor=0.55)
        b.burst(t_st + 0.3, 0.1, "ax", rng.uniform(0.9, 1.5), shape="doublet")
        b.burst(t_st + 0.38, 0.09, "az", rng.uniform(1.2, 1.9), shape="decay")
        b.move(0.45, pitch=0.0, ease="decel")

    if params.get("obstacle_jump"):
        # Task 44: running jump over an obstacle — flight + hard landing,
        # the single most fall-like ADL in Table IVb (20 % false positives).
        t_j = lead + (walk_end - lead) * rng.uniform(0.45, 0.6)
        b.hold(max(t_j - b.t, 0.0))
        b.burst(t_j, 0.14, "az", 1.0 * subject.vigor, shape="doublet")
        flight = rng.uniform(0.3, 0.42)
        b.move(0.2, pitch=rng.uniform(6, 12), ease="smooth")
        b.gravity_dip(t_j + 0.1, t_j + 0.1 + flight, floor=0.07)
        b.hold(max(flight - 0.2, 0.05))
        t_land = t_j + 0.1 + flight
        b.burst(t_land, 0.09, "az", rng.uniform(2.4, 3.6) * subject.vigor,
                shape="decay")
        b.burst(t_land + 0.03, 0.08, "ax", rng.uniform(0.8, 1.4), shape="doublet")
        b.move(0.4, pitch=0.0, ease="decel")

    b.hold(max(duration - b.t, 0.5))
    return b


def build_jog(params, subject, rng, duration, fs) -> MotionBuilder:
    """Tasks 8/9: jogging with a turn; impulsive heel strikes."""
    speed = params.get("speed", "normal")
    style = "jog" if speed == "normal" else "jog_quick"
    b = MotionBuilder(fs)
    lead = 1.0
    b.hold(lead)
    jog_end = duration - 0.8
    freq = add_gait(b, lead, jog_end, subject, rng, style=style)
    add_heel_strikes(b, lead, jog_end, freq, 0.5 * subject.vigor, rng)
    t_turn = lead + (jog_end - lead) * rng.uniform(0.4, 0.6)
    b.hold(t_turn - b.t)
    b.move(rng.uniform(0.6, 0.9), yaw=180.0, ease="smooth")
    b.hold(max(duration - b.t, 0.5))
    return b


def build_stairs(params, subject, rng, duration, fs) -> MotionBuilder:
    """Tasks 12/16 (down), 35/36 (up), 43 (up then down)."""
    direction = params.get("direction", "down")
    speed = params.get("speed", "normal")
    b = MotionBuilder(fs)
    lead = 1.0
    b.hold(lead)
    end = duration - 0.8

    def _flight(t0, t1, going_down: bool):
        freq = add_gait(b, t0, t1, subject, rng, style="climb",
                        intensity=1.3 if speed == "quick" else 1.0)
        amp = (0.45 if going_down else 0.22) * subject.vigor
        if speed == "quick":
            amp *= 1.5
        add_heel_strikes(b, t0, t1, freq, amp, rng)
        # Trunk leans slightly back going down, forward going up.
        b.oscillate(t0, t1, "pitch", 0.15, 3.0, 0.0)

    if direction == "both":
        half = lead + (end - lead) / 2.0
        _flight(lead, half - 0.6, going_down=False)
        b.hold(half - b.t)
        b.move(0.8, yaw=180.0, ease="smooth")
        _flight(half + 0.8, end, going_down=True)
    else:
        _flight(lead, end, going_down=direction == "down")
    b.hold(max(duration - b.t, 0.5))
    return b


def build_chair(params, subject, rng, duration, fs) -> MotionBuilder:
    """Tasks 13/14 (sit & rise at two speeds) and 15 (collapse into chair)."""
    speed = params.get("speed", "normal")
    collapse = params.get("collapse", False)
    quick = speed == "quick"
    b = MotionBuilder(fs)
    lead = min(2.0, duration * 0.15)
    b.hold(lead)
    add_postural_sway(b, 0.0, lead, subject, rng)

    sit_pitch = POSTURES["sit"][0] + rng.normal(0, 2)
    if collapse:
        # Task 15: sit first, try to rise, fail, and drop back into the
        # chair — a short unsupported drop ending in a seat impact.
        t0 = b.t
        b.move(1.2 * subject.smoothness, pitch=sit_pitch, ease="smooth")
        b.burst(b.t, 0.1, "az", 0.9, shape="decay")
        b.hold(max(duration * 0.25, 1.5))
        # Attempt to rise...
        b.move(0.7, pitch=rng.uniform(18, 26), ease="smooth")
        # ...and collapse back: unloaded drop + impact.  This is the most
        # fall-like chair interaction (Table IVb: 11.29 % false positives)
        # — the drop is a genuine brief free fall with trunk rotation.
        t_c = b.t
        drop = rng.uniform(0.32, 0.45)
        b.move(drop, pitch=sit_pitch + rng.uniform(4, 10), ease="accel")
        b.gravity_dip(t_c, t_c + drop, floor=rng.uniform(0.25, 0.38))
        b.burst(t_c + drop, 0.1, "az",
                rng.uniform(2.2, 3.2) * subject.vigor, shape="decay")
        b.oscillate(t_c + drop, t_c + drop + 0.5, "pitch", 2.5, 3.0)
        b.hold(max(duration - b.t, 1.0))
        add_postural_sway(b, b.t - 1.0, b.t, subject, rng, scale=0.5)
        return b

    sit_time = (0.55 if quick else 1.3) * subject.smoothness
    t0 = b.t
    b.move(sit_time, pitch=sit_pitch, ease="accel" if quick else "smooth")
    if quick:
        b.gravity_dip(t0, t0 + sit_time, floor=0.55)
    b.burst(t0 + sit_time, 0.1, "az",
            (1.5 if quick else 0.7) * subject.vigor, shape="decay")
    mid = max(duration - b.t - sit_time - 1.5, 1.0)
    t_sit = b.t
    b.hold(mid)
    add_postural_sway(b, t_sit, b.t, subject, rng, scale=0.5)
    rise = (0.5 if quick else 1.2) * subject.smoothness
    t_up = b.t
    b.move(rise, pitch=0.0, ease="smooth")
    b.burst(t_up + rise * 0.3, 0.2, "az", (0.5 if quick else 0.2), shape="halfsine")
    b.hold(max(duration - b.t, 0.8))
    return b


def build_lie_floor(params, subject, rng, duration, fs) -> MotionBuilder:
    """Tasks 18/19: sit, lie down to the floor (normal/quick), get up."""
    quick = params.get("speed") == "quick"
    b = MotionBuilder(fs)
    lead = min(1.5, duration * 0.1)
    b.hold(lead)
    # Sit on the floor first.
    sit = 1.2 * subject.smoothness
    t0 = b.t
    b.move(sit, pitch=POSTURES["sit_ground"][0], ease="smooth")
    b.gravity_dip(t0 + sit * 0.3, t0 + sit, floor=0.65)
    b.burst(t0 + sit, 0.1, "az", 1.1, shape="decay")
    b.hold(1.0)
    # Lie down.
    lie_time = (0.6 if quick else 1.6) * subject.smoothness
    t1 = b.t
    b.move(lie_time, pitch=POSTURES["lie"][0] + rng.normal(0, 4),
           ease="accel" if quick else "smooth")
    if quick:
        # Task 19: dropping to the floor — partial free fall + bump.
        b.gravity_dip(t1, t1 + lie_time, floor=0.55)
        b.burst(t1 + lie_time, 0.09, "ax",
                -rng.uniform(1.2, 1.8) * subject.vigor, shape="decay")
        b.burst(t1 + lie_time + 0.02, 0.08, "az", rng.uniform(0.7, 1.2),
                shape="decay")
    mid = max(duration - b.t - lie_time - sit - 1.0, 1.5)
    t_lie = b.t
    b.hold(mid)
    add_postural_sway(b, t_lie, b.t, subject, rng, scale=0.25)
    add_breathing(b, t_lie, b.t, rng)
    # Get up (two stages: sit, then stand).
    up = (0.7 if quick else 1.4) * subject.smoothness
    b.move(up, pitch=POSTURES["sit_ground"][0], ease="smooth")
    b.move(up, pitch=0.0, ease="smooth")
    b.hold(max(duration - b.t, 0.6))
    return b


#: generator key -> builder function.
ADL_GENERATORS = {
    "static": build_static,
    "bend": build_bend,
    "jump": build_jump,
    "sit_ground": build_sit_ground,
    "walk": build_walk,
    "jog": build_jog,
    "stairs": build_stairs,
    "chair": build_chair,
    "lie_floor": build_lie_floor,
}
