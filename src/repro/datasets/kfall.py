"""Synthetic stand-in for the KFall dataset (Yu, Jang & Xiong, 2021).

KFall: 32 young male-majority subjects, 21 ADL tasks + 15 fall types,
sensor at the low back, 100 Hz.  Our stand-in reproduces the task mix and,
crucially for the paper's *dataset alignment* experiment, delivers the
data **in a different sensor frame** (tilted with respect to the
self-collected convention) **and in m/s²** — exactly the mismatches the
paper fixes with a Rodrigues rotation plus unit standardisation.
"""

from __future__ import annotations

import numpy as np

from ..signal.orientation import ComplementaryFilter
from ..signal.rotation import rodrigues_matrix, rotate_vectors
from ..signal.units import accel_from_g
from .schema import Dataset, Recording
from .subjects import make_subjects
from .synthesis.generator import synthesize_recording
from .tasks import KFALL_TASK_IDS, TASKS

__all__ = ["KFALL_FRAME", "KFALL_FRAME_ROTATION", "build_kfall"]

#: Frame tag carried by raw KFall recordings.
KFALL_FRAME = "kfall"

#: Rotation from the canonical frame to the KFall sensor frame: the KFall
#: device is mounted tilted 90° about the body's forward (x) axis, so
#: canonical "up" reads on the sensor's -y axis.
KFALL_FRAME_ROTATION = rodrigues_matrix(np.array([1.0, 0.0, 0.0]), np.pi / 2.0)


def _to_kfall_frame(recording: Recording, fs: float) -> Recording:
    """Re-express a canonical recording in the (rotated, m/s²) KFall frame."""
    rot = KFALL_FRAME_ROTATION
    accel = rotate_vectors(rot, recording.accel)
    gyro = rotate_vectors(rot, recording.gyro)
    # The KFall firmware computes its Euler angles in its own frame.
    euler = ComplementaryFilter(fs=fs).process(accel, gyro)
    return recording.with_signals(
        accel=accel_from_g(accel, "m/s^2"),
        gyro=gyro,
        euler=euler,
        frame=KFALL_FRAME,
        accel_unit="m/s^2",
    )


def build_kfall(
    n_subjects: int = 32,
    trials_per_task: int = 1,
    duration_scale: float = 1.0,
    fs: float = 100.0,
    seed: int = 1001,
    task_ids=None,
) -> Dataset:
    """Generate the KFall-like dataset.

    ``task_ids`` defaults to the 36 KFall tasks; pass a subset for scaled
    experiment configurations.  Output frame is :data:`KFALL_FRAME` with
    acceleration in m/s² — run it through
    :mod:`repro.datasets.alignment` before merging.
    """
    if n_subjects < 1 or trials_per_task < 1:
        raise ValueError("n_subjects and trials_per_task must be >= 1")
    ids = tuple(task_ids) if task_ids is not None else KFALL_TASK_IDS
    for tid in ids:
        if not TASKS[tid].in_kfall:
            raise ValueError(f"task {tid} is not part of the KFall catalogue")
    subjects = make_subjects(
        "KF", n_subjects, seed=seed, female_fraction=0.25,
        age_mean=24.0, age_std=3.5, height_mean=172.0, height_std=7.0,
        mass_mean=68.0, mass_std=10.0,
    )
    recordings = []
    for subject in subjects:
        for tid in ids:
            for trial in range(trials_per_task):
                rec = synthesize_recording(
                    TASKS[tid], subject, trial=trial, fs=fs,
                    duration_scale=duration_scale, base_seed=seed,
                    dataset="kfall",
                )
                recordings.append(_to_kfall_frame(rec, fs))
    return Dataset("kfall", recordings, frame=KFALL_FRAME)
