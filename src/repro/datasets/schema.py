"""Data model for IMU recordings and datasets.

A :class:`Recording` is one trial of one task by one subject: synchronised
accelerometer / gyroscope / Euler-angle streams at a fixed sampling rate,
plus frame-accurate fall annotations (onset and impact sample indices) —
the synthetic equivalent of the paper's video-labelled trials.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

__all__ = ["Recording", "Dataset", "CANONICAL_FRAME"]

#: Name of the reference sensor frame (self-collected dataset convention):
#: x forward, y left, z up, acceleration in g, angular rate in deg/s.
CANONICAL_FRAME = "canonical"


@dataclass
class Recording:
    """One sensor trial.

    Attributes
    ----------
    subject_id:
        Globally unique subject identifier (e.g. ``"SC03"`` / ``"KF17"``).
    task_id:
        Task number from the activity catalogue (Table II of the paper).
    trial:
        Trial index for this subject/task pair.
    fs:
        Sampling frequency in Hz.
    accel:
        ``(n, 3)`` accelerometer samples.
    gyro:
        ``(n, 3)`` gyroscope samples.
    euler:
        ``(n, 3)`` Euler angles (pitch, roll, yaw) in degrees, as computed
        on-edge by the acquisition firmware.
    fall_onset / impact:
        Sample indices of the start of the unrecoverable falling phase and
        of ground contact; ``None`` for ADLs.
    frame:
        Sensor-frame tag; recordings in non-canonical frames must pass
        through :mod:`repro.datasets.alignment` before merging.
    accel_unit / gyro_unit:
        Units of the stored arrays (``"g"``/``"m/s^2"``, ``"deg/s"``/…).
    dataset:
        Source dataset tag (``"kfall"`` or ``"selfcollected"``).
    """

    subject_id: str
    task_id: int
    trial: int
    fs: float
    accel: np.ndarray
    gyro: np.ndarray
    euler: np.ndarray
    fall_onset: int | None = None
    impact: int | None = None
    frame: str = CANONICAL_FRAME
    accel_unit: str = "g"
    gyro_unit: str = "deg/s"
    dataset: str = "selfcollected"
    meta: dict = field(default_factory=dict)

    def __post_init__(self):
        self.accel = np.asarray(self.accel, dtype=float)
        self.gyro = np.asarray(self.gyro, dtype=float)
        self.euler = np.asarray(self.euler, dtype=float)
        n = self.accel.shape[0]
        for name, arr in (("accel", self.accel), ("gyro", self.gyro), ("euler", self.euler)):
            if arr.ndim != 2 or arr.shape[1] != 3:
                raise ValueError(f"{name} must be (n, 3), got {arr.shape}")
            if arr.shape[0] != n:
                raise ValueError("accel/gyro/euler must share a length")
        if (self.fall_onset is None) != (self.impact is None):
            raise ValueError("fall_onset and impact must be set together")
        if self.fall_onset is not None:
            if not 0 <= self.fall_onset < self.impact <= n - 1:
                raise ValueError(
                    f"annotations out of order: onset={self.fall_onset}, "
                    f"impact={self.impact}, n={n}"
                )

    # ------------------------------------------------------------------
    @property
    def n_samples(self) -> int:
        return self.accel.shape[0]

    @property
    def duration_s(self) -> float:
        return self.n_samples / self.fs

    @property
    def is_fall(self) -> bool:
        """True when the trial ends in an annotated fall."""
        return self.fall_onset is not None

    @property
    def event_id(self) -> str:
        """Stable identifier of this trial as an *event* for Table IV."""
        return f"{self.dataset}:{self.subject_id}:T{self.task_id:02d}:{self.trial}"

    def signals(self) -> np.ndarray:
        """The ``(n, 9)`` feature matrix: accel | gyro | euler (paper order)."""
        return np.concatenate([self.accel, self.gyro, self.euler], axis=1)

    def with_signals(self, accel=None, gyro=None, euler=None, **changes) -> "Recording":
        """Copy with replaced arrays/fields (annotations preserved)."""
        return replace(
            self,
            accel=self.accel if accel is None else accel,
            gyro=self.gyro if gyro is None else gyro,
            euler=self.euler if euler is None else euler,
            **changes,
        )


class Dataset:
    """An ordered collection of recordings from one acquisition campaign."""

    def __init__(self, name: str, recordings, frame=CANONICAL_FRAME):
        self.name = str(name)
        self.recordings: list[Recording] = list(recordings)
        self.frame = frame

    def __len__(self) -> int:
        return len(self.recordings)

    def __iter__(self):
        return iter(self.recordings)

    def __getitem__(self, index) -> Recording:
        return self.recordings[index]

    @property
    def subjects(self) -> list[str]:
        """Sorted unique subject ids."""
        return sorted({rec.subject_id for rec in self.recordings})

    @property
    def task_ids(self) -> list[int]:
        return sorted({rec.task_id for rec in self.recordings})

    def filter(self, predicate) -> "Dataset":
        """New dataset with recordings satisfying ``predicate``."""
        return Dataset(self.name, [r for r in self.recordings if predicate(r)], self.frame)

    def by_subject(self, subject_ids) -> "Dataset":
        wanted = set(subject_ids)
        return self.filter(lambda r: r.subject_id in wanted)

    def falls(self) -> "Dataset":
        return self.filter(lambda r: r.is_fall)

    def adls(self) -> "Dataset":
        return self.filter(lambda r: not r.is_fall)

    def summary(self) -> dict:
        """Headline statistics (subjects, trials, falls, total duration)."""
        n_falls = sum(1 for r in self.recordings if r.is_fall)
        total_s = sum(r.duration_s for r in self.recordings)
        return {
            "name": self.name,
            "recordings": len(self.recordings),
            "subjects": len(self.subjects),
            "tasks": len(self.task_ids),
            "falls": n_falls,
            "adls": len(self.recordings) - n_falls,
            "hours": total_s / 3600.0,
        }

    @staticmethod
    def merge(name: str, *datasets: "Dataset") -> "Dataset":
        """Concatenate datasets; they must share one sensor frame."""
        frames = {d.frame for d in datasets}
        if len(frames) > 1:
            raise ValueError(
                f"cannot merge datasets in different frames {sorted(frames)}; "
                "align them first (repro.datasets.alignment)"
            )
        merged: list[Recording] = []
        for d in datasets:
            merged.extend(d.recordings)
        return Dataset(name, merged, frame=frames.pop() if frames else CANONICAL_FRAME)
