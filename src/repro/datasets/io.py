"""Dataset persistence: save/load a :class:`Dataset` as a single ``.npz``.

Generating the full-scale synthetic corpora takes minutes; persisting them
makes experiment re-runs and sharing reproducible snapshots cheap.  The
format is a flat npz: per-recording arrays keyed ``r{i}/accel`` etc. plus
a JSON metadata blob, so a snapshot is a single ordinary file with no
pickle involved.
"""

from __future__ import annotations

import json

import numpy as np

from ..utils import atomic_write
from .schema import Dataset, Recording

__all__ = ["save_dataset", "load_dataset"]

_FORMAT_VERSION = 1


def save_dataset(dataset: Dataset, path) -> None:
    """Write ``dataset`` to ``path`` (npz)."""
    arrays: dict[str, np.ndarray] = {}
    meta = {
        "format": _FORMAT_VERSION,
        "name": dataset.name,
        "frame": dataset.frame,
        "recordings": [],
    }
    for i, rec in enumerate(dataset):
        arrays[f"r{i}/accel"] = rec.accel.astype(np.float32)
        arrays[f"r{i}/gyro"] = rec.gyro.astype(np.float32)
        arrays[f"r{i}/euler"] = rec.euler.astype(np.float32)
        meta["recordings"].append(
            {
                "subject_id": rec.subject_id,
                "task_id": rec.task_id,
                "trial": rec.trial,
                "fs": rec.fs,
                "fall_onset": rec.fall_onset,
                "impact": rec.impact,
                "frame": rec.frame,
                "accel_unit": rec.accel_unit,
                "gyro_unit": rec.gyro_unit,
                "dataset": rec.dataset,
            }
        )
    arrays["meta"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    # Atomic: a crash mid-save never leaves a truncated npz at `path`.
    with atomic_write(path, "wb") as fh:
        np.savez_compressed(fh, **arrays)


def load_dataset(path) -> Dataset:
    """Read a dataset written by :func:`save_dataset`.

    Raises a clear :class:`ValueError` (naming the file and what was
    found) when the file is not a dataset snapshot or was written by an
    incompatible format version, instead of failing deep in array
    indexing.
    """
    with np.load(path) as data:
        if "meta" not in data:
            raise ValueError(
                f"{path}: not a repro dataset snapshot (no 'meta' entry; "
                "expected a file written by save_dataset)"
            )
        meta = json.loads(bytes(data["meta"]).decode("utf-8"))
        found = meta.get("format")
        if found != _FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported dataset snapshot format {found!r} "
                f"(this build reads format {_FORMAT_VERSION}); "
                "regenerate the snapshot with save_dataset"
            )
        for key in ("name", "frame", "recordings"):
            if key not in meta:
                raise ValueError(
                    f"{path}: dataset snapshot metadata is missing {key!r}"
                )
        recordings = []
        for i, info in enumerate(meta["recordings"]):
            recordings.append(
                Recording(
                    subject_id=info["subject_id"],
                    task_id=int(info["task_id"]),
                    trial=int(info["trial"]),
                    fs=float(info["fs"]),
                    accel=data[f"r{i}/accel"],
                    gyro=data[f"r{i}/gyro"],
                    euler=data[f"r{i}/euler"],
                    fall_onset=info["fall_onset"],
                    impact=info["impact"],
                    frame=info["frame"],
                    accel_unit=info["accel_unit"],
                    gyro_unit=info["gyro_unit"],
                    dataset=info["dataset"],
                )
            )
    return Dataset(meta["name"], recordings, frame=meta["frame"])
