"""``repro.datasets`` — synthetic IMU datasets with fall annotations.

Provides the KFall-like and self-collected-like corpora (the substitution
for the paper's real data, see DESIGN.md), the task catalogue of Table II,
the dataset-alignment step of Section IV-A and the label policy encoding
the 150 ms pre-impact truncation.
"""

from .alignment import (
    align_dataset,
    align_recording,
    estimate_frame_rotation,
    estimate_gravity_direction,
)
from .io import load_dataset, save_dataset
from .validation import (
    ValidationIssue,
    ValidationReport,
    validate_dataset,
    validate_recording,
)
from .kfall import KFALL_FRAME, KFALL_FRAME_ROTATION, build_kfall
from .labeling import LabelPolicy, sample_labels
from .schema import CANONICAL_FRAME, Dataset, Recording
from .selfcollected import build_selfcollected
from .subjects import SubjectProfile, make_subjects
from .synthesis import MotionBuilder, SensorNoiseModel, synthesize_recording
from .tasks import (
    GREEN_ADL_IDS,
    KFALL_TASK_IDS,
    RED_ADL_IDS,
    SELF_COLLECTED_TASK_IDS,
    TASKS,
    TaskSpec,
    adl_ids,
    fall_ids,
    get_task,
)

__all__ = [
    "Recording",
    "Dataset",
    "CANONICAL_FRAME",
    "KFALL_FRAME",
    "KFALL_FRAME_ROTATION",
    "TaskSpec",
    "TASKS",
    "KFALL_TASK_IDS",
    "SELF_COLLECTED_TASK_IDS",
    "RED_ADL_IDS",
    "GREEN_ADL_IDS",
    "adl_ids",
    "fall_ids",
    "get_task",
    "SubjectProfile",
    "make_subjects",
    "MotionBuilder",
    "SensorNoiseModel",
    "synthesize_recording",
    "build_kfall",
    "build_selfcollected",
    "align_dataset",
    "align_recording",
    "estimate_frame_rotation",
    "estimate_gravity_direction",
    "LabelPolicy",
    "sample_labels",
    "save_dataset",
    "load_dataset",
    "ValidationIssue",
    "ValidationReport",
    "validate_recording",
    "validate_dataset",
]
