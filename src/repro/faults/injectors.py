"""Deterministic sensor-fault injectors for IMU sample streams.

Real wearable streams are nothing like the clean arrays the offline
pipeline sees: samples go missing, readings saturate at the sensor rails,
channels freeze, packets arrive late, whole sensors die.  Each injector
here models one such failure as a pure function on a timestamped stream
``(t, accel, gyro)`` — arrays of shape ``(n,)``, ``(n, 3)``, ``(n, 3)`` —
restricted to an *active mask* supplied by the scheduling layer
(:class:`~repro.faults.scenario.FaultScenario`).

Injectors never mutate their inputs and draw all randomness from the RNG
they are handed, so a seeded scenario replays bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "FaultInjector",
    "SampleDropout",
    "Gap",
    "NonFinite",
    "Saturation",
    "StuckChannel",
    "SpikeNoise",
    "ClockJitter",
    "SensorDead",
]

#: Channel indices of the raw 6-channel stream: accel x/y/z then gyro x/y/z.
_ACCEL_CHANNELS = (0, 1, 2)
_GYRO_CHANNELS = (3, 4, 5)


class FaultInjector:
    """Base class: transform a timestamped stream where ``mask`` is True.

    ``apply`` returns a new ``(t, accel, gyro)`` triple; rows may be
    dropped (gaps) but never reordered, and timestamps stay strictly
    increasing unless the injector explicitly models clock trouble.
    """

    def apply(
        self,
        t: np.ndarray,
        accel: np.ndarray,
        gyro: np.ndarray,
        mask: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__


def _split(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    return values[:, :3], values[:, 3:]


def _joined(accel: np.ndarray, gyro: np.ndarray) -> np.ndarray:
    return np.concatenate([accel, gyro], axis=1)


@dataclass(frozen=True)
class SampleDropout(FaultInjector):
    """Each active sample is lost independently with probability ``rate``
    — the radio-packet-loss view of a wireless IMU."""

    rate: float = 0.1

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")

    def apply(self, t, accel, gyro, mask, rng):
        drop = mask & (rng.random(t.shape[0]) < self.rate)
        keep = ~drop
        return t[keep], accel[keep], gyro[keep]


@dataclass(frozen=True)
class Gap(FaultInjector):
    """Every active sample is lost — a contiguous window models a burst
    outage (connection drop, firmware stall)."""

    def apply(self, t, accel, gyro, mask, rng):
        keep = ~mask
        return t[keep], accel[keep], gyro[keep]


@dataclass(frozen=True)
class NonFinite(FaultInjector):
    """Active readings are replaced by NaN/±Inf with probability ``rate``.

    ``value`` selects the poison: ``"nan"``, ``"+inf"``, ``"-inf"`` or
    ``"mixed"`` (each corrupted entry draws one of the three).  ``channels``
    restricts corruption to those raw-channel indices (0-2 accel, 3-5
    gyro); ``None`` corrupts any channel.
    """

    rate: float = 0.05
    value: str = "nan"
    channels: tuple | None = None

    def __post_init__(self):
        if self.value not in ("nan", "+inf", "-inf", "mixed"):
            raise ValueError(f"unknown value kind {self.value!r}")
        if not 0.0 < self.rate <= 1.0:
            raise ValueError(f"rate must be in (0, 1], got {self.rate}")

    def apply(self, t, accel, gyro, mask, rng):
        raw = _joined(accel, gyro)
        channels = self.channels if self.channels is not None else range(6)
        hit = rng.random((t.shape[0], 6)) < self.rate
        hit &= mask[:, None]
        allowed = np.zeros(6, dtype=bool)
        allowed[list(channels)] = True
        hit &= allowed[None, :]
        if self.value == "mixed":
            poison = rng.choice(
                [np.nan, np.inf, -np.inf], size=hit.sum()
            )
        else:
            poison = {"nan": np.nan, "+inf": np.inf, "-inf": -np.inf}[self.value]
        raw = raw.copy()
        raw[hit] = poison
        a, g = _split(raw)
        return t, a, g


@dataclass(frozen=True)
class Saturation(FaultInjector):
    """Readings clip at the sensor rails — a low-range IMU (e.g. a ±2 g
    accelerometer) pegged by fall dynamics."""

    accel_range_g: float = 2.0
    gyro_range_dps: float = 300.0

    def __post_init__(self):
        if self.accel_range_g <= 0 or self.gyro_range_dps <= 0:
            raise ValueError("saturation ranges must be positive")

    def apply(self, t, accel, gyro, mask, rng):
        accel = accel.copy()
        gyro = gyro.copy()
        accel[mask] = np.clip(accel[mask], -self.accel_range_g, self.accel_range_g)
        gyro[mask] = np.clip(gyro[mask], -self.gyro_range_dps, self.gyro_range_dps)
        return t, accel, gyro


@dataclass(frozen=True)
class StuckChannel(FaultInjector):
    """One raw channel (0-2 accel, 3-5 gyro) freezes at its first active
    value — a stuck-at ADC or a torn flex cable."""

    channel: int = 3

    def __post_init__(self):
        if not 0 <= self.channel < 6:
            raise ValueError(f"channel must be in [0, 6), got {self.channel}")

    def apply(self, t, accel, gyro, mask, rng):
        idx = np.flatnonzero(mask)
        if idx.size == 0:
            return t, accel, gyro
        raw = _joined(accel, gyro).copy()
        raw[idx, self.channel] = raw[idx[0], self.channel]
        a, g = _split(raw)
        return t, a, g


@dataclass(frozen=True)
class SpikeNoise(FaultInjector):
    """Large additive spikes on random active samples — ESD/vibration hits
    that survive the anti-aliasing filter."""

    rate: float = 0.02
    accel_amp_g: float = 8.0
    gyro_amp_dps: float = 500.0

    def __post_init__(self):
        if not 0.0 < self.rate <= 1.0:
            raise ValueError(f"rate must be in (0, 1], got {self.rate}")

    def apply(self, t, accel, gyro, mask, rng):
        n = t.shape[0]
        hit = mask & (rng.random(n) < self.rate)
        accel = accel.copy()
        gyro = gyro.copy()
        signs = rng.choice([-1.0, 1.0], size=(int(hit.sum()), 3))
        axis = rng.integers(0, 3, size=int(hit.sum()))
        onehot = np.zeros((int(hit.sum()), 3))
        onehot[np.arange(int(hit.sum())), axis] = 1.0
        accel[hit] += signs * onehot * self.accel_amp_g
        gyro[hit] += signs * onehot * self.gyro_amp_dps
        return t, accel, gyro


@dataclass(frozen=True)
class ClockJitter(FaultInjector):
    """Timestamp trouble: per-sample jitter plus linear clock drift.

    Timestamps are perturbed (``t' = t + drift·(t - t₀) + ε``) and then
    re-monotonised, so downstream consumers still see a non-decreasing
    clock — just not the nominal 100 Hz grid.
    """

    jitter_std_s: float = 0.002
    drift: float = 0.0

    def __post_init__(self):
        if self.jitter_std_s < 0:
            raise ValueError("jitter_std_s must be non-negative")

    def apply(self, t, accel, gyro, mask, rng):
        t = t.astype(float).copy()
        noise = rng.normal(0.0, self.jitter_std_s, size=t.shape[0])
        t0 = t[0] if t.size else 0.0
        perturbed = t + self.drift * (t - t0) + noise
        t[mask] = perturbed[mask]
        # A wearable's packetiser stamps monotonically even when the
        # oscillator wanders; reproduce that.
        t = np.maximum.accumulate(t)
        return t, accel, gyro


@dataclass(frozen=True)
class SensorDead(FaultInjector):
    """A whole sensor fails: every active reading becomes zero, NaN, or a
    freeze of its last healthy value."""

    sensor: str = "gyro"
    mode: str = "zero"

    def __post_init__(self):
        if self.sensor not in ("accel", "gyro"):
            raise ValueError(f"sensor must be 'accel' or 'gyro', got {self.sensor!r}")
        if self.mode not in ("zero", "nan", "freeze"):
            raise ValueError(f"mode must be zero/nan/freeze, got {self.mode!r}")

    def apply(self, t, accel, gyro, mask, rng):
        target = accel if self.sensor == "accel" else gyro
        target = target.copy()
        idx = np.flatnonzero(mask)
        if idx.size:
            if self.mode == "zero":
                target[idx] = 0.0
            elif self.mode == "nan":
                target[idx] = np.nan
            else:  # freeze at the last value before the failure
                frozen = target[idx[0] - 1] if idx[0] > 0 else target[idx[0]]
                target[idx] = frozen
        if self.sensor == "accel":
            return t, target, gyro
        return t, accel, target
