"""``repro.faults`` — sensor fault models for the streaming detector.

The paper's deployment target is a wearable airbag fed by a live 100 Hz
IMU stream; real streams drop samples, saturate, freeze and die.  This
package provides deterministic, seeded fault injectors and a scheduling
layer (:class:`FaultScenario`) that replays those failures against any
recording, so the hardened :class:`~repro.core.detector.FallDetector` can
be evaluated under exactly reproducible degraded conditions.

Quick tour::

    from repro.faults import builtin_scenarios

    scenario = builtin_scenarios(seed=7)["gyro_dead"]
    t, accel, gyro = scenario.apply(recording)   # faulted stream
    # ... feed (t, accel, gyro) sample-by-sample into FallDetector.push

``repro faults`` (the CLI subcommand) runs the full clean-vs-faulted
event-level comparison.
"""

from .injectors import (
    ClockJitter,
    FaultInjector,
    Gap,
    NonFinite,
    SampleDropout,
    Saturation,
    SensorDead,
    SpikeNoise,
    StuckChannel,
)
from .scenario import FaultScenario, FaultWindow, builtin_scenarios

__all__ = [
    "FaultInjector",
    "SampleDropout",
    "Gap",
    "NonFinite",
    "Saturation",
    "StuckChannel",
    "SpikeNoise",
    "ClockJitter",
    "SensorDead",
    "FaultWindow",
    "FaultScenario",
    "builtin_scenarios",
]
