"""Fault scheduling: compose injectors into a replayable scenario.

A :class:`FaultScenario` is an ordered list of :class:`FaultWindow`
entries — *which* injector is active *when* — plus a seed.  Applying a
scenario to a recording (or raw arrays) runs every window in order, each
with its own child RNG, so results are deterministic and independent of
how many faults precede a given window.

Windows schedule either in absolute seconds or as fractions of the stream
duration (``fraction=True``), which lets the built-in scenarios place a
burst "mid-recording" regardless of trial length.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .injectors import (
    ClockJitter,
    FaultInjector,
    Gap,
    NonFinite,
    SampleDropout,
    Saturation,
    SensorDead,
    SpikeNoise,
    StuckChannel,
)

__all__ = ["FaultWindow", "FaultScenario", "builtin_scenarios"]


@dataclass(frozen=True)
class FaultWindow:
    """One injector active over ``[start, end)``.

    ``end=None`` means "until the end of the stream".  With
    ``fraction=True`` the bounds are fractions of the stream duration
    instead of seconds.
    """

    injector: FaultInjector
    start: float = 0.0
    end: float | None = None
    fraction: bool = False

    def __post_init__(self):
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.end is not None and self.end <= self.start:
            raise ValueError(f"end ({self.end}) must exceed start ({self.start})")
        if self.fraction and (self.start > 1 or (self.end or 0) > 1):
            raise ValueError("fractional bounds must lie in [0, 1]")

    def mask(self, t: np.ndarray) -> np.ndarray:
        if t.size == 0:
            return np.zeros(0, dtype=bool)
        start, end = self.start, self.end
        if self.fraction:
            t0, t1 = float(t[0]), float(t[-1])
            span = t1 - t0
            start = t0 + start * span
            end = None if end is None else t0 + end * span
        out = t >= start
        if end is not None:
            out &= t < end
        return out


class FaultScenario:
    """A named, seeded schedule of fault windows over a sample stream."""

    def __init__(self, name: str, windows, seed: int = 0):
        self.name = str(name)
        self.windows: tuple[FaultWindow, ...] = tuple(windows)
        self.seed = int(seed)
        for w in self.windows:
            if not isinstance(w, FaultWindow):
                raise TypeError(f"expected FaultWindow, got {type(w).__name__}")

    def __repr__(self) -> str:
        inner = ", ".join(w.injector.name for w in self.windows)
        return f"FaultScenario({self.name!r}, [{inner}], seed={self.seed})"

    def apply_arrays(
        self, t: np.ndarray, accel: np.ndarray, gyro: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Run every window in order; returns new ``(t, accel, gyro)``."""
        t = np.asarray(t, dtype=float)
        accel = np.asarray(accel, dtype=float)
        gyro = np.asarray(gyro, dtype=float)
        if not (t.shape[0] == accel.shape[0] == gyro.shape[0]):
            raise ValueError(
                f"stream lengths differ: t={t.shape[0]}, "
                f"accel={accel.shape[0]}, gyro={gyro.shape[0]}"
            )
        root = np.random.default_rng(self.seed)
        # One child RNG per window, split up front so a window's draws do
        # not depend on how much data earlier windows dropped.
        children = root.spawn(len(self.windows)) if self.windows else []
        for window, rng in zip(self.windows, children):
            mask = window.mask(t)
            t, accel, gyro = window.injector.apply(t, accel, gyro, mask, rng)
        return t, accel, gyro

    def apply(self, recording) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Fault a :class:`~repro.datasets.schema.Recording`'s streams.

        Returns ``(t, accel, gyro)`` — the Euler channels are *not*
        propagated because the streaming detector computes its own fusion
        from the (faulted) accel/gyro, exactly like the firmware would.
        """
        n = recording.n_samples
        t = np.arange(n, dtype=float) / recording.fs
        return self.apply_arrays(t, recording.accel, recording.gyro)


def builtin_scenarios(seed: int = 7) -> dict[str, FaultScenario]:
    """The standard fault suite the evaluation harness replays.

    Every scenario is deterministic given ``seed``.  Coverage, roughly in
    increasing order of severity: packet loss, a burst outage, NaN bursts,
    rail saturation, a stuck gyro axis, spike noise, clock jitter/drift,
    and a dead gyroscope.
    """
    w = FaultWindow
    return {
        "dropout": FaultScenario(
            "dropout", [w(SampleDropout(rate=0.08))], seed=seed
        ),
        "burst_gap": FaultScenario(
            "burst_gap",
            [w(Gap(), start=0.35, end=0.45, fraction=True)],
            seed=seed,
        ),
        "nan_burst": FaultScenario(
            "nan_burst",
            [
                w(NonFinite(rate=0.02, value="nan")),
                w(NonFinite(rate=0.5, value="mixed"),
                  start=0.3, end=0.5, fraction=True),
            ],
            seed=seed,
        ),
        "saturation": FaultScenario(
            "saturation",
            [w(Saturation(accel_range_g=2.0, gyro_range_dps=250.0))],
            seed=seed,
        ),
        "stuck_axis": FaultScenario(
            "stuck_axis",
            [w(StuckChannel(channel=4), start=0.25, fraction=True)],
            seed=seed,
        ),
        "spikes": FaultScenario(
            "spikes",
            [w(SpikeNoise(rate=0.03))],
            seed=seed,
        ),
        "clock_jitter": FaultScenario(
            "clock_jitter",
            [w(ClockJitter(jitter_std_s=0.002, drift=0.02))],
            seed=seed,
        ),
        "gyro_dead": FaultScenario(
            "gyro_dead",
            [w(SensorDead(sensor="gyro", mode="zero"),
               start=0.2, fraction=True)],
            seed=seed,
        ),
    }
