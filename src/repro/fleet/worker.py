"""Shard worker: one :class:`~repro.serve.ServeEngine` per process.

The front (:mod:`repro.fleet.front`) hash-assigns streams onto N worker
processes; each worker owns one engine on its **own** metrics registry
and drives it through a synchronous message loop over a duplex pipe:

``("round", seq, samples)``
    Submit every ``(stream_id, accel, gyro, t)`` sample, run one
    ``engine.step()``, reply ``("ok", seq, results, stats)`` where
    ``results`` is ``[(stream_id, Detection, health), ...]`` —
    detections are frozen dataclasses of floats, so they pickle back to
    the front bit-exactly.
``("ping", seq)``
    Liveness probe; replies ``("pong", seq)`` without touching the
    engine (the supervisor's heartbeat when a shard has no traffic).
``("adopt", streams)``
    Re-home streams evacuated from a failed sibling shard: build each
    session up front and mark its detector interrupted (no reply).
``("hang", seconds)``
    Test-only chaos: sleep without replying, so the front's reply
    timeout fires and the supervisor treats the shard as hung.
``("stop", seq)``
    Graceful shutdown: replies ``("stopped", seq, entries, report,
    stream_report, spans)`` — the worker registry's metric entries and
    trace spans ship back for the front to merge, the same ship-back
    contract as :mod:`repro.parallel`.

Workers follow the :mod:`repro.parallel` fork-child discipline: the
nested-pool guard env var is set, the inherited global collector is
cleared, and the global NumPy RNG is seeded from ``task_seed(base_seed,
shard_index)`` so any stochastic code inside a shard is deterministic
per shard regardless of spawn order.
"""

from __future__ import annotations

import os
import time

import numpy as np

from ..obs import get_collector, get_logger, tracing_enabled
from ..obs.metrics import MetricsRegistry
from ..parallel import task_seed
from ..serve.engine import ServeEngine

__all__ = ["shard_main"]

_logger = get_logger(__name__)

#: Same guard the parallel pool sets: a worker must never fork pools.
_WORKER_ENV = "REPRO_PARALLEL_WORKER"


def _adopt(engine: ServeEngine, streams: dict) -> None:
    """Rebuild sessions for re-homed streams before any traffic arrives.

    Building eagerly (rather than on first sample) is what makes the
    zero-streams-lost guarantee unconditional: a re-homed stream that
    never sends another sample still has a live, reporting session.
    """
    for stream_id, last_t in streams.items():
        try:
            session = engine.session(stream_id)
            session.detector.note_interruption(last_t)
        except Exception:
            _logger.exception("could not adopt stream %r", stream_id)


def _round_stats(engine: ServeEngine) -> dict:
    """Small per-round stats dict the front folds into its gauges."""
    return {
        "streams": len(engine.stream_ids),
        "samples_in": engine.samples_in,
        "dropped_samples": engine.dropped_samples,
        "windows_inferred": engine.windows_inferred,
        "detections": engine.detections,
    }


def shard_main(conn, shard_index: int, model, serve_config, base_seed: int,
               stream_init: dict, ship_trace: bool = False) -> None:
    """Worker process entry point (module-level: picklable under spawn)."""
    os.environ[_WORKER_ENV] = "1"
    # A fork child inherits the parent's collector contents; shipping
    # those back would double-count, exactly as in repro.parallel.
    collector = get_collector()
    collector.clear()
    collector.enabled = bool(ship_trace) and tracing_enabled()
    np.random.seed(task_seed(base_seed, shard_index))
    registry = MetricsRegistry()
    engine = ServeEngine(model, serve_config, registry=registry)
    registry.gauge("fleet/shard_index").set(float(shard_index))
    _adopt(engine, stream_init or {})
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break  # front is gone; nothing left to serve
        kind = message[0]
        if kind == "round":
            _, seq, samples = message
            results = []
            for stream_id, accel, gyro, t in samples:
                # Engine.submit never raises on load; anything else is a
                # per-sample bug we contain so the shard stays up.
                try:
                    engine.submit(stream_id, np.asarray(accel, dtype=float),
                                  np.asarray(gyro, dtype=float), t)
                except Exception:
                    _logger.exception("submit failed for %r", stream_id)
            try:
                for stream_id, detection in engine.step():
                    results.append((stream_id, detection,
                                    engine.stream_health(stream_id)))
            except Exception:
                _logger.exception("engine.step raised in shard %d",
                                  shard_index)
            try:
                conn.send(("ok", seq, results, _round_stats(engine)))
            except (OSError, ValueError):
                break
        elif kind == "ping":
            _, seq = message
            try:
                conn.send(("pong", seq))
            except (OSError, ValueError):
                break
        elif kind == "adopt":
            _adopt(engine, message[1])
        elif kind == "hang":
            # Chaos injection: a worker stuck in a long syscall/compute.
            time.sleep(float(message[1]))
        elif kind == "stop":
            _, seq = message
            # Per-window latency lives on the detectors, outside the
            # registry; fold the shard's exact merge in under a fleet
            # name so the front's merge_entries aggregates it across
            # shards (identical bucket edges everywhere).
            latency = engine.fleet_latency()
            registry.histogram(
                "fleet/window_latency_ms", buckets=latency.edges,
            ).merge(latency)
            # Same ship-back for the per-stage attribution timers; the
            # stage set is static (repro.obs.STAGES) so cardinality is
            # bounded.  SLO event counters already live in the registry
            # and roll up by plain counter addition.
            stages = engine.fleet_stages()
            if stages is not None:
                for stage, hist in stages.histograms.items():
                    registry.histogram(  # metric-name: dynamic
                        f"fleet/stage/{stage}/latency_ms",
                        buckets=hist.edges,
                    ).merge(hist)
            spans = ([record.to_json() for record in collector.records()]
                     if collector.enabled else [])
            try:
                conn.send((
                    "stopped", seq, registry.entries(), engine.report(),
                    engine.stream_report(), spans,
                ))
            except (OSError, ValueError):
                pass
            break
        else:
            _logger.warning("shard %d ignoring unknown message %r",
                            shard_index, kind)
    conn.close()
