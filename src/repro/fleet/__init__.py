"""``repro.fleet`` — sharded, supervised serving at fleet scale.

One :class:`~repro.serve.ServeEngine` serves many streams in one
process; the ROADMAP's north star needs many processes.  This package
adds the layer above the engine:

* :mod:`repro.fleet.front` — :class:`FleetFront` hash-assigns stream
  ids onto N worker processes, buffers ingest behind bounded per-shard
  queues (oldest-first shedding, never raising), supervises the workers
  (heartbeats, hang timeouts, crash detection), restarts failures on a
  bounded deterministic backoff and re-homes their streams with the
  detector health machine reporting degraded-then-healthy;
* :mod:`repro.fleet.worker` — the per-shard process: one engine on its
  own registry, driven by a synchronous round protocol that ships
  detections (bit-exact), stream health, metrics and spans back to the
  front — the same ship-back contract as :mod:`repro.parallel`;
* :mod:`repro.fleet.sim` — the fleet simulator and scaling benchmark
  (``repro fleet-bench``): diverse synthetic populations under
  ``repro.faults`` scenarios plus the process-level
  :class:`~repro.fleet.sim.WorkerKill` scenario, proving an N-shard
  fleet is byte-identical to a single engine when fault-free and loses
  zero streams across a mid-run worker kill.
"""

from .front import FleetConfig, FleetFront
from .sim import (
    FleetBenchConfig,
    WorkerKill,
    build_population,
    render_fleet_report,
    run_fleet_benchmark,
)

__all__ = [
    "FleetConfig",
    "FleetFront",
    "FleetBenchConfig",
    "WorkerKill",
    "build_population",
    "render_fleet_report",
    "run_fleet_benchmark",
]
