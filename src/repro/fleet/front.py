"""Sharded serving front: hash routing, backpressure, supervision.

:class:`FleetFront` spreads stream ids over N single-engine worker
processes (:mod:`repro.fleet.worker`) and owns everything the workers
must not: routing, bounded ingest buffering, the supervisor loop, the
fleet-wide :class:`~repro.alerts.AlertManager`, and ``fleet/*`` metrics.

Routing & determinism
    ``crc32(stream_id) % n_shards`` — stable across processes and runs.
    Each ``pump()`` dispatches every shard's buffered samples as one
    *round* (all shards compute concurrently), then collects replies in
    shard order.  Worker engines batch under ``batch_invariant``, so a
    stream's detections are bitwise independent of which siblings share
    its shard — an N-shard fleet reproduces a single engine's output
    byte for byte (proven by :mod:`repro.fleet.sim`).

Backpressure
    Per-shard ingest buffers are bounded by ``queue_capacity``; overload
    sheds the *oldest* sample (freshest data wins, as everywhere else in
    the serve path) and counts it on ``fleet/shed_samples``.  ``submit``
    never raises into the caller.

Supervision & failover
    Every pump doubles as a heartbeat: a worker that crashed (dead
    process / broken pipe) or hangs past ``worker_timeout_s`` is killed
    and scheduled for restart on a bounded deterministic
    :class:`~repro.utils.Backoff`.  Its in-flight batch is *redelivered*
    — the reply never arrived, so no detection can double-fire — and its
    streams are re-homed onto the restarted worker, each session rebuilt
    from recorded config with
    :meth:`~repro.core.detector.FallDetector.note_interruption`, so
    re-homed streams re-prime and report degraded-then-healthy.  A shard
    that exhausts its restart budget is failed permanently and its
    streams evacuate to the surviving shards.
"""

from __future__ import annotations

import multiprocessing
import time
import zlib
from collections import deque
from dataclasses import dataclass, field

from ..alerts import AlertConfig, AlertManager
from ..core.detector import Detection
from ..obs import (
    Histogram,
    get_collector,
    get_logger,
    get_registry,
    tracing_enabled,
)
from ..obs.trace import SpanRecord
from ..serve.engine import ServeConfig
from ..utils import Backoff
from .worker import shard_main

__all__ = ["FleetConfig", "FleetFront"]

_logger = get_logger(__name__)

#: Round-trip latency buckets (ms): same edges as the serve engine's
#: batch latency, so fleet and shard histograms merge exactly.
_ROUND_BUCKETS_MS = tuple(0.01 * 2 ** i for i in range(23))


def _default_serve() -> ServeConfig:
    # Workers default to a shared metric namespace: per-stream series
    # times n_shards would flood the merged registry at fleet scale.
    return ServeConfig(per_stream_metrics=False)


@dataclass(frozen=True)
class FleetConfig:
    """Topology, backpressure and supervision knobs for one fleet."""

    #: Worker process count; streams hash onto shards by crc32.
    n_shards: int = 4
    #: Per-worker engine configuration (detector, batching, quarantine).
    serve: ServeConfig = field(default_factory=_default_serve)
    #: Bound on each shard's front-side ingest buffer, in samples;
    #: overflow sheds oldest-first and counts ``fleet/shed_samples``.
    queue_capacity: int = 4096
    #: A dispatched round unanswered for this long marks the shard hung.
    worker_timeout_s: float = 10.0
    #: Idle shards (no buffered samples) still get an empty heartbeat
    #: round when they have not replied within this interval.
    heartbeat_interval_s: float = 2.0
    #: Restart schedule after a crash/hang: bounded deterministic
    #: exponential backoff, reset by the first healthy round.
    restart_initial_s: float = 0.05
    restart_factor: float = 2.0
    restart_max_s: float = 2.0
    #: Consecutive failed restarts before the shard is failed permanently
    #: and its streams evacuate to the surviving shards.
    max_restarts: int = 5
    #: Seeds ``task_seed(base_seed, shard_index)`` in every worker.
    base_seed: int = 0
    #: Arm a fleet-wide alert pipeline at the front (single event-store
    #: writer); detections and stream health ship back with each round.
    alerts: AlertConfig | None = None

    def __post_init__(self):
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.worker_timeout_s <= 0:
            raise ValueError("worker_timeout_s must be positive")
        if self.max_restarts < 1:
            raise ValueError("max_restarts must be >= 1")


class _Shard:
    """Mutable per-shard supervisor state (process handle + buffers)."""

    __slots__ = ("index", "process", "conn", "pending", "inflight",
                 "backoff", "restart_at", "seq", "failed", "last_reply",
                 "last_stats")

    def __init__(self, index: int, backoff: Backoff):
        self.index = index
        self.process = None
        self.conn = None
        self.pending: deque = deque()
        self.inflight: list = []
        self.backoff = backoff
        self.restart_at: float | None = None
        self.seq = 0
        self.failed = False
        self.last_reply = 0.0
        self.last_stats: dict = {}

    @property
    def up(self) -> bool:
        return self.process is not None


class FleetFront:
    """Sharded, supervised serving front over N worker processes.

    Usage::

        front = FleetFront(model, FleetConfig(n_shards=4))
        for sample in telemetry:
            front.submit(sample.stream_id, sample.accel, sample.gyro,
                         t=sample.t)
            ...
        for stream_id, detection in front.pump():   # dispatch + collect
            page(stream_id, detection)
        report = front.close()
    """

    def __init__(self, model, config: FleetConfig | None = None, *,
                 registry=None):
        self.model = model
        self.config = config or FleetConfig()
        self.registry = registry if registry is not None else get_registry()
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        self._ship_trace = tracing_enabled()
        cfg = self.config
        self._home: dict[str, int] = {}
        self._last_t: dict[str, float] = {}
        self._health: dict[str, str] = {}
        # Hot-path totals as plain ints, synced to registry counters once
        # per pump — the same discipline as ServeEngine.
        self.samples_in = 0
        self.shed_samples = 0
        self.dropped_samples = 0
        self.redelivered_samples = 0
        self.rounds = 0
        self.detections = 0
        self.worker_crashes = 0
        self.worker_timeouts = 0
        self.worker_restarts = 0
        self.worker_failures = 0
        self.rehomed_streams = 0
        self.send_errors = 0
        self.max_queue_depth = 0
        self._synced: dict[str, int] = {}
        self._round_hist = self.registry.histogram(
            "fleet/round_ms", buckets=_ROUND_BUCKETS_MS)
        self._shards_gauge = self.registry.gauge("fleet/shards_live")
        self._streams_gauge = self.registry.gauge("fleet/streams")
        self._depth_gauge = self.registry.gauge("fleet/queue_depth")
        self.alerts = (AlertManager(cfg.alerts, registry=self.registry)
                       if cfg.alerts is not None else None)
        self._latest_t: float | None = None
        #: Stream time of the latest completed pump — the liveness stamp
        #: ``/healthz`` reports (mirrors ``ServeEngine.last_round_t``).
        self.last_round_t: float | None = None
        self._merged_latency = Histogram(buckets=_ROUND_BUCKETS_MS)
        #: stage -> merged histogram, populated by :meth:`close` from the
        #: workers' ``fleet/stage/<stage>/latency_ms`` ship-back.
        self._merged_stages: dict[str, Histogram] = {}
        self._final_reports: dict[int, dict] = {}
        self._final_streams: dict[str, dict] = {}
        self._closed = False
        self._shards = [
            _Shard(i, Backoff(cfg.restart_initial_s, cfg.restart_factor,
                              cfg.restart_max_s, cfg.max_restarts))
            for i in range(cfg.n_shards)
        ]
        for shard in self._shards:
            self._spawn(shard, {})

    # ------------------------------------------------------------------
    # routing & ingestion
    # ------------------------------------------------------------------
    def shard_for(self, stream_id: str) -> int | None:
        """The shard currently homing ``stream_id`` (assigns on first
        sight; ``None`` only when every shard has failed permanently)."""
        home = self._home.get(stream_id)
        if home is not None and not self._shards[home].failed:
            return home
        candidates = [s.index for s in self._shards if not s.failed]
        if not candidates:
            return None
        digest = zlib.crc32(stream_id.encode("utf-8"))
        home = candidates[digest % len(candidates)]
        self._home[stream_id] = home
        return home

    def submit(self, stream_id: str, accel_g, gyro_dps,
               t: float | None = None) -> bool:
        """Buffer one sample for its shard; False when shed or dropped.

        Never raises on load: a full shard buffer sheds its oldest
        sample, and a fleet with no surviving shards drops (both
        counted).
        """
        home = self.shard_for(stream_id)
        if home is None:
            self.dropped_samples += 1
            return False
        ax, ay, az = accel_g
        gx, gy, gz = gyro_dps
        # Plain-float tuples pickle smaller than ndarray rows and
        # round-trip float64 exactly — the bit-identity proof depends on
        # the pipe being lossless.
        sample = (stream_id, (float(ax), float(ay), float(az)),
                  (float(gx), float(gy), float(gz)),
                  None if t is None else float(t))
        shard = self._shards[home]
        shed = False
        if len(shard.pending) >= self.config.queue_capacity:
            shard.pending.popleft()
            self.shed_samples += 1
            shed = True
        shard.pending.append(sample)
        self.samples_in += 1
        if t is not None:
            self._last_t[stream_id] = float(t)
            if self._latest_t is None or t > self._latest_t:
                self._latest_t = float(t)
        return not shed

    # ------------------------------------------------------------------
    # the supervisor/pump loop
    # ------------------------------------------------------------------
    def pump(self) -> list[tuple[str, Detection]]:
        """One fleet round: restart due shards, dispatch every shard's
        buffered samples, collect replies, feed alerts.

        Doubles as the supervisor heartbeat — crashed or hung shards are
        detected here, their in-flight batch is re-queued for
        redelivery, and their restart is scheduled on the backoff.
        Returns ``(stream_id, detection)`` pairs, shards in index order.
        """
        now = time.monotonic()
        self._restart_due(now)
        detections: list[tuple[str, Detection]] = []
        depth = max((len(s.pending) for s in self._shards), default=0)
        self.max_queue_depth = max(self.max_queue_depth, depth)
        self._depth_gauge.set(float(depth))
        dispatched: list[tuple[_Shard, float]] = []
        for shard in self._shards:
            if not shard.up:
                continue
            if (not shard.pending
                    and now - shard.last_reply
                    < self.config.heartbeat_interval_s):
                continue  # idle and recently alive: skip the empty round
            batch = list(shard.pending)
            shard.pending.clear()
            try:
                shard.conn.send(("round", shard.seq, batch))
            except (OSError, ValueError):
                self.send_errors += 1
                self._requeue(shard, batch)
                self._mark_down(shard, crashed=True)
                continue
            shard.inflight = batch
            shard.seq += 1
            dispatched.append((shard, time.perf_counter()))
        for shard, t0 in dispatched:
            reply, timed_out = self._recv(shard)
            if reply is None or reply[0] != "ok":
                self._requeue(shard, shard.inflight)
                self._mark_down(shard, crashed=not timed_out)
                continue
            self._round_hist.observe(1000.0 * (time.perf_counter() - t0))
            shard.inflight = []
            shard.last_reply = time.monotonic()
            shard.backoff.reset()
            _, _, results, stats = reply
            shard.last_stats = stats
            for stream_id, detection, health in results:
                self.detections += 1
                self._health[stream_id] = health
                detections.append((stream_id, detection))
        self.rounds += 1
        if self._latest_t is not None:
            self.last_round_t = self._latest_t
        if self.alerts is not None:
            self._feed_alerts(detections)
        self._sync_metrics()
        return detections

    def drain(self, max_rounds: int = 64) -> list[tuple[str, Detection]]:
        """Pump until no shard holds buffered samples (end of feed).

        A shard that is down-but-restartable still owns its backlog, so
        the drain must outlast its backoff: when only down shards hold
        samples, sleep until the earliest scheduled restart rather than
        abandoning the queue.
        """
        detections: list[tuple[str, Detection]] = []
        for _ in range(max_rounds):
            detections.extend(self.pump())
            holders = [s for s in self._shards if s.pending and not s.failed]
            if not holders:
                break
            if not any(s.up for s in holders):
                due = [s.restart_at for s in holders
                       if s.restart_at is not None]
                if not due:
                    break  # nothing will ever come back for these
                wait = max(0.0, min(due) - time.monotonic())
                if wait:
                    time.sleep(wait)
        return detections

    def heartbeat(self) -> list[int]:
        """Ping every live shard; returns indexes that failed to answer
        (each is marked down and scheduled for restart)."""
        failed = []
        for shard in list(self._shards):
            if not shard.up:
                continue
            try:
                shard.conn.send(("ping", shard.seq))
                shard.seq += 1
                reply, timed_out = self._recv(shard)
            except (OSError, ValueError):
                reply, timed_out = None, False
            if reply is None or reply[0] != "pong":
                self._mark_down(shard, crashed=not timed_out)
                failed.append(shard.index)
            else:
                shard.last_reply = time.monotonic()
        return failed

    def _recv(self, shard: _Shard):
        """``(reply, timed_out)`` from one shard, bounded by
        ``worker_timeout_s``; a dead process short-circuits the wait
        (after draining any reply it managed to write before dying).

        The caller classifies crash vs hang from ``timed_out``, NOT from
        ``process.is_alive()``: a SIGKILLed child closes its pipe end
        before the kernel marks it a zombie, so on a busy box the front
        can observe the EOF while ``is_alive()`` still (briefly) reports
        True — the pipe's cause of death is the reliable signal."""
        deadline = time.monotonic() + self.config.worker_timeout_s
        while True:
            try:
                if shard.conn.poll(0.05):
                    return shard.conn.recv(), False
            except (EOFError, OSError):
                return None, False
            if not shard.process.is_alive():
                try:
                    if shard.conn.poll(0):
                        return shard.conn.recv(), False
                except (EOFError, OSError):
                    pass
                return None, False
            if time.monotonic() >= deadline:
                return None, True

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------
    def _requeue(self, shard: _Shard, batch: list) -> None:
        """Redeliver an unacknowledged batch: its reply never arrived, so
        no detection from it was consumed — re-processing on the rebuilt
        sessions cannot double-fire."""
        if not batch:
            shard.inflight = []
            return
        shard.pending.extendleft(reversed(batch))
        self.redelivered_samples += len(batch)
        while len(shard.pending) > self.config.queue_capacity:
            shard.pending.popleft()
            self.shed_samples += 1
        shard.inflight = []

    def _mark_down(self, shard: _Shard, *, crashed: bool) -> None:
        if crashed:
            self.worker_crashes += 1
        else:
            self.worker_timeouts += 1
        if shard.process is not None:
            if shard.process.is_alive():
                shard.process.kill()
            shard.process.join(timeout=5.0)
            shard.process = None
        if shard.conn is not None:
            try:
                shard.conn.close()
            except OSError:
                pass
            shard.conn = None
        if shard.backoff.exhausted:
            shard.failed = True
            shard.restart_at = None
            self.worker_failures += 1
            _logger.error("shard %d failed permanently after %d restarts; "
                          "evacuating its streams", shard.index,
                          shard.backoff.attempts)
            self._evacuate(shard)
        else:
            delay = shard.backoff.next()
            shard.restart_at = time.monotonic() + delay
            _logger.warning(
                "shard %d %s; restart in %.3fs (attempt %d/%d)",
                shard.index, "crashed" if crashed else "hung", delay,
                shard.backoff.attempts, shard.backoff.max_attempts,
            )

    def _evacuate(self, shard: _Shard) -> None:
        """Move a permanently failed shard's streams and buffered samples
        to the survivors (rebuilt sessions marked interrupted)."""
        victims = [sid for sid, home in self._home.items()
                   if home == shard.index]
        adopted: dict[int, dict] = {}
        for stream_id in victims:
            del self._home[stream_id]
            new_home = self.shard_for(stream_id)
            if new_home is None:
                continue  # nowhere left; future submits count as dropped
            adopted.setdefault(new_home, {})[stream_id] = (
                self._last_t.get(stream_id))
            self.rehomed_streams += 1
        for index, streams in adopted.items():
            target = self._shards[index]
            try:
                target.conn.send(("adopt", streams))
            except (OSError, ValueError):
                self.send_errors += 1
        for sample in shard.pending:
            home = self._home.get(sample[0])
            if home is None:
                self.dropped_samples += 1
                continue
            target = self._shards[home]
            if len(target.pending) >= self.config.queue_capacity:
                target.pending.popleft()
                self.shed_samples += 1
            target.pending.append(sample)
        shard.pending.clear()

    def _restart_due(self, now: float) -> None:
        for shard in self._shards:
            if (shard.up or shard.failed or shard.restart_at is None
                    or now < shard.restart_at):
                continue
            streams = {sid: self._last_t.get(sid)
                       for sid, home in self._home.items()
                       if home == shard.index}
            self._spawn(shard, streams)
            self.worker_restarts += 1
            self.rehomed_streams += len(streams)
            _logger.info("shard %d restarted; re-homed %d stream(s)",
                         shard.index, len(streams))

    def _spawn(self, shard: _Shard, stream_init: dict) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=shard_main,
            args=(child_conn, shard.index, self.model, self.config.serve,
                  self.config.base_seed, stream_init, self._ship_trace),
            daemon=True,
            name=f"repro-fleet-shard-{shard.index}",
        )
        process.start()
        child_conn.close()
        shard.process = process
        shard.conn = parent_conn
        shard.restart_at = None
        shard.last_reply = time.monotonic()

    # ------------------------------------------------------------------
    # chaos injection (process-level fault scenarios)
    # ------------------------------------------------------------------
    def kill_worker(self, index: int) -> bool:
        """SIGKILL one worker mid-run (crash-failover scenario)."""
        shard = self._shards[index]
        if not shard.up:
            return False
        shard.process.kill()
        return True

    def hang_worker(self, index: int, seconds: float) -> bool:
        """Make one worker sleep through its next message (hang-detection
        scenario); the supervisor should time it out and restart it."""
        shard = self._shards[index]
        if not shard.up:
            return False
        try:
            shard.conn.send(("hang", float(seconds)))
        except (OSError, ValueError):
            return False
        return True

    # ------------------------------------------------------------------
    # alerts & metrics
    # ------------------------------------------------------------------
    def _feed_alerts(self, detections) -> None:
        for stream_id, detection in detections:
            self.alerts.observe(
                stream_id,
                t=detection.time_s,
                probability=detection.probability,
                source=detection.source,
                health=self._health.get(stream_id, "healthy"),
            )
        if self._latest_t is not None:
            self.alerts.tick(self._latest_t)

    def _sync_metrics(self) -> None:
        self._shards_gauge.set(float(sum(s.up for s in self._shards)))
        self._streams_gauge.set(float(len(self._home)))
        for name in ("samples_in", "shed_samples", "dropped_samples",
                     "redelivered_samples", "rounds", "detections",
                     "worker_crashes", "worker_timeouts", "worker_restarts",
                     "worker_failures", "rehomed_streams", "send_errors"):
            total = getattr(self, name)
            delta = total - self._synced.get(name, 0)
            if delta:
                self.registry.counter(  # metric-name: dynamic
                    f"fleet/{name}").inc(delta)
                self._synced[name] = total

    # ------------------------------------------------------------------
    # reporting & shutdown
    # ------------------------------------------------------------------
    @property
    def live_shards(self) -> list[int]:
        return [s.index for s in self._shards if s.up]

    @property
    def stream_ids(self) -> list[str]:
        return list(self._home)

    def fleet_latency(self) -> Histogram:
        """Per-window latency merged across every stopped worker (exact
        merge of identical bucket edges; populated by :meth:`close`)."""
        fleet = Histogram(buckets=_ROUND_BUCKETS_MS)
        fleet.merge(self._merged_latency)
        return fleet

    def fleet_stage_latency(self) -> dict:
        """``stage -> Histogram`` of per-stage attribution merged across
        every stopped worker (populated by :meth:`close`)."""
        out = {}
        for stage, hist in self._merged_stages.items():
            merged = Histogram(buckets=hist.edges)
            merged.merge(hist)
            out[stage] = merged
        return out

    def slo_rollup(self) -> dict:
        """Fleet-wide SLO event/bad totals from the merged registry.

        Workers count ``slo/<objective>/events`` / ``slo/<objective>/bad``
        into their registries; after :meth:`close` the front's
        ``merge_entries`` has already rolled them up by counter addition,
        so this is just a readout keyed by objective.
        """
        snapshot = self.registry.snapshot()
        rollup: dict[str, dict] = {}
        for name, value in snapshot.items():
            parts = name.split("/")
            if len(parts) != 3 or parts[0] != "slo":
                continue
            _, objective, kind = parts
            if kind not in ("events", "bad"):
                continue
            entry = rollup.setdefault(objective, {"events": 0, "bad": 0})
            entry[kind] = int(value)
        for entry in rollup.values():
            entry["bad_fraction"] = (entry["bad"] / entry["events"]
                                     if entry["events"] else 0.0)
        return rollup

    def report(self) -> dict:
        out = {
            "shards": self.config.n_shards,
            "shards_live": len(self.live_shards),
            "streams": len(self._home),
            "samples_in": self.samples_in,
            "shed_samples": self.shed_samples,
            "dropped_samples": self.dropped_samples,
            "redelivered_samples": self.redelivered_samples,
            "rounds": self.rounds,
            "last_round_t": self.last_round_t,
            "detections": self.detections,
            "worker_crashes": self.worker_crashes,
            "worker_timeouts": self.worker_timeouts,
            "worker_restarts": self.worker_restarts,
            "worker_failures": self.worker_failures,
            "rehomed_streams": self.rehomed_streams,
            "send_errors": self.send_errors,
            "max_queue_depth": self.max_queue_depth,
            "round_ms": self._round_hist.summary(),
        }
        if self.alerts is not None:
            out["alerts"] = self.alerts.report()
        slo = self.slo_rollup()
        if slo:
            out["slo"] = slo
        return out

    def stream_report(self) -> dict:
        """Final per-stream session reports (populated by :meth:`close`;
        the authoritative zero-streams-lost accounting)."""
        return dict(self._final_streams)

    def shard_reports(self) -> dict:
        """Final per-shard engine reports (populated by :meth:`close`)."""
        return dict(self._final_reports)

    def close(self) -> dict:
        """Stop every worker, merge its metrics/spans/latency histogram
        back into the front registry, and return the fleet report."""
        if self._closed:
            return self.report()
        self._closed = True
        stopping = []
        for shard in self._shards:
            if not shard.up:
                continue
            try:
                shard.conn.send(("stop", shard.seq))
                shard.seq += 1
                stopping.append(shard)
            except (OSError, ValueError):
                self.send_errors += 1
        collector = get_collector()
        for shard in stopping:
            reply, _ = self._recv(shard)
            if reply is not None and reply[0] == "stopped":
                _, _, entries, report, stream_report, spans = reply
                self.registry.merge_entries(entries)
                self._final_reports[shard.index] = report
                self._final_streams.update(stream_report)
                for record in spans:
                    try:
                        collector.adopt(SpanRecord.from_json(record))
                    except Exception:  # pragma: no cover - defensive
                        _logger.exception("could not adopt worker span")
                for entry in entries:
                    if entry.get("type") != "histogram":
                        continue
                    name = entry["name"]
                    if name == "fleet/window_latency_ms":
                        self._merged_latency.merge(Histogram.from_entry(entry))
                    elif (name.startswith("fleet/stage/")
                            and name.endswith("/latency_ms")):
                        stage = name[len("fleet/stage/"):-len("/latency_ms")]
                        hist = Histogram.from_entry(entry)
                        merged = self._merged_stages.get(stage)
                        if merged is None:
                            self._merged_stages[stage] = hist
                        else:
                            merged.merge(hist)
            shard.process.join(timeout=5.0)
            if shard.process.is_alive():  # pragma: no cover - defensive
                shard.process.kill()
                shard.process.join(timeout=5.0)
            shard.process = None
            shard.conn.close()
            shard.conn = None
        self._sync_metrics()
        return self.report()
