"""Fleet simulator + scaling benchmark (``repro fleet-bench``).

Drives a diverse synthetic population — subjects and tasks drawn from
:mod:`repro.datasets.synthesis`, a slice of streams carrying
:mod:`repro.faults` scenarios — through three arms:

1. **single-engine** — every stream on one :class:`ServeEngine`, the
   reference the fleet must reproduce byte for byte;
2. **fleet / fault-free** — the same feed through an N-shard
   :class:`~repro.fleet.front.FleetFront`; per-stream detections are
   compared to arm 1 (``mismatched_streams`` must stay empty: sharding,
   pipes and batching change nothing);
3. **fleet / worker-kill** — a :class:`WorkerKill` process-level
   scenario (the fleet sibling of the signal-level ``repro.faults``
   suite) SIGKILLs one shard mid-run with alerting armed, proving
   crash-recovery failover: zero streams lost, every session re-homed,
   detections resume on a guaranteed post-kill impact pulse, and alerts
   still page through the :class:`~repro.alerts.AlertManager`.

The rendered report (streams/core, p99 batch latency, queue depth,
shed/redelivery/recovery counts) is archived to
``benchmarks/results/fleet_scaling.txt`` by ``make fleet-bench``.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field

import numpy as np

from ..alerts import AlertConfig, EscalationConfig, EventStoreConfig
from ..core.detector import DetectorConfig
from ..datasets import make_subjects, synthesize_recording
from ..datasets.tasks import adl_ids, fall_ids, get_task
from ..faults import builtin_scenarios
from ..obs import render_exposition
from ..obs.metrics import MetricsRegistry
from ..serve.engine import ServeConfig, ServeEngine
from .front import FleetConfig, FleetFront

__all__ = [
    "WorkerKill",
    "FleetBenchConfig",
    "build_population",
    "run_fleet_benchmark",
    "render_fleet_report",
]


@dataclass(frozen=True)
class WorkerKill:
    """Process-level fault scenario: SIGKILL one shard worker mid-run.

    The fleet-level sibling of the signal-level scenarios in
    :func:`repro.faults.builtin_scenarios` — instead of corrupting
    samples, it takes out the process serving a sixteenth of the fleet.
    """

    shard: int = 1
    at_s: float = 2.0


@dataclass(frozen=True)
class FleetBenchConfig:
    """Population shape and fleet topology for the benchmark."""

    n_streams: int = 64
    n_shards: int = 4
    seed: int = 19
    detector: DetectorConfig = field(default_factory=DetectorConfig)
    #: Compresses nominal task durations (floors keep falls >= 6 s and
    #: ADLs >= 4 s, so every stream outlives the kill + pulse schedule).
    duration_scale: float = 0.35
    #: Leading streams carrying a repro.faults scenario (round-robin over
    #: ``scenario_names``); the rest of the population stays clean.
    fault_streams: int = 8
    scenario_names: tuple = ("spike_noise", "sample_dropout",
                             "clock_jitter", "nan_burst")
    #: The process-level scenario for arm 3; ``None`` skips that arm.
    kill: WorkerKill | None = field(default_factory=WorkerKill)
    #: Guaranteed impact pulse on *every* stream after the kill, so
    #: "detections resume on re-homed streams" is checkable per stream.
    pulse_at_s: float = 3.2
    pulse_peak_g: float = 4.0
    #: Front-side per-shard buffer: sized so a restart-length outage
    #: backlogs without shedding (shed stays bounded — here, zero).
    queue_capacity: int = 16384
    #: Generous: the kill arm detects the SIGKILL through the dead-process
    #: short-circuit, so this only guards true hangs — and a loaded 1-core
    #: box can stretch a legitimate round past a tight timeout, which
    #: would misclassify it as hung and skew the crash accounting.
    worker_timeout_s: float = 60.0
    restart_initial_s: float = 0.02
    #: Persist the kill arm's alert store here; ``None`` keeps it in
    #: memory.
    store_dir: str | None = None

    def __post_init__(self):
        if self.n_streams < 1:
            raise ValueError("n_streams must be >= 1")
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if not 0 <= self.fault_streams <= self.n_streams:
            raise ValueError("fault_streams must fit in the population")
        if self.kill is not None and not (
                0 <= self.kill.shard < self.n_shards):
            raise ValueError("kill.shard must name a real shard")


def build_population(config: FleetBenchConfig) -> dict:
    """Synthesize the stream population once; every arm replays the same
    arrays, so cross-arm identity is by construction data-identical.

    Returns ``{stream_id: (accel, gyro, t, faulted)}``.
    """
    subjects = make_subjects("FL", max(4, min(config.n_streams, 16)),
                             config.seed)
    adl, falls = adl_ids(), fall_ids()
    scenarios = builtin_scenarios(seed=config.seed)
    names = [name for name in config.scenario_names if name in scenarios]
    population = {}
    for i in range(config.n_streams):
        subject = subjects[i % len(subjects)]
        task_id = falls[i % len(falls)] if i % 3 == 0 else adl[i % len(adl)]
        recording = synthesize_recording(
            get_task(task_id), subject, trial=i,
            duration_scale=config.duration_scale, base_seed=config.seed,
        )
        accel = np.array(recording.accel, dtype=float)
        gyro = np.array(recording.gyro, dtype=float)
        fs = float(recording.fs)
        t = np.arange(len(accel)) / fs
        # The guaranteed post-kill impact: a smooth high-g pulse late in
        # every stream (clamped inside the shortest recordings).
        at = min(config.pulse_at_s, float(t[-1]) - 0.4)
        envelope = np.exp(-0.5 * ((t - at) / 0.1) ** 2)
        accel[:, 2] += (config.pulse_peak_g - 1.0) * envelope
        faulted = bool(names) and i < config.fault_streams
        if faulted:
            scenario = scenarios[names[i % len(names)]]
            t, accel, gyro = scenario.apply_arrays(t, accel, gyro)
        population[f"s{i:03d}"] = (accel, gyro, t, faulted)
    return population


def _drive_single(model, population, config: FleetBenchConfig) -> dict:
    """Arm 1: the whole population on one engine (the bit-identity
    reference), submit per tick, step per hop — the fleet's cadence."""
    registry = MetricsRegistry()
    engine = ServeEngine(
        model,
        ServeConfig(detector=config.detector, per_stream_metrics=False),
        registry=registry,
    )
    hop = config.detector.hop_samples
    n = max(len(t) for _, _, t, _ in population.values())
    detections = {sid: [] for sid in population}
    start = time.perf_counter()
    for i in range(n):
        for sid, (accel, gyro, t, _) in population.items():
            if i < len(t):
                engine.submit(sid, accel[i], gyro[i], t[i])
        if (i + 1) % hop == 0:
            for sid, hit in engine.step():
                detections[sid].append(hit)
    for sid, hit in engine.step():
        detections[sid].append(hit)
    report = engine.report()
    return {
        "detections": detections,
        "wall_s": time.perf_counter() - start,
        "report": report,
        "windows": report["windows_inferred"],
        "shed": report["dropped_samples"],
        "p99_batch_ms": report["batch_latency_ms"]["p99"],
    }


def _drive_fleet(model, population, config: FleetBenchConfig, *,
                 kill: WorkerKill | None, alerts: AlertConfig | None) -> dict:
    """Arms 2/3: the same feed through an N-shard front."""
    registry = MetricsRegistry()
    fleet_config = FleetConfig(
        n_shards=config.n_shards,
        serve=ServeConfig(detector=config.detector,
                          per_stream_metrics=False),
        queue_capacity=config.queue_capacity,
        worker_timeout_s=config.worker_timeout_s,
        restart_initial_s=config.restart_initial_s,
        base_seed=config.seed,
        alerts=alerts,
    )
    front = FleetFront(model, fleet_config, registry=registry)
    hop = config.detector.hop_samples
    fs = config.detector.fs
    n = max(len(t) for _, _, t, _ in population.values())
    detections = {sid: [] for sid in population}
    killed = False
    start = time.perf_counter()
    for i in range(n):
        for sid, (accel, gyro, t, _) in population.items():
            if i < len(t):
                front.submit(sid, accel[i], gyro[i], t[i])
        if (kill is not None and not killed
                and (i + 1) / fs >= kill.at_s):
            front.kill_worker(kill.shard)
            killed = True
        if (i + 1) % hop == 0:
            for sid, hit in front.pump():
                detections[sid].append(hit)
    for sid, hit in front.drain():
        detections[sid].append(hit)
    report = front.close()
    wall = time.perf_counter() - start
    windows = sum(r.get("windows_inferred", 0)
                  for r in front.shard_reports().values())
    return {
        "detections": detections,
        "wall_s": wall,
        "report": report,
        "stream_report": front.stream_report(),
        "windows": windows,
        "shed": report["shed_samples"],
        "p99_batch_ms": report["round_ms"]["p99"],
        "window_latency": front.fleet_latency().summary(),
        "exposition": render_exposition(registry),
        "killed": killed,
    }


def run_fleet_benchmark(model, config: FleetBenchConfig | None = None) -> dict:
    """All three arms over one shared population; returns the full result
    dict (render with :func:`render_fleet_report`)."""
    config = config or FleetBenchConfig()
    population = build_population(config)
    stream_seconds = sum(float(t[-1]) for _, _, t, _ in population.values())

    single = _drive_single(model, population, config)
    fleet = _drive_fleet(model, population, config, kill=None, alerts=None)
    mismatched = [sid for sid in population
                  if fleet["detections"][sid] != single["detections"][sid]]

    result = {
        "n_streams": config.n_streams,
        "n_shards": config.n_shards,
        "stream_seconds": stream_seconds,
        "single": single,
        "fleet": fleet,
        "mismatched_streams": mismatched,
        "streams_per_core": (stream_seconds / fleet["wall_s"]
                             if fleet["wall_s"] > 0 else 0.0),
    }
    if config.kill is None:
        return result

    store = (EventStoreConfig(root=config.store_dir)
             if config.store_dir is not None else None)
    alerts = AlertConfig(
        escalation=EscalationConfig(confirm_window_s=1.5,
                                    confirm_detections=1,
                                    auto_resolve_s=3.0),
        dedup_horizon_s=4.0,
        store=store,
        per_stream_metrics=False,
    )
    killarm = _drive_fleet(model, population, config,
                           kill=config.kill, alerts=alerts)
    killed_streams = sorted(
        sid for sid in population
        if zlib.crc32(sid.encode("utf-8")) % config.n_shards
        == config.kill.shard
    )
    clean_killed = [sid for sid in killed_streams
                    if not population[sid][3]]
    pulse_floor = config.pulse_at_s - 0.5
    resumed = [sid for sid in clean_killed
               if any(d.time_s >= pulse_floor
                      for d in killarm["detections"][sid])]
    lost = sorted(set(population) - set(killarm["stream_report"]))
    result.update({
        "kill": killarm,
        "kill_scenario": {"shard": config.kill.shard,
                          "at_s": config.kill.at_s},
        "killed_streams": killed_streams,
        "clean_killed_streams": clean_killed,
        "resumed_streams": resumed,
        "lost_streams": lost,
    })
    return result


def render_fleet_report(result: dict) -> str:
    """Human-readable fleet scaling/failover table for archiving."""
    lines = [
        f"fleet serving benchmark — {result['n_streams']} streams over "
        f"{result['n_shards']} shards (1 core)",
        "",
        "arm                  wall_s   windows  detections   shed  "
        "p99 batch ms",
    ]

    def _row(name, arm):
        det = sum(len(v) for v in arm["detections"].values())
        p99 = arm["p99_batch_ms"]
        lines.append(
            f"{name:<20} {arm['wall_s']:>6.2f} {arm['windows']:>9} "
            f"{det:>11} {arm['shed']:>6} "
            f"{'--' if p99 is None else format(p99, '.2f'):>12}"
        )

    _row("single-engine", result["single"])
    _row("fleet/fault-free", result["fleet"])
    if "kill" in result:
        _row("fleet/worker-kill", result["kill"])
    matched = result["n_streams"] - len(result["mismatched_streams"])
    lines += [
        "",
        f"bit-identity (fault-free): {matched}/{result['n_streams']} "
        f"streams byte-identical to the single engine "
        f"({len(result['mismatched_streams'])} mismatched)",
        f"throughput: {result['stream_seconds']:.0f} stream-seconds in "
        f"{result['fleet']['wall_s']:.2f}s wall -> "
        f"{result['streams_per_core']:.1f} real-time streams/core",
    ]
    if "kill" in result:
        kill = result["kill"]
        report = kill["report"]
        scenario = result["kill_scenario"]
        window = kill["window_latency"]
        lines += [
            "",
            f"failover (worker-kill scenario: shard {scenario['shard']} "
            f"at t={scenario['at_s']:.1f}s):",
            f"  crashes={report['worker_crashes']} "
            f"timeouts={report['worker_timeouts']} "
            f"restarts={report['worker_restarts']} "
            f"rehomed_streams={report['rehomed_streams']} "
            f"permanent_failures={report['worker_failures']}",
            f"  streams lost: {len(result['lost_streams'])}/"
            f"{result['n_streams']}"
            + (f" ({', '.join(result['lost_streams'])})"
               if result["lost_streams"] else
               " — every session re-homed and reporting"),
            f"  detections resumed on {len(result['resumed_streams'])}/"
            f"{len(result['clean_killed_streams'])} clean re-homed "
            f"streams (post-kill pulse)",
            f"  shed={report['shed_samples']} "
            f"redelivered={report['redelivered_samples']} "
            f"max_queue_depth={report['max_queue_depth']}",
            f"  merged window latency: "
            f"p50={window['p50'] if window['p50'] is not None else 0:.2f} "
            f"p99={window['p99'] if window['p99'] is not None else 0:.2f} ms "
            f"({window['count']} windows)",
        ]
        alerts = report.get("alerts")
        if alerts:
            lines.append(
                f"  alerts: raised={alerts['raised']} "
                f"deduped={alerts['deduped']} "
                f"suspect={alerts['active_by_severity'].get('suspect', 0)} "
                f"resolved={alerts['resolved']}"
            )
    return "\n".join(lines)
