"""Deployment report: does the model fit and run on the STM32F722?

Combines the flash/RAM footprints and the Cortex-M7 latency model into the
Section IV-C readout, including hard feasibility checks against the
paper's board (256 KiB flash, 256 KiB RAM, 10 ms sample period at 100 Hz).
"""

from __future__ import annotations

from .cortex_m7 import (
    CortexM7Config,
    estimate_energy,
    estimate_fusion_cycles_per_sample,
    estimate_latency,
)
from .memory import flash_footprint, ram_footprint

__all__ = ["STM32F722", "deployment_report"]

#: The paper's target device.
STM32F722 = {
    "name": "STM32F722RET6",
    "flash_bytes": 256 * 1024,
    "ram_bytes": 256 * 1024,
    "clock_hz": 216e6,
}


def deployment_report(
    qmodel,
    fs: float = 100.0,
    hop_samples: int | None = None,
    config: CortexM7Config | None = None,
    device: dict | None = None,
) -> dict:
    """Full deployability analysis of a quantized model.

    ``hop_samples`` is how many new samples arrive between inferences
    (window * (1 - overlap)); the real-time constraint is that one
    inference plus the per-sample DSP of a hop fits inside the hop.
    """
    config = config or CortexM7Config()
    device = device or STM32F722
    flash = flash_footprint(qmodel)
    ram = ram_footprint(qmodel)
    latency = estimate_latency(qmodel, config)
    window = int(qmodel.input_shape[0])
    hop = hop_samples if hop_samples is not None else max(window // 2, 1)
    fusion_cycles = estimate_fusion_cycles_per_sample(config)
    fusion_ms_per_hop = fusion_cycles * hop / config.clock_hz * 1e3
    hop_budget_ms = hop / fs * 1e3
    total_per_hop_ms = latency["total_ms"] + fusion_ms_per_hop
    energy = estimate_energy(qmodel, fs=fs, hop_samples=hop, config=config)
    return {
        "energy": energy,
        "device": device["name"],
        "flash_kib": flash["total_kib"],
        "flash_breakdown": flash,
        "ram_kib": ram["total_kib"],
        "ram_breakdown": ram,
        "latency_ms": latency["total_ms"],
        "latency_breakdown": latency,
        "fusion_ms": fusion_ms_per_hop,
        "hop_samples": hop,
        "hop_budget_ms": hop_budget_ms,
        "real_time_margin": hop_budget_ms / total_per_hop_ms
        if total_per_hop_ms > 0
        else float("inf"),
        "fits_flash": flash["total_bytes"] <= device["flash_bytes"],
        "fits_ram": ram["total_bytes"] <= device["ram_bytes"],
        "meets_deadline": total_per_hop_ms <= hop_budget_ms,
    }
