"""Analytical Cortex-M7 (STM32F722) execution-cost model.

The paper deploys on an STM32F722RET6: ARM Cortex-M7 at 216 MHz, 256 KiB
flash and RAM, with FPU.  We model int8 inference cost per lowered op:

* MAC throughput — the M7's SMLAD issues 2 multiply-accumulates per cycle,
  but realistic CMSIS-NN/X-CUBE-AI kernels sustain well under that on
  small layers because of loads, address arithmetic and edge handling.
  The default ``int8_macs_per_cycle = 0.55`` reflects published CMSIS-NN
  numbers for layer sizes in this regime.
* per-element costs — requantization (Q31 multiply + shifts), pooling
  comparisons, copies.
* per-layer fixed overhead — kernel dispatch, im2col setup.

Absolute numbers from an analytical model will not match a stopwatch on
the authors' board; the comparison target is the *order* (milliseconds,
comfortably inside a 10 ms sample period) and the scaling across window
sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CortexM7Config", "estimate_op_cycles", "estimate_latency",
           "estimate_fusion_cycles_per_sample", "estimate_energy"]


@dataclass(frozen=True)
class CortexM7Config:
    """Tunable cost-model constants."""

    clock_hz: float = 216e6
    int8_macs_per_cycle: float = 0.55
    requant_cycles_per_elem: float = 6.0
    pool_cycles_per_elem: float = 3.0
    copy_cycles_per_byte: float = 0.75
    layer_overhead_cycles: float = 1500.0
    #: software sigmoid (LUT + interpolation) per element.
    sigmoid_cycles: float = 60.0
    #: float32 ops per cycle with the single-precision FPU.
    fpu_flops_per_cycle: float = 0.8
    #: Active-run current draw.  STM32F722 datasheet: ~100 mA typical at
    #: 216 MHz executing from flash with ART cache, i.e. ~0.46 mA/MHz;
    #: 0.5 keeps a little margin.
    active_ma_per_mhz: float = 0.5
    #: Sleep/idle current between inferences (Stop mode with RTC), mA.
    sleep_ma: float = 0.05
    #: Supply voltage, V.
    supply_v: float = 3.3

    @property
    def cycle_time_s(self) -> float:
        return 1.0 / self.clock_hz


def _elems(shape) -> int:
    return int(np.prod(shape))


def estimate_op_cycles(op, node_shapes, config: CortexM7Config) -> float:
    """Cycle estimate for one lowered :class:`repro.quant.QOp`."""
    out_elems = _elems(node_shapes[op.output_uid])
    cycles = config.layer_overhead_cycles
    if op.kind in ("conv1d", "dense"):
        cycles += op.macs_per_inference / config.int8_macs_per_cycle
        cycles += out_elems * config.requant_cycles_per_elem
        if getattr(op, "activation", None) == "sigmoid":
            cycles += out_elems * config.sigmoid_cycles
    elif op.kind == "maxpool1d":
        in_elems = _elems(node_shapes[op.input_uids[0]])
        cycles += in_elems * config.pool_cycles_per_elem
    elif op.kind == "concatenate":
        cycles += out_elems * (config.requant_cycles_per_elem
                               + config.copy_cycles_per_byte)
    else:  # passthrough reindex/copy
        cycles += out_elems * config.copy_cycles_per_byte
    return cycles


def estimate_latency(qmodel, config: CortexM7Config | None = None) -> dict:
    """Per-inference latency breakdown for a quantized model.

    Returns ``{"total_ms", "total_cycles", "per_op": [(name, kind, ms)]}``.
    """
    config = config or CortexM7Config()
    per_op = []
    total_cycles = 0.0
    for op in qmodel.ops:
        cycles = estimate_op_cycles(op, qmodel.node_shapes, config)
        total_cycles += cycles
        per_op.append((op.name, op.kind, cycles * config.cycle_time_s * 1e3))
    return {
        "total_cycles": total_cycles,
        "total_ms": total_cycles * config.cycle_time_s * 1e3,
        "per_op": per_op,
        "clock_mhz": config.clock_hz / 1e6,
    }


def estimate_energy(
    qmodel,
    fs: float = 100.0,
    hop_samples: int | None = None,
    config: CortexM7Config | None = None,
) -> dict:
    """Average power / per-inference energy of the always-on detector.

    The MCU runs one inference plus per-sample DSP every hop, sleeping the
    rest of the time.  Returns µJ per inference and the duty-cycled mean
    current — the number that sizes the jacket's battery.
    """
    config = config or CortexM7Config()
    window = int(qmodel.input_shape[0])
    hop = hop_samples if hop_samples is not None else max(window // 2, 1)
    active_ma = config.active_ma_per_mhz * config.clock_hz / 1e6
    inference_s = estimate_latency(qmodel, config)["total_cycles"] / config.clock_hz
    fusion_s = (estimate_fusion_cycles_per_sample(config) * hop
                / config.clock_hz)
    hop_s = hop / fs
    active_s = min(inference_s + fusion_s, hop_s)
    duty = active_s / hop_s
    mean_ma = duty * active_ma + (1.0 - duty) * config.sleep_ma
    energy_uj = active_s * active_ma * 1e-3 * config.supply_v * 1e6
    return {
        "inference_energy_uj": energy_uj,
        "duty_cycle": duty,
        "mean_current_ma": mean_ma,
        "mean_power_mw": mean_ma * config.supply_v,
        "active_current_ma": active_ma,
    }


def estimate_fusion_cycles_per_sample(
    config: CortexM7Config | None = None, channels: int = 9,
    filter_sections: int = 2,
) -> float:
    """Cycles of the pre-model DSP per incoming sample.

    Complementary filter (2 atan2, 1 sqrt, ~20 mul/add) plus the
    Butterworth cascade (per section, per channel: 5 MACs).  Software
    atan2/sqrt on the FPU ≈ 50–80 cycles each.
    """
    config = config or CortexM7Config()
    trig_cycles = 2 * 70.0 + 60.0  # atan2 x2, sqrt
    fuse_flops = 25.0
    filter_flops = filter_sections * channels * 9.0
    return trig_cycles + (fuse_flops + filter_flops) / config.fpu_flops_per_cycle
