"""``repro.edge`` — STM32F722 deployment analysis and C code generation."""

from .codegen import generate_c_source
from .cortex_m7 import (
    CortexM7Config,
    estimate_energy,
    estimate_fusion_cycles_per_sample,
    estimate_latency,
    estimate_op_cycles,
)
from .deploy import STM32F722, deployment_report
from .memory import TensorLife, flash_footprint, plan_arena, ram_footprint

__all__ = [
    "CortexM7Config",
    "estimate_op_cycles",
    "estimate_latency",
    "estimate_fusion_cycles_per_sample",
    "estimate_energy",
    "TensorLife",
    "plan_arena",
    "flash_footprint",
    "ram_footprint",
    "STM32F722",
    "deployment_report",
    "generate_c_source",
]
