"""C code generation for the quantized CNN.

Emits a single self-contained C99 translation unit implementing the int8
inference pipeline — weights as ``static const int8_t`` arrays, int32
biases, Q31 requantization multipliers, and straight-line layer loops —
the way an embedded engineer would hand-port the model to the STM32F722.

The generated arithmetic mirrors :mod:`repro.quant.qmodel` bit for bit
(same rounding, same saturation), which the test-suite verifies by
compiling the output with the host compiler and comparing probabilities
against the Python integer executor.
"""

from __future__ import annotations

import numpy as np

from ..quant.qmodel import QuantizedModel, _QConcatenate, _QConv1D, _QDense

__all__ = ["generate_c_source"]


def _fmt_array(name: str, ctype: str, values: np.ndarray, per_line=12) -> str:
    flat = np.asarray(values).reshape(-1)
    body_lines = []
    for i in range(0, flat.size, per_line):
        chunk = ", ".join(str(int(v)) for v in flat[i : i + per_line])
        body_lines.append("    " + chunk + ("," if i + per_line < flat.size else ""))
    body = "\n".join(body_lines)
    return f"static const {ctype} {name}[{flat.size}] = {{\n{body}\n}};"


_PREAMBLE = """\
#include <stdint.h>
#include <string.h>
#include <math.h>

/* TFLite-style saturating requantization: acc * m0 * 2^-31 >> shift. */
static inline int8_t requant(int64_t acc, int32_t m0, int32_t shift,
                             int32_t zp) {
    if (shift < 0) acc <<= -shift; /* left shift at full precision first */
    int64_t prod = acc * (int64_t)m0;
    int64_t high = (prod + (1LL << 30)) >> 31;
    if (shift > 0) {
        int64_t point = 1LL << (shift - 1);
        high = (high + point + (high < 0 ? -1 : 0)) >> shift;
    }
    int64_t out = high + zp;
    if (out < -128) out = -128;
    if (out > 127) out = 127;
    return (int8_t)out;
}

static inline int8_t quantize_input(float x, float scale, int32_t zp) {
    float q = x / scale;
    /* round half to even, like numpy rint */
    float r = nearbyintf(q);
    int32_t v = (int32_t)r + zp;
    if (v < -128) v = -128;
    if (v > 127) v = 127;
    return (int8_t)v;
}
"""


def _buffer_name(uid: int) -> str:
    return f"t{uid}"


def _emit_conv1d(op: _QConv1D, shapes, lines):
    t_in, c_in = shapes[op.input_uids[0]]
    t_out, c_out = shapes[op.output_uid]
    k = op.kernel_size
    src = _buffer_name(op.input_uids[0])
    dst = _buffer_name(op.output_uid)
    p = op.name
    relu = op.activation == "relu"
    lines.append(f"    /* conv1d {op.name}: ({t_in}x{c_in}) -> ({t_out}x{c_out}) */")
    lines.append(f"    for (int t = 0; t < {t_out}; ++t) {{")
    lines.append(f"        for (int co = 0; co < {c_out}; ++co) {{")
    lines.append(f"            int64_t acc = b_{p}[co];")
    lines.append(f"            for (int kk = 0; kk < {k}; ++kk)")
    lines.append(f"                for (int ci = 0; ci < {c_in}; ++ci)")
    lines.append(
        f"                    acc += (int64_t)((int32_t){src}[(t + kk) * {c_in}"
        f" + ci] - ({op.in_params.zero_point})) *"
        f" w_{p}[(kk * {c_in} + ci) * {c_out} + co];"
    )
    lines.append(
        f"            int8_t v = requant(acc, m0_{p}[co], sh_{p}[co],"
        f" {op.out_params.zero_point});"
    )
    if relu:
        lines.append(
            f"            if (v < {op.out_params.zero_point}) v = "
            f"{op.out_params.zero_point};"
        )
    lines.append(f"            {dst}[t * {c_out} + co] = v;")
    lines.append("        }")
    lines.append("    }")


def _emit_dense(op: _QDense, shapes, lines):
    (n_in,) = shapes[op.input_uids[0]]
    (n_out,) = shapes[op.output_uid]
    src = _buffer_name(op.input_uids[0])
    dst = _buffer_name(op.output_uid)
    p = op.name
    lines.append(f"    /* dense {op.name}: {n_in} -> {n_out} */")
    lines.append(f"    for (int o = 0; o < {n_out}; ++o) {{")
    lines.append(f"        int64_t acc = b_{p}[o];")
    lines.append(f"        for (int i = 0; i < {n_in}; ++i)")
    lines.append(
        f"            acc += (int64_t)((int32_t){src}[i] - "
        f"({op.in_params.zero_point})) * w_{p}[i * {n_out} + o];"
    )
    lines.append(
        f"        int8_t v = requant(acc, m0_{p}[o], sh_{p}[o], "
        f"{op.out_params.zero_point});"
    )
    if op.activation == "relu":
        lines.append(
            f"        if (v < {op.out_params.zero_point}) v = "
            f"{op.out_params.zero_point};"
        )
    lines.append(f"        {dst}[o] = v;")
    lines.append("    }")


def _emit_maxpool(op, shapes, lines):
    t_in, c = shapes[op.input_uids[0]]
    t_out, _ = shapes[op.output_uid]
    src = _buffer_name(op.input_uids[0])
    dst = _buffer_name(op.output_uid)
    lines.append(f"    /* maxpool {op.name}: pool={op.pool} stride={op.strides} */")
    lines.append(f"    for (int t = 0; t < {t_out}; ++t) {{")
    lines.append(f"        for (int c = 0; c < {c}; ++c) {{")
    lines.append(f"            int8_t best = {src}[(t * {op.strides}) * {c} + c];")
    lines.append(f"            for (int k = 1; k < {op.pool}; ++k) {{")
    lines.append(
        f"                int8_t v = {src}[(t * {op.strides} + k) * {c} + c];"
    )
    lines.append("                if (v > best) best = v;")
    lines.append("            }")
    lines.append(f"            {dst}[t * {c} + c] = best;")
    lines.append("        }")
    lines.append("    }")


def _emit_slice(op, shapes, lines, layer_info):
    t, c_in = shapes[op.input_uids[0]]
    _, c_out = shapes[op.output_uid]
    start = layer_info["start"]
    src = _buffer_name(op.input_uids[0])
    dst = _buffer_name(op.output_uid)
    lines.append(f"    /* slice {op.name}: cols [{start}, {start + c_out}) */")
    lines.append(f"    for (int t = 0; t < {t}; ++t)")
    lines.append(f"        for (int c = 0; c < {c_out}; ++c)")
    lines.append(
        f"            {dst}[t * {c_out} + c] = {src}[t * {c_in} + c + {start}];"
    )


def _emit_flatten(op, shapes, lines):
    size = int(np.prod(shapes[op.output_uid]))
    src = _buffer_name(op.input_uids[0])
    dst = _buffer_name(op.output_uid)
    lines.append(f"    memcpy({dst}, {src}, {size}); /* flatten {op.name} */")


def _emit_concat(op: _QConcatenate, shapes, lines):
    dst = _buffer_name(op.output_uid)
    lines.append(f"    /* concat {op.name} (with per-input rescale) */")
    offset = 0
    for uid, params, mult in zip(op.input_uids, op.in_params, op.mults):
        size = int(np.prod(shapes[uid]))
        src = _buffer_name(uid)
        lines.append(f"    for (int i = 0; i < {size}; ++i)")
        lines.append(
            f"        {dst}[{offset} + i] = requant((int64_t)((int32_t)"
            f"{src}[i] - ({params.zero_point})), {mult.m0}, "
            f"{mult.right_shift}, {op.out_params.zero_point});"
        )
        offset += size


def generate_c_source(
    qmodel: QuantizedModel,
    name: str = "fall_cnn",
    include_main: bool = False,
    test_input: np.ndarray | None = None,
) -> str:
    """Emit the complete C file.

    With ``include_main`` a ``main()`` is appended that runs baked-in test
    input(s) and prints each output probability with 6 decimals — used by
    the cross-validation test against the Python executor.
    """
    shapes = qmodel.node_shapes
    parts = [
        f"/* Auto-generated int8 inference code: {name}.",
        " * Input: float[{}] (row-major window x channels).".format(
            int(np.prod(qmodel.input_shape))
        ),
        " * Output: probability of a pre-impact fall. */",
        _PREAMBLE,
    ]
    # Weight/bias/multiplier tables.
    for op in qmodel.ops:
        if isinstance(op, (_QConv1D, _QDense)):
            parts.append(_fmt_array(f"w_{op.name}", "int8_t", op.q_weights))
            parts.append(_fmt_array(f"b_{op.name}", "int32_t", op.q_bias))
            parts.append(
                _fmt_array(f"m0_{op.name}", "int32_t",
                           np.array([m.m0 for m in op.mults]))
            )
            parts.append(
                _fmt_array(f"sh_{op.name}", "int32_t",
                           np.array([m.right_shift for m in op.mults]))
            )
    # Activation buffers (one per tensor; an arena would overlay them).
    for uid, shape in shapes.items():
        parts.append(f"static int8_t {_buffer_name(uid)}[{int(np.prod(shape))}];")

    in_size = int(np.prod(qmodel.input_shape))
    lines = [
        f"float {name}_invoke(const float *input) {{",
        f"    for (int i = 0; i < {in_size}; ++i)",
        f"        {_buffer_name(qmodel.input_uid)}[i] = quantize_input("
        f"input[i], {qmodel.input_params.scale:.10e}f, "
        f"{qmodel.input_params.zero_point});",
    ]
    for op in qmodel.ops:
        if isinstance(op, _QConv1D):
            _emit_conv1d(op, shapes, lines)
        elif isinstance(op, _QDense):
            _emit_dense(op, shapes, lines)
        elif op.kind == "maxpool1d":
            _emit_maxpool(op, shapes, lines)
        elif op.kind == "slice":
            _emit_slice(op, shapes, lines, {"start": op.slice_start})
        elif op.kind in ("flatten", "reshape", "dropout"):
            _emit_flatten(op, shapes, lines)
        elif op.kind == "concatenate":
            _emit_concat(op, shapes, lines)
        else:
            raise ValueError(f"no C emitter for op kind {op.kind!r}")
    out_op = qmodel._output_op
    out_buf = _buffer_name(qmodel.output_uid)
    if out_op is not None:
        scale = out_op.out_params.scale
        zp = out_op.out_params.zero_point
        lines.append(
            f"    float logit = ((int32_t){out_buf}[0] - ({zp})) * "
            f"{scale:.10e}f;"
        )
        lines.append("    return 1.0f / (1.0f + expf(-logit));")
    else:
        final = qmodel.ops[-1].out_params
        lines.append(
            f"    return ((int32_t){out_buf}[0] - ({final.zero_point})) * "
            f"{final.scale:.10e}f;"
        )
    lines.append("}")
    parts.append("\n".join(lines))

    if include_main:
        if test_input is None:
            raise ValueError("include_main requires test_input")
        test_input = np.asarray(test_input, dtype=np.float64)
        if test_input.ndim == len(qmodel.input_shape):
            test_input = test_input[None]
        flat = test_input.reshape(len(test_input), -1)
        parts.append("#include <stdio.h>")
        rows = []
        for row in flat:
            rows.append("{" + ", ".join(f"{v:.9e}f" for v in row) + "}")
        parts.append(
            f"static const float test_inputs[{len(flat)}][{flat.shape[1]}] = {{\n"
            + ",\n".join("    " + r for r in rows)
            + "\n};"
        )
        parts.append(
            "int main(void) {\n"
            f"    for (int i = 0; i < {len(flat)}; ++i)\n"
            f'        printf("%.6f\\n", {name}_invoke(test_inputs[i]));\n'
            "    return 0;\n"
            "}"
        )
    return "\n\n".join(parts) + "\n"
