"""Flash and RAM footprint estimation.

Flash: int8 weights + int32 biases + per-op quantization metadata + a
fixed graph/runtime header — the "model size" figure (paper: 67.03 KiB).

RAM: a *planned activation arena*.  Tensors are int8; each lives from the
op that produces it to its last consumer.  A greedy best-offset planner
packs them so lifetimes that do not overlap share memory — the same idea
TFLite-Micro's memory planner uses — plus the persistent streaming buffers
(window ring buffer, filter/fusion state).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TensorLife", "plan_arena", "flash_footprint", "ram_footprint"]


@dataclass(frozen=True)
class TensorLife:
    """One tensor's size and [start, end] op-index lifetime (inclusive)."""

    uid: int
    size_bytes: int
    start: int
    end: int

    def overlaps(self, other: "TensorLife") -> bool:
        return not (self.end < other.start or other.end < self.start)


def _tensor_lifetimes(qmodel) -> list[TensorLife]:
    produced_at = {qmodel.input_uid: 0}
    last_used = {qmodel.input_uid: 0}
    for i, op in enumerate(qmodel.ops, start=1):
        produced_at[op.output_uid] = i
        last_used.setdefault(op.output_uid, i)
        for uid in op.input_uids:
            last_used[uid] = max(last_used.get(uid, 0), i)
    # The network output must survive past the last op.
    last_used[qmodel.output_uid] = len(qmodel.ops) + 1
    lives = []
    for uid, start in produced_at.items():
        size = int(np.prod(qmodel.node_shapes[uid]))  # int8 -> 1 B/elem
        lives.append(TensorLife(uid, size, start, last_used[uid]))
    return lives


def plan_arena(qmodel) -> dict:
    """Greedy offset assignment; returns the packed arena layout.

    Tensors are placed largest-first at the lowest offset where they do not
    collide with an already-placed, lifetime-overlapping tensor.  Never
    worse than the sum of all tensor sizes, and in practice close to the
    max over time of live bytes (also reported as ``lower_bound``).
    """
    lives = sorted(_tensor_lifetimes(qmodel),
                   key=lambda t: (-t.size_bytes, t.uid))
    placed: list[tuple[TensorLife, int]] = []
    peak = 0
    offsets = {}
    for tensor in lives:
        conflicts = sorted(
            (off, off + other.size_bytes)
            for other, off in placed
            if tensor.overlaps(other)
        )
        offset = 0
        for lo, hi in conflicts:
            if offset + tensor.size_bytes <= lo:
                break
            offset = max(offset, hi)
        placed.append((tensor, offset))
        offsets[tensor.uid] = offset
        peak = max(peak, offset + tensor.size_bytes)
    # Lower bound: max over op steps of simultaneously-live bytes.
    steps = max((t.end for t in lives), default=0) + 1
    live_bytes = np.zeros(steps, dtype=np.int64)
    for t in lives:
        live_bytes[t.start : t.end + 1] += t.size_bytes
    return {
        "arena_bytes": peak,
        "lower_bound_bytes": int(live_bytes.max()) if steps else 0,
        "naive_bytes": int(sum(t.size_bytes for t in lives)),
        "offsets": offsets,
    }


#: Fixed flash cost per lowered op: descriptor, shapes, qparams.
_OP_METADATA_BYTES = 48
#: Per output channel: Q31 multiplier (4 B) + shift (1 B, padded to 4).
_PER_CHANNEL_META_BYTES = 8
#: Graph header + runtime glue baked into flash.
_RUNTIME_HEADER_BYTES = 2048


def flash_footprint(qmodel) -> dict:
    """Model flash usage breakdown in bytes (and KiB)."""
    weight_bytes = qmodel.weight_bytes
    bias_bytes = qmodel.bias_bytes
    meta = _RUNTIME_HEADER_BYTES
    for op in qmodel.ops:
        meta += _OP_METADATA_BYTES
        if op.q_bias is not None and op.kind in ("conv1d", "dense"):
            meta += len(op.q_bias) * _PER_CHANNEL_META_BYTES
    total = weight_bytes + bias_bytes + meta
    return {
        "weight_bytes": weight_bytes,
        "bias_bytes": bias_bytes,
        "metadata_bytes": meta,
        "total_bytes": total,
        "total_kib": total / 1024.0,
    }


#: Persistent (non-arena) RAM: streaming state kept between samples.
def _persistent_bytes(qmodel, fs_window_samples: int = 40,
                      channels: int = 9) -> int:
    ring_buffer = fs_window_samples * channels * 4   # float32 window
    filter_state = 2 * 2 * channels * 4              # 2 SOS sections
    fusion_state = 8 * 4                             # angles + consts
    scratch = 256                                    # stack/misc
    return ring_buffer + filter_state + fusion_state + scratch


def ram_footprint(qmodel, window_samples: int | None = None) -> dict:
    """Total RAM: planned activation arena + persistent streaming state."""
    window = window_samples or int(qmodel.input_shape[0])
    arena = plan_arena(qmodel)
    persistent = _persistent_bytes(qmodel, window,
                                   int(qmodel.input_shape[-1]))
    total = arena["arena_bytes"] + persistent
    return {
        "arena_bytes": arena["arena_bytes"],
        "arena_lower_bound_bytes": arena["lower_bound_bytes"],
        "arena_naive_bytes": arena["naive_bytes"],
        "persistent_bytes": persistent,
        "total_bytes": total,
        "total_kib": total / 1024.0,
    }
