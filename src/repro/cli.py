"""Command-line interface: regenerate any table or figure of the paper.

Usage::

    python -m repro table3 --scale quick
    python -m repro table4
    python -m repro edge
    python -m repro sweep --scale bench
    python -m repro ablations
    python -m repro thresholds
    python -m repro figure1 --task 39
    python -m repro figure2
    python -m repro dataset --out corpus.npz --subjects 4
    python -m repro profile --scale quick --trace-out trace.jsonl
    python -m repro faults --scenarios dropout gyro_dead
    python -m repro serve-bench --streams 32 --duration 8
    python -m repro quant-bench --streams 32 --prune-fraction 0.5
    python -m repro fleet-bench --streams 64 --shards 4
    python -m repro alerts --scenarios spikes nan_burst
    python -m repro slo --scenarios nan_burst spikes
    python -m repro serve-http --port 8787 --serve-for 60
    python -m repro replay benchmarks/results/incidents/incident-....jsonl
    python -m repro tail --streams 8 --duration 6 --once
    python -m repro --jobs 4 sweep --scale bench
    python -m repro cache --prune-mb 500

Every command prints the same paper-vs-measured report the benchmark
harness archives.  ``--verbose`` (repeatable) turns on the library's
logging at INFO / DEBUG.
"""

from __future__ import annotations

import argparse
import logging
import os
import sys

from .eval.reports import (
    format_table,
    render_alert_report,
    render_edge_report,
    render_faults_report,
    render_profile_report,
    render_slo_report,
    render_table3,
    render_table4,
)
from .experiments import get_scale
from .obs import configure_logging

__all__ = ["main", "build_parser"]


def _install_stop_handler():
    """SIGTERM/SIGINT -> a ``threading.Event`` instead of an abrupt exit.

    The long-running commands (``serve-http``, ``tail``) poll the event
    so a signal triggers the same graceful path as a finished workload:
    seal the event store, flush pending incidents, stop the HTTP server.
    Returns the event; installation is a no-op off the main thread.
    """
    import signal
    import threading

    stop = threading.Event()
    if threading.current_thread() is not threading.main_thread():
        return stop

    def _handle(signum, frame):
        stop.set()

    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, _handle)
        except (ValueError, OSError):  # pragma: no cover - exotic host
            pass
    return stop


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce tables/figures of 'A Lightweight CNN for "
                    "Real-Time Pre-Impact Fall Detection' (DATE 2025).",
    )
    parser.add_argument(
        "--scale", default=None, choices=["quick", "bench", "paper"],
        help="experiment scale (default: $REPRO_SCALE or 'bench')",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="log progress to stderr (-v: INFO, -vv: DEBUG)",
    )
    parser.add_argument(
        "-j", "--jobs", type=int, default=None,
        help="worker processes for fold/grid execution (default: "
             "$REPRO_JOBS or serial; 0 = all cores); results are "
             "bit-identical for any value",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("table1", help="threshold-detector baselines (Table I)")
    table3 = sub.add_parser("table3", help="model comparison (Table III)")
    table3.add_argument("--windows", type=float, nargs="+",
                        default=[200.0, 300.0, 400.0])
    sub.add_parser("table4", help="event-level analysis (Table IV)")
    sub.add_parser("edge", help="quantization + deployment (Section IV-C)")
    sub.add_parser("sweep", help="window/overlap design sweep (Section III-A)")
    sub.add_parser("ablations", help="design-choice ablations")
    figure1 = sub.add_parser("figure1", help="fall-stage anatomy (Figure 1)")
    figure1.add_argument("--task", type=int, default=30)
    figure1.add_argument("--seed", type=int, default=42)
    sub.add_parser("figure2", help="pipeline trace (Figure 2)")
    dataset = sub.add_parser("dataset",
                             help="generate + save a synthetic corpus")
    dataset.add_argument("--out", required=True)
    dataset.add_argument("--subjects", type=int, default=4)
    dataset.add_argument("--trials", type=int, default=1)
    dataset.add_argument("--duration-scale", type=float, default=0.5)
    dataset.add_argument("--seed", type=int, default=7)
    profile = sub.add_parser(
        "profile",
        help="trace a pipeline+train+detector workload; print the span "
             "tree, latency histogram and airbag margins",
    )
    profile.add_argument("--deadline-ms", type=float, default=None,
                         help="real-time deadline per window inference "
                              "(default: the hop interval)")
    profile.add_argument("--epochs", type=int, default=4,
                         help="cap on training epochs for the workload")
    profile.add_argument("--layer-timing", action="store_true",
                         help="also record per-layer forward timings")
    profile.add_argument("--trace-out", default=None,
                         help="write the collected spans to this JSONL file")
    faults = sub.add_parser(
        "faults",
        help="fault-injection robustness: stream held-out recordings "
             "through the detector clean and under each fault scenario",
    )
    faults.add_argument("--scenarios", nargs="+", default=None,
                        help="subset of built-in scenario names "
                             "(default: all)")
    faults.add_argument("--epochs", type=int, default=4,
                        help="cap on training epochs for the detector CNN")
    faults.add_argument("--fallback-only", action="store_true",
                        help="disable the CNN branch: evaluate the "
                             "magnitude fallback detector alone")
    faults.add_argument("--deadline-ms", type=float, default=None,
                        help="real-time deadline per window inference "
                             "(default: the hop interval)")
    faults.add_argument("--incident-dir", default=None,
                        help="arm a flight recorder on the evaluation "
                             "detector and write incident files here")
    faults.add_argument("--max-incidents", type=int, default=None,
                        help="cap on incident files kept in --incident-dir "
                             "(oldest pruned first; default: unbounded)")
    replay = sub.add_parser(
        "replay",
        help="deterministically re-run a flight-recorder incident file "
             "and diff probabilities/decisions against the record",
    )
    replay.add_argument("incident", help="incident .jsonl file to replay")
    replay.add_argument("--weights", default=None,
                        help="rebuild the CNN from this weights file and "
                             "recompute probabilities live (default: "
                             "replay the recorded probabilities)")
    tail = sub.add_parser(
        "tail",
        help="live terminal dashboard over a flight-recording serve "
             "engine fed synthetic streams (two with injected faults)",
    )
    tail.add_argument("--streams", type=int, default=8,
                      help="number of concurrent synthetic streams")
    tail.add_argument("--duration", type=float, default=6.0,
                      help="seconds of signal per stream")
    tail.add_argument("--seed", type=int, default=11,
                      help="workload generator seed")
    tail.add_argument("--once", action="store_true",
                      help="render one final frame instead of refreshing")
    tail.add_argument("--metrics-out", default=None,
                      help="write the closing Prometheus exposition here")
    tail.add_argument("--incident-dir", default=None,
                      help="write per-stream incident files here")
    serve_bench = sub.add_parser(
        "serve-bench",
        help="multi-stream serving benchmark: micro-batched ServeEngine "
             "vs sequential per-stream detectors",
    )
    serve_bench.add_argument("--streams", type=int, default=32,
                             help="number of concurrent synthetic streams")
    serve_bench.add_argument("--duration", type=float, default=8.0,
                             help="seconds of signal per stream")
    serve_bench.add_argument("--seed", type=int, default=7,
                             help="workload generator seed")
    quant_bench = sub.add_parser(
        "quant-bench",
        help="quantized serving benchmark: float32 vs int8 vs int8+pruned "
             "backends through ServeEngine, with sensitivity parity",
    )
    quant_bench.add_argument("--streams", type=int, default=32,
                             help="number of concurrent synthetic streams")
    quant_bench.add_argument("--duration", type=float, default=8.0,
                             help="seconds of signal per stream")
    quant_bench.add_argument("--seed", type=int, default=7,
                             help="workload generator seed")
    quant_bench.add_argument("--prune-fraction", type=float, default=0.5,
                             help="fraction of conv filters removed by "
                                  "structured pruning")
    fleet_bench = sub.add_parser(
        "fleet-bench",
        help="sharded fleet serving benchmark: N worker processes vs a "
             "single engine (bit-identity), plus a worker-kill failover "
             "arm with crash recovery",
    )
    fleet_bench.add_argument("--streams", type=int, default=64,
                             help="population size across the fleet")
    fleet_bench.add_argument("--shards", type=int, default=4,
                             help="worker processes to shard onto")
    fleet_bench.add_argument("--duration-scale", type=float, default=0.35,
                             help="compress nominal task durations")
    fleet_bench.add_argument("--seed", type=int, default=19,
                             help="population generator seed")
    fleet_bench.add_argument("--kill-shard", type=int, default=1,
                             help="shard the worker-kill scenario targets")
    fleet_bench.add_argument("--kill-at", type=float, default=2.0,
                             help="stream-seconds into the run to SIGKILL "
                                  "the target shard")
    fleet_bench.add_argument("--no-kill", action="store_true",
                             help="skip the failover arm (bit-identity "
                                  "comparison only)")
    fleet_bench.add_argument("--store-dir", default=None,
                             help="persist the kill arm's alert event "
                                  "store here")
    alerts = sub.add_parser(
        "alerts",
        help="alert-pipeline evaluation: serve a synthetic fleet under "
             "each fault scenario and report raised/deduped/demoted "
             "alerts and event-store contents",
    )
    alerts.add_argument("--scenarios", nargs="+", default=None,
                        help="subset of built-in scenario names "
                             "(default: all)")
    alerts.add_argument("--streams", type=int, default=4,
                        help="fleet size per condition")
    alerts.add_argument("--faulted", type=int, default=2,
                        help="streams carrying the fault scenario")
    alerts.add_argument("--duration", type=float, default=8.0,
                        help="seconds of signal per stream")
    alerts.add_argument("--seed", type=int, default=13,
                        help="workload generator seed")
    alerts.add_argument("--store-dir", default=None,
                        help="write per-scenario alert event stores "
                             "under this directory")
    slo = sub.add_parser(
        "slo",
        help="SLO engine evaluation: per-stage latency-budget attribution "
             "plus error-budget / burn-rate status per condition (clean, "
             "fault scenarios, synthetic overload)",
    )
    slo.add_argument("--scenarios", nargs="+", default=None,
                     help="fault-scenario names to include as conditions "
                          "(default: nan_burst spikes)")
    slo.add_argument("--streams", type=int, default=4,
                     help="fleet size per condition")
    slo.add_argument("--duration", type=float, default=6.0,
                     help="seconds of signal per stream")
    slo.add_argument("--seed", type=int, default=17,
                     help="workload generator seed")
    slo.add_argument("--overload-ms", type=float, default=180.0,
                     help="synthetic latency charged per batch in the "
                          "overload condition (must exceed the 150 ms "
                          "budget to burn)")
    serve_http = sub.add_parser(
        "serve-http",
        help="run the alerting fleet once, then expose /metrics /healthz "
             "/alerts /slo /dashboard over HTTP until Ctrl-C "
             "(or --serve-for)",
    )
    serve_http.add_argument("--streams", type=int, default=8,
                            help="number of concurrent synthetic streams")
    serve_http.add_argument("--duration", type=float, default=6.0,
                            help="seconds of signal per stream")
    serve_http.add_argument("--seed", type=int, default=11,
                            help="workload generator seed")
    serve_http.add_argument("--host", default="127.0.0.1",
                            help="bind address")
    serve_http.add_argument("--port", type=int, default=8787,
                            help="bind port (0 = ephemeral)")
    serve_http.add_argument("--store-dir", default=None,
                            help="persist the alert event store here")
    serve_http.add_argument("--serve-for", type=float, default=None,
                            help="seconds to keep serving "
                                 "(default: until Ctrl-C)")
    cache = sub.add_parser(
        "cache",
        help="inspect or manage the on-disk artifact cache "
             "(datasets/segments; see $REPRO_CACHE_DIR)",
    )
    cache.add_argument("--clear", action="store_true",
                       help="delete every cached artifact")
    cache.add_argument("--prune-mb", type=float, default=None,
                       help="evict oldest entries until the cache is "
                            "under this many megabytes")
    return parser


def _cmd_table1(scale):
    from .experiments import run_table1_thresholds

    results = run_table1_thresholds(scale)
    rows = [
        [name, f"{100 * r['accuracy']:.2f}", f"{100 * r['f1']:.2f}",
         f"tp={r['tp']} fp={r['fp']} tn={r['tn']} fn={r['fn']}"]
        for name, r in results.items()
    ]
    return format_table(["Detector", "Acc %", "F1 %", "Confusion"], rows,
                        title="Threshold baselines (event level)")


def _cmd_table3(scale, windows):
    from .experiments import run_table3

    return render_table3(run_table3(scale, windows=tuple(windows)),
                         title="Table III (measured / paper)")


def _cmd_table4(scale):
    from .experiments import run_table4

    return render_table4(run_table4(scale)["report"],
                         title="Table IV (measured / paper)")


def _cmd_edge(scale):
    from .experiments import run_edge_experiment

    result = run_edge_experiment(scale)
    lines = [render_edge_report(result["report"])]
    lines.append(
        f"decision agreement float vs int8: "
        f"{100 * result['decision_agreement']:.2f} %  "
        f"(F1 drop {result['f1_drop_points']:.2f} points)"
    )
    return "\n".join(lines)


def _cmd_sweep(scale):
    from .experiments import run_window_sweep

    grid = run_window_sweep(scale)
    rows = [
        [f"{w} ms", f"{o:.0%}", f"{m['f1']:6.2f}"]
        for (w, o), m in sorted(grid.items())
    ]
    return format_table(["Window", "Overlap", "F1 %"], rows,
                        title="Window/overlap sweep (proposed CNN)")


def _cmd_ablations(scale):
    from .experiments import run_ablations

    results = run_ablations(scale)
    rows = [
        [name, f"{r['metrics']['f1']:6.2f}", f"{r['fall_miss_rate']:6.2f}",
         f"{r['adl_false_positive_rate']:6.2f}"]
        for name, r in results.items()
    ]
    return format_table(["Variant", "F1 %", "Fall miss %", "ADL FP %"], rows,
                        title="Design-choice ablations")


def _cmd_figure1(task, seed):
    from .experiments import run_figure1

    anatomy = run_figure1(task_id=task, seed=seed)
    rows = [
        [stage, f"{stats.get('duration_ms', 0):8.0f}",
         f"{stats.get('accel_mag_min', float('nan')):8.3f}",
         f"{stats.get('accel_mag_max', float('nan')):8.3f}"]
        for stage, stats in anatomy["stages"].items()
    ]
    return format_table(["Stage", "dur ms", "|a| min", "|a| max"], rows,
                        title=f"Figure 1 anatomy: {anatomy['task']}")


def _cmd_figure2(scale):
    from .experiments import run_figure2_pipeline

    trace = run_figure2_pipeline(scale)
    rows = [
        [stage, ", ".join(f"{k}={v:.4g}" if isinstance(v, float)
                          else f"{k}={v}" for k, v in summary.items())]
        for stage, summary in trace.items()
    ]
    return format_table(["Stage", "Summary"], rows, title="Figure 2 trace")


def _cmd_profile(scale, args):
    from .experiments import run_profile_workload

    result = run_profile_workload(
        scale,
        deadline_ms=args.deadline_ms,
        max_epochs=args.epochs,
        layer_timing=args.layer_timing,
    )
    report = render_profile_report(result)
    if args.layer_timing and result["layer_timings"]:
        rows = [
            [name, f"{s['count']}", f"{s['p50']:8.4f}", f"{s['p99']:8.4f}"]
            for name, s in sorted(result["layer_timings"].items())
        ]
        report += "\n\n" + format_table(
            ["Layer", "calls", "p50 ms", "p99 ms"], rows,
            title="Per-layer forward/backward timing",
        )
    if args.trace_out:
        import json

        with open(args.trace_out, "w", encoding="utf-8") as fh:
            for record in result["records"]:
                fh.write(json.dumps(record.to_json()) + "\n")
        report += f"\n[trace written to {args.trace_out}]"
    return report


def _cmd_faults(scale, args):
    from .experiments import run_fault_scenarios

    result = run_fault_scenarios(
        scale,
        scenarios=args.scenarios,
        model=None if args.fallback_only else "train",
        max_epochs=args.epochs,
        deadline_ms=args.deadline_ms,
        incident_dir=args.incident_dir,
        max_incidents=args.max_incidents,
    )
    report = render_faults_report(result)
    if args.incident_dir is not None:
        paths = result.get("incident_paths", [])
        report += (f"\n[{len(paths)} incident file(s) in "
                   f"{args.incident_dir}; replay any with "
                   f"'repro replay <file>']")
    return report


def _cmd_replay(args):
    from .obs import load_incident, render_replay_report, replay_incident

    incident = load_incident(args.incident)
    if args.weights is not None:
        from .core.architecture import build_lightweight_cnn
        from .core.detector import DetectorConfig
        from .nn.serialization import load_weights

        config = DetectorConfig(**{
            **incident.meta["config"],
            "channel_scales": tuple(
                incident.meta["config"]["channel_scales"]),
        })
        model = build_lightweight_cnn(config.window_samples)
        load_weights(model, args.weights)
    else:
        model = "recorded"
    result = replay_incident(incident, model=model)
    report = render_replay_report(result)
    # A diverging replay is a failed regression test: non-zero exit so
    # scripts (and CI) can gate on it.
    return report, 0 if result["identical"] else 1


def _cmd_tail(args):
    from .core.architecture import build_lightweight_cnn
    from .serve import TailConfig, run_tail

    config = TailConfig(
        n_streams=args.streams,
        duration_s=args.duration,
        seed=args.seed,
        incident_dir=args.incident_dir,
    )
    model = build_lightweight_cnn(config.detector.window_samples)
    on_frame = None
    if not args.once:
        def on_frame(frame):
            # ANSI home+clear per frame: a refreshing dashboard on any
            # VT100 terminal, harmless noise when piped to a file.
            print("\x1b[H\x1b[2J" + frame, flush=True)
    stop = _install_stop_handler()
    result = run_tail(model, config, on_frame=on_frame,
                      should_stop=stop.is_set)
    output = result["final_frame"]
    if result["interrupted"]:
        output += "\n[interrupted: incidents flushed, artifacts complete]"
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(result["exposition"])
        output += f"\n[exposition written to {args.metrics_out}]"
    if args.incident_dir is not None:
        output += (f"\n[{len(result['incident_paths'])} incident file(s) "
                   f"in {args.incident_dir}]")
    return output


def _cmd_serve_bench(args):
    from .core.architecture import build_lightweight_cnn
    from .serve import ServeBenchConfig, render_serve_report, run_serve_benchmark

    config = ServeBenchConfig(
        n_streams=args.streams,
        duration_s=args.duration,
        seed=args.seed,
    )
    model = build_lightweight_cnn(config.detector.window_samples)
    return render_serve_report(run_serve_benchmark(model, config))


def _cmd_quant_bench(scale, args):
    from .quant.bench import (
        QuantBenchConfig,
        render_quant_report,
        run_quant_benchmark,
    )

    config = QuantBenchConfig(
        n_streams=args.streams,
        duration_s=args.duration,
        seed=args.seed,
        prune_fraction=args.prune_fraction,
    )
    return render_quant_report(run_quant_benchmark(config, scale))


def _cmd_fleet_bench(args):
    from .core.detector import DetectorConfig
    from .experiments import MagnitudeProbeModel
    from .fleet import (
        FleetBenchConfig,
        WorkerKill,
        render_fleet_report,
        run_fleet_benchmark,
    )

    kill = (None if args.no_kill
            else WorkerKill(shard=args.kill_shard, at_s=args.kill_at))
    config = FleetBenchConfig(
        n_streams=args.streams,
        n_shards=args.shards,
        seed=args.seed,
        detector=DetectorConfig(),
        duration_scale=args.duration_scale,
        kill=kill,
        store_dir=args.store_dir,
    )
    # The deterministic probe model: an untrained CNN's detections are
    # noise, and the benchmark is about the serving fabric, not the net.
    result = run_fleet_benchmark(MagnitudeProbeModel(), config)
    report = render_fleet_report(result)
    if args.store_dir is not None and kill is not None:
        report += f"\n[kill-arm event store under {args.store_dir}]"
    return report


def _cmd_alerts(args):
    from .core.detector import DetectorConfig
    from .experiments import AlertEvalConfig, run_alert_eval

    config = AlertEvalConfig(
        n_streams=args.streams,
        faulted_streams=args.faulted,
        duration_s=args.duration,
        seed=args.seed,
        detector=DetectorConfig(),
        store_dir=args.store_dir,
    )
    report = render_alert_report(run_alert_eval(config, args.scenarios))
    if args.store_dir is not None:
        report += f"\n[per-scenario event stores under {args.store_dir}]"
    return report


def _cmd_slo(args):
    from .core.detector import DetectorConfig
    from .experiments import SLOEvalConfig, run_slo_eval

    config = SLOEvalConfig(
        n_streams=args.streams,
        duration_s=args.duration,
        seed=args.seed,
        detector=DetectorConfig(),
        overload_latency_ms=args.overload_ms,
    )
    return render_slo_report(run_slo_eval(config, args.scenarios))


def _cmd_serve_http(args):
    from .alerts import (
        AlertConfig,
        EscalationConfig,
        EventStoreConfig,
        ObservabilityServer,
    )
    from .experiments import MagnitudeProbeModel
    from .serve import TailConfig, render_dashboard, run_tail

    store = (EventStoreConfig(root=args.store_dir)
             if args.store_dir is not None else None)
    config = TailConfig(
        n_streams=args.streams,
        duration_s=args.duration,
        seed=args.seed,
        # Demo-tight policy (one confirming window, short auto-resolve)
        # so a single run leaves a populated store behind the endpoint.
        alerts=AlertConfig(
            escalation=EscalationConfig(confirm_window_s=1.5,
                                        confirm_detections=1,
                                        auto_resolve_s=2.0),
            dedup_horizon_s=4.0,
            store=store,
        ),
    )
    # The deterministic probe model (not a freshly trained CNN) so the
    # endpoint demo always has alerts to show.
    stop = _install_stop_handler()
    result = run_tail(MagnitudeProbeModel(), config,
                      should_stop=stop.is_set)
    engine, sampler = result["engine"], result["sampler"]
    def _extra_metrics():
        extra = {"serve/fleet/window_latency_ms": engine.fleet_latency()}
        stages = engine.fleet_stages()
        if stages is not None:
            for stage, hist in stages.histograms.items():
                extra[f"serve/stage/{stage}/latency_ms"] = hist
        return extra

    def _health():
        # rounds/last_round_t let a prober tell "serving" from "stuck":
        # a live engine keeps advancing both with traffic.
        return {
            "streams": engine.report()["streams"],
            "rounds": engine.rounds,
            "last_round_t": engine.last_round_t,
        }

    server = ObservabilityServer(
        registry=result["registry"],
        extra_metrics=_extra_metrics,
        manager=engine.alerts,
        dashboard=lambda: render_dashboard(engine, sampler),
        health=_health,
        slo=engine.slo_report,
        host=args.host, port=args.port,
    )
    server.start()
    print(f"observability endpoint at {server.url}", flush=True)
    print(f"  curl {server.url}/metrics")
    print(f"  curl '{server.url}/alerts?severity=critical&limit=5'")
    print(f"  curl {server.url}/slo")
    print(f"  curl {server.url}/dashboard", flush=True)
    try:
        # A signal wakes the wait immediately; both the timed and the
        # open-ended variants share the same graceful teardown below.
        stop.wait(args.serve_for)
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        server.stop()
        engine.flush_incidents()
        sealed = False
        if engine.alerts is not None and engine.alerts.store is not None:
            sealed = engine.alerts.store.seal()
    shutdown = "sealed store, " if sealed else ""
    return (f"served {server.requests} request(s), "
            f"{server.errors} error(s) [{shutdown}stopped cleanly]")


def _cmd_dataset(args):
    from .core.pipeline import build_merged_dataset
    from .datasets import save_dataset

    dataset = build_merged_dataset(
        kfall_subjects=args.subjects,
        selfcollected_subjects=args.subjects,
        trials_per_task=args.trials,
        duration_scale=args.duration_scale,
        seed=args.seed,
    )
    save_dataset(dataset, args.out)
    summary = dataset.summary()
    return (f"wrote {args.out}: {summary['recordings']} recordings, "
            f"{summary['subjects']} subjects, {summary['falls']} falls")


def _cmd_cache(args):
    from .parallel import default_cache

    cache = default_cache()
    if args.clear:
        removed = cache.clear()
        return f"cleared {removed} cached artifact(s) from {cache.root}"
    if args.prune_mb is not None:
        removed = cache.prune(max_bytes=int(args.prune_mb * 1e6))
        stats = cache.stats()
        return (f"evicted {removed} artifact(s); {stats['entries']} left "
                f"({stats['bytes'] / 1e6:.1f} MB) in {cache.root}")
    stats = cache.stats()
    lines = [
        f"artifact cache at {stats['root']} "
        f"({'enabled' if stats['enabled'] else 'DISABLED via REPRO_CACHE=0'})",
        f"  {stats['entries']} entr{'y' if stats['entries'] == 1 else 'ies'}, "
        f"{stats['bytes'] / 1e6:.1f} MB total",
    ]
    for kind, bucket in sorted(stats["by_kind"].items()):
        lines.append(f"  {kind}: {bucket['entries']} entr"
                     f"{'y' if bucket['entries'] == 1 else 'ies'}, "
                     f"{bucket['bytes'] / 1e6:.1f} MB")
    return "\n".join(lines)


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.verbose:
        configure_logging(logging.DEBUG if args.verbose > 1 else logging.INFO)
    if args.jobs is not None:
        # Env rather than threading a parameter through every runner call:
        # resolve_n_jobs reads it wherever a pool is about to start.
        os.environ["REPRO_JOBS"] = str(args.jobs)
    scale = get_scale(args.scale)
    if args.command == "table1":
        output = _cmd_table1(scale)
    elif args.command == "table3":
        output = _cmd_table3(scale, args.windows)
    elif args.command == "table4":
        output = _cmd_table4(scale)
    elif args.command == "edge":
        output = _cmd_edge(scale)
    elif args.command == "sweep":
        output = _cmd_sweep(scale)
    elif args.command == "ablations":
        output = _cmd_ablations(scale)
    elif args.command == "figure1":
        output = _cmd_figure1(args.task, args.seed)
    elif args.command == "figure2":
        output = _cmd_figure2(scale)
    elif args.command == "dataset":
        output = _cmd_dataset(args)
    elif args.command == "profile":
        output = _cmd_profile(scale, args)
    elif args.command == "faults":
        output = _cmd_faults(scale, args)
    elif args.command == "replay":
        output, code = _cmd_replay(args)
        print(output)
        return code
    elif args.command == "tail":
        output = _cmd_tail(args)
    elif args.command == "serve-bench":
        output = _cmd_serve_bench(args)
    elif args.command == "quant-bench":
        output = _cmd_quant_bench(scale, args)
    elif args.command == "fleet-bench":
        output = _cmd_fleet_bench(args)
    elif args.command == "alerts":
        output = _cmd_alerts(args)
    elif args.command == "slo":
        output = _cmd_slo(args)
    elif args.command == "serve-http":
        output = _cmd_serve_http(args)
    elif args.command == "cache":
        output = _cmd_cache(args)
    else:  # pragma: no cover - argparse enforces choices
        raise SystemExit(2)
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
