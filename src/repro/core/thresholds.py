"""Threshold-based pre-impact detectors (the Table I classical baselines).

Two detectors in the style of the works the paper cites:

* :class:`VerticalVelocityDetector` — de Sousa et al., 2021 [10]: a
  free-fall dip in acceleration magnitude followed by a vertical-velocity
  build-up exceeding a height-scaled threshold.
* :class:`ImpactEnergyDetector` — Jung et al., 2020 [11]: combined
  thresholds on acceleration magnitude, angular-rate magnitude and torso
  inclination change, all within a short decision window.

Both run *causally* (sample by sample) on the 9-channel stream and report
the first trigger index, making them directly comparable with the CNN at
the event level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets.schema import Recording
from ..signal.units import GRAVITY

__all__ = [
    "ThresholdDetector",
    "VerticalVelocityDetector",
    "ImpactEnergyDetector",
    "AccelerationWindowDetector",
    "evaluate_threshold_detector",
]


class ThresholdDetector:
    """Base class: ``first_trigger`` scans a recording causally."""

    def first_trigger(self, recording: Recording) -> int | None:
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__


@dataclass
class VerticalVelocityDetector(ThresholdDetector):
    """Free-fall dip + vertical velocity threshold (de Sousa-style [10]).

    Integrates the gravity-compensated vertical acceleration once the
    magnitude drops below ``freefall_g``; triggers when the accumulated
    downward velocity exceeds ``velocity_threshold`` (m/s), scaled by
    subject height when provided (taller subjects fall faster before
    impact).
    """

    freefall_g: float = 0.85
    velocity_threshold: float = 0.2
    height_m: float | None = None
    max_integration_s: float = 1.0

    def first_trigger(self, recording: Recording) -> int | None:
        mag = np.linalg.norm(recording.accel, axis=1)
        dt = 1.0 / recording.fs
        threshold = self.velocity_threshold
        if self.height_m is not None:
            threshold *= self.height_m / 1.75
        velocity = 0.0
        integrating = False
        start = 0
        for i in range(mag.size):
            if not integrating:
                if mag[i] < self.freefall_g:
                    integrating = True
                    velocity = 0.0
                    start = i
                continue
            # Shortfall of measured specific force vs 1 g ≈ net downward
            # acceleration of the body's centre of mass.
            velocity += (1.0 - min(mag[i], 1.0)) * GRAVITY * dt
            if velocity >= threshold:
                return i
            if mag[i] > 1.1 or (i - start) * dt > self.max_integration_s:
                integrating = False
        return None


@dataclass
class ImpactEnergyDetector(ThresholdDetector):
    """Acceleration + angular-rate + posture-change thresholds (Jung-style [11]).

    Triggers when, inside a sliding decision window, the acceleration
    magnitude dips below ``accel_low_g`` *and* the peak gyroscope magnitude
    exceeds ``gyro_dps`` *and* the torso pitch/roll excursion exceeds
    ``angle_deg``.
    """

    accel_low_g: float = 0.8
    gyro_dps: float = 110.0
    angle_deg: float = 18.0
    window_ms: float = 300.0

    def first_trigger(self, recording: Recording) -> int | None:
        mag = np.linalg.norm(recording.accel, axis=1)
        gyro_mag = np.linalg.norm(recording.gyro, axis=1)
        incl = np.abs(recording.euler[:, :2])  # pitch, roll
        w = max(2, int(round(self.window_ms * recording.fs / 1000.0)))
        for i in range(w, mag.size):
            sl = slice(i - w, i + 1)
            if mag[sl].min() >= self.accel_low_g:
                continue
            if gyro_mag[sl].max() < self.gyro_dps:
                continue
            excursion = np.max(
                incl[sl].max(axis=0) - incl[sl].min(axis=0)
            )
            if excursion >= self.angle_deg:
                return i
        return None


@dataclass
class AccelerationWindowDetector(ThresholdDetector):
    """Accelerometer-only pipeline in the PIPTO style (Moutsis 2023 [12]).

    Uses nothing but the 3-axis accelerometer: a short moving average of
    the magnitude must dip below ``low_g`` and, within ``horizon_ms``, the
    magnitude *range* inside the window must exceed ``range_g`` (the
    growing agitation of an uncontrolled descent).  Cheapest of the three
    detectors — no gyroscope, no orientation estimate.
    """

    low_g: float = 0.85
    range_g: float = 0.15
    smooth_ms: float = 60.0
    horizon_ms: float = 350.0

    def first_trigger(self, recording: Recording) -> int | None:
        mag = np.linalg.norm(recording.accel, axis=1)
        fs = recording.fs
        k = max(1, int(round(self.smooth_ms * fs / 1000.0)))
        kernel = np.ones(k) / k
        # Causal trailing average; warm-up samples fall back to the raw
        # magnitude (a real-time implementation has no future samples).
        smooth = np.convolve(mag, kernel, mode="full")[: mag.size]
        if k > 1:
            smooth[: k - 1] = mag[: k - 1]
        horizon = max(2, int(round(self.horizon_ms * fs / 1000.0)))
        for i in np.flatnonzero(smooth < self.low_g):
            window = mag[i : i + horizon]
            if window.size < 2:
                continue
            running_range = (np.maximum.accumulate(window)
                             - np.minimum.accumulate(window))
            crossed = np.flatnonzero(running_range >= self.range_g)
            if crossed.size:
                # Trigger at the first sample where the agitation criterion
                # is met (causal: only past samples inspected).
                return int(i + crossed[0])
        return None


def evaluate_threshold_detector(
    detector: ThresholdDetector,
    recordings,
    airbag_ms: float = 150.0,
) -> dict:
    """Event-level scores for a threshold detector.

    A fall is detected when the trigger lands in
    ``[fall_onset, impact - airbag_ms]`` — after that the airbag cannot
    inflate in time (late triggers count as misses).  Any trigger on an
    ADL is a false positive.  Also reports segment-agnostic accuracy /
    recall / F1 over events for comparison with Table I.
    """
    tp = fp = tn = fn = 0
    per_recording = []
    for rec in recordings:
        trigger = detector.first_trigger(rec)
        if rec.is_fall:
            deadline = rec.impact - int(round(airbag_ms * rec.fs / 1000.0))
            detected = trigger is not None and rec.fall_onset - int(
                0.2 * rec.fs
            ) <= trigger <= deadline
            tp += detected
            fn += not detected
            per_recording.append((rec.event_id, "fall", trigger, detected))
        else:
            fired = trigger is not None
            fp += fired
            tn += not fired
            per_recording.append((rec.event_id, "adl", trigger, fired))
    total = tp + fp + tn + fn
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return {
        "detector": detector.name,
        "accuracy": (tp + tn) / total if total else float("nan"),
        "precision": precision,
        "recall": recall,
        "f1": f1,
        "tp": tp,
        "fp": fp,
        "tn": tn,
        "fn": fn,
        "details": per_recording,
    }
