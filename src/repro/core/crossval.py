"""Subject-based k-fold cross-validation (Section III-C).

"we employed a subject-based k-fold cross-validation technique (k = 5)
... In each iteration one fold is used for testing, while the remaining
four folds are used for training.  Additionally, four randomly selected
subjects from the training set (not used for training) are used for model
validation."  No subject ever appears on both sides of any split.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..eval.metrics import segment_metrics
from .preprocessing import SegmentSet
from .trainer import TrainingConfig, train_model

__all__ = ["SubjectFold", "subject_folds", "cross_validate", "FoldResult"]


@dataclass(frozen=True)
class SubjectFold:
    """One CV iteration's subject partition."""

    index: int
    train_subjects: tuple[str, ...]
    val_subjects: tuple[str, ...]
    test_subjects: tuple[str, ...]

    def __post_init__(self):
        overlap = (
            (set(self.train_subjects) & set(self.test_subjects))
            | (set(self.train_subjects) & set(self.val_subjects))
            | (set(self.val_subjects) & set(self.test_subjects))
        )
        if overlap:
            raise ValueError(f"fold {self.index} leaks subjects: {sorted(overlap)}")


def subject_folds(
    subjects, k: int = 5, n_val_subjects: int = 4, seed: int = 0
) -> list[SubjectFold]:
    """Partition subjects into ``k`` test folds with in-training validation.

    Subjects are shuffled deterministically, split into ``k`` near-equal
    test folds; for each fold the validation subjects are drawn from the
    remaining pool (and removed from training), like the paper's 12-test /
    4-validation / 45-train split of 61 subjects.
    """
    subjects = sorted(set(subjects))
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    if len(subjects) < k:
        raise ValueError(f"need at least k={k} subjects, got {len(subjects)}")
    rng = np.random.default_rng(seed)
    order = list(rng.permutation(subjects))
    test_folds = [order[i::k] for i in range(k)]
    folds = []
    for i, test in enumerate(test_folds):
        pool = [s for s in order if s not in set(test)]
        n_val = min(n_val_subjects, max(len(pool) - 1, 0))
        val = list(rng.permutation(pool))[:n_val]
        train = [s for s in pool if s not in set(val)]
        if not train:
            raise ValueError(
                f"fold {i} has no training subjects; reduce k or "
                "n_val_subjects"
            )
        folds.append(
            SubjectFold(i, tuple(sorted(train)), tuple(sorted(val)),
                        tuple(sorted(test)))
        )
    return folds


@dataclass
class FoldResult:
    """Everything one CV fold produced.

    ``val_probabilities`` (on the fold's validation subjects) support
    operating-point tuning without touching test data.
    """

    fold: SubjectFold
    metrics: dict
    probabilities: np.ndarray
    test: SegmentSet
    model: object
    epochs_trained: int
    validation: SegmentSet | None = None
    val_probabilities: np.ndarray | None = None


def _train_fold(builder, fold: SubjectFold, segments: SegmentSet,
                config: TrainingConfig, threshold: float) -> FoldResult:
    """Train/evaluate one fold; module-level so it crosses pool boundaries.

    Folds are independent by construction — all randomness (weight init,
    shuffling, augmentation) flows from explicit seeds in ``builder`` and
    ``config``, never the global RNG — which is what makes parallel
    execution bit-identical to serial.
    """
    train = segments.by_subjects(fold.train_subjects)
    val = segments.by_subjects(fold.val_subjects)
    test = segments.by_subjects(fold.test_subjects)
    model, history = train_model(builder, train, val, config)
    probs = model.predict(test.X).reshape(-1)
    metrics = segment_metrics(test.y, probs, threshold=threshold)
    val_probs = model.predict(val.X).reshape(-1) if len(val) else None
    # Drop per-layer forward activations kept for quantization calibration
    # — dead weight when the result ships back from a worker process.
    model._values = None
    return FoldResult(
        fold=fold,
        metrics=metrics,
        probabilities=probs,
        test=test,
        model=model,
        epochs_trained=len(history.epochs),
        validation=val if len(val) else None,
        val_probabilities=val_probs,
    )


def cross_validate(
    builder,
    segments: SegmentSet,
    k: int = 5,
    n_val_subjects: int = 4,
    config: TrainingConfig | None = None,
    threshold: float = 0.5,
    seed: int = 0,
    max_folds: int | None = None,
    n_jobs: int | None = None,
) -> list[FoldResult]:
    """Run the full subject-independent CV for one model builder.

    ``max_folds`` trains only the first folds (used by the scaled
    benchmark configurations); the fold partition itself is always the
    full k-fold so fold composition is stable across runs.

    ``n_jobs`` trains folds in parallel worker processes (``None`` reads
    ``REPRO_JOBS``, default serial; <= 0 means all cores).  Results are
    bit-identical to the serial run for any value — see
    :func:`repro.parallel.run_parallel` for the seeding discipline — and
    a crashed worker only costs a serial retry of its own fold.
    """
    from ..parallel import ParallelTask, run_parallel

    config = config or TrainingConfig()
    folds = subject_folds(segments.subjects, k=k,
                          n_val_subjects=n_val_subjects, seed=seed)
    if max_folds is not None:
        folds = folds[:max_folds]
    tasks = [
        ParallelTask(
            _train_fold,
            args=(builder, fold, segments, config, threshold),
            name=f"fold{fold.index}",
        )
        for fold in folds
    ]
    outcomes = run_parallel(tasks, n_jobs=n_jobs, base_seed=seed,
                            label="crossval")
    return [outcome.value for outcome in outcomes]
