"""Baseline models of Table III: MLP, LSTM, ConvLSTM2D.

Sized to be comparable with the proposed CNN (tens of thousands of
parameters) and mirroring the architectures the paper references: LSTM as
in FallNet [8], ConvLSTM2D as in the KFall benchmark [6].
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import initializers
from .architecture import build_lightweight_cnn

__all__ = [
    "build_mlp",
    "build_lstm",
    "build_convlstm2d",
    "build_cnn_bigru",
    "MODEL_BUILDERS",
    "RELATED_WORK_BUILDERS",
]


def _seeds(seed):
    rng = np.random.default_rng(seed)
    while True:
        yield int(rng.integers(0, 2**31 - 1))


def _sigmoid_head(h, output_bias, seed_iter):
    bias_init = "zeros" if output_bias is None else initializers.constant(output_bias)
    return nn.layers.Dense(
        1, activation="sigmoid", bias_initializer=bias_init,
        name="output", seed=next(seed_iter),
    )(h)


def build_mlp(
    window_samples: int,
    n_channels: int = 9,
    hidden: tuple[int, ...] = (128, 64),
    output_bias: float | None = None,
    seed: int = 0,
) -> nn.Model:
    """Plain multi-layer perceptron on the flattened window."""
    seeds = _seeds(seed)
    inp = nn.Input((window_samples, n_channels), name="imu_window")
    h = nn.layers.Flatten()(inp)
    for i, units in enumerate(hidden, start=1):
        h = nn.layers.Dense(units, activation="relu", name=f"dense_{i}",
                            seed=next(seeds))(h)
    out = _sigmoid_head(h, output_bias, seeds)
    return nn.Model(inp, out, name="mlp")


def build_lstm(
    window_samples: int,
    n_channels: int = 9,
    units: int = 32,
    dense_units: int = 32,
    output_bias: float | None = None,
    seed: int = 0,
) -> nn.Model:
    """Single-layer LSTM over the raw window, dense head."""
    seeds = _seeds(seed)
    inp = nn.Input((window_samples, n_channels), name="imu_window")
    h = nn.layers.LSTM(units, name="lstm", seed=next(seeds))(inp)
    h = nn.layers.Dense(dense_units, activation="relu", name="dense_1",
                        seed=next(seeds))(h)
    out = _sigmoid_head(h, output_bias, seeds)
    return nn.Model(inp, out, name="lstm")


def build_convlstm2d(
    window_samples: int,
    n_channels: int = 9,
    filters: int = 8,
    kernel_cols: int = 3,
    dense_units: int = 32,
    output_bias: float | None = None,
    seed: int = 0,
) -> nn.Model:
    """ConvLSTM2D baseline (KFall benchmark style).

    The window is viewed as a length-``n`` sequence of 1 × 9 single-channel
    frames; a ConvLSTM2D with a 1 × ``kernel_cols`` kernel convolves across
    the sensor channels while recursing over time.
    """
    seeds = _seeds(seed)
    inp = nn.Input((window_samples, n_channels), name="imu_window")
    h = nn.layers.Reshape((window_samples, 1, n_channels, 1), name="to_frames")(inp)
    h = nn.layers.ConvLSTM2D(
        filters, (1, kernel_cols), padding="same", name="convlstm",
        seed=next(seeds),
    )(h)
    h = nn.layers.Flatten()(h)
    h = nn.layers.Dense(dense_units, activation="relu", name="dense_1",
                        seed=next(seeds))(h)
    out = _sigmoid_head(h, output_bias, seeds)
    return nn.Model(inp, out, name="convlstm2d")


def build_cnn_bigru(
    window_samples: int,
    n_channels: int = 9,
    conv_filters: int = 24,
    gru_units: int = 32,
    dense_units: int = 32,
    output_bias: float | None = None,
    seed: int = 0,
) -> nn.Model:
    """CNN-BiGRU in the style of Kiran et al. 2024 (Table I).

    A temporal convolution extracts local features, a bidirectional GRU
    models their dynamics in both directions, a dense head classifies.
    Heavier than the paper's CNN — the point of the comparison.
    """
    seeds = _seeds(seed)
    inp = nn.Input((window_samples, n_channels), name="imu_window")
    h = nn.layers.Conv1D(conv_filters, 5, padding="same", activation="relu",
                         name="conv", seed=next(seeds))(inp)
    h = nn.layers.MaxPool1D(2, name="pool")(h)
    h = nn.layers.Bidirectional(
        lambda s: nn.layers.GRU(gru_units, seed=s),
        name="bigru", seed=next(seeds),
    )(h)
    h = nn.layers.Dense(dense_units, activation="relu", name="dense_1",
                        seed=next(seeds))(h)
    out = _sigmoid_head(h, output_bias, seeds)
    return nn.Model(inp, out, name="cnn_bigru")


def _build_cnn(window_samples, n_channels=9, output_bias=None, seed=0):
    return build_lightweight_cnn(
        window_samples, n_channels, output_bias=output_bias, seed=seed
    )


#: Name -> builder for every model row of Table III.  All builders share
#: the signature ``(window_samples, n_channels=9, output_bias=None, seed=0)``.
MODEL_BUILDERS = {
    "MLP": build_mlp,
    "LSTM": build_lstm,
    "ConvLSTM2D": build_convlstm2d,
    "CNN (Proposed)": _build_cnn,
}

#: Heavier related-work architectures from Table I (not in Table III).
RELATED_WORK_BUILDERS = {
    "CNN-BiGRU [5]": build_cnn_bigru,
}
