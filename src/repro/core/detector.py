"""Streaming real-time fall detector and airbag controller.

This is the deployment-side view of the method: samples arrive one at a
time (100 Hz), the firmware fuses Euler angles, low-pass filters the
9-channel stream *causally* (zero-phase filtering needs the future, so
real time uses the forward-only Butterworth — same coefficients), keeps a
ring buffer one window long and runs the CNN every hop.

:class:`AirbagController` adds the actuation logic: a single trigger
commits to inflation, which takes 150 ms to complete — the reason the
paper withholds the last 150 ms of the falling phase from training.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..obs import Histogram, get_logger
from ..signal.filters import OnlineSosFilter, butter_lowpass_sos
from ..signal.orientation import ComplementaryFilter

__all__ = ["DetectorConfig", "Detection", "FallDetector", "AirbagController"]

_logger = get_logger(__name__)

#: Histogram edges tuned for inference latency in milliseconds: 10 µs
#: resolution at the bottom, covering up to ~84 s in the overflow tail.
_LATENCY_BUCKETS_MS = tuple(0.01 * 2 ** i for i in range(23))


@dataclass(frozen=True)
class DetectorConfig:
    """Runtime configuration of the streaming detector (paper defaults)."""

    window_ms: float = 400.0
    overlap: float = 0.5
    fs: float = 100.0
    threshold: float = 0.5
    filter_cutoff_hz: float = 5.0
    filter_order: int = 4
    #: Must match the training-time ``PreprocessConfig.channel_scales``.
    channel_scales: tuple = (1.0, 1.0, 1.0, 100.0, 100.0, 100.0,
                             45.0, 45.0, 45.0)
    #: Debounce: require this many *consecutive* above-threshold windows
    #: before emitting a detection.  1 = trigger on the first hit (the
    #: paper's event rule); 2 trades ~hop_ms of latency for fewer false
    #: activations (see the ablation benchmark).
    consecutive_required: int = 1
    #: Real-time deadline for one window inference, in milliseconds.
    #: ``None`` uses the hop interval — inference slower than the hop
    #: cannot keep up with the 100 Hz stream.  The deadline monitor counts
    #: every violation and keeps a latency histogram.
    deadline_ms: float | None = None

    def __post_init__(self):
        if self.consecutive_required < 1:
            raise ValueError(
                f"consecutive_required must be >= 1, got "
                f"{self.consecutive_required}"
            )
        if self.deadline_ms is not None and self.deadline_ms < 0:
            raise ValueError(
                f"deadline_ms must be non-negative, got {self.deadline_ms}"
            )

    @property
    def window_samples(self) -> int:
        return int(round(self.window_ms * self.fs / 1000.0))

    @property
    def hop_samples(self) -> int:
        return max(1, int(round(self.window_samples * (1.0 - self.overlap))))

    @property
    def effective_deadline_ms(self) -> float:
        """The configured deadline, defaulting to the hop interval."""
        if self.deadline_ms is not None:
            return self.deadline_ms
        return 1000.0 * self.hop_samples / self.fs


@dataclass(frozen=True)
class Detection:
    """One detector firing."""

    sample_index: int
    time_s: float
    probability: float


class FallDetector:
    """Sample-by-sample detector around any trained window model.

    ``model`` is anything with ``predict(x)`` accepting ``(1, window, 9)``
    and returning a sigmoid probability — a float :class:`repro.nn.Model`
    or a quantized :class:`repro.quant.QuantizedModel`.
    """

    def __init__(self, model, config: DetectorConfig | None = None):
        self.model = model
        self.config = config or DetectorConfig()
        cfg = self.config
        sos = butter_lowpass_sos(cfg.filter_order, cfg.filter_cutoff_hz, cfg.fs)
        self._filter = OnlineSosFilter(sos, channels=9)
        self._fusion = ComplementaryFilter(fs=cfg.fs)
        self._buffer = np.zeros((cfg.window_samples, 9))
        self._filled = 0
        self._since_last_inference = 0
        self._sample_index = -1
        self._hit_streak = 0
        # Deadline monitor: one latency sample per window inference.  A
        # perf_counter pair per hop (every ~200 ms of stream) is noise next
        # to the CNN forward pass, so this is always on.
        self.latency = Histogram(buckets=_LATENCY_BUCKETS_MS)
        self._deadline_violations = 0

    def reset(self) -> None:
        """Forget all streaming state (filter, fusion, buffer).

        Deadline statistics survive a reset on purpose: they describe the
        deployment, not one trial.
        """
        self._filter.reset()
        self._fusion.reset()
        self._buffer[:] = 0.0
        self._filled = 0
        self._since_last_inference = 0
        self._sample_index = -1
        self._hit_streak = 0

    @property
    def deadline_violations(self) -> int:
        """Window inferences that exceeded ``config.effective_deadline_ms``."""
        return self._deadline_violations

    def latency_report(self) -> dict:
        """Per-window inference latency summary against the deadline."""
        stats = self.latency.summary()
        count = stats["count"]
        return {
            "inferences": count,
            "deadline_ms": self.config.effective_deadline_ms,
            "violations": self._deadline_violations,
            "violation_rate": self._deadline_violations / count if count else 0.0,
            "mean_ms": stats["mean"],
            "p50_ms": stats["p50"],
            "p95_ms": stats["p95"],
            "p99_ms": stats["p99"],
            "max_ms": stats["max"],
        }

    @property
    def samples_seen(self) -> int:
        return self._sample_index + 1

    def push(self, accel_g, gyro_dps) -> Detection | None:
        """Feed one sample; returns a :class:`Detection` when the model fires.

        The inference cadence matches the offline segmentation: the first
        window is evaluated once full, then every ``hop_samples``.
        """
        accel_g = np.asarray(accel_g, dtype=float).reshape(3)
        gyro_dps = np.asarray(gyro_dps, dtype=float).reshape(3)
        self._sample_index += 1
        euler = self._fusion.update(accel_g, gyro_dps)
        raw = np.concatenate([accel_g, gyro_dps, euler])
        filtered = self._filter.process(raw[None, :])[0]
        filtered = filtered / np.asarray(self.config.channel_scales)
        # Ring-buffer shift (window lengths are tens of samples; a roll is
        # cheap and keeps the window contiguous for the model).
        self._buffer[:-1] = self._buffer[1:]
        self._buffer[-1] = filtered
        cfg = self.config
        if self._filled < cfg.window_samples:
            self._filled += 1
            if self._filled < cfg.window_samples:
                return None
            self._since_last_inference = 0  # first full window: infer now
        else:
            self._since_last_inference += 1
            if self._since_last_inference < cfg.hop_samples:
                return None
            self._since_last_inference = 0
        t0 = time.perf_counter()
        prob = float(
            np.asarray(self.model.predict(self._buffer[None, :, :])).reshape(-1)[0]
        )
        latency_ms = 1000.0 * (time.perf_counter() - t0)
        self.latency.observe(latency_ms)
        if latency_ms > cfg.effective_deadline_ms:
            self._deadline_violations += 1
            _logger.debug(
                "deadline violation: inference took %.3f ms (deadline %.3f ms)",
                latency_ms, cfg.effective_deadline_ms,
            )
        if prob >= cfg.threshold:
            self._hit_streak += 1
            if self._hit_streak >= cfg.consecutive_required:
                return Detection(
                    sample_index=self._sample_index,
                    time_s=self._sample_index / cfg.fs,
                    probability=prob,
                )
        else:
            self._hit_streak = 0
        return None

    def run(self, accel_g: np.ndarray, gyro_dps: np.ndarray) -> list[Detection]:
        """Convenience: stream whole arrays; returns every detection."""
        accel_g = np.asarray(accel_g, dtype=float)
        gyro_dps = np.asarray(gyro_dps, dtype=float)
        detections = []
        for i in range(accel_g.shape[0]):
            hit = self.push(accel_g[i], gyro_dps[i])
            if hit is not None:
                detections.append(hit)
        return detections


class AirbagController:
    """Actuation state machine driven by a :class:`FallDetector`.

    States: ``armed`` → (trigger) → ``inflating`` → (+inflation time) →
    ``deployed``.  Once triggered it never re-arms within a trial — a real
    airbag is single-shot.
    """

    def __init__(self, detector: FallDetector, inflation_ms: float = 150.0):
        if inflation_ms < 0:
            raise ValueError("inflation_ms must be non-negative")
        self.detector = detector
        self.inflation_ms = float(inflation_ms)
        self.trigger: Detection | None = None

    @property
    def state(self) -> str:
        return "armed" if self.trigger is None else "triggered"

    @property
    def deployed_at_s(self) -> float | None:
        """Time the bag reaches full extension, or None if never fired."""
        if self.trigger is None:
            return None
        return self.trigger.time_s + self.inflation_ms / 1000.0

    def push(self, accel_g, gyro_dps) -> Detection | None:
        """Feed one sample; latches the first detection."""
        hit = self.detector.push(accel_g, gyro_dps)
        if hit is not None and self.trigger is None:
            self.trigger = hit
            return hit
        return None

    def protects(self, impact_time_s: float) -> bool:
        """Was the airbag fully inflated by the moment of impact?"""
        deployed = self.deployed_at_s
        return deployed is not None and deployed <= impact_time_s

    def margin_ms(self, impact_time_s: float) -> float | None:
        """Milliseconds between full inflation and impact (negative = late).

        ``None`` if the airbag never fired.
        """
        deployed = self.deployed_at_s
        if deployed is None:
            return None
        return 1000.0 * (impact_time_s - deployed)

    def margin_report(self) -> dict:
        """Airbag-budget view of the detector's latency statistics.

        The paper's chain is: detector fires → inflation takes 150 ms →
        the bag must be full before impact.  Every millisecond of window
        inference latency is added to that reaction time, so the report
        combines the inflation budget with the measured latency tail:
        ``reaction_p99_ms`` is inflation + p99 inference latency, and
        ``budget_headroom_ms`` is how much of the deadline the p99
        inference leaves unused.
        """
        latency = self.detector.latency_report()
        deadline = latency["deadline_ms"]
        return {
            "inflation_budget_ms": self.inflation_ms,
            "inference_p50_ms": latency["p50_ms"],
            "inference_p99_ms": latency["p99_ms"],
            "reaction_p50_ms": self.inflation_ms + latency["p50_ms"],
            "reaction_p99_ms": self.inflation_ms + latency["p99_ms"],
            "deadline_ms": deadline,
            "budget_headroom_ms": deadline - latency["p99_ms"],
            "deadline_violations": latency["violations"],
            "violation_rate": latency["violation_rate"],
            "inferences": latency["inferences"],
        }
