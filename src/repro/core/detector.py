"""Streaming real-time fall detector and airbag controller.

This is the deployment-side view of the method: samples arrive one at a
time (100 Hz), the firmware fuses Euler angles, low-pass filters the
9-channel stream *causally* (zero-phase filtering needs the future, so
real time uses the forward-only Butterworth — same coefficients), keeps a
ring buffer one window long and runs the CNN every hop.

:class:`AirbagController` adds the actuation logic: a single trigger
commits to inflation, which takes 150 ms to complete — the reason the
paper withholds the last 150 ms of the falling phase from training.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..signal.filters import OnlineSosFilter, butter_lowpass_sos
from ..signal.orientation import ComplementaryFilter

__all__ = ["DetectorConfig", "Detection", "FallDetector", "AirbagController"]


@dataclass(frozen=True)
class DetectorConfig:
    """Runtime configuration of the streaming detector (paper defaults)."""

    window_ms: float = 400.0
    overlap: float = 0.5
    fs: float = 100.0
    threshold: float = 0.5
    filter_cutoff_hz: float = 5.0
    filter_order: int = 4
    #: Must match the training-time ``PreprocessConfig.channel_scales``.
    channel_scales: tuple = (1.0, 1.0, 1.0, 100.0, 100.0, 100.0,
                             45.0, 45.0, 45.0)
    #: Debounce: require this many *consecutive* above-threshold windows
    #: before emitting a detection.  1 = trigger on the first hit (the
    #: paper's event rule); 2 trades ~hop_ms of latency for fewer false
    #: activations (see the ablation benchmark).
    consecutive_required: int = 1

    def __post_init__(self):
        if self.consecutive_required < 1:
            raise ValueError(
                f"consecutive_required must be >= 1, got "
                f"{self.consecutive_required}"
            )

    @property
    def window_samples(self) -> int:
        return int(round(self.window_ms * self.fs / 1000.0))

    @property
    def hop_samples(self) -> int:
        return max(1, int(round(self.window_samples * (1.0 - self.overlap))))


@dataclass(frozen=True)
class Detection:
    """One detector firing."""

    sample_index: int
    time_s: float
    probability: float


class FallDetector:
    """Sample-by-sample detector around any trained window model.

    ``model`` is anything with ``predict(x)`` accepting ``(1, window, 9)``
    and returning a sigmoid probability — a float :class:`repro.nn.Model`
    or a quantized :class:`repro.quant.QuantizedModel`.
    """

    def __init__(self, model, config: DetectorConfig | None = None):
        self.model = model
        self.config = config or DetectorConfig()
        cfg = self.config
        sos = butter_lowpass_sos(cfg.filter_order, cfg.filter_cutoff_hz, cfg.fs)
        self._filter = OnlineSosFilter(sos, channels=9)
        self._fusion = ComplementaryFilter(fs=cfg.fs)
        self._buffer = np.zeros((cfg.window_samples, 9))
        self._filled = 0
        self._since_last_inference = 0
        self._sample_index = -1
        self._hit_streak = 0

    def reset(self) -> None:
        """Forget all streaming state (filter, fusion, buffer)."""
        self._filter.reset()
        self._fusion.reset()
        self._buffer[:] = 0.0
        self._filled = 0
        self._since_last_inference = 0
        self._sample_index = -1
        self._hit_streak = 0

    @property
    def samples_seen(self) -> int:
        return self._sample_index + 1

    def push(self, accel_g, gyro_dps) -> Detection | None:
        """Feed one sample; returns a :class:`Detection` when the model fires.

        The inference cadence matches the offline segmentation: the first
        window is evaluated once full, then every ``hop_samples``.
        """
        accel_g = np.asarray(accel_g, dtype=float).reshape(3)
        gyro_dps = np.asarray(gyro_dps, dtype=float).reshape(3)
        self._sample_index += 1
        euler = self._fusion.update(accel_g, gyro_dps)
        raw = np.concatenate([accel_g, gyro_dps, euler])
        filtered = self._filter.process(raw[None, :])[0]
        filtered = filtered / np.asarray(self.config.channel_scales)
        # Ring-buffer shift (window lengths are tens of samples; a roll is
        # cheap and keeps the window contiguous for the model).
        self._buffer[:-1] = self._buffer[1:]
        self._buffer[-1] = filtered
        cfg = self.config
        if self._filled < cfg.window_samples:
            self._filled += 1
            if self._filled < cfg.window_samples:
                return None
            self._since_last_inference = 0  # first full window: infer now
        else:
            self._since_last_inference += 1
            if self._since_last_inference < cfg.hop_samples:
                return None
            self._since_last_inference = 0
        prob = float(
            np.asarray(self.model.predict(self._buffer[None, :, :])).reshape(-1)[0]
        )
        if prob >= cfg.threshold:
            self._hit_streak += 1
            if self._hit_streak >= cfg.consecutive_required:
                return Detection(
                    sample_index=self._sample_index,
                    time_s=self._sample_index / cfg.fs,
                    probability=prob,
                )
        else:
            self._hit_streak = 0
        return None

    def run(self, accel_g: np.ndarray, gyro_dps: np.ndarray) -> list[Detection]:
        """Convenience: stream whole arrays; returns every detection."""
        accel_g = np.asarray(accel_g, dtype=float)
        gyro_dps = np.asarray(gyro_dps, dtype=float)
        detections = []
        for i in range(accel_g.shape[0]):
            hit = self.push(accel_g[i], gyro_dps[i])
            if hit is not None:
                detections.append(hit)
        return detections


class AirbagController:
    """Actuation state machine driven by a :class:`FallDetector`.

    States: ``armed`` → (trigger) → ``inflating`` → (+inflation time) →
    ``deployed``.  Once triggered it never re-arms within a trial — a real
    airbag is single-shot.
    """

    def __init__(self, detector: FallDetector, inflation_ms: float = 150.0):
        if inflation_ms < 0:
            raise ValueError("inflation_ms must be non-negative")
        self.detector = detector
        self.inflation_ms = float(inflation_ms)
        self.trigger: Detection | None = None

    @property
    def state(self) -> str:
        return "armed" if self.trigger is None else "triggered"

    @property
    def deployed_at_s(self) -> float | None:
        """Time the bag reaches full extension, or None if never fired."""
        if self.trigger is None:
            return None
        return self.trigger.time_s + self.inflation_ms / 1000.0

    def push(self, accel_g, gyro_dps) -> Detection | None:
        """Feed one sample; latches the first detection."""
        hit = self.detector.push(accel_g, gyro_dps)
        if hit is not None and self.trigger is None:
            self.trigger = hit
            return hit
        return None

    def protects(self, impact_time_s: float) -> bool:
        """Was the airbag fully inflated by the moment of impact?"""
        deployed = self.deployed_at_s
        return deployed is not None and deployed <= impact_time_s
