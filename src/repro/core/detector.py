"""Streaming real-time fall detector and airbag controller.

This is the deployment-side view of the method: samples arrive one at a
time (100 Hz), the firmware fuses Euler angles, low-pass filters the
9-channel stream *causally* (zero-phase filtering needs the future, so
real time uses the forward-only Butterworth — same coefficients), keeps a
ring buffer one window long and runs the CNN every hop.

Unlike the offline pipeline, the live path cannot assume a perfect
stream.  :meth:`FallDetector.push` therefore validates and repairs every
sample (NaN/Inf → hold-last, rail clamping), bridges short timestamp gaps
by interpolation, resets and re-primes its streaming state after long
ones, and tracks a three-state health machine:

``healthy``
    Clean stream, CNN path nominal.
``degraded``
    Recoverable trouble — repaired samples, filled gaps, a warm-up after
    a long-gap reset, stuck channels, or a deadline-violation streak.
    The CNN remains authoritative; the fallback shadows it.
``fault``
    The CNN path is unusable — no model, inference raised or returned
    non-finite, the deadline was missed ``shed_after_violations`` times in
    a row (load shedding), or the gyroscope is dead.  The cheap
    accelerometer-magnitude fallback becomes authoritative so the airbag
    is never left unguarded.

Transitions: any anomaly lifts ``healthy`` to ``degraded``; a standing
fault condition forces ``fault``; once the condition clears the state
steps down one level, reaching ``healthy`` after ``recovery_samples``
consecutive clean samples.  Counters and the current state are exported
through the :mod:`repro.obs` metrics registry.

:class:`AirbagController` adds the actuation logic: a single trigger
commits to inflation, which takes 150 ms to complete — the reason the
paper withholds the last 150 ms of the falling phase from training.  The
controller is *fail-safe*: a misbehaving detector can never disarm it (an
exception from ``push`` is contained and counted), and fallback-sourced
detections fire the bag exactly like CNN ones.
"""

from __future__ import annotations

import math
import time
from collections import deque
from dataclasses import asdict, dataclass

import numpy as np

from ..obs import Histogram, StageTimer, get_logger, get_registry
from ..signal.filters import OnlineSosFilter, butter_lowpass_sos
from ..signal.orientation import ComplementaryFilter

__all__ = [
    "DetectorConfig",
    "Detection",
    "WindowRequest",
    "FallDetector",
    "MagnitudeFallback",
    "AirbagController",
    "HEALTHY",
    "DEGRADED",
    "FAULT",
    "HEALTH_STATES",
]

_logger = get_logger(__name__)

#: Histogram edges tuned for inference latency in milliseconds: 10 µs
#: resolution at the bottom, covering up to ~84 s in the overflow tail.
_LATENCY_BUCKETS_MS = tuple(0.01 * 2 ** i for i in range(23))

#: Detector health states, in increasing order of severity.
HEALTHY = "healthy"
DEGRADED = "degraded"
FAULT = "fault"
HEALTH_STATES = (HEALTHY, DEGRADED, FAULT)
_HEALTH_LEVEL = {HEALTHY: 0, DEGRADED: 1, FAULT: 2}

#: Bootstrap for hold-last repair before any finite sample was seen:
#: 1 g gravity on z for the accelerometer, zero rates for the gyro.
_REPAIR_DEFAULTS = np.array([0.0, 0.0, 1.0, 0.0, 0.0, 0.0])
_REPAIR_DEFAULTS.setflags(write=False)


def _running_streak(cond: np.ndarray, start: np.ndarray) -> np.ndarray:
    """Per-column lengths of consecutive True runs, seeded by ``start``.

    Row ``i`` holds what ``s = np.where(cond[i], s + 1, 0)`` applied row
    by row would: within the block a streak is (1-based row) minus the
    last False row, and runs unbroken since row 0 continue the carried
    ``start``.  Exact integer arithmetic — bit-identity is trivial.
    """
    idx = np.arange(1, cond.shape[0] + 1)[:, None]
    last_false = np.maximum.accumulate(np.where(cond, 0, idx), axis=0)
    streak = idx - last_false
    return np.where(last_false == 0, streak + start, streak)


@dataclass(frozen=True)
class DetectorConfig:
    """Runtime configuration of the streaming detector (paper defaults)."""

    window_ms: float = 400.0
    overlap: float = 0.5
    fs: float = 100.0
    threshold: float = 0.5
    filter_cutoff_hz: float = 5.0
    filter_order: int = 4
    #: Must match the training-time ``PreprocessConfig.channel_scales``.
    channel_scales: tuple = (1.0, 1.0, 1.0, 100.0, 100.0, 100.0,
                             45.0, 45.0, 45.0)
    #: Debounce: require this many *consecutive* above-threshold windows
    #: before emitting a detection.  1 = trigger on the first hit (the
    #: paper's event rule); 2 trades ~hop_ms of latency for fewer false
    #: activations (see the ablation benchmark).
    consecutive_required: int = 1
    #: Real-time deadline for one window inference, in milliseconds.
    #: ``None`` uses the hop interval — inference slower than the hop
    #: cannot keep up with the 100 Hz stream.  The deadline monitor counts
    #: every violation and keeps a latency histogram.
    deadline_ms: float | None = None
    #: Sensor rails: readings outside these ranges are clamped and counted
    #: as saturation anomalies (a ±16 g / ±2000 dps IMU, the usual wearable
    #: part).
    accel_range_g: float = 16.0
    gyro_range_dps: float = 2000.0
    #: Longest timestamp gap bridged by interpolated fill samples; anything
    #: longer resets the streaming state (filter, fusion, ring buffer) and
    #: re-primes from the next sample.
    max_gap_ms: float = 200.0
    #: Consecutive deadline violations that mark the stream ``degraded``.
    degraded_after_violations: int = 3
    #: Consecutive deadline violations that shed the CNN (``fault``); the
    #: fallback takes over and the CNN is retried after
    #: ``shed_retry_hops`` hops.
    shed_after_violations: int = 8
    shed_retry_hops: int = 25
    #: Clean samples required to step health back toward ``healthy``.
    recovery_samples: int = 50
    #: A channel repeating the same value this many samples is stuck (real
    #: IMU noise never repeats exactly); a sensor with all three channels
    #: stuck (or non-finite) this long is dead.
    stuck_channel_samples: int = 25
    dead_sensor_samples: int = 100
    #: Arm the accelerometer-magnitude fallback detector.  When the CNN
    #: path is unavailable (``fault``, or its window still warming up) the
    #: fallback's triggers are emitted so the airbag stays guarded.
    fallback: bool = True
    #: Per-stage latency attribution (:class:`repro.obs.StageTimer`):
    #: paired clock reads around each pipeline stage, flushed into
    #: off-registry histograms on every completed window.  The clock
    #: reads cannot perturb the data path, so the ``push_block ≡
    #: push_collect`` bit-identity holds with timing enabled; the
    #: overhead is a handful of ``perf_counter`` calls per sample.
    stage_timing: bool = True

    def __post_init__(self):
        if self.consecutive_required < 1:
            raise ValueError(
                f"consecutive_required must be >= 1, got "
                f"{self.consecutive_required}"
            )
        if self.deadline_ms is not None and self.deadline_ms < 0:
            raise ValueError(
                f"deadline_ms must be non-negative, got {self.deadline_ms}"
            )
        if self.accel_range_g <= 0 or self.gyro_range_dps <= 0:
            raise ValueError("sensor ranges must be positive")
        if self.max_gap_ms < 0:
            raise ValueError("max_gap_ms must be non-negative")
        if not (1 <= self.degraded_after_violations
                <= self.shed_after_violations):
            raise ValueError(
                "need 1 <= degraded_after_violations <= shed_after_violations"
            )

    @property
    def window_samples(self) -> int:
        return int(round(self.window_ms * self.fs / 1000.0))

    @property
    def hop_samples(self) -> int:
        return max(1, int(round(self.window_samples * (1.0 - self.overlap))))

    @property
    def effective_deadline_ms(self) -> float:
        """The configured deadline, defaulting to the hop interval."""
        if self.deadline_ms is not None:
            return self.deadline_ms
        return 1000.0 * self.hop_samples / self.fs


@dataclass(frozen=True)
class Detection:
    """One detector firing.  ``source`` is ``"cnn"`` for the model path,
    ``"fallback"`` for the magnitude threshold path."""

    sample_index: int
    time_s: float
    probability: float
    source: str = "cnn"


@dataclass(frozen=True)
class WindowRequest:
    """One CNN window inference staged by :meth:`FallDetector.push_collect`.

    Captures everything the deferred decision needs at staging time: a
    *copy* of the filtered/scaled window (the ring buffer keeps moving),
    the sample index and timestamp the eventual :class:`Detection` must
    carry, and whether the magnitude fallback fired on that sample (so a
    failed inference can fall back exactly like the inline path).  Pass it
    back to :meth:`FallDetector.complete` with the model's probability.
    """

    window: np.ndarray
    sample_index: int
    time_s: float
    fallback_hit: bool


class MagnitudeFallback:
    """Streaming accelerometer-magnitude detector (PIPTO-style, accel only).

    The fail-safe twin of the CNN: a trailing-average magnitude dip below
    ``low_g`` arms a watch window; if the raw magnitude range inside the
    next ``horizon_ms`` exceeds ``range_g`` (the growing agitation of an
    uncontrolled descent) it triggers.  Needs nothing but the repaired
    accelerometer stream, so it survives every gyro/fusion/CNN failure.

    Tuned slightly hotter than the offline
    :class:`~repro.core.thresholds.AccelerationWindowDetector` — a backup
    guarding an airbag should prefer a spurious inflation to an
    unprotected impact.
    """

    def __init__(
        self,
        fs: float = 100.0,
        low_g: float = 0.90,
        range_g: float = 0.12,
        smooth_ms: float = 60.0,
        horizon_ms: float = 350.0,
    ):
        self.fs = float(fs)
        self.low_g = float(low_g)
        self.range_g = float(range_g)
        self._k = max(1, int(round(smooth_ms * fs / 1000.0)))
        self._horizon = max(2, int(round(horizon_ms * fs / 1000.0)))
        self.reset()

    def reset(self) -> None:
        # Trailing magnitudes for the smoother; deque pops are O(1).
        self._window = deque(maxlen=self._k)
        self._watch_left = 0
        self._mag_min = np.inf
        self._mag_max = -np.inf

    def push(self, accel_g: np.ndarray) -> bool:
        """Feed one repaired accel sample; True when the dip+range fires."""
        # math.sqrt over an explicit sum matches np.linalg.norm bitwise on
        # a 3-vector (same left-to-right accumulation) at a fraction of
        # the per-call dispatch cost — this runs once per sample.  The
        # block path vectorises the same expression (elementwise, same
        # association) and feeds push_mag directly.
        x, y, z = accel_g
        return self.push_mag(math.sqrt(x * x + y * y + z * z))

    def push_mag(self, mag: float) -> bool:
        """Feed one precomputed magnitude (see :meth:`push`)."""
        self._window.append(mag)
        smooth = sum(self._window) / len(self._window)
        if smooth < self.low_g:
            if self._watch_left <= 0:      # new episode: reset the extremes
                self._mag_min = mag
                self._mag_max = mag
            self._watch_left = self._horizon
        if self._watch_left > 0:
            self._watch_left -= 1
            self._mag_min = min(self._mag_min, mag)
            self._mag_max = max(self._mag_max, mag)
            if self._mag_max - self._mag_min >= self.range_g:
                self._watch_left = 0       # re-arm via the next dip
                return True
        return False


class FallDetector:
    """Sample-by-sample detector around any trained window model.

    ``model`` is anything with ``predict(x)`` accepting ``(1, window, 9)``
    and returning a sigmoid probability — a float :class:`repro.nn.Model`
    or a quantized :class:`repro.quant.QuantizedModel`.  ``model=None``
    disables the CNN branch entirely: the detector runs fallback-only and
    reports ``fault`` health (the primary path is unavailable).

    ``push`` never raises on bad *data* (non-finite readings, saturated
    rails, missing samples, a dead sensor) and never emits a non-finite
    probability; see the module docstring for the health state machine.

    ``registry`` / ``metric_prefix`` namespace the exported metrics per
    instance.  The defaults (the process-wide registry, prefix
    ``"detector"``) keep the historical single-detector metric names;
    anything running several detectors in one process — tests, the
    multi-stream serving engine — must pass a distinct prefix (or its own
    registry) per instance, otherwise all instances write the same
    ``detector/health`` gauge and share one set of counters.
    """

    def __init__(
        self,
        model,
        config: DetectorConfig | None = None,
        *,
        registry=None,
        metric_prefix: str = "detector",
        recorder=None,
        stage_clock=None,
    ):
        self.model = model
        self.config = config or DetectorConfig()
        #: Optional :class:`repro.obs.FlightRecorder` riding along; the
        #: detector feeds it every sample/window/decision/health event.
        self.recorder = recorder
        cfg = self.config
        sos = butter_lowpass_sos(cfg.filter_order, cfg.filter_cutoff_hz, cfg.fs)
        self._filter = OnlineSosFilter(sos, channels=9)
        self._fusion = ComplementaryFilter(fs=cfg.fs)
        # Hot-path constants: push() runs per sample, so resolve the
        # config-derived values once instead of per call.
        self._window_n = cfg.window_samples
        self._hop_n = cfg.hop_samples
        self._deadline = cfg.effective_deadline_ms
        self._dt_nom = 1.0 / cfg.fs
        self._buffer = np.zeros((self._window_n, 9))
        self._scales = np.asarray(cfg.channel_scales, dtype=float)
        self._rails = np.array([cfg.accel_range_g] * 3
                               + [cfg.gyro_range_dps] * 3)
        self._fallback = MagnitudeFallback(fs=cfg.fs) if cfg.fallback else None
        # Deadline monitor: one latency sample per window inference.  A
        # perf_counter pair per hop (every ~200 ms of stream) is noise next
        # to the CNN forward pass, so this is always on.
        self.latency = Histogram(buckets=_LATENCY_BUCKETS_MS)
        # Stage-level budget attribution.  Off-registry, like `latency`:
        # the block bit-identity suite compares registry snapshots, and
        # wall-clock stage costs are legitimately different between the
        # two arms.  `stage_clock` is injectable for deterministic tests.
        self.stages = (StageTimer(clock=stage_clock)
                       if cfg.stage_timing else None)
        self._deadline_violations = 0
        self._metrics = registry if registry is not None else get_registry()
        self._metric_prefix = str(metric_prefix)
        self._health_gauge = self._metrics.gauge(
            f"{self._metric_prefix}/health"
        )
        self._init_stream_state()
        self._init_health_state()
        if recorder is not None:
            recorder.bind(
                config=asdict(cfg),
                has_model=model is not None,
                snapshot_fn=lambda: {
                    "health": self.health_report(),
                    "latency": self.latency_report(),
                },
            )

    def _counter(self, name: str):
        """A registry counter under this instance's metric namespace."""
        return self._metrics.counter(  # metric-name: dynamic
            f"{self._metric_prefix}/{name}")

    # ------------------------------------------------------------------
    # state management
    # ------------------------------------------------------------------
    def _init_stream_state(self) -> None:
        self._filter.reset()
        self._fusion.reset()
        self._buffer[:] = 0.0
        self._filled = 0
        self._since_last_inference = 0

    def _init_health_state(self) -> None:
        self._sample_index = -1
        self._hit_streak = 0
        self._health = HEALTHY
        self._health_gauge.set(0.0)
        self._transitions: list[tuple[int, str, str]] = []
        self._clean_streak = 0
        self._consecutive_violations = 0
        self._cnn_shed = False
        self._shed_hops_left = 0
        # push_block pins the dead-sensor flags to each row's epoch while
        # replaying decisions (the streak arrays already hold end-of-block
        # state by then); None outside the block control loop.
        self._dead_override: tuple[bool, bool] | None = None
        self._last_t: float | None = None
        self._last_raw: np.ndarray | None = None   # last repaired 6-vector
        self._prev_fill_anchor: np.ndarray | None = None
        self._prev_raw_exact: np.ndarray | None = None
        self._channel_stuck_streak = np.zeros(6, dtype=int)
        self._sensor_bad_streak = np.zeros(2, dtype=int)  # accel, gyro
        self.repaired_samples = 0
        self.saturated_samples = 0
        self.gap_filled_samples = 0
        self.stream_resets = 0
        self.clock_anomalies = 0
        self.inference_errors = 0
        self.fallback_detections = 0
        if self._fallback is not None:
            self._fallback.reset()
        if self._standing_fault():      # e.g. constructed without a model
            self._health = FAULT
            self._health_gauge.set(float(_HEALTH_LEVEL[FAULT]))

    def reset(self, *, preserve_latency_stats: bool = False) -> None:
        """Forget all streaming state — a reset detector is
        indistinguishable from a freshly constructed one.

        That includes the debounce streak, the health machine and the
        deadline monitor.  Pass ``preserve_latency_stats=True`` to keep the
        latency histogram and violation counter across trials when the
        statistics should describe the deployment rather than one stream
        (e.g. ``repro profile``).
        """
        self._init_stream_state()
        self._init_health_state()
        if self.stages is not None:
            if preserve_latency_stats:
                self.stages.discard_pending()
            else:
                self.stages = StageTimer(clock=self.stages.clock)
        if not preserve_latency_stats:
            self.latency.reset()
            self._deadline_violations = 0
        if self.recorder is not None:
            self.recorder.note_reset()

    def note_interruption(self, last_t: float | None = None) -> None:
        """Mark this detector as taking over an interrupted stream.

        Fleet failover rebuilds a crashed worker's sessions from recorded
        config; the rebuilt detector must not pretend the stream was
        continuous.  Seeding the timestamp tracker with the stream's last
        seen ``last_t`` routes the next sample through the normal gap
        machinery (an outage longer than ``max_gap_ms`` resets and
        re-primes exactly like a mid-stream dropout), and the takeover is
        recorded as an anomaly so health reads ``degraded`` until
        ``recovery_samples`` clean samples pass — degraded-then-healthy,
        never silently healthy.
        """
        if last_t is not None:
            self._last_t = float(last_t)
        self._update_health(anomaly=True)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def deadline_violations(self) -> int:
        """Window inferences that exceeded ``config.effective_deadline_ms``."""
        return self._deadline_violations

    @property
    def health(self) -> str:
        """Current health state: healthy / degraded / fault."""
        return self._health

    @property
    def backend(self) -> str:
        """Numeric backend of the window model: ``"int8"`` when serving
        a :class:`~repro.quant.QuantizedModel`, ``"float32"`` for a
        float graph, ``"none"`` for fallback-only deployments."""
        if self.model is None:
            return "none"
        from ..quant.qmodel import QuantizedModel

        return ("int8" if isinstance(self.model, QuantizedModel)
                else "float32")

    @property
    def health_transitions(self) -> list[tuple[int, str, str]]:
        """``(sample_index, from_state, to_state)`` transition log."""
        return list(self._transitions)

    def health_report(self) -> dict:
        """Stream-hygiene view: health state plus every anomaly counter."""
        return {
            "health": self._health,
            "backend": self.backend,
            "transitions": len(self._transitions),
            "states_seen": sorted(
                {self._health} | {t[2] for t in self._transitions}
                | {t[1] for t in self._transitions},
                key=_HEALTH_LEVEL.get,
            ),
            "repaired_samples": self.repaired_samples,
            "saturated_samples": self.saturated_samples,
            "gap_filled_samples": self.gap_filled_samples,
            "stream_resets": self.stream_resets,
            "clock_anomalies": self.clock_anomalies,
            "inference_errors": self.inference_errors,
            "fallback_detections": self.fallback_detections,
            "cnn_shed": self._cnn_shed,
            "deadline_violations": self._deadline_violations,
        }

    def latency_report(self) -> dict:
        """Per-window inference latency summary against the deadline."""
        stats = self.latency.summary()
        count = stats["count"]
        return {
            "inferences": count,
            "deadline_ms": self.config.effective_deadline_ms,
            "violations": self._deadline_violations,
            "violation_rate": self._deadline_violations / count if count else 0.0,
            "mean_ms": stats["mean"],
            "p50_ms": stats["p50"],
            "p95_ms": stats["p95"],
            "p99_ms": stats["p99"],
            "max_ms": stats["max"],
        }

    def stage_report(self) -> dict | None:
        """Per-stage latency attribution (see :class:`repro.obs.StageTimer`),
        or ``None`` when ``config.stage_timing`` is off."""
        if self.stages is None:
            return None
        return self.stages.report()

    @property
    def samples_seen(self) -> int:
        return self._sample_index + 1

    # ------------------------------------------------------------------
    # hardening internals
    # ------------------------------------------------------------------
    def _validate(self, accel: np.ndarray, gyro: np.ndarray):
        """Repair non-finite readings and clamp to the sensor rails.

        Returns ``(accel, gyro, anomaly)``.  Non-finite entries hold the
        last repaired value (bootstrap: 1 g gravity for accel, zero rate
        for gyro); out-of-range entries clip.  Also feeds the stuck-channel
        and dead-sensor trackers.
        """
        cfg = self.config
        raw = np.concatenate([accel, gyro])
        exact = raw.copy()
        bad = ~np.isfinite(raw)
        anomaly = False
        if bad.any():
            if self._last_raw is not None:
                raw[bad] = self._last_raw[bad]
            else:
                raw[bad] = _REPAIR_DEFAULTS[bad]
            self.repaired_samples += 1
            self._counter("repaired_samples").inc()
            anomaly = True
        rails = self._rails
        clipped = np.abs(raw) > rails
        if clipped.any():
            raw = np.clip(raw, -rails, rails)
            self.saturated_samples += 1
            self._counter("saturated_samples").inc()
            anomaly = True
        # Stuck-at tracking on the *exact* incoming values: genuine IMU
        # noise never repeats bit-identically, so an exact repeat streak
        # marks a frozen channel; a non-finite reading also counts against
        # its sensor.
        if self._prev_raw_exact is not None:
            same = np.zeros(6, dtype=bool)
            both_finite = np.isfinite(exact) & np.isfinite(self._prev_raw_exact)
            same[both_finite] = (
                exact[both_finite] == self._prev_raw_exact[both_finite]
            )
            stuck_or_bad = same | bad
            self._channel_stuck_streak = np.where(
                stuck_or_bad, self._channel_stuck_streak + 1, 0
            )
        self._prev_raw_exact = exact
        for s, sl in enumerate((slice(0, 3), slice(3, 6))):
            if (self._channel_stuck_streak[sl] >= 1).all() or bad[sl].all():
                self._sensor_bad_streak[s] += 1
            else:
                self._sensor_bad_streak[s] = 0
        if (self._channel_stuck_streak >= cfg.stuck_channel_samples).any():
            anomaly = True
        self._last_raw = raw
        return raw[:3], raw[3:], anomaly

    @property
    def accel_dead(self) -> bool:
        if self._dead_override is not None:
            return self._dead_override[0]
        return bool(
            self._sensor_bad_streak[0] >= self.config.dead_sensor_samples
        )

    @property
    def gyro_dead(self) -> bool:
        if self._dead_override is not None:
            return self._dead_override[1]
        return bool(
            self._sensor_bad_streak[1] >= self.config.dead_sensor_samples
        )

    def _handle_timestamp(self, t: float | None) -> tuple[int, bool, bool]:
        """Classify the inter-sample interval.

        Returns ``(n_fill, long_gap, anomaly)``: how many missing samples
        to synthesise, whether the gap exceeded ``max_gap_ms`` (stream
        reset required), and whether anything about the clock was off.
        """
        if self._last_t is None:
            return 0, False, False
        if t is None:
            # An untimestamped sample inside a timestamped stream: the
            # clock evidence for this interval is gone, so the caller
            # advances ``_last_t`` by one nominal period (keeping the gap
            # and clock checks armed for the *next* sample) and the lapse
            # itself counts as a clock anomaly.
            self.clock_anomalies += 1
            self._counter("clock_anomalies").inc()
            return 0, False, True
        cfg = self.config
        dt_nom = self._dt_nom
        dt = t - self._last_t
        if dt < 0.5 * dt_nom:
            # Early, duplicate or backwards timestamp: process the sample,
            # note the clock anomaly.
            self.clock_anomalies += 1
            self._counter("clock_anomalies").inc()
            return 0, False, True
        missing = int(round(dt / dt_nom)) - 1
        if missing <= 0:
            return 0, False, False
        if dt * 1000.0 > cfg.max_gap_ms:
            return 0, True, True
        return missing, False, True

    def _reset_stream_state(self) -> None:
        """Long gap: drop filter/fusion/window state and re-prime.

        The filter re-initialises at steady state from the next sample and
        the CNN stays silent until its window refills (warm-up); the
        fallback keeps guarding throughout.
        """
        self._init_stream_state()
        self.stream_resets += 1
        self._counter("stream_resets").inc()

    def _ingest(self, accel: np.ndarray, gyro: np.ndarray) -> bool:
        """Fuse, filter, scale and buffer one sample; True when a window
        inference is due (first full window, then every hop)."""
        st = self.stages
        clk = st.clock if st is not None else None
        if clk is not None:
            t0 = clk()
        euler = self._fusion.update(accel, gyro)
        if clk is not None:
            t1 = clk()
            st.add("fusion", t1 - t0)
        raw = np.concatenate([accel, gyro, euler])
        filtered = self._filter.process(raw[None, :])[0]
        if clk is not None:
            t2 = clk()
            st.add("filter", t2 - t1)
        filtered = filtered / self._scales
        # Ring-buffer shift (window lengths are tens of samples; a roll is
        # cheap and keeps the window contiguous for the model).
        self._buffer[:-1] = self._buffer[1:]
        self._buffer[-1] = filtered
        if self._filled < self._window_n:
            self._filled += 1
            if self._filled < self._window_n:
                due = False
            else:
                self._since_last_inference = 0  # first full window: infer now
                due = True
        else:
            self._since_last_inference += 1
            if self._since_last_inference < self._hop_n:
                due = False
            else:
                self._since_last_inference = 0
                due = True
        if clk is not None:
            st.add("window", clk() - t2)
        return due

    @property
    def _cnn_available(self) -> bool:
        return (
            self.model is not None
            and not self._cnn_shed
            and not self.gyro_dead
        )

    def _standing_fault(self) -> bool:
        return (
            self.model is None
            or self._cnn_shed
            or self.gyro_dead
            or self.accel_dead
        )

    def _update_health(self, anomaly: bool) -> None:
        if anomaly:
            self._clean_streak = 0
        else:
            self._clean_streak += 1
        current = self._health
        if self._standing_fault():
            new = FAULT
        elif current == FAULT:
            new = DEGRADED          # condition cleared: step down one level
        elif anomaly:
            new = DEGRADED
        elif (current == DEGRADED
              and self._clean_streak >= self.config.recovery_samples):
            new = HEALTHY
        else:
            new = current
        if new != current:
            self._transitions.append((self._sample_index, current, new))
            self._counter("health_transitions").inc()
            self._health_gauge.set(float(_HEALTH_LEVEL[new]))
            _logger.debug(
                "health %s -> %s at sample %d", current, new,
                self._sample_index,
            )
            self._health = new
            if self.recorder is not None:
                self.recorder.record_health(self._sample_index, current, new)

    def _shed_cnn(self) -> None:
        self._cnn_shed = True
        self._shed_hops_left = self.config.shed_retry_hops
        self._hit_streak = 0

    def _stage(self, window_due: bool, fallback_hit: bool,
               time_s: float, *, window_ready: bool | None = None,
               window: np.ndarray | None = None) -> WindowRequest | None:
        """Pre-inference half of a decision: shed-probe bookkeeping, then
        stage a :class:`WindowRequest` when a CNN inference is due.

        The block path passes ``window_ready`` (each row's view of the
        warm-up state) and ``window`` (a view into the grown history)
        explicitly; the per-sample path reads both off the live ring
        buffer.
        """
        if window_ready is None:
            window_ready = self._filled >= self._window_n
        if not (window_due and window_ready):
            return None
        if self._cnn_shed:
            # Load shedding: skip the CNN for shed_retry_hops hops, then
            # give it one probe inference to prove it recovered.
            self._shed_hops_left -= 1
            if self._shed_hops_left <= 0:
                self._cnn_shed = False
                self._consecutive_violations = 0
        if self._cnn_available:
            return WindowRequest(
                window=(self._buffer.copy() if window is None
                        else window.copy()),
                sample_index=self._sample_index,
                time_s=time_s,
                fallback_hit=fallback_hit,
            )
        return None

    def _fallback_decide(self, fallback_hit: bool, time_s: float,
                         sample_index: int,
                         window_ready: bool) -> Detection | None:
        """The fallback guards the airbag whenever the CNN cannot —
        shed / no model / dead gyro, or a window still warming up."""
        if fallback_hit and (not self._cnn_available or not window_ready):
            self.fallback_detections += 1
            self._counter("fallback_detections").inc()
            detection = Detection(
                sample_index=sample_index,
                time_s=time_s,
                probability=1.0,
                source="fallback",
            )
            if self.recorder is not None:
                self.recorder.record_decision(detection)
            return detection
        return None

    def complete(
        self,
        request: WindowRequest,
        probability,
        *,
        latency_ms: float | None = None,
        failed: bool = False,
    ) -> Detection | None:
        """Post-inference half of a decision for a staged request.

        ``probability`` is the model output for ``request.window``;
        ``latency_ms`` feeds the deadline monitor (the micro-batching
        engine charges every window the wall-clock of its whole batch —
        the result is not available any earlier).  ``failed=True`` reports
        that the model raised: the CNN is shed exactly like the inline
        path, and the staged fallback evidence still guards the sample.
        Mirrors the inline ``push`` decision bit for bit; never raises.
        """
        if self.stages is not None:
            # One completed window closes out one attribution sample: the
            # charged inference latency joins the stage costs accumulated
            # since the previous complete, and the flushed sum *is* the
            # recorded end-to-end latency (attribution sums exactly).
            if latency_ms is not None and not failed:
                self.stages.add_ms("inference", latency_ms)
            self.stages.flush()
        if failed:
            if self.recorder is not None:
                self.recorder.record_window(
                    request.sample_index, None, None,
                    violation=False, failed=True, window=request.window,
                )
            self.inference_errors += 1
            self._counter("inference_errors").inc()
            _logger.exception("model inference raised; shedding CNN path")
            self._shed_cnn()
            return self._fallback_decide(
                request.fallback_hit, request.time_s,
                request.sample_index, window_ready=True,
            )
        cfg = self.config
        violation = latency_ms is not None and latency_ms > self._deadline
        if self.recorder is not None:
            self.recorder.record_window(
                request.sample_index, float(probability), latency_ms,
                violation=violation, failed=False, window=request.window,
            )
        if latency_ms is not None:
            self.latency.observe(latency_ms)
            if violation:
                self._deadline_violations += 1
                self._consecutive_violations += 1
                _logger.debug(
                    "deadline violation: inference took %.3f ms "
                    "(deadline %.3f ms)", latency_ms, self._deadline,
                )
                if self._consecutive_violations >= cfg.shed_after_violations:
                    _logger.warning(
                        "%d consecutive deadline violations; shedding CNN "
                        "path", self._consecutive_violations,
                    )
                    self._shed_cnn()
            else:
                self._consecutive_violations = 0
        prob = float(probability)
        if not np.isfinite(prob):
            self.inference_errors += 1
            self._counter("inference_errors").inc()
            _logger.warning("model returned non-finite probability; shedding")
            self._shed_cnn()
            return self._fallback_decide(
                request.fallback_hit, request.time_s,
                request.sample_index, window_ready=True,
            )
        if prob >= cfg.threshold:
            self._hit_streak += 1
            if self._hit_streak >= cfg.consecutive_required:
                detection = Detection(
                    sample_index=request.sample_index,
                    time_s=request.time_s,
                    probability=prob,
                    source="cnn",
                )
                if self.recorder is not None:
                    self.recorder.record_decision(detection)
                return detection
        else:
            self._hit_streak = 0
        return None

    def _run_model(self, request: WindowRequest) -> Detection | None:
        """Inline inference for one staged request: guarded forward pass,
        then :meth:`complete` with the measured latency."""
        t0 = time.perf_counter()
        try:
            prob = float(
                np.asarray(
                    self.model.predict(request.window[None, :, :])
                ).reshape(-1)[0]
            )
        except Exception:
            return self.complete(request, None, failed=True)
        latency_ms = 1000.0 * (time.perf_counter() - t0)
        return self.complete(request, prob, latency_ms=latency_ms)

    def _decide(self, window_due: bool, fallback_hit: bool, time_s: float,
                collect: list | None = None, *,
                window_ready: bool | None = None,
                window: np.ndarray | None = None) -> Detection | None:
        """Turn this sample's evidence into (at most) one detection.

        With ``collect`` (deferred mode) a due CNN window is appended to
        the list as a :class:`WindowRequest` instead of being inferred
        here — the caller owns running the model and feeding the result to
        :meth:`complete`.  ``window_ready`` / ``window`` carry the block
        path's per-row state (see :meth:`_stage`).
        """
        st = self.stages
        clk = st.clock if st is not None else None
        if clk is not None:
            t0 = clk()
        if window_ready is None:
            window_ready = self._filled >= self._window_n
        request = self._stage(window_due, fallback_hit, time_s,
                              window_ready=window_ready, window=window)
        if request is not None:
            if collect is not None:
                collect.append(request)
                if clk is not None:
                    st.add("decision", clk() - t0)
                return None
            if clk is not None:
                # The model run times itself into the inference stage via
                # `complete`; only the staging cost lands in decision.
                st.add("decision", clk() - t0)
            return self._run_model(request)
        hit = self._fallback_decide(fallback_hit, time_s,
                                    self._sample_index, window_ready)
        if clk is not None:
            st.add("decision", clk() - t0)
        return hit

    # ------------------------------------------------------------------
    # streaming API
    # ------------------------------------------------------------------
    def push(self, accel_g, gyro_dps, t: float | None = None) -> Detection | None:
        """Feed one sample; returns a :class:`Detection` when a path fires.

        The inference cadence matches the offline segmentation: the first
        window is evaluated once full, then every ``hop_samples``.  ``t``
        is the sample timestamp in seconds; when provided, missing samples
        are detected from the inter-arrival time — short gaps (≤
        ``max_gap_ms``) are bridged with linearly interpolated fill
        samples, longer ones reset the streaming state.  Without
        timestamps the stream is assumed gapless at the nominal rate.
        """
        detection, _ = self._push(accel_g, gyro_dps, t, collect=None)
        return detection

    def push_collect(
        self, accel_g, gyro_dps, t: float | None = None,
    ) -> tuple[Detection | None, list[WindowRequest]]:
        """:meth:`push` with deferred CNN inference (micro-batching hook).

        Advances all streaming state exactly like :meth:`push`, but
        instead of running the model inline, every due window is returned
        as a staged :class:`WindowRequest` — the caller batches requests
        across streams, runs one ``model.predict``, and feeds each result
        to :meth:`complete`, which finishes the decision (deadline
        accounting, shedding, debounce) with the state ordering the inline
        path would have used.  Complete each returned request, in order,
        before the next ``push_collect``/``reset`` on this detector.
        Detections that need no model — the fallback path — are still
        returned directly.
        """
        return self._push(accel_g, gyro_dps, t, collect=[])

    def _push(
        self, accel_g, gyro_dps, t: float | None, collect: list | None,
    ) -> tuple[Detection | None, list[WindowRequest]]:
        st = self.stages
        clk = st.clock if st is not None else None
        if clk is not None:
            t0 = clk()
        accel_g = np.asarray(accel_g, dtype=float).reshape(3)
        gyro_dps = np.asarray(gyro_dps, dtype=float).reshape(3)
        n_fill, long_gap, clock_anomaly = self._handle_timestamp(t)
        accel, gyro, data_anomaly = self._validate(accel_g, gyro_dps)
        if clk is not None:
            st.add("ingest", clk() - t0)
        anomaly = data_anomaly or clock_anomaly
        detection: Detection | None = None
        dt_nom = self._dt_nom
        cur = np.concatenate([accel, gyro])
        if long_gap:
            self._reset_stream_state()
            anomaly = True
        elif (n_fill and self._prev_fill_anchor is not None
              and self._last_t is not None):
            # Bridge the gap: causal interpolation between the last good
            # sample and the one that just arrived.
            prev = self._prev_fill_anchor
            delta = cur - prev
            for j in range(1, n_fill + 1):
                frac = j / (n_fill + 1)
                filler = prev + frac * delta
                fill_t = self._last_t + j * dt_nom
                self._sample_index += 1
                fb = (self._fallback.push(filler[:3])
                      if self._fallback is not None else False)
                due = self._ingest(filler[:3], filler[3:])
                hit = self._decide(due, fb, fill_t, collect)
                detection = detection or hit
            self.gap_filled_samples += n_fill
            self._counter("gap_filled_samples").inc(n_fill)
            anomaly = True
        self._sample_index += 1
        time_s = t if t is not None else self._sample_index / self.config.fs
        if t is not None:
            self._last_t = t
        elif self._last_t is not None:
            # Assume the nominal rate across an untimestamped sample so a
            # single missing timestamp cannot null the tracker and disarm
            # the next sample's gap/clock checks (see _handle_timestamp).
            self._last_t = self._last_t + dt_nom
        self._prev_fill_anchor = cur
        if clk is not None:
            t1 = clk()
        fallback_hit = (self._fallback.push(accel)
                        if self._fallback is not None else False)
        if clk is not None:
            st.add("decision", clk() - t1)
        window_due = self._ingest(accel, gyro)
        if clk is not None:
            t2 = clk()
        self._update_health(anomaly)
        if clk is not None:
            st.add("decision", clk() - t2)
        hit = self._decide(window_due, fallback_hit, time_s, collect)
        if self.recorder is not None:
            # Recorded raw values are the *incoming* ones, pre-repair, so
            # replay re-feeds exactly what the device saw; fill samples
            # are synthesised deterministically on replay and not stored.
            self.recorder.record_sample(
                self._sample_index, t, accel_g, gyro_dps,
                self._last_raw, anomaly, self._health,
            )
        return detection or hit, collect if collect is not None else []

    # ------------------------------------------------------------------
    # vectorized block-streaming API
    # ------------------------------------------------------------------
    def push_block(
        self, accel_g, gyro_dps, t=None,
    ) -> tuple[list[Detection], list[WindowRequest]]:
        """Feed a whole block at once; the vectorized twin of a
        :meth:`push_collect` loop.

        ``accel_g`` / ``gyro_dps`` are ``(n, 3)`` arrays; ``t`` is ``None``
        (fully untimestamped block) or a length-``n`` sequence of
        timestamps where ``None``/NaN marks an untimestamped sample.

        Semantics are **bit-identical** to::

            for i in range(n):
                hit, reqs = detector.push_collect(accel[i], gyro[i], t[i])

        with every staged :class:`WindowRequest` completed *after* the
        loop (deferred to the end of the block): same probabilities, same
        detections, same health transitions, same anomaly counters —
        ``tests/test_detector_block.py`` holds this to bit-for-bit
        equality across every builtin fault scenario and random block
        splits.  Only the cost changes: repair/clamp/stuck tracking, gap
        synthesis, SOS filtering (one carried-state
        :func:`~repro.signal.filters.sosfilt` pass per contiguous
        segment), channel scaling and window assembly (windows are views
        into one grown history instead of n ring-buffer rolls) run as
        numpy ops over the block, and the inherently sequential fusion
        recurrence runs in one tight scalar pass
        (:meth:`ComplementaryFilter.update_block
        <repro.signal.orientation.ComplementaryFilter.update_block>`).

        Returns ``(detections, requests)``: fallback-path detections (at
        most one per *incoming* sample, exactly like
        :meth:`push_collect`) and every staged CNN window, in order.
        Complete the requests, in order, before the next push on this
        detector.  Detectors with a flight recorder attached run the
        per-sample reference loop instead — replay needs the exact
        per-sample event order.
        """
        accel = np.asarray(accel_g, dtype=float).reshape(-1, 3)
        gyro = np.asarray(gyro_dps, dtype=float).reshape(-1, 3)
        n = accel.shape[0]
        if gyro.shape[0] != n:
            raise ValueError(
                f"accel and gyro disagree on block length: {n} vs "
                f"{gyro.shape[0]}"
            )
        if t is None:
            t_list = None
        elif isinstance(t, np.ndarray):
            t_list = t.astype(float).reshape(-1).tolist()
        else:
            t_list = [None if v is None else float(v) for v in t]
        if t_list is not None and len(t_list) != n:
            raise ValueError(
                f"t must have one entry per sample: got {len(t_list)} "
                f"for {n}"
            )
        if n == 0:
            return [], []
        if self.recorder is not None:
            return self._push_block_loop(accel, gyro, t_list)
        st = self.stages
        clk = st.clock if st is not None else None
        if clk is not None:
            t0 = clk()

        # Phase 1 — repair/clamp/stuck tracking, vectorized over the block.
        (repaired, data_anom, accel_dead_rows,
         gyro_dead_rows) = self._validate_block(accel, gyro)
        # Phase 2 — timestamp classification (cheap scalar loop: the
        # carried clock is inherently sequential, and scalar float
        # arithmetic here is exactly the per-sample arithmetic).
        (fills, resets, ts_anom, fill_base,
         real_t, n_resets) = self._plan_timestamps_block(t_list, n)

        # Phase 3 — expand gaps into synthesized fill rows.  Row metadata:
        # owner[r] = incoming sample a row belongs to (fills belong to the
        # sample whose arrival revealed the gap), is_real marks incoming
        # rows, and segments are the reset-delimited contiguous stretches.
        anchor = self._prev_fill_anchor
        if fills[0] and anchor is None:
            # note_interruption seeds _last_t without an anchor: the gap
            # is flagged (ts_anom stays) but nothing can be interpolated.
            fills = [0] + fills[1:]
        total_fill = sum(fills)
        dt_nom = self._dt_nom
        if total_fill == 0 and n_resets == 0:
            m = n
            ex6 = repaired
            owner = None            # identity: row r is incoming sample r
            is_real = None          # every row is real
            fill_time = None
            reset_rows = []
            segments = [(0, n, False)]
        else:
            m = n + total_fill
            ex6 = np.empty((m, 6))
            owner = np.empty(m, dtype=np.intp)
            is_real = np.zeros(m, dtype=bool)
            fill_time = np.zeros(m)
            reset_rows = []
            pos = 0
            for i in range(n):
                k = fills[i]
                if k:
                    prev = repaired[i - 1] if i else anchor
                    delta = repaired[i] - prev
                    j = np.arange(1, k + 1)
                    ex6[pos:pos + k] = prev + (j / (k + 1))[:, None] * delta
                    fill_time[pos:pos + k] = fill_base[i] + j * dt_nom
                    owner[pos:pos + k] = i
                    pos += k
                if resets[i]:
                    reset_rows.append(pos)
                ex6[pos] = repaired[i]
                owner[pos] = i
                is_real[pos] = True
                pos += 1
            reset_set = set(reset_rows)
            cuts = sorted({0, m} | reset_set)
            segments = [(cuts[ci], cuts[ci + 1], cuts[ci] in reset_set)
                        for ci in range(len(cuts) - 1)]
        if total_fill:
            self.gap_filled_samples += total_fill
            self._counter("gap_filled_samples").inc(total_fill)
        if n_resets:
            self.stream_resets += n_resets
            self._counter("stream_resets").inc(n_resets)
        # The next gap interpolates from the last repaired sample, exactly
        # like the per-sample anchor update.
        self._prev_fill_anchor = repaired[-1].copy()
        if clk is not None:
            t1 = clk()
            st.add("ingest", t1 - t0)

        # Phase 4 — orientation fusion (sequential recurrence, one pass).
        euler = self._fusion.update_block(
            ex6[:, :3], ex6[:, 3:], reset_rows=reset_rows or None)
        if clk is not None:
            t2 = clk()
            st.add("fusion", t2 - t1)

        # Phase 5 — filter + scale + window assembly, one vectorized pass
        # per reset-delimited segment.  The SOS pass inside the segment
        # loop is timed separately so filter vs window attribution matches
        # the per-sample path.
        filter_s = 0.0
        raw9 = np.concatenate([ex6, euler], axis=1)
        window_n = self._window_n
        hop_n = self._hop_n
        due = np.zeros(m, dtype=bool)
        ready = np.zeros(m, dtype=bool)
        windows: dict[int, np.ndarray] = {}
        for a, b, is_reset in segments:
            if is_reset:
                # Long gap: the same bookkeeping as _reset_stream_state
                # (its counter increment was batched above; the fusion
                # reset was folded into update_block).
                self._filter.reset()
                self._buffer[:] = 0.0
                self._filled = 0
                self._since_last_inference = 0
            seg_len = b - a
            if clk is not None:
                f0 = clk()
            scaled = self._filter.process(raw9[a:b]) / self._scales
            if clk is not None:
                filter_s += clk() - f0
            hist = np.concatenate([self._buffer, scaled], axis=0)
            filled0 = self._filled
            # Closed forms of the _ingest cadence counters: the first due
            # row completes the warm-up (or the pending hop), then one due
            # every hop_n rows.
            if filled0 < window_n:
                first_due = window_n - filled0 - 1
                if first_due < seg_len:
                    ready[a + first_due:b] = True
            else:
                first_due = hop_n - self._since_last_inference - 1
                ready[a:b] = True
            if first_due < seg_len:
                due_local = np.arange(first_due, seg_len, hop_n)
                due[a + due_local] = True
                for r in due_local.tolist():
                    # After ingesting local row r the ring buffer holds
                    # exactly these window_n rows; _stage copies the view.
                    windows[a + r] = hist[r + 1:r + 1 + window_n]
                self._since_last_inference = seg_len - 1 - int(due_local[-1])
            elif filled0 >= window_n:
                self._since_last_inference += seg_len
            self._filled = min(window_n, filled0 + seg_len)
            self._buffer = hist[seg_len:].copy()
        if clk is not None:
            t3 = clk()
            st.add("filter", filter_s)
            st.add("window", (t3 - t2) - filter_s)
            # Phases 6+7 are charged to decision by wall clock minus the
            # spans _decide attributes to itself during the replay loop.
            dec0 = st.pending_ms("decision")

        # Phase 6 — magnitude fallback: vectorized magnitudes, sequential
        # deque smoother (order-dependent trailing mean).
        if self._fallback is not None:
            ax, ay, az = ex6[:, 0], ex6[:, 1], ex6[:, 2]
            mags = np.sqrt(ax * ax + ay * ay + az * az)
            push_mag = self._fallback.push_mag
            fb_hits = [push_mag(mag) for mag in mags.tolist()]
        else:
            fb_hits = None

        # Phase 7 — replay the per-sample decision/health sequence.  Rows
        # with no evidence (not due, no fallback hit) leave _decide's
        # state untouched, so with clean health they can be skipped.
        base = self._sample_index
        fs = self.config.fs
        real_anom = [bool(data_anom[i]) or ts_anom[i] for i in range(n)]
        use_override = bool(accel_dead_rows.any() or gyro_dead_rows.any())
        fast_health = (
            self._health == HEALTHY
            and not any(real_anom)
            and not use_override
            and self.model is not None
            and not self._cnn_shed
        )
        detections: list[Detection] = []
        requests: list[WindowRequest] = []
        due_l = due.tolist()
        ready_l = ready.tolist()
        if fast_health:
            hot = [r for r in range(m)
                   if due_l[r] or (fb_hits is not None and fb_hits[r])]
        else:
            hot = range(m)
        a_dead_l = accel_dead_rows.tolist() if use_override else None
        g_dead_l = gyro_dead_rows.tolist() if use_override else None
        last_owner = -1
        group_fired = False
        try:
            for r in hot:
                own = owner[r] if owner is not None else r
                real = is_real[r] if is_real is not None else True
                self._sample_index = base + r + 1
                if use_override:
                    self._dead_override = (a_dead_l[own], g_dead_l[own])
                if real and not fast_health:
                    self._update_health(real_anom[own])
                fb = fb_hits[r] if fb_hits is not None else False
                if due_l[r] or fb:
                    if real:
                        tv = real_t[own]
                        time_s = (tv if tv is not None
                                  else (base + r + 1) / fs)
                    else:
                        time_s = fill_time[r]
                    hit = self._decide(
                        due_l[r], fb, time_s, requests,
                        window_ready=ready_l[r], window=windows.get(r),
                    )
                    if hit is not None:
                        # push_collect returns the *first* detection among
                        # a sample's fills + the sample itself.
                        if own != last_owner:
                            last_owner = own
                            group_fired = False
                        if not group_fired:
                            detections.append(hit)
                            group_fired = True
        finally:
            self._dead_override = None
        if fast_health:
            self._clean_streak += n
        self._sample_index = base + m
        if clk is not None:
            wall_ms = 1000.0 * (clk() - t3)
            inner_ms = st.pending_ms("decision") - dec0
            st.add_ms("decision", max(0.0, wall_ms - inner_ms))
        return detections, requests

    def _push_block_loop(
        self, accel: np.ndarray, gyro: np.ndarray, t_list,
    ) -> tuple[list[Detection], list[WindowRequest]]:
        """Reference implementation of :meth:`push_block`: the per-sample
        loop the vectorized path is proven bit-identical to."""
        detections: list[Detection] = []
        requests: list[WindowRequest] = []
        for i in range(accel.shape[0]):
            ti = t_list[i] if t_list is not None else None
            if ti is not None and ti != ti:     # NaN marks "no timestamp"
                ti = None
            hit, staged = self._push(accel[i], gyro[i], ti, collect=[])
            if hit is not None:
                detections.append(hit)
            requests.extend(staged)
        return detections, requests

    def _validate_block(self, accel: np.ndarray, gyro: np.ndarray):
        """Block twin of :meth:`_validate`: repair, clamp and streak-track
        ``n`` samples in vectorized passes.

        Returns ``(repaired (n, 6), data_anomaly (n,), accel_dead (n,),
        gyro_dead (n,))``; the dead flags give each *row's* view of the
        dead-sensor trackers (the per-sample path consults them between
        every sample, so the block decisions must too).
        """
        cfg = self.config
        n = accel.shape[0]
        exact = np.concatenate([accel, gyro], axis=1)
        finite = np.isfinite(exact)
        bad = ~finite
        bad_rows = bad.any(axis=1)
        n_bad = int(bad_rows.sum())
        repaired = np.where(finite, exact, np.nan)
        # Saturation check on the post-repair values, like _validate: a
        # held (previously clipped) value is always in-range, and NaN
        # placeholders compare False, so pre-fill rows match exactly.
        rails = self._rails
        clip_rows = (np.abs(repaired) > rails).any(axis=1)
        n_clip = int(clip_rows.sum())
        np.clip(repaired, -rails, rails, out=repaired)
        if n_bad:
            # Vectorized hold-last: each non-finite entry takes the most
            # recent finite value in its column, falling back to the
            # carried last-repaired sample (or the gravity bootstrap).
            carry = (self._last_raw if self._last_raw is not None
                     else _REPAIR_DEFAULTS)
            src = np.where(finite, np.arange(n)[:, None], -1)
            np.maximum.accumulate(src, axis=0, out=src)
            held = repaired[np.maximum(src, 0), np.arange(6)]
            repaired = np.where(src >= 0, held, carry)
            self.repaired_samples += n_bad
            self._counter("repaired_samples").inc(n_bad)
        if n_clip:
            self.saturated_samples += n_clip
            self._counter("saturated_samples").inc(n_clip)
        # Stuck-at streaks: exact-repeat (or non-finite) runs per channel,
        # then all-channels-bad runs per sensor — both are running-streak
        # recurrences with a closed form (_running_streak).
        prev_exact = self._prev_raw_exact
        if prev_exact is None:
            prev_rows = np.concatenate(
                [np.full((1, 6), np.nan), exact[:-1]], axis=0)
        else:
            prev_rows = np.concatenate(
                [prev_exact[None, :], exact[:-1]], axis=0)
        same = finite & np.isfinite(prev_rows) & (exact == prev_rows)
        stuck_or_bad = same | bad
        if prev_exact is None:
            # The first sample ever has no predecessor: the per-sample
            # path skips its streak update (carried streaks are zero).
            tail = _running_streak(stuck_or_bad[1:],
                                   self._channel_stuck_streak)
            streaks = np.concatenate(
                [self._channel_stuck_streak[None, :], tail], axis=0)
        else:
            streaks = _running_streak(stuck_or_bad,
                                      self._channel_stuck_streak)
        acc_bad = (streaks[:, :3] >= 1).all(axis=1) | bad[:, :3].all(axis=1)
        gyr_bad = (streaks[:, 3:] >= 1).all(axis=1) | bad[:, 3:].all(axis=1)
        sensor = _running_streak(np.stack([acc_bad, gyr_bad], axis=1),
                                 self._sensor_bad_streak)
        data_anom = (bad_rows | clip_rows
                     | (streaks >= cfg.stuck_channel_samples).any(axis=1))
        self._channel_stuck_streak = streaks[-1].copy()
        self._sensor_bad_streak = sensor[-1].copy()
        self._prev_raw_exact = exact[-1].copy()
        self._last_raw = repaired[-1].copy()
        dead_n = cfg.dead_sensor_samples
        return (repaired, data_anom,
                sensor[:, 0] >= dead_n, sensor[:, 1] >= dead_n)

    def _plan_timestamps_block(self, t_list, n: int):
        """Block twin of :meth:`_handle_timestamp` plus the ``_last_t``
        bookkeeping: classify every inter-sample interval up front.

        Returns ``(fills, resets, ts_anom, fill_base, real_t, n_resets)``
        — per incoming sample: synthesized-fill count, long-gap reset
        flag, clock/gap anomaly flag, the fill interpolation base time,
        and the (NaN-normalized) timestamp.  Leaves ``_last_t`` advanced
        past the block and the clock-anomaly counter updated.
        """
        dt_nom = self._dt_nom
        half = 0.5 * dt_nom
        max_gap_ms = self.config.max_gap_ms
        fills = [0] * n
        resets = [False] * n
        ts_anom = [False] * n
        fill_base = [0.0] * n
        real_t: list[float | None] = [None] * n
        n_clock = 0
        n_resets = 0
        last_t = self._last_t
        for i in range(n):
            ti = t_list[i] if t_list is not None else None
            if ti is not None and ti != ti:     # NaN marks "no timestamp"
                ti = None
            real_t[i] = ti
            if ti is None:
                if last_t is not None:
                    n_clock += 1
                    ts_anom[i] = True
                    last_t = last_t + dt_nom
                continue
            if last_t is not None:
                dt = ti - last_t
                if dt < half:
                    n_clock += 1
                    ts_anom[i] = True
                else:
                    missing = int(round(dt / dt_nom)) - 1
                    if missing > 0:
                        ts_anom[i] = True
                        if dt * 1000.0 > max_gap_ms:
                            resets[i] = True
                            n_resets += 1
                        else:
                            fills[i] = missing
                            fill_base[i] = last_t
            last_t = ti
        if n_clock:
            self.clock_anomalies += n_clock
            self._counter("clock_anomalies").inc(n_clock)
        self._last_t = last_t
        return fills, resets, ts_anom, fill_base, real_t, n_resets

    def run(
        self,
        accel_g: np.ndarray,
        gyro_dps: np.ndarray,
        t: np.ndarray | None = None,
    ) -> list[Detection]:
        """Convenience: stream whole arrays; returns every detection."""
        accel_g = np.asarray(accel_g, dtype=float)
        gyro_dps = np.asarray(gyro_dps, dtype=float)
        detections = []
        for i in range(accel_g.shape[0]):
            hit = self.push(
                accel_g[i], gyro_dps[i],
                t=None if t is None else float(t[i]),
            )
            if hit is not None:
                detections.append(hit)
        return detections


class AirbagController:
    """Actuation state machine driven by a :class:`FallDetector`.

    States: ``armed`` → (trigger) → ``inflating`` → (+inflation time) →
    ``deployed``.  Once triggered it never re-arms within a trial — a real
    airbag is single-shot.

    Fail-safe contract: detector trouble can never disarm the bag.  An
    exception escaping ``detector.push`` (which the hardened detector
    itself should prevent) is contained and counted rather than
    propagated, and fallback-sourced detections latch the trigger exactly
    like CNN ones.
    """

    def __init__(self, detector: FallDetector, inflation_ms: float = 150.0):
        if inflation_ms < 0:
            raise ValueError("inflation_ms must be non-negative")
        self.detector = detector
        self.inflation_ms = float(inflation_ms)
        self.trigger: Detection | None = None
        self.detector_errors = 0

    @property
    def state(self) -> str:
        return "armed" if self.trigger is None else "triggered"

    @property
    def detector_health(self) -> str:
        """The detector's health state (see :mod:`repro.core.detector`)."""
        return self.detector.health

    @property
    def deployed_at_s(self) -> float | None:
        """Time the bag reaches full extension, or None if never fired."""
        if self.trigger is None:
            return None
        return self.trigger.time_s + self.inflation_ms / 1000.0

    def push(self, accel_g, gyro_dps, t: float | None = None) -> Detection | None:
        """Feed one sample; latches the first detection."""
        try:
            hit = self.detector.push(accel_g, gyro_dps, t=t)
        except Exception:
            # Fail-safe: a buggy detector must not take the controller
            # down mid-trial; stay armed and keep feeding samples.
            self.detector_errors += 1
            get_registry().counter("airbag/detector_errors").inc()
            _logger.exception("detector raised inside AirbagController.push")
            return None
        if hit is not None and self.trigger is None:
            self.trigger = hit
            return hit
        return None

    def protects(self, impact_time_s: float) -> bool:
        """Was the airbag fully inflated by the moment of impact?"""
        deployed = self.deployed_at_s
        return deployed is not None and deployed <= impact_time_s

    def margin_ms(self, impact_time_s: float) -> float | None:
        """Milliseconds between full inflation and impact (negative = late).

        ``None`` if the airbag never fired.
        """
        deployed = self.deployed_at_s
        if deployed is None:
            return None
        return 1000.0 * (impact_time_s - deployed)

    def margin_report(self) -> dict:
        """Airbag-budget view of the detector's latency statistics.

        The paper's chain is: detector fires → inflation takes 150 ms →
        the bag must be full before impact.  Every millisecond of window
        inference latency is added to that reaction time, so the report
        combines the inflation budget with the measured latency tail:
        ``reaction_p99_ms`` is inflation + p99 inference latency, and
        ``budget_headroom_ms`` is how much of the deadline the p99
        inference leaves unused.
        """
        latency = self.detector.latency_report()
        deadline = latency["deadline_ms"]
        return {
            "inflation_budget_ms": self.inflation_ms,
            "inference_p50_ms": latency["p50_ms"],
            "inference_p99_ms": latency["p99_ms"],
            "reaction_p50_ms": self.inflation_ms + latency["p50_ms"],
            "reaction_p99_ms": self.inflation_ms + latency["p99_ms"],
            "deadline_ms": deadline,
            "budget_headroom_ms": deadline - latency["p99_ms"],
            "deadline_violations": latency["violations"],
            "violation_rate": latency["violation_rate"],
            "inferences": latency["inferences"],
        }
