"""Preprocessing pipeline: filter → segment → label.

Implements Section III-A of the paper: a 4th-order 5 Hz Butterworth
low-pass on the raw 9-channel stream, then sliding-window segmentation
(window 100–400 ms, overlap 0–75 %).  Adds the label policy of Section
III-C (150 ms pre-impact truncation) and keeps per-segment provenance
(subject, task, event) so subject-independent cross-validation and
event-level evaluation stay possible downstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..datasets.labeling import LabelPolicy, sample_labels
from ..datasets.schema import Recording
from ..signal.filters import lowpass_filter
from ..signal.segmentation import SegmentationConfig, segment_starts

__all__ = ["PreprocessConfig", "SegmentSet", "preprocess_recording", "build_segments"]


@dataclass(frozen=True)
class PreprocessConfig:
    """All knobs of the segment-extraction pipeline.

    Defaults are the paper's best configuration: 400 ms windows with 50 %
    overlap, 5 Hz/4th-order low-pass, 150 ms airbag truncation, windows
    labelled falling when at least half their samples are falling.
    """

    window_ms: float = 400.0
    overlap: float = 0.5
    fs: float = 100.0
    filter_cutoff_hz: float = 5.0
    filter_order: int = 4
    label_min_fraction: float = 0.5
    policy: LabelPolicy = field(default_factory=LabelPolicy)
    #: Fixed per-channel divisors bringing accel (g), gyro (deg/s) and
    #: Euler angles (deg) to comparable ~unit ranges.  Constants (not
    #: fitted statistics) so the embedded pipeline can apply them as
    #: compile-time scales and no train/test leakage is possible.
    channel_scales: tuple = (1.0, 1.0, 1.0, 100.0, 100.0, 100.0,
                             45.0, 45.0, 45.0)

    @property
    def segmentation(self) -> SegmentationConfig:
        return SegmentationConfig(self.window_ms, self.overlap, self.fs)

    @property
    def window_samples(self) -> int:
        return self.segmentation.window_samples


@dataclass
class SegmentSet:
    """A batch of labelled segments with provenance.

    Attributes
    ----------
    X:
        ``(n, window, 9)`` filtered feature windows.
    y:
        ``(n,)`` segment labels (1 = falling).
    subject / task_id / event_id:
        Per-segment provenance arrays.
    event_is_fall:
        Whether the segment's *source recording* is a fall trial (used by
        the event-level analysis; a fall recording also contains many
        non-falling segments).
    trigger_valid:
        True when a detection on this segment would fire the airbag *in
        time*: for fall recordings, the segment ends before
        ``impact - airbag_ms``; for ADLs always True (any firing is a
        false positive regardless of when it happens).
    """

    X: np.ndarray
    y: np.ndarray
    subject: np.ndarray
    task_id: np.ndarray
    event_id: np.ndarray
    event_is_fall: np.ndarray
    trigger_valid: np.ndarray

    def __post_init__(self):
        n = len(self.X)
        for name in ("y", "subject", "task_id", "event_id", "event_is_fall",
                     "trigger_valid"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"{name} length must match X ({n})")

    def __len__(self) -> int:
        return len(self.X)

    @property
    def n_positive(self) -> int:
        return int(self.y.sum())

    @property
    def subjects(self) -> list[str]:
        return sorted(set(self.subject.tolist()))

    def select(self, mask_or_indices) -> "SegmentSet":
        """Subset by boolean mask or index array."""
        idx = np.asarray(mask_or_indices)
        return SegmentSet(
            X=self.X[idx],
            y=self.y[idx],
            subject=self.subject[idx],
            task_id=self.task_id[idx],
            event_id=self.event_id[idx],
            event_is_fall=self.event_is_fall[idx],
            trigger_valid=self.trigger_valid[idx],
        )

    def by_subjects(self, subject_ids) -> "SegmentSet":
        wanted = set(subject_ids)
        return self.select(np.array([s in wanted for s in self.subject]))

    @staticmethod
    def concatenate(parts: list["SegmentSet"]) -> "SegmentSet":
        parts = [p for p in parts if len(p)]
        if not parts:
            raise ValueError("nothing to concatenate")
        return SegmentSet(
            X=np.concatenate([p.X for p in parts]),
            y=np.concatenate([p.y for p in parts]),
            subject=np.concatenate([p.subject for p in parts]),
            task_id=np.concatenate([p.task_id for p in parts]),
            event_id=np.concatenate([p.event_id for p in parts]),
            event_is_fall=np.concatenate([p.event_is_fall for p in parts]),
            trigger_valid=np.concatenate([p.trigger_valid for p in parts]),
        )

    def class_summary(self) -> dict:
        """Counts mirroring the paper's imbalance report (95.4 % / 3.6 %)."""
        n = len(self)
        pos = self.n_positive
        return {
            "segments": n,
            "falling": pos,
            "non_falling": n - pos,
            "falling_fraction": pos / n if n else 0.0,
        }


def preprocess_recording(
    recording: Recording, config: PreprocessConfig | None = None
) -> SegmentSet:
    """Filter and segment one recording.

    Windows overlapping the excluded zone (withheld 150 ms + impact
    transient) are dropped entirely — they exist in neither the training
    nor the evaluation sets, matching the paper's protocol.
    """
    config = config or PreprocessConfig()
    if recording.frame != "canonical":
        raise ValueError(
            f"recording {recording.event_id} is still in frame "
            f"{recording.frame!r}; align it before preprocessing"
        )
    signals = recording.signals()
    filtered = lowpass_filter(
        signals, fs=recording.fs, cutoff_hz=config.filter_cutoff_hz,
        order=config.filter_order,
    )
    scales = np.asarray(config.channel_scales, dtype=float)
    if scales.shape != (signals.shape[1],):
        raise ValueError(
            f"channel_scales must have {signals.shape[1]} entries, got "
            f"{scales.shape}"
        )
    filtered = filtered / scales
    labels, valid = sample_labels(recording, config.policy)
    seg = config.segmentation
    starts = segment_starts(filtered.shape[0], seg)
    window = seg.window_samples
    if recording.is_fall:
        airbag = int(round(config.policy.airbag_ms * recording.fs / 1000.0))
        last_useful_end = recording.impact - airbag
    else:
        last_useful_end = None
    keep_X, keep_y, keep_trig = [], [], []
    for s in starts:
        sl = slice(s, s + window)
        if not valid[sl].all():
            continue
        keep_X.append(filtered[sl])
        frac = labels[sl].mean()
        keep_y.append(1 if frac >= config.label_min_fraction else 0)
        keep_trig.append(
            last_useful_end is None or (s + window) <= last_useful_end
        )
    count = len(keep_X)
    X = (
        np.stack(keep_X).astype(np.float32)
        if count
        else np.empty((0, window, signals.shape[1]), dtype=np.float32)
    )
    return SegmentSet(
        X=X,
        y=np.asarray(keep_y, dtype=int),
        subject=np.full(count, recording.subject_id, dtype=object),
        task_id=np.full(count, recording.task_id, dtype=int),
        event_id=np.full(count, recording.event_id, dtype=object),
        event_is_fall=np.full(count, recording.is_fall, dtype=bool),
        trigger_valid=np.asarray(keep_trig, dtype=bool),
    )


def build_segments(recordings, config: PreprocessConfig | None = None) -> SegmentSet:
    """Preprocess every recording and concatenate the segments."""
    config = config or PreprocessConfig()
    parts = [preprocess_recording(rec, config) for rec in recordings]
    return SegmentSet.concatenate(parts)
