"""Event-level evaluation (Section IV-B, Table IV).

"the performance of a pre-impact classifier must be analyzed at the event
level rather than at the segment level": a fall event counts as detected
when *at least one* of its segments is classified falling; an ADL event
counts as a false positive when at least one of its segments is classified
falling (one spurious trigger inflates the airbag).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets.tasks import GREEN_ADL_IDS, RED_ADL_IDS
from .preprocessing import SegmentSet

__all__ = ["EventOutcome", "evaluate_events", "EventReport"]


@dataclass(frozen=True)
class EventOutcome:
    """One recording's event-level verdict."""

    event_id: str
    task_id: int
    subject: str
    is_fall: bool
    triggered: bool
    n_segments: int
    n_positive_segments: int

    @property
    def is_missed_fall(self) -> bool:
        return self.is_fall and not self.triggered

    @property
    def is_false_positive(self) -> bool:
        return (not self.is_fall) and self.triggered


@dataclass
class EventReport:
    """Aggregated Table IV statistics."""

    outcomes: list[EventOutcome]

    def _rate(self, outcomes, predicate) -> float:
        if not outcomes:
            return float("nan")
        return 100.0 * sum(predicate(o) for o in outcomes) / len(outcomes)

    @property
    def fall_events(self) -> list[EventOutcome]:
        return [o for o in self.outcomes if o.is_fall]

    @property
    def adl_events(self) -> list[EventOutcome]:
        return [o for o in self.outcomes if not o.is_fall]

    @property
    def fall_miss_rate(self) -> float:
        """% of fall events never detected (paper: 4.17 % on average)."""
        return self._rate(self.fall_events, lambda o: o.is_missed_fall)

    @property
    def adl_false_positive_rate(self) -> float:
        """% of ADL events that would fire the airbag (paper: 2.04 %)."""
        return self._rate(self.adl_events, lambda o: o.is_false_positive)

    def per_task_miss(self) -> dict[int, float]:
        """Task id -> % missed falls (Table IVa rows)."""
        out = {}
        for tid in sorted({o.task_id for o in self.fall_events}):
            rows = [o for o in self.fall_events if o.task_id == tid]
            out[tid] = self._rate(rows, lambda o: o.is_missed_fall)
        return out

    def per_task_false_positive(self) -> dict[int, float]:
        """Task id -> % false-positive ADLs (Table IVb rows)."""
        out = {}
        for tid in sorted({o.task_id for o in self.adl_events}):
            rows = [o for o in self.adl_events if o.task_id == tid]
            out[tid] = self._rate(rows, lambda o: o.is_false_positive)
        return out

    def red_green_false_positive(self) -> dict[str, float]:
        """FP rates of the red vs green ADL groups (Table IVb footer)."""
        red = [o for o in self.adl_events if o.task_id in RED_ADL_IDS]
        green = [o for o in self.adl_events if o.task_id in GREEN_ADL_IDS]
        return {
            "red": self._rate(red, lambda o: o.is_false_positive),
            "green": self._rate(green, lambda o: o.is_false_positive),
        }


def evaluate_events(
    segments: SegmentSet,
    probabilities: np.ndarray,
    threshold: float = 0.5,
) -> EventReport:
    """Group segment predictions into event verdicts.

    ``segments`` must carry the original event ids (no ``#aug`` rows: the
    augmented copies are training-only).  Events whose falling segments
    were all excluded by the label policy still appear — with zero
    positive-labelled segments they can only be detected from genuine
    pre-impact dynamics, exactly the paper's operating condition.
    """
    probabilities = np.asarray(probabilities).reshape(-1)
    if len(probabilities) != len(segments):
        raise ValueError(
            f"got {len(probabilities)} probabilities for {len(segments)} segments"
        )
    if any("#aug" in e for e in segments.event_id):
        raise ValueError("event evaluation must run on un-augmented segments")
    fired = probabilities >= threshold
    outcomes = []
    for event in np.unique(segments.event_id):
        mask = segments.event_id == event
        task_id = int(segments.task_id[mask][0])
        is_fall = bool(segments.event_is_fall[mask][0])
        # For falls, only detections on segments that end before
        # impact - airbag_ms fire the airbag in time; for ADLs any firing
        # is a (useless) activation.
        fired_in_time = fired[mask] & segments.trigger_valid[mask]
        outcomes.append(
            EventOutcome(
                event_id=str(event),
                task_id=task_id,
                subject=str(segments.subject[mask][0]),
                is_fall=is_fall,
                triggered=bool(
                    fired_in_time.any() if is_fall else fired[mask].any()
                ),
                n_segments=int(mask.sum()),
                n_positive_segments=int(fired[mask].sum()),
            )
        )
    return EventReport(outcomes)
