"""Knowledge distillation: a PreFallKD-style training variant (Table I [7]).

Chi et al.'s PreFallKD distils a heavy teacher into a deployable student
for pre-impact fall detection.  We reproduce the idea in its binary form:
the student trains on a blend of ground-truth labels and the teacher's
probabilities.  Because binary cross-entropy is affine in the target, the
blended-target formulation is exactly equivalent to the usual weighted sum
of hard-label and distillation losses:

    L = alpha * BCE(y, p) + (1 - alpha) * BCE(t, p)
      = BCE(alpha * y + (1 - alpha) * t, p)   (up to a constant in p)

so no new loss machinery is needed — only soft targets.
"""

from __future__ import annotations

import numpy as np

from ..nn.callbacks import EarlyStopping
from ..nn.optimizers import Adam
from .preprocessing import SegmentSet
from .trainer import (
    TrainingConfig,
    augment_fall_segments,
    class_weights,
    initial_output_bias,
)

__all__ = ["soft_targets", "distill_model"]


def soft_targets(
    y: np.ndarray, teacher_probabilities: np.ndarray, alpha: float = 0.5
) -> np.ndarray:
    """Blend hard labels with teacher probabilities.

    ``alpha`` weights the ground truth (1.0 = ignore the teacher).
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    y = np.asarray(y, dtype=float).reshape(-1)
    teacher = np.asarray(teacher_probabilities, dtype=float).reshape(-1)
    if y.shape != teacher.shape:
        raise ValueError(
            f"labels and teacher probabilities disagree: {y.shape} vs "
            f"{teacher.shape}"
        )
    return alpha * y + (1.0 - alpha) * teacher


def distill_model(
    teacher,
    builder,
    train: SegmentSet,
    validation: SegmentSet,
    config: TrainingConfig | None = None,
    alpha: float = 0.5,
):
    """Train a student under the paper's protocol with teacher guidance.

    ``teacher`` is any object with ``predict``; ``builder`` builds the
    student (e.g. ``build_lightweight_cnn``).  Mirrors
    :func:`repro.core.trainer.train_model` — augmentation, class weights,
    output-bias init, early stopping — but fits on soft targets.

    Returns ``(student_model, history)``.
    """
    config = config or TrainingConfig()
    if len(train) == 0:
        raise ValueError("empty training set")
    if set(train.subjects) & set(validation.subjects):
        raise ValueError(
            "training and validation sets share subjects — the protocol "
            "is subject-independent"
        )
    if config.augment:
        train = augment_fall_segments(train, config.augment_copies, config.seed)

    teacher_train = np.asarray(teacher.predict(train.X)).reshape(-1)
    targets = soft_targets(train.y, teacher_train, alpha=alpha)

    bias = initial_output_bias(train.y) if config.use_output_bias else None
    window, channels = train.X.shape[1], train.X.shape[2]
    student = builder(window, channels, output_bias=bias, seed=config.seed)
    student.compile(
        optimizer=Adam(learning_rate=config.learning_rate,
                       clipnorm=config.clipnorm),
        loss="binary_crossentropy",
        metrics=["binary_accuracy"],
    )
    weights = class_weights(train.y) if config.use_class_weights else None
    early = EarlyStopping(monitor="val_loss", patience=config.patience,
                          restore_best_weights=True)
    history = student.fit(
        train.X,
        targets[:, None],
        epochs=config.epochs,
        batch_size=config.batch_size,
        validation_data=(validation.X,
                         validation.y.astype(float)[:, None]),
        sample_weight=(
            None if weights is None
            else np.array([weights[int(c)] for c in train.y])
        ),
        callbacks=[early, *config.extra_callbacks],
        seed=config.seed,
        verbose=config.verbose,
    )
    return student, history
