"""End-to-end convenience pipeline (the whole of Figure 2).

``build_merged_dataset`` reproduces the data side: generate (or accept)
the two corpora, align KFall to the canonical frame with the Rodrigues
rotation, merge, and extract labelled segments.
"""

from __future__ import annotations

from ..datasets.alignment import align_dataset
from ..datasets.kfall import build_kfall
from ..datasets.schema import Dataset
from ..datasets.selfcollected import build_selfcollected
from ..obs import get_logger, span
from .preprocessing import PreprocessConfig, SegmentSet, build_segments

_logger = get_logger(__name__)

__all__ = ["build_merged_dataset", "build_merged_segments"]


def build_merged_dataset(
    kfall_subjects: int = 32,
    selfcollected_subjects: int = 29,
    trials_per_task: int = 1,
    duration_scale: float = 1.0,
    fs: float = 100.0,
    seed: int = 7,
    kfall_task_ids=None,
    selfcollected_task_ids=None,
) -> Dataset:
    """Generate, align and merge the two corpora (Section IV-A).

    Returns the 61-subject (by default) merged dataset in the canonical
    frame with all units standardised to g / deg/s.
    """
    with span("pipeline/build_kfall", subjects=kfall_subjects):
        kfall = build_kfall(
            n_subjects=kfall_subjects,
            trials_per_task=trials_per_task,
            duration_scale=duration_scale,
            fs=fs,
            seed=1000 + seed,
            task_ids=kfall_task_ids,
        )
    with span("pipeline/build_selfcollected", subjects=selfcollected_subjects):
        selfcollected = build_selfcollected(
            n_subjects=selfcollected_subjects,
            trials_per_task=trials_per_task,
            duration_scale=duration_scale,
            fs=fs,
            seed=2000 + seed,
            task_ids=selfcollected_task_ids,
        )
    with span("pipeline/align", recordings=len(kfall)):
        kfall_aligned = align_dataset(kfall)
    with span("pipeline/merge"):
        merged = Dataset.merge("merged", kfall_aligned, selfcollected)
    _logger.debug("merged dataset: %d recordings", len(merged))
    return merged


def build_merged_segments(
    preprocess: PreprocessConfig | None = None, **dataset_kwargs
) -> SegmentSet:
    """One call from nothing to a labelled :class:`SegmentSet`."""
    dataset = build_merged_dataset(**dataset_kwargs)
    with span("pipeline/build_segments", recordings=len(dataset)) as sp:
        segments = build_segments(dataset, preprocess or PreprocessConfig())
        sp.set("segments", len(segments))
    return segments
