"""The paper's contribution: the lightweight three-branch CNN.

Section III-B: "The CNN model's architecture splits the input matrix into
three matrices, each with dimension n × 3, thus splitting the three motion
features (accelerometer, gyroscope, and Eulerian angles).  Each motion
feature's matrix passes through a convolutional layer and then a max
pooling layer ...  these three branches' outputs are concatenated together
and then fed to two dense layers [64 and 32 neurons, ReLU] ... the model's
output is a dense layer activated by a sigmoid function."
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import initializers

__all__ = ["CnnHyperParams", "build_lightweight_cnn"]

#: (start, stop) channel ranges of the three motion features in the
#: ``[n x 9]`` window: accelerometer, gyroscope, Euler angles.
_BRANCHES = ((0, 3), (3, 6), (6, 9))
_BRANCH_NAMES = ("accel", "gyro", "euler")


class CnnHyperParams:
    """Hyper-parameters of the lightweight CNN (paper defaults)."""

    def __init__(
        self,
        conv_filters: int = 16,
        kernel_size: int = 5,
        pool_size: int = 2,
        dense_units: tuple[int, int] = (64, 32),
        dropout: float = 0.0,
    ):
        if conv_filters < 1 or kernel_size < 1 or pool_size < 1:
            raise ValueError("conv/pool hyper-parameters must be positive")
        if len(dense_units) != 2:
            raise ValueError("the paper's head has exactly two dense layers")
        self.conv_filters = int(conv_filters)
        self.kernel_size = int(kernel_size)
        self.pool_size = int(pool_size)
        self.dense_units = (int(dense_units[0]), int(dense_units[1]))
        self.dropout = float(dropout)


def build_lightweight_cnn(
    window_samples: int,
    n_channels: int = 9,
    hyper: CnnHyperParams | None = None,
    output_bias: float | None = None,
    seed: int = 0,
    branched: bool = True,
) -> nn.Model:
    """Build the (un-compiled) lightweight CNN.

    Parameters
    ----------
    window_samples:
        Segment length ``n`` (20/30/40 for the paper's 200/300/400 ms).
    output_bias:
        Initial bias of the sigmoid output, ``log(p / (1-p))`` with ``p``
        the falling prior (Eq. 1–2 of the paper); ``None`` leaves it at 0.
    branched:
        ``False`` builds the single-trunk ablation variant: one Conv1D over
        all 9 channels instead of three per-modality branches.
    """
    hyper = hyper or CnnHyperParams()
    if n_channels != 9:
        raise ValueError(
            f"the paper's input is 9 IMU channels, got {n_channels}"
        )
    if window_samples <= hyper.kernel_size:
        raise ValueError(
            f"window of {window_samples} samples too short for kernel "
            f"{hyper.kernel_size}"
        )
    rng = np.random.default_rng(seed)

    def next_seed() -> int:
        return int(rng.integers(0, 2**31 - 1))

    inp = nn.Input((window_samples, n_channels), name="imu_window")
    if branched:
        branch_outputs = []
        for (start, stop), bname in zip(_BRANCHES, _BRANCH_NAMES):
            h = nn.layers.Slice(-1, start, stop, name=f"split_{bname}")(inp)
            h = nn.layers.Conv1D(
                hyper.conv_filters,
                hyper.kernel_size,
                activation="relu",
                name=f"conv_{bname}",
                seed=next_seed(),
            )(h)
            h = nn.layers.MaxPool1D(hyper.pool_size, name=f"pool_{bname}")(h)
            h = nn.layers.Flatten(name=f"flat_{bname}")(h)
            branch_outputs.append(h)
        merged = nn.layers.Concatenate(name="concat_branches")(branch_outputs)
    else:
        h = nn.layers.Conv1D(
            hyper.conv_filters * 3,
            hyper.kernel_size,
            activation="relu",
            name="conv_trunk",
            seed=next_seed(),
        )(inp)
        h = nn.layers.MaxPool1D(hyper.pool_size, name="pool_trunk")(h)
        merged = nn.layers.Flatten(name="flat_trunk")(h)

    h = nn.layers.Dense(
        hyper.dense_units[0], activation="relu", name="dense_1", seed=next_seed()
    )(merged)
    if hyper.dropout > 0:
        h = nn.layers.Dropout(hyper.dropout, name="dropout_1", seed=next_seed())(h)
    h = nn.layers.Dense(
        hyper.dense_units[1], activation="relu", name="dense_2", seed=next_seed()
    )(h)
    bias_init = "zeros" if output_bias is None else initializers.constant(output_bias)
    out = nn.layers.Dense(
        1,
        activation="sigmoid",
        bias_initializer=bias_init,
        name="output",
        seed=next_seed(),
    )(h)
    return nn.Model(inp, out, name="lightweight_cnn" if branched else "trunk_cnn")
