"""``repro.core`` — the paper's method.

Preprocessing pipeline, the lightweight three-branch CNN, Table III
baselines, threshold detectors, the training protocol (augmentation,
class weights, output bias, early stopping), subject-independent k-fold
cross-validation, event-level evaluation, and the streaming real-time
detector + airbag controller.
"""

from .architecture import CnnHyperParams, build_lightweight_cnn
from .baselines import MODEL_BUILDERS, build_convlstm2d, build_lstm, build_mlp
from .crossval import FoldResult, SubjectFold, cross_validate, subject_folds
from .detector import AirbagController, Detection, DetectorConfig, FallDetector
from .distill import distill_model, soft_targets
from .events import EventOutcome, EventReport, evaluate_events
from .pipeline import build_merged_dataset, build_merged_segments
from .preprocessing import (
    PreprocessConfig,
    SegmentSet,
    build_segments,
    preprocess_recording,
)
from .thresholds import (
    AccelerationWindowDetector,
    ImpactEnergyDetector,
    ThresholdDetector,
    VerticalVelocityDetector,
    evaluate_threshold_detector,
)
from .trainer import (
    TrainingConfig,
    augment_fall_segments,
    class_weights,
    initial_output_bias,
    train_model,
)

__all__ = [
    "PreprocessConfig",
    "SegmentSet",
    "preprocess_recording",
    "build_segments",
    "CnnHyperParams",
    "build_lightweight_cnn",
    "build_mlp",
    "build_lstm",
    "build_convlstm2d",
    "MODEL_BUILDERS",
    "TrainingConfig",
    "class_weights",
    "initial_output_bias",
    "augment_fall_segments",
    "train_model",
    "SubjectFold",
    "subject_folds",
    "cross_validate",
    "FoldResult",
    "EventOutcome",
    "EventReport",
    "evaluate_events",
    "ThresholdDetector",
    "VerticalVelocityDetector",
    "ImpactEnergyDetector",
    "AccelerationWindowDetector",
    "evaluate_threshold_detector",
    "DetectorConfig",
    "Detection",
    "FallDetector",
    "AirbagController",
    "build_merged_dataset",
    "build_merged_segments",
    "distill_model",
    "soft_targets",
]
