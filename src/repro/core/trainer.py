"""Training protocol of Section III-C.

* subject-independent train/validation split (handled by ``crossval``);
* time-warping + window-warping augmentation of the *falling* training
  segments only;
* class weights inversely proportional to class frequency;
* sigmoid output bias initialised to ``log(p / (1 - p))`` (Eq. 1–2);
* Adam, up to 200 epochs, early stopping (patience 20, val loss) with
  best-weight restore.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..augment import time_warp, window_warp
from ..nn.callbacks import EarlyStopping
from ..nn.optimizers import Adam
from ..obs import get_logger, span
from .preprocessing import SegmentSet

_logger = get_logger(__name__)

__all__ = [
    "TrainingConfig",
    "class_weights",
    "initial_output_bias",
    "augment_fall_segments",
    "train_model",
]


@dataclass
class TrainingConfig:
    """Everything the training loop needs (paper defaults).

    ``augment_copies`` controls how many warped copies of each falling
    training segment are generated (the paper does not state a count; 2
    keeps the falls minority but materially denser).
    """

    epochs: int = 200
    batch_size: int = 64
    patience: int = 20
    learning_rate: float = 1e-3
    clipnorm: float | None = 5.0
    augment: bool = True
    augment_copies: int = 2
    use_class_weights: bool = True
    use_output_bias: bool = True
    seed: int = 0
    verbose: int = 0
    extra_callbacks: list = field(default_factory=list)


def class_weights(y: np.ndarray) -> dict[int, float]:
    """Balanced class weights ``n / (2 * n_c)`` for binary labels."""
    y = np.asarray(y).astype(int)
    n = len(y)
    pos = int(y.sum())
    neg = n - pos
    if pos == 0 or neg == 0:
        return {0: 1.0, 1: 1.0}
    return {0: n / (2.0 * neg), 1: n / (2.0 * pos)}


def initial_output_bias(y: np.ndarray) -> float:
    """Eq. 1 of the paper: ``b = log(p / (1 - p))`` with the falling prior."""
    y = np.asarray(y).astype(int)
    n = len(y)
    pos = int(y.sum())
    if n == 0 or pos == 0 or pos == n:
        return 0.0
    p = pos / n
    return float(np.log(p / (1.0 - p)))


def augment_fall_segments(
    segments: SegmentSet,
    copies: int = 2,
    seed: int = 0,
) -> SegmentSet:
    """Append warped copies of every falling segment.

    Each copy is time-warped or window-warped (alternating, as the paper
    applies both techniques).  Provenance columns are duplicated so the
    augmented set still supports grouping; augmented event ids get an
    ``#aug`` suffix to keep them out of event-level *evaluation*.
    """
    if copies < 1:
        return segments
    rng = np.random.default_rng(seed)
    pos_idx = np.flatnonzero(segments.y == 1)
    if pos_idx.size == 0:
        return segments
    # Write each warped copy straight into a preallocated output; the
    # assignment also performs the float64 -> X.dtype cast in place.
    new_X = np.empty((copies * pos_idx.size,) + segments.X.shape[1:],
                     dtype=segments.X.dtype)
    k = 0
    for copy_i in range(copies):
        for i in pos_idx:
            x = segments.X[i]
            if (copy_i + i) % 2 == 0:
                new_X[k] = time_warp(x, rng)
            else:
                new_X[k] = window_warp(x, rng)
            k += 1
    rows = np.tile(pos_idx, copies)
    extra = SegmentSet(
        X=new_X,
        y=np.ones(len(rows), dtype=int),
        subject=segments.subject[rows],
        task_id=segments.task_id[rows],
        event_id=np.array([f"{e}#aug" for e in segments.event_id[rows]],
                          dtype=object),
        event_is_fall=segments.event_is_fall[rows],
        trigger_valid=segments.trigger_valid[rows],
    )
    return SegmentSet.concatenate([segments, extra])


def train_model(
    builder,
    train: SegmentSet,
    validation: SegmentSet,
    config: TrainingConfig | None = None,
):
    """Train one model under the paper's protocol.

    Parameters
    ----------
    builder:
        Callable ``(window_samples, n_channels=9, output_bias=..., seed=...)``
        returning an un-compiled :class:`repro.nn.Model` — any entry of
        :data:`repro.core.baselines.MODEL_BUILDERS`.
    train / validation:
        Subject-disjoint segment sets.

    Returns ``(model, history)``.
    """
    config = config or TrainingConfig()
    if len(train) == 0:
        raise ValueError("empty training set")
    if set(train.subjects) & set(validation.subjects):
        raise ValueError(
            "training and validation sets share subjects — the paper's "
            "protocol is subject-independent"
        )

    if config.augment:
        with span("trainer/augment", copies=config.augment_copies) as sp:
            before = len(train)
            train = augment_fall_segments(train, config.augment_copies,
                                          config.seed)
            sp.set("segments_added", len(train) - before)

    bias = initial_output_bias(train.y) if config.use_output_bias else None
    window, channels = train.X.shape[1], train.X.shape[2]
    model = builder(window, channels, output_bias=bias, seed=config.seed)
    model.compile(
        optimizer=Adam(learning_rate=config.learning_rate,
                       clipnorm=config.clipnorm),
        loss="binary_crossentropy",
        metrics=["binary_accuracy"],
    )
    weights = class_weights(train.y) if config.use_class_weights else None
    early = EarlyStopping(monitor="val_loss", patience=config.patience,
                          restore_best_weights=True)
    _logger.debug("fit: %d train / %d val segments, <= %d epochs",
                  len(train), len(validation), config.epochs)
    with span("trainer/fit", model=model.name, segments=len(train)):
        history = model.fit(
            train.X,
            train.y.astype(float)[:, None],
            epochs=config.epochs,
            batch_size=config.batch_size,
            validation_data=(validation.X, validation.y.astype(float)[:, None]),
            class_weight=weights,
            callbacks=[early, *config.extra_callbacks],
            seed=config.seed,
            verbose=config.verbose,
        )
    return model, history
