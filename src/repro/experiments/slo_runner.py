"""Scenario-driven evaluation of the SLO engine and budget attribution.

``repro profile`` measures raw latency; this runner measures the layer
that turns latency into *operability*: for each condition a small
synthetic fleet is served through a :class:`~repro.serve.ServeEngine`
with SLO tracking and the alert pipeline armed, and the run reports

* the **budget attribution** — how the paper's 150 ms inflation budget
  splits across the pipeline stages (ingest, fusion, filter, window,
  inference, decision), exact by construction (the end-to-end histogram
  observes the sum of the flushed stages);
* the **error-budget status** per objective (p99 window latency and
  deadline-miss ratio) — events, bad fraction, budget remaining;
* the **burn-rate alerts** that rode the :class:`~repro.alerts.AlertManager`.

Conditions are the clean fleet, each requested fault scenario, and a
synthetic **overload**: a fake latency clock is injected into the
engine so every batched forward is *charged* more than the latency
budget without anyone sleeping — deterministically driving the
fast-burn rule over its threshold and raising a ``critical`` alert
(resolution stays with the tracker, not the escalation machinery).

Burn-rate windows are shrunk to demo scale (seconds of *stream* time,
not wall time) — the tracker is driven on stream timestamps, so the
whole eval is bit-reproducible and sleep-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..alerts import AlertConfig, EscalationConfig
from ..core.detector import DetectorConfig
from ..faults import builtin_scenarios
from ..obs import BurnRateRule, SLOConfig, get_logger
from ..obs.metrics import MetricsRegistry
from ..serve import ServeBenchConfig, ServeConfig, ServeEngine
from ..serve.bench import synth_stream
from .alerts_runner import MagnitudeProbeModel

__all__ = ["SLOEvalConfig", "run_slo_eval"]

_logger = get_logger(__name__)

#: Default fault conditions (subset of the built-in suite — the point
#: here is SLO behaviour under degradation, not fault coverage).
_DEFAULT_SCENARIOS = ("nan_burst", "spikes")


def _demo_slo() -> SLOConfig:
    """The paper's objectives with burn windows shrunk to stream-seconds
    so one short run exercises raise and budget accounting."""
    return SLOConfig(
        fast_burn=BurnRateRule(name="fast_burn", short_window_s=1.0,
                               long_window_s=3.0, threshold=14.4,
                               severity="critical"),
        slow_burn=BurnRateRule(name="slow_burn", short_window_s=2.0,
                               long_window_s=5.0, threshold=6.0,
                               severity="suspect"),
        budget_window_s=30.0,
        bucket_s=0.25,
    )


class _SyntheticLatencyClock:
    """``perf_counter`` stand-in: consecutive reads differ by ``step_s``.

    The engine brackets each batched forward with two clock reads, so
    injecting this charges every window exactly ``step_s`` seconds of
    latency — the overload condition without any sleeping.
    """

    def __init__(self, step_s: float):
        self.step_s = float(step_s)
        self._now = 0.0

    def __call__(self) -> float:
        self._now += self.step_s
        return self._now


@dataclass(frozen=True)
class SLOEvalConfig:
    """Fleet shape, SLO policy and overload level for :func:`run_slo_eval`."""

    n_streams: int = 4
    #: Streams 1..faulted_streams carry the fault scenario.
    faulted_streams: int = 2
    duration_s: float = 6.0
    seed: int = 17
    detector: DetectorConfig = field(default_factory=DetectorConfig)
    #: Demo-scale burn windows (see :func:`_demo_slo`).
    slo: SLOConfig = field(default_factory=_demo_slo)
    #: Alert policy behind the burn-rate alerts (tight, like the other
    #: demo runners, though SLO alerts bypass the escalation machines).
    alerts: AlertConfig = field(default_factory=lambda: AlertConfig(
        escalation=EscalationConfig(confirm_window_s=1.5,
                                    confirm_detections=1,
                                    auto_resolve_s=2.0),
        dedup_horizon_s=4.0,
    ))
    #: Synthetic per-batch latency charged in the overload condition;
    #: must exceed ``slo.latency_budget_ms`` to burn the budget.
    overload_latency_ms: float = 180.0

    def __post_init__(self):
        if self.n_streams < 1:
            raise ValueError("n_streams must be >= 1")
        if not 0 <= self.faulted_streams < self.n_streams + 1:
            raise ValueError("faulted_streams must fit in the fleet")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.overload_latency_ms <= 0:
            raise ValueError("overload_latency_ms must be positive")


def _fleet_for(scenario, config: SLOEvalConfig) -> dict:
    bench_cfg = ServeBenchConfig(
        n_streams=config.n_streams, duration_s=config.duration_s,
        seed=config.seed, detector=config.detector,
    )
    streams = {}
    for idx in range(config.n_streams):
        accel, gyro, t = synth_stream(idx, bench_cfg)
        if scenario is not None and 1 <= idx <= config.faulted_streams:
            t, accel, gyro = scenario.apply_arrays(t, accel, gyro)
        streams[f"s{idx:03d}"] = (accel, gyro, t)
    return streams


def _run_condition(scenario, config: SLOEvalConfig, *,
                   overload: bool = False) -> dict:
    registry = MetricsRegistry()
    latency_clock = (_SyntheticLatencyClock(config.overload_latency_ms
                                            / 1000.0)
                     if overload else None)
    engine = ServeEngine(
        MagnitudeProbeModel(),
        ServeConfig(detector=config.detector, alerts=config.alerts,
                    slo=config.slo),
        registry=registry,
        latency_clock=latency_clock,
    )
    streams = _fleet_for(scenario, config)
    hop = config.detector.hop_samples
    n = max(len(t) for _, _, t in streams.values())
    for i in range(n):
        for stream_id, (accel, gyro, t) in streams.items():
            if i < len(t):
                engine.submit(stream_id, accel[i], gyro[i], t[i])
        if (i + 1) % hop == 0:
            engine.step()
    engine.step()
    slo = engine.slo_report()
    manager = engine.alerts
    slo_alerts = sorted(
        {alert.stream for alert in manager.alerts if alert.source == "slo"})
    burning = {
        f"{objective}/{rule}"
        for objective, obj in slo["objectives"].items()
        for rule, state in obj["burn_rates"].items() if state["burning"]
    }
    return {
        "windows": slo["stages"]["windows"] if "stages" in slo else 0,
        "detections": engine.detections,
        "stage_report": slo.get("stages"),
        "attribution": slo.get("attribution"),
        "objectives": slo["objectives"],
        "alerts_raised": slo["alerts_raised"],
        "alerts_resolved": slo["alerts_resolved"],
        "alert_subjects": slo_alerts,
        "burning": sorted(burning),
        "fast_burn_alert": any("fast_burn" in subject
                               for subject in slo_alerts),
        "overload": overload,
    }


def run_slo_eval(config: SLOEvalConfig | None = None,
                 scenarios=None) -> dict:
    """Per-condition SLO behaviour (see module docstring).

    ``scenarios`` is ``None`` for the default subset, a list of built-in
    fault-scenario names, or a dict ``{name: FaultScenario}``.  The
    clean condition always runs first; the synthetic overload condition
    always runs last.
    """
    config = config or SLOEvalConfig()
    if scenarios is None:
        available = builtin_scenarios(seed=config.seed)
        scenarios = {n: available[n] for n in _DEFAULT_SCENARIOS}
    elif not isinstance(scenarios, dict):
        available = builtin_scenarios(seed=config.seed)
        unknown = [n for n in scenarios if n not in available]
        if unknown:
            raise ValueError(f"unknown scenario(s) {unknown}; "
                             f"available: {sorted(available)}")
        scenarios = {n: available[n] for n in scenarios}
    _logger.info("slo eval: %d streams, %d scenario(s) + overload",
                 config.n_streams, len(scenarios))
    conditions = {"clean": _run_condition(None, config)}
    for name, scenario in sorted(scenarios.items()):
        conditions[name] = _run_condition(scenario, config)
    conditions["overload"] = _run_condition(None, config, overload=True)
    return {
        "n_streams": config.n_streams,
        "faulted_streams": config.faulted_streams,
        "duration_s": config.duration_s,
        "latency_budget_ms": config.slo.latency_budget_ms,
        "overload_latency_ms": config.overload_latency_ms,
        "rules": {
            rule.name: {
                "short_window_s": rule.short_window_s,
                "long_window_s": rule.long_window_s,
                "threshold": rule.threshold,
                "severity": rule.severity,
            }
            for rule in config.slo.rules
        },
        "conditions": conditions,
    }
