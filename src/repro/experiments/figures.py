"""Figure reproductions.

Figure 1 (fall-stage anatomy) and Figure 2 (methodology pipeline) are
diagrams, so their "reproduction" is the data behind them: per-stage
signal statistics of a generated fall, and a stage-by-stage end-to-end
pipeline trace.
"""

from __future__ import annotations

import numpy as np

from ..core.architecture import build_lightweight_cnn
from ..core.crossval import subject_folds
from ..core.trainer import train_model
from ..datasets.schema import Recording
from ..datasets.subjects import make_subjects
from ..datasets.synthesis.generator import synthesize_recording
from ..datasets.tasks import TASKS
from ..eval.metrics import segment_metrics
from ..quant.qmodel import QuantizedModel
from ..edge.deploy import deployment_report
from .configs import ExperimentScale, get_scale
from .runners import _segments_for, build_experiment_dataset, training_config

__all__ = ["fall_anatomy", "run_figure1", "run_figure2_pipeline"]


def fall_anatomy(recording: Recording, airbag_ms: float = 150.0) -> dict:
    """Per-stage statistics of one fall trial (the content of Figure 1).

    Stages: pre-fall activity, falling (split into the usable part and the
    final ``airbag_ms`` the paper withholds), impact transient, post-fall.
    """
    if not recording.is_fall:
        raise ValueError("fall_anatomy needs a fall recording")
    fs = recording.fs
    onset, impact = recording.fall_onset, recording.impact
    airbag = int(round(airbag_ms * fs / 1000.0))
    impact_end = min(impact + int(0.3 * fs), recording.n_samples)
    mag = np.linalg.norm(recording.accel, axis=1)
    gyro_mag = np.linalg.norm(recording.gyro, axis=1)

    def stats(sl: slice) -> dict:
        if sl.start >= sl.stop:
            return {"duration_ms": 0.0}
        return {
            "duration_ms": (sl.stop - sl.start) * 1000.0 / fs,
            "accel_mag_mean": float(mag[sl].mean()),
            "accel_mag_min": float(mag[sl].min()),
            "accel_mag_max": float(mag[sl].max()),
            "gyro_mag_max": float(gyro_mag[sl].max()),
        }

    usable_end = max(impact - airbag, onset)
    return {
        "task": TASKS[recording.task_id].description,
        "fs": fs,
        "onset_s": onset / fs,
        "impact_s": impact / fs,
        "falling_duration_ms": (impact - onset) * 1000.0 / fs,
        "stages": {
            "pre_fall": stats(slice(0, onset)),
            "falling_usable": stats(slice(onset, usable_end)),
            "falling_withheld_150ms": stats(slice(usable_end, impact)),
            "impact": stats(slice(impact, impact_end)),
            "post_fall": stats(slice(impact_end, recording.n_samples)),
        },
    }


def run_figure1(task_id: int = 30, seed: int = 42) -> dict:
    """Generate one fall of ``task_id`` and compute its stage anatomy."""
    subject = make_subjects("FIG", 1, seed=seed)[0]
    rec = synthesize_recording(TASKS[task_id], subject, base_seed=seed)
    return fall_anatomy(rec)


def run_figure2_pipeline(scale: ExperimentScale | None = None) -> dict:
    """Trace every stage of Figure 2 end to end.

    Acquisition → alignment/merge → preprocessing → training → testing →
    quantization → deployment.  Returns one summary dict per stage.
    """
    scale = scale or get_scale()
    dataset = build_experiment_dataset(scale)
    stage_data = dataset.summary()

    segments = _segments_for(dataset, 400.0, 0.5)
    stage_preprocess = segments.class_summary()

    fold = subject_folds(segments.subjects, k=scale.folds,
                         n_val_subjects=scale.n_val_subjects,
                         seed=scale.seed)[0]
    train = segments.by_subjects(fold.train_subjects)
    val = segments.by_subjects(fold.val_subjects)
    test = segments.by_subjects(fold.test_subjects)
    model, history = train_model(build_lightweight_cnn, train, val,
                                 training_config(scale))
    stage_train = {
        "epochs": len(history.epochs),
        "train_segments": len(train),
        "val_segments": len(val),
    }

    probs = model.predict(test.X).reshape(-1)
    stage_test = {
        k: v for k, v in segment_metrics(test.y, probs).items()
        if k in ("accuracy", "precision", "recall", "f1")
    }

    rng = np.random.default_rng(scale.seed)
    calib = train.X[rng.choice(len(train), size=min(256, len(train)),
                               replace=False)]
    qmodel = QuantizedModel.convert(model, calib)
    report = deployment_report(qmodel)
    stage_deploy = {
        "flash_kib": report["flash_kib"],
        "ram_kib": report["ram_kib"],
        "latency_ms": report["latency_ms"],
        "fits": report["fits_flash"] and report["fits_ram"]
        and report["meets_deadline"],
    }
    return {
        "acquisition": stage_data,
        "preprocessing": stage_preprocess,
        "training": stage_train,
        "testing": stage_test,
        "deployment": stage_deploy,
    }
