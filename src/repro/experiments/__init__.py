"""``repro.experiments`` — config-driven runners for every table & figure."""

from .alerts_runner import AlertEvalConfig, MagnitudeProbeModel, run_alert_eval
from .configs import BENCH, PAPER, QUICK, ExperimentScale, get_scale
from .edge_runner import run_edge_experiment
from .faults_runner import run_fault_scenarios, stream_recording
from .figures import fall_anatomy, run_figure1, run_figure2_pipeline
from .runners import (
    build_experiment_dataset,
    experiment_durations,
    experiment_pool_stats,
    reset_experiment_caches,
    run_ablations,
    run_cross_dataset,
    run_model_on_window,
    run_profile_workload,
    run_table1_thresholds,
    run_table3,
    run_table4,
    run_window_sweep,
    training_config,
)
from .slo_runner import SLOEvalConfig, run_slo_eval

__all__ = [
    "ExperimentScale",
    "QUICK",
    "BENCH",
    "PAPER",
    "get_scale",
    "build_experiment_dataset",
    "training_config",
    "run_model_on_window",
    "run_table3",
    "run_table4",
    "run_window_sweep",
    "run_table1_thresholds",
    "run_ablations",
    "run_cross_dataset",
    "run_profile_workload",
    "run_fault_scenarios",
    "stream_recording",
    "AlertEvalConfig",
    "MagnitudeProbeModel",
    "run_alert_eval",
    "SLOEvalConfig",
    "run_slo_eval",
    "experiment_durations",
    "experiment_pool_stats",
    "reset_experiment_caches",
    "run_edge_experiment",
    "fall_anatomy",
    "run_figure1",
    "run_figure2_pipeline",
]
