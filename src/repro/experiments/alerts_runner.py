"""Scenario-driven evaluation of the fleet alert pipeline.

``repro faults`` measures how *detections* degrade under sensor faults;
this runner measures what the layer above does with them: for each
fault scenario a small synthetic fleet is served through a
:class:`~repro.serve.ServeEngine` with the alert pipeline armed, and
the run reports how detections became (or correctly failed to become)
operator-facing alerts — raised / deduped / demoted-to-suspect /
expired / auto-resolved — plus what landed in the persistent event
store.

The fleet per scenario (all streams use quiet ADL bases — the
serve-bench indices that carry built-in fall events are skipped so
every event below is injected deliberately):

* stream 0 carries two synthetic high-g *fall pulses* — the true
  positive every scenario should escalate at ``critical``, with the
  second pulse landing inside the dedup horizon so it collapses into
  a repeat instead of a second page;
* streams 1..``faulted_streams`` carry the scenario's fault, and
  stream 1 *also* carries a fall pulse — a fall seen through a
  degraded sensor should page at ``suspect``, not ``critical``, and a
  fault that starves the detector of windows (dead gyro) should
  suppress the page entirely;
* spike-type scenarios produce the false-positive bursts that real
  ADL-dominated deployments suffer ("Watch Your Step", arXiv
  2509.11789) on the faulted-but-quiet streams — those ride the
  confirm window and dedup rather than paging per spike;
* the remainder stay clean and quiet and should stay silent.

Inference uses a deterministic :class:`MagnitudeProbeModel` rather than
a freshly trained CNN so the eval isolates the *alerting* behaviour
from training noise and stays bit-reproducible run to run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from ..alerts import AlertConfig, EscalationConfig, EventStoreConfig
from ..core.detector import DetectorConfig
from ..faults import builtin_scenarios
from ..obs import get_logger
from ..obs.metrics import MetricsRegistry
from ..serve import ServeBenchConfig, ServeConfig, ServeEngine
from ..serve.bench import synth_stream

__all__ = ["AlertEvalConfig", "MagnitudeProbeModel", "run_alert_eval"]

_logger = get_logger(__name__)


class MagnitudeProbeModel:
    """Deterministic window scorer: peak accel magnitude → probability.

    Maps the window's peak acceleration-magnitude (channels 0–2 of the
    staged window are accel in g) linearly onto [0, 1] between ``lo_g``
    and ``hi_g``.  The defaults are calibrated against the *staged*
    (filtered) windows of the serve-bench workload: quiet ADL stages at
    ~1.06 g peak (scores 0), injected spike faults survive filtering at
    ~2.1 g (score ≈0.6 — a detection), and fall pulses stage at ~4 g
    (score 1.0) — the exact regime the alert layer has to tell apart.
    """

    def __init__(self, lo_g: float = 1.3, hi_g: float = 2.6):
        if hi_g <= lo_g:
            raise ValueError(f"need hi_g > lo_g, got {lo_g}..{hi_g}")
        self.lo_g = float(lo_g)
        self.hi_g = float(hi_g)

    def predict(self, x):
        x = np.asarray(x)
        if x.shape[0] == 0:
            return np.zeros((0, 1))
        magnitude = np.sqrt((x[:, :, :3] ** 2).sum(axis=2))
        peak = magnitude.max(axis=1)
        prob = (peak - self.lo_g) / (self.hi_g - self.lo_g)
        return np.clip(prob, 0.0, 1.0)[:, None]


@dataclass(frozen=True)
class AlertEvalConfig:
    """Fleet shape and alert policy for :func:`run_alert_eval`."""

    n_streams: int = 4
    #: Streams 1..faulted_streams carry the fault scenario.
    faulted_streams: int = 2
    duration_s: float = 8.0
    seed: int = 13
    detector: DetectorConfig = field(default_factory=DetectorConfig)
    #: Tight demo policy: one confirming window escalates, short
    #: auto-resolve so a single run exercises the full lifecycle.
    alerts: AlertConfig = field(default_factory=lambda: AlertConfig(
        escalation=EscalationConfig(confirm_window_s=1.5,
                                    confirm_detections=1,
                                    auto_resolve_s=2.0),
        dedup_horizon_s=4.0,
    ))
    #: Root directory for per-scenario event stores; ``None`` keeps the
    #: stores in memory (no persistence assertions possible).
    store_dir: str | None = None
    #: Fall-pulse shape injected into streams 0 and 1.
    fall_t_s: float = 3.0
    fall_duration_s: float = 0.4
    fall_peak_g: float = 4.0
    #: Second fall pulse on stream 0, inside the dedup horizon of the
    #: first so it collapses into a repeat; ``None`` disables it.
    second_fall_t_s: float | None = 5.5

    def __post_init__(self):
        if self.n_streams < 1:
            raise ValueError("n_streams must be >= 1")
        if not 0 <= self.faulted_streams < self.n_streams + 1:
            raise ValueError("faulted_streams must fit in the fleet")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")


def _inject_fall(accel, t, config: AlertEvalConfig, at_s: float):
    """Superimpose a smooth high-g pulse (impact-like) onto one stream."""
    accel = accel.copy()
    envelope = np.exp(
        -0.5 * ((t - at_s) / (config.fall_duration_s / 4.0)) ** 2
    )
    accel[:, 2] += (config.fall_peak_g - 1.0) * envelope
    return accel


def _quiet_synth_index(position: int) -> int:
    """Serve-bench stream index for fleet ``position``, skipping the
    indices (multiples of 3) whose synthetic trace carries a built-in
    fall event — the eval injects its own events deliberately."""
    return position + position // 2 + 1


def _fleet_for(scenario, config: AlertEvalConfig) -> dict:
    bench_cfg = ServeBenchConfig(
        n_streams=3 * config.n_streams + 1, duration_s=config.duration_s,
        seed=config.seed, detector=config.detector,
    )
    streams = {}
    for idx in range(config.n_streams):
        accel, gyro, t = synth_stream(_quiet_synth_index(idx), bench_cfg)
        if idx <= 1:
            accel = _inject_fall(accel, t, config, config.fall_t_s)
        if idx == 0 and config.second_fall_t_s is not None:
            accel = _inject_fall(accel, t, config, config.second_fall_t_s)
        if scenario is not None and 1 <= idx <= config.faulted_streams:
            t, accel, gyro = scenario.apply_arrays(t, accel, gyro)
        streams[f"s{idx:03d}"] = (accel, gyro, t)
    return streams


def _run_condition(name: str, scenario, config: AlertEvalConfig) -> dict:
    alerts_cfg = config.alerts
    if config.store_dir is not None:
        alerts_cfg = AlertConfig(
            escalation=alerts_cfg.escalation,
            dedup_horizon_s=alerts_cfg.dedup_horizon_s,
            store=EventStoreConfig(
                root=os.path.join(config.store_dir, name)),
            max_alerts=alerts_cfg.max_alerts,
            per_stream_metrics=alerts_cfg.per_stream_metrics,
        )
    registry = MetricsRegistry()
    engine = ServeEngine(
        MagnitudeProbeModel(),
        ServeConfig(detector=config.detector, alerts=alerts_cfg),
        registry=registry,
    )
    streams = _fleet_for(scenario, config)
    hop = config.detector.hop_samples
    n = max(len(t) for _, _, t in streams.values())
    for i in range(n):
        for stream_id, (accel, gyro, t) in streams.items():
            if i < len(t):
                engine.submit(stream_id, accel[i], gyro[i], t[i])
        if (i + 1) % hop == 0:
            engine.step()
    engine.step()
    report = engine.report()
    alerts = report["alerts"]
    manager = engine.alerts
    severities = {"critical": 0, "suspect": 0}
    for alert in manager.alerts:
        severities[alert.severity] = severities.get(alert.severity, 0) + 1
    alert_streams = sorted({a.stream for a in manager.alerts})
    return {
        "detections": report["detections"],
        "raised": alerts["raised"],
        "critical": severities["critical"],
        "suspect": severities["suspect"],
        "deduped": alerts["deduped"],
        "expired": alerts["expired"],
        "resolved": alerts["resolved"],
        "transitions": alerts["transitions"],
        "errors": alerts["errors"],
        "alert_streams": alert_streams,
        "store_events": (alerts["store"]["events"]
                         if alerts["store"] is not None else None),
        "worst_healths": sorted({
            s["health"] for s in engine.stream_report().values()
        }),
    }


def run_alert_eval(config: AlertEvalConfig | None = None,
                   scenarios=None) -> dict:
    """Per-scenario alert-pipeline behaviour (see module docstring).

    ``scenarios`` is ``None`` for the full built-in suite, a list of
    built-in names, or a dict ``{name: FaultScenario}``; the clean
    condition always runs first as the baseline.
    """
    config = config or AlertEvalConfig()
    if scenarios is None:
        scenarios = builtin_scenarios(seed=config.seed)
    elif not isinstance(scenarios, dict):
        available = builtin_scenarios(seed=config.seed)
        unknown = [n for n in scenarios if n not in available]
        if unknown:
            raise ValueError(f"unknown scenario(s) {unknown}; "
                             f"available: {sorted(available)}")
        scenarios = {n: available[n] for n in scenarios}
    _logger.info("alert eval: %d streams, %d scenario(s)",
                 config.n_streams, len(scenarios))
    results = {
        "n_streams": config.n_streams,
        "faulted_streams": config.faulted_streams,
        "duration_s": config.duration_s,
        "policy": {
            "confirm_window_s": config.alerts.escalation.confirm_window_s,
            "confirm_detections": config.alerts.escalation.confirm_detections,
            "auto_resolve_s": config.alerts.escalation.auto_resolve_s,
            "dedup_horizon_s": config.alerts.dedup_horizon_s,
        },
        "clean": _run_condition("clean", None, config),
        "scenarios": {
            name: _run_condition(name, scenario, config)
            for name, scenario in sorted(scenarios.items())
        },
    }
    return results
