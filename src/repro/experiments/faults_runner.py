"""Fault-scenario evaluation: event-level robustness of the live detector.

Replays held-out recordings through the hardened
:class:`~repro.core.detector.FallDetector` — once clean, once per fault
scenario — and reports how sensitivity and false alarms degrade.  The
event rule mirrors :func:`repro.core.thresholds.evaluate_threshold_detector`:
a fall counts as detected when some trigger lands between just before the
annotated onset and ``airbag_ms`` before impact (later triggers cannot
inflate the bag in time); any trigger on an ADL is a false alarm.
"""

from __future__ import annotations

import os

import numpy as np

from ..core.architecture import build_lightweight_cnn
from ..core.detector import DetectorConfig, FallDetector
from ..faults import FaultScenario, builtin_scenarios
from ..obs import FlightConfig, FlightRecorder, get_logger
from .configs import ExperimentScale, get_scale
from .runners import (
    _segments_for,
    _timed,
    build_experiment_dataset,
    training_config,
)

__all__ = ["run_fault_scenarios", "stream_recording"]

_logger = get_logger(__name__)


def stream_recording(
    detector: FallDetector,
    recording,
    scenario: FaultScenario | None = None,
    airbag_ms: float = 150.0,
    onset_grace_s: float = 0.2,
) -> dict:
    """Stream one (possibly faulted) recording through ``detector``.

    The detector is reset first, so each trial starts fresh.  Returns the
    event verdict plus the detector's health/anomaly report for the trial.
    """
    if scenario is not None:
        t, accel, gyro = scenario.apply(recording)
    else:
        n = recording.n_samples
        t = np.arange(n, dtype=float) / recording.fs
        accel, gyro = recording.accel, recording.gyro
    detector.reset()
    hits = detector.run(accel, gyro, t=t)
    verdict: dict = {
        "event_id": recording.event_id,
        "is_fall": recording.is_fall,
        "n_detections": len(hits),
        "triggered": bool(hits),
        "health": detector.health_report(),
    }
    if recording.is_fall:
        lo = recording.fall_onset / recording.fs - onset_grace_s
        hi = recording.impact / recording.fs - airbag_ms / 1000.0
        verdict["detected"] = any(lo <= h.time_s <= hi for h in hits)
        in_window = [h.time_s for h in hits if lo <= h.time_s <= hi]
        verdict["margin_ms"] = (
            1000.0 * (recording.impact / recording.fs - min(in_window))
            if in_window else None
        )
    return verdict


def _aggregate(verdicts: list[dict]) -> dict:
    falls = [v for v in verdicts if v["is_fall"]]
    adls = [v for v in verdicts if not v["is_fall"]]
    detected = sum(v["detected"] for v in falls)
    false_alarms = sum(v["triggered"] for v in adls)
    margins = [v["margin_ms"] for v in falls if v.get("margin_ms") is not None]
    states: set[str] = set()
    counters = {
        "repaired_samples": 0, "gap_filled_samples": 0, "stream_resets": 0,
        "saturated_samples": 0, "clock_anomalies": 0, "inference_errors": 0,
        "fallback_detections": 0, "deadline_violations": 0,
    }
    for v in verdicts:
        states.update(v["health"]["states_seen"])
        for key in counters:
            counters[key] += v["health"][key]
    return {
        "events": len(verdicts),
        "falls": len(falls),
        "falls_detected": detected,
        "sensitivity": 100.0 * detected / len(falls) if falls else float("nan"),
        "adls": len(adls),
        "false_alarms": false_alarms,
        "false_alarm_rate": (
            100.0 * false_alarms / len(adls) if adls else float("nan")
        ),
        "mean_margin_ms": float(np.mean(margins)) if margins else float("nan"),
        "states_seen": sorted(states),
        **counters,
    }


@_timed
def run_fault_scenarios(
    scale: ExperimentScale | None = None,
    scenarios=None,
    model="train",
    max_epochs: int = 4,
    window_ms: float = 400.0,
    deadline_ms: float | None = None,
    airbag_ms: float = 150.0,
    incident_dir: str | None = None,
    max_incidents: int | None = None,
) -> dict:
    """Clean-vs-faulted event evaluation on held-out subjects.

    ``model`` is ``"train"`` (fit a short CNN on the non-streaming
    subjects, like ``repro profile``), ``None`` (fallback-only detector —
    the CNN branch disabled outright), or any object with ``predict``.
    ``scenarios`` is ``None`` for the full built-in suite, a list of
    built-in names, or a dict ``{name: FaultScenario}``.

    ``incident_dir`` arms a :class:`repro.obs.FlightRecorder` on the
    evaluation detector: every detection / fallback / health-flip during
    the faulted trials freezes an incident file there, each of which
    ``repro replay`` can re-run bit-identically.  ``max_incidents``
    bounds the *directory* to that many incident files, oldest pruned
    first (also capping this recorder to the same number).
    """
    scale = scale or get_scale()
    dataset = build_experiment_dataset(scale)
    if scenarios is None:
        scenarios = builtin_scenarios(seed=scale.seed)
    elif not isinstance(scenarios, dict):
        available = builtin_scenarios(seed=scale.seed)
        unknown = [n for n in scenarios if n not in available]
        if unknown:
            raise ValueError(
                f"unknown scenario(s) {unknown}; "
                f"available: {sorted(available)}"
            )
        scenarios = {n: available[n] for n in scenarios}

    segments = _segments_for(dataset, window_ms, 0.5)
    subjects = list(segments.subjects)
    if len(subjects) < 3:
        raise ValueError("fault evaluation needs >= 3 subjects")
    stream_subject = subjects[-1]
    if model == "train":
        from ..core.trainer import train_model

        train = segments.by_subjects(subjects[:-2])
        val = segments.by_subjects([subjects[-2]])
        config = training_config(
            scale, epochs=min(scale.epochs, max_epochs),
            patience=min(scale.patience, max_epochs),
        )
        model, _ = train_model(build_lightweight_cnn, train, val, config)
    recordings = [r for r in dataset if r.subject_id == stream_subject]
    recorder = None
    if incident_dir is not None:
        flight_cfg = (FlightConfig(out_dir=incident_dir)
                      if max_incidents is None else
                      FlightConfig(out_dir=incident_dir,
                                   max_incidents=max_incidents,
                                   max_dir_incidents=max_incidents))
        recorder = FlightRecorder(
            flight_cfg, stream_id=f"faults:{stream_subject}",
        )
    detector = FallDetector(
        model if model != "train" else None,
        DetectorConfig(window_ms=window_ms, deadline_ms=deadline_ms),
        recorder=recorder,
    )
    _logger.info(
        "fault evaluation: %d recordings of %s under %d scenarios",
        len(recordings), stream_subject, len(scenarios),
    )

    def _condition(scenario):
        return _aggregate([
            stream_recording(detector, rec, scenario, airbag_ms=airbag_ms)
            for rec in recordings
        ])

    results = {
        "stream_subject": stream_subject,
        "recordings": len(recordings),
        "mode": "fallback-only" if model is None else "cnn",
        "clean": _condition(None),
        "scenarios": {
            name: _condition(scenario)
            for name, scenario in scenarios.items()
        },
    }
    if recorder is not None:
        recorder.flush()
        # The directory cap may have pruned older files; report survivors.
        results["incident_paths"] = [
            p for p in recorder.incident_paths if os.path.exists(p)
        ]
        results["suppressed_triggers"] = recorder.suppressed_triggers
    return results
