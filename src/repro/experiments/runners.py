"""Experiment runners: one function per table/figure of the paper.

Each runner takes an :class:`~repro.experiments.configs.ExperimentScale`
and returns plain dict/report results; the benchmark harness times them
and renders the paper-vs-measured tables.
"""

from __future__ import annotations

import dataclasses
import functools
import time

import numpy as np

from ..core.architecture import build_lightweight_cnn
from ..core.baselines import MODEL_BUILDERS
from ..core.crossval import cross_validate
from ..core.events import EventReport, evaluate_events
from ..core.pipeline import build_merged_dataset
from ..core.preprocessing import PreprocessConfig, build_segments
from ..core.thresholds import (
    AccelerationWindowDetector,
    ImpactEnergyDetector,
    VerticalVelocityDetector,
    evaluate_threshold_detector,
)
from ..core.trainer import TrainingConfig, train_model
from ..datasets.labeling import LabelPolicy
from ..eval.metrics import segment_metrics
from ..eval.reports import aggregate_fold_metrics
from ..obs import get_logger, span
from ..parallel import ParallelTask, default_cache, last_run_stats, run_parallel
from .configs import ExperimentScale, get_scale

__all__ = [
    "build_experiment_dataset",
    "training_config",
    "run_model_on_window",
    "run_table3",
    "run_table4",
    "run_window_sweep",
    "run_table1_thresholds",
    "run_ablations",
    "run_cross_dataset",
    "run_profile_workload",
    "experiment_durations",
    "experiment_pool_stats",
    "reset_experiment_caches",
]

_logger = get_logger(__name__)

#: Wall-clock seconds of the most recent run of each experiment, keyed by
#: runner name.  The benchmark harness appends these to the archived
#: result files, so every table carries its own cost.
_DURATIONS: dict[str, float] = {}


def experiment_durations() -> dict[str, float]:
    """Last recorded wall-clock duration (s) per experiment runner."""
    return dict(_DURATIONS)


#: Pool statistics (:func:`repro.parallel.last_run_stats`) of the most
#: recent fan-out per runner — n_jobs, wall vs busy seconds, per-worker
#: busy seconds — appended to archived results next to the durations so
#: a 4-worker number is never mistaken for a serial one.
_POOL_STATS: dict[str, dict] = {}


def experiment_pool_stats() -> dict[str, dict]:
    """Last pool stats per runner (empty for runners that ran serially)."""
    return {name: dict(stats) for name, stats in _POOL_STATS.items()}


def _fan_out(name: str, tasks, n_jobs, seed):
    """Run ``tasks`` through the pool and remember the stats under ``name``."""
    outcomes = run_parallel(tasks, n_jobs=n_jobs, base_seed=seed, label=name)
    _POOL_STATS[name] = last_run_stats()
    return outcomes


def _effective_jobs(scale: ExperimentScale, n_jobs):
    """Explicit argument > scale override > ``REPRO_JOBS`` (resolved by
    the pool)."""
    return n_jobs if n_jobs is not None else scale.n_jobs


def _timed(fn):
    """Record wall-clock duration and an ``experiment/<name>`` span."""

    name = fn.__name__

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        with span(f"experiment/{name}"):
            t0 = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                _DURATIONS[name] = time.perf_counter() - t0
                _logger.debug("%s took %.2f s", name, _DURATIONS[name])

    return wrapper


def _dataset_cache_config(scale: ExperimentScale) -> dict:
    """Everything that determines the merged dataset's content."""
    return {
        "kfall_subjects": scale.kfall_subjects,
        "selfcollected_subjects": scale.selfcollected_subjects,
        "trials_per_task": scale.trials_per_task,
        "duration_scale": scale.duration_scale,
        "seed": scale.seed,
    }


def build_experiment_dataset(scale: ExperimentScale | None = None):
    """The merged, aligned dataset for a scale.

    Two cache layers: a per-process memo (same object back within one
    process) over the on-disk :class:`~repro.parallel.ArtifactCache`
    (bit-identical rebuild across processes and across runs).
    """
    scale = scale or get_scale()
    config = _dataset_cache_config(scale)
    key = tuple(sorted(config.items()))
    cached = _DATASET_CACHE.get(key)
    if cached is None:
        cached = default_cache().get_or_build(
            "dataset", config, lambda: build_merged_dataset(**config))
        # Stamp the build config so _segments_for can address its own
        # disk entries by content rather than object identity.
        cached.cache_config = config
        _DATASET_CACHE[key] = cached
    return cached


_DATASET_CACHE: dict = {}
_SEGMENT_CACHE: dict = {}


def reset_experiment_caches() -> None:
    """Forget the per-process dataset/segment memos.

    The on-disk artifact cache is untouched — benchmarks use this to
    measure cold-process-warm-disk paths.
    """
    _DATASET_CACHE.clear()
    _SEGMENT_CACHE.clear()


def _segments_for(dataset, window_ms, overlap, policy=None):
    key = (id(dataset), window_ms, overlap,
           None if policy is None else (policy.airbag_ms,
                                        policy.exclude_impact_ms))
    cached = _SEGMENT_CACHE.get(key)
    if cached is not None:
        return cached
    config = PreprocessConfig(
        window_ms=window_ms, overlap=overlap,
        policy=policy or LabelPolicy(),
    )
    dataset_config = getattr(dataset, "cache_config", None)
    if dataset_config is not None:
        # Content-addressed: the full preprocess config plus the dataset's
        # own build config, so any knob change is a clean miss.
        disk_config = {
            "dataset": dataset_config,
            "window_ms": config.window_ms,
            "overlap": config.overlap,
            "fs": config.fs,
            "filter_cutoff_hz": config.filter_cutoff_hz,
            "filter_order": config.filter_order,
            "label_min_fraction": config.label_min_fraction,
            "channel_scales": list(config.channel_scales),
            "policy": dataclasses.asdict(config.policy),
        }
        cached = default_cache().get_or_build(
            "segments", disk_config, lambda: build_segments(dataset, config))
    else:
        # Ad-hoc dataset (tests, notebooks): no content address, memo only.
        cached = build_segments(dataset, config)
    _SEGMENT_CACHE[key] = cached
    return cached


def training_config(scale: ExperimentScale, **overrides) -> TrainingConfig:
    """The paper's protocol at the given scale."""
    defaults = dict(
        epochs=scale.epochs,
        patience=scale.patience,
        batch_size=scale.batch_size,
        seed=scale.seed,
    )
    defaults.update(overrides)
    return TrainingConfig(**defaults)


@_timed
def run_model_on_window(
    builder,
    scale: ExperimentScale | None = None,
    window_ms: float = 400.0,
    overlap: float = 0.5,
    config: TrainingConfig | None = None,
    n_jobs: int | None = None,
) -> dict:
    """Cross-validate one model at one segmentation setting.

    Returns mean segment metrics (percent), per-fold results and the
    pooled event report over every fold's test subjects.
    """
    scale = scale or get_scale()
    dataset = build_experiment_dataset(scale)
    segments = _segments_for(dataset, window_ms, overlap)
    results = cross_validate(
        builder,
        segments,
        k=scale.folds,
        n_val_subjects=scale.n_val_subjects,
        config=config or training_config(scale),
        seed=scale.seed,
        max_folds=scale.max_folds,
        n_jobs=_effective_jobs(scale, n_jobs),
    )
    _POOL_STATS["run_model_on_window"] = last_run_stats()
    outcomes = []
    for fr in results:
        outcomes.extend(evaluate_events(fr.test, fr.probabilities).outcomes)
    return {
        "metrics": aggregate_fold_metrics(results),
        "folds": results,
        "events": EventReport(outcomes),
        "segments_total": len(segments),
        "segments_falling": segments.n_positive,
    }


def _grid_cell(builder, scale, window_ms, overlap) -> dict:
    """One grid cell, module-level so it pickles into pool workers.

    Returns only the aggregated metrics — fold models and test segments
    stay in the worker instead of shipping across the pool boundary.
    """
    run = run_model_on_window(builder, scale, window_ms=window_ms,
                              overlap=overlap)
    return run["metrics"]


@_timed
def run_table3(
    scale: ExperimentScale | None = None,
    windows=(200.0, 300.0, 400.0),
    models=None,
    n_jobs: int | None = None,
) -> dict:
    """Table III: every model × every window size (50 % overlap)."""
    scale = scale or get_scale()
    models = models or MODEL_BUILDERS
    # Built once here: forked workers inherit the memo, spawned or cold
    # ones hit the disk cache instead of re-synthesizing 61 subjects each.
    build_experiment_dataset(scale)
    cells = [(window, name, builder)
             for window in windows for name, builder in models.items()]
    tasks = [
        ParallelTask(_grid_cell, args=(builder, scale, window, 0.5),
                     name=f"{name}@{int(window)}ms")
        for window, name, builder in cells
    ]
    outcomes = _fan_out("run_table3", tasks,
                        _effective_jobs(scale, n_jobs), scale.seed)
    measured: dict = {}
    for (window, name, _), outcome in zip(cells, outcomes):
        measured.setdefault(int(window), {})[name] = outcome.value
    return measured


@_timed
def run_table4(
    scale: ExperimentScale | None = None,
    window_ms: float = 400.0,
    val_fp_budget: float = 0.005,
    n_jobs: int | None = None,
) -> dict:
    """Table IV: event-level analysis of the proposed CNN at 400 ms.

    Uses every CV fold (``max_folds=None``) so each subject contributes
    test events exactly once, like the paper.  Per fold, the decision
    threshold is chosen on *validation* subjects to keep the segment-level
    false-positive rate within ``val_fp_budget`` — the paper's "configured
    our model to minimize false positives, even at the cost of missing
    some actual falls".
    """
    from ..eval.curves import threshold_for_fp_budget

    scale = (scale or get_scale()).with_overrides(max_folds=None)
    dataset = build_experiment_dataset(scale)
    segments = _segments_for(dataset, window_ms, 0.5)
    results = cross_validate(
        build_lightweight_cnn,
        segments,
        k=scale.folds,
        n_val_subjects=scale.n_val_subjects,
        config=training_config(scale),
        seed=scale.seed,
        max_folds=None,
        n_jobs=_effective_jobs(scale, n_jobs),
    )
    _POOL_STATS["run_table4"] = last_run_stats()
    outcomes = []
    thresholds = []
    for fr in results:
        threshold = 0.5
        if (fr.validation is not None
                and 0 < fr.validation.y.sum() < len(fr.validation)):
            threshold = threshold_for_fp_budget(
                fr.validation.y, fr.val_probabilities, max_fpr=val_fp_budget
            )
        thresholds.append(threshold)
        outcomes.extend(
            evaluate_events(fr.test, fr.probabilities,
                            threshold=threshold).outcomes
        )
    report = EventReport(outcomes)
    return {
        "report": report,
        "metrics": aggregate_fold_metrics(results),
        "thresholds": thresholds,
        "fall_miss_rate": report.fall_miss_rate,
        "adl_false_positive_rate": report.adl_false_positive_rate,
        "per_task_miss": report.per_task_miss(),
        "per_task_fp": report.per_task_false_positive(),
        "red_green": report.red_green_false_positive(),
    }


@_timed
def run_window_sweep(
    scale: ExperimentScale | None = None,
    windows=(100.0, 200.0, 300.0, 400.0),
    overlaps=(0.0, 0.25, 0.5, 0.75),
    n_jobs: int | None = None,
) -> dict:
    """Section III-A design sweep: window size × overlap grid (CNN only)."""
    scale = scale or get_scale()
    build_experiment_dataset(scale)
    cells = [(window, overlap) for window in windows for overlap in overlaps]
    tasks = [
        ParallelTask(_grid_cell,
                     args=(build_lightweight_cnn, scale, window, overlap),
                     name=f"{int(window)}ms@{overlap:g}")
        for window, overlap in cells
    ]
    outcomes = _fan_out("run_window_sweep", tasks,
                        _effective_jobs(scale, n_jobs), scale.seed)
    return {(int(window), overlap): outcome.value
            for (window, overlap), outcome in zip(cells, outcomes)}


@_timed
def run_table1_thresholds(scale: ExperimentScale | None = None) -> dict:
    """Table I context: classical threshold detectors on the same corpus."""
    scale = scale or get_scale()
    dataset = build_experiment_dataset(scale)
    detectors = [
        VerticalVelocityDetector(),
        ImpactEnergyDetector(),
        AccelerationWindowDetector(),
    ]
    return {
        d.name: evaluate_threshold_detector(d, dataset) for d in detectors
    }


def _cross_dataset_condition(scale, window_ms, train_subjects,
                             val_subjects, test_subjects) -> dict:
    """Train/evaluate one cross-dataset condition (module-level for the
    pool); segments come from the shared caches, subject lists are the
    only payload shipped to a worker."""
    dataset = build_experiment_dataset(scale)
    segments = _segments_for(dataset, window_ms, 0.5)
    train = segments.by_subjects(train_subjects)
    val = segments.by_subjects(val_subjects)
    test = segments.by_subjects(test_subjects)
    config = training_config(scale)
    model, _ = train_model(build_lightweight_cnn, train, val, config)
    probs = model.predict(test.X).reshape(-1)
    metrics = segment_metrics(test.y, probs)
    events = evaluate_events(test, probs)
    return {
        "train_subjects": len(train_subjects),
        "train_segments": len(train),
        "f1": 100.0 * metrics["f1"],
        "accuracy": 100.0 * metrics["accuracy"],
        "fall_miss_rate": events.fall_miss_rate,
        "adl_false_positive_rate": events.adl_false_positive_rate,
    }


@_timed
def run_cross_dataset(
    scale: ExperimentScale | None = None,
    window_ms: float = 400.0,
    test_fraction: float = 0.34,
    n_jobs: int | None = None,
) -> dict:
    """Section IV-A's merge rationale, quantified.

    Hold out a fraction of the *self-collected* subjects for testing, then
    train twice on the same protocol:

    * ``own_only`` — the remaining self-collected subjects;
    * ``merged`` — the same subjects plus every (aligned) KFall subject.

    The paper merges the corpora "thereby increasing the number of subjects
    and the volume of data ... contributing to enhanced model training and
    improved generalization capabilities"; ``merged`` should match or beat
    ``own_only`` on the held-out self-collected subjects.
    """
    scale = scale or get_scale()
    dataset = build_experiment_dataset(scale)
    segments = _segments_for(dataset, window_ms, 0.5)
    sc_subjects = [s for s in segments.subjects if s.startswith("SC")]
    kf_subjects = [s for s in segments.subjects if s.startswith("KF")]
    if len(sc_subjects) < 3:
        raise ValueError("cross-dataset experiment needs >= 3 SC subjects")
    rng = np.random.default_rng(scale.seed)
    order = list(rng.permutation(sc_subjects))
    n_test = max(1, int(round(test_fraction * len(sc_subjects))))
    test_subjects = order[:n_test]
    val_subjects = order[n_test : n_test + max(1, scale.n_val_subjects // 2)]
    own_train = order[n_test + len(val_subjects) :]

    conditions = {
        "own_only": own_train,
        "merged": own_train + kf_subjects,
    }
    tasks = [
        ParallelTask(
            _cross_dataset_condition,
            args=(scale, window_ms, train_subjects, val_subjects,
                  test_subjects),
            name=label,
        )
        for label, train_subjects in conditions.items()
    ]
    outcomes = _fan_out("run_cross_dataset", tasks,
                        _effective_jobs(scale, n_jobs), scale.seed)
    out = {label: outcome.value
           for label, outcome in zip(conditions, outcomes)}
    out["test_subjects"] = tuple(test_subjects)
    return out


def _single_trunk_builder(window, channels=9, output_bias=None, seed=0):
    """The ablation's single-trunk CNN (module-level so it pickles)."""
    return build_lightweight_cnn(window, channels, output_bias=output_bias,
                                 seed=seed, branched=False)


#: Ablation label → (label policy, training-config overrides, builder).
_ABLATION_VARIANTS = {
    "full": (None, None, None),
    "no_truncation": (LabelPolicy(airbag_ms=0.0), None, None),
    "no_augmentation": (None, {"augment": False}, None),
    "no_imbalance_handling": (None, {"use_class_weights": False,
                                     "use_output_bias": False}, None),
    "single_trunk": (None, None, _single_trunk_builder),
}


def _ablation_variant(scale, window_ms, label) -> dict:
    """Run one ablation variant (module-level for the pool)."""
    policy, overrides, builder = _ABLATION_VARIANTS[label]
    dataset = build_experiment_dataset(scale)
    segments = _segments_for(dataset, window_ms, 0.5, policy=policy)
    config = training_config(scale, **(overrides or {}))
    results = cross_validate(
        builder or build_lightweight_cnn,
        segments,
        k=scale.folds,
        n_val_subjects=scale.n_val_subjects,
        config=config,
        seed=scale.seed,
        max_folds=scale.max_folds,
    )
    outcomes = []
    for fr in results:
        outcomes.extend(evaluate_events(fr.test, fr.probabilities).outcomes)
    report = EventReport(outcomes)
    return {
        "metrics": aggregate_fold_metrics(results),
        "fall_miss_rate": report.fall_miss_rate,
        "adl_false_positive_rate": report.adl_false_positive_rate,
    }


@_timed
def run_ablations(scale: ExperimentScale | None = None,
                  window_ms: float = 400.0,
                  n_jobs: int | None = None) -> dict:
    """Design-choice ablations on the proposed CNN.

    Variants: full method; no 150 ms truncation (trains on data a real
    airbag could never use); no augmentation; no class weights / output
    bias; single-trunk CNN instead of the three-branch split.
    """
    scale = scale or get_scale()
    build_experiment_dataset(scale)
    tasks = [
        ParallelTask(_ablation_variant, args=(scale, window_ms, label),
                     name=label)
        for label in _ABLATION_VARIANTS
    ]
    outcomes = _fan_out("run_ablations", tasks,
                        _effective_jobs(scale, n_jobs), scale.seed)
    return {label: outcome.value
            for label, outcome in zip(_ABLATION_VARIANTS, outcomes)}


def run_profile_workload(
    scale: ExperimentScale | None = None,
    window_ms: float = 400.0,
    deadline_ms: float | None = None,
    max_epochs: int = 4,
    layer_timing: bool = False,
) -> dict:
    """End-to-end observability workload: pipeline → train → stream.

    Enables tracing, builds the merged dataset and its segments, trains a
    short CNN (at most ``max_epochs`` epochs so ``repro profile`` stays
    interactive), then replays one held-out subject's recordings through
    the :class:`~repro.core.detector.FallDetector` + airbag state machine
    with the deadline monitor armed.

    Returns everything ``render_profile_report`` needs: the collected
    span records, the detector latency report, the airbag margin report
    and a metrics snapshot.  Tracing is restored to its previous state on
    exit.
    """
    from ..core.detector import AirbagController, DetectorConfig, FallDetector
    from ..core.trainer import train_model
    from ..obs import enable_tracing, get_collector, get_registry

    scale = scale or get_scale()
    collector = get_collector()
    was_enabled = collector.enabled
    collector.clear()
    enable_tracing()
    try:
        with span("profile", scale=scale.name):
            with span("dataset"):
                # Deliberately bypass the memoised experiment cache: the
                # point of profiling is to time the pipeline stages.
                dataset = build_merged_dataset(
                    kfall_subjects=scale.kfall_subjects,
                    selfcollected_subjects=scale.selfcollected_subjects,
                    trials_per_task=scale.trials_per_task,
                    duration_scale=scale.duration_scale,
                    seed=scale.seed,
                )
            with span("segments") as sp:
                segments = _segments_for(dataset, window_ms, 0.5)
                sp.set("segments", len(segments))

            # Subject-disjoint split: last subject streams, the one before
            # validates, the rest train.
            subjects = list(segments.subjects)
            if len(subjects) < 3:
                raise ValueError("profile workload needs >= 3 subjects")
            stream_subject, val_subject = subjects[-1], subjects[-2]
            train = segments.by_subjects(subjects[:-2])
            val = segments.by_subjects([val_subject])
            config = training_config(
                scale, epochs=min(scale.epochs, max_epochs),
                patience=min(scale.patience, max_epochs),
            )
            model, history = train_model(build_lightweight_cnn, train, val,
                                         config)
            if layer_timing:
                model.enable_layer_timing(True)

            detector = FallDetector(
                model,
                DetectorConfig(window_ms=window_ms, deadline_ms=deadline_ms),
            )
            airbag = AirbagController(detector)
            detections = 0
            with span("stream", subject=stream_subject) as sp:
                recordings = [r for r in dataset
                              if r.subject_id == stream_subject]
                samples = 0
                for recording in recordings:
                    # One trial per recording: fresh airbag (single-shot),
                    # fresh stream state; deadline stats accumulate.
                    detector.reset(preserve_latency_stats=True)
                    airbag = AirbagController(detector)
                    for i in range(recording.n_samples):
                        if airbag.push(recording.accel[i],
                                       recording.gyro[i]) is not None:
                            detections += 1
                        samples += 1
                sp.set("recordings", len(recordings))
                sp.set("samples", samples)

            # Same recordings again through the vectorized block-ingest
            # path, fed hop-sized blocks with completes at each block
            # boundary — exactly how the serve engine drives it — so the
            # report can put the serving paths side by side.
            def _block_replay(serving_model, span_name):
                arm_detector = FallDetector(
                    serving_model,
                    DetectorConfig(window_ms=window_ms,
                                   deadline_ms=deadline_ms),
                )
                hop = arm_detector.config.hop_samples
                arm_detections = 0
                with span(span_name, subject=stream_subject) as sp:
                    for recording in recordings:
                        arm_detector.reset(preserve_latency_stats=True)
                        # Single-shot per trial, like the AirbagController
                        # on the per-sample arm: only the first hit counts.
                        fired = False
                        for start in range(0, recording.n_samples, hop):
                            hits, requests = arm_detector.push_block(
                                recording.accel[start:start + hop],
                                recording.gyro[start:start + hop])
                            if hits and not fired:
                                fired = True
                                arm_detections += 1
                            for request in requests:
                                t0 = time.perf_counter()
                                try:
                                    prob = float(np.asarray(
                                        serving_model.predict(
                                            request.window[None])
                                    ).reshape(-1)[0])
                                except Exception:
                                    arm_detector.complete(request, None,
                                                          failed=True)
                                    continue
                                latency_ms = 1000.0 * (time.perf_counter()
                                                       - t0)
                                if (arm_detector.complete(
                                        request, prob, latency_ms=latency_ms)
                                        is not None and not fired):
                                    fired = True
                                    arm_detections += 1
                    sp.set("recordings", len(recordings))
                    sp.set("detections", arm_detections)
                return arm_detector, arm_detections

            block_detector, block_detections = _block_replay(
                model, "stream_block")

            # Third arm: the same block replay through the int8 kernels,
            # giving the profile report a float32-vs-int8 latency column
            # plus the lowered per-op MAC / weight-byte accounting.
            from ..quant import QuantizedModel

            with span("quantize"):
                quantized = QuantizedModel.convert(
                    model, train.X[:256].astype(np.float32))
            int8_detector, int8_detections = _block_replay(
                quantized, "stream_int8")
    finally:
        collector.enabled = was_enabled

    return {
        "scale": scale.name,
        "records": collector.records(),
        "latency": detector.latency_report(),
        "stages": detector.stage_report(),
        "margin": airbag.margin_report(),
        "epochs_trained": len(history.epochs),
        "train_segments": len(train),
        "stream_detections": detections,
        "block": {
            "latency": block_detector.latency_report(),
            "stages": block_detector.stage_report(),
            "detections": block_detections,
        },
        "int8": {
            "latency": int8_detector.latency_report(),
            "stages": int8_detector.stage_report(),
            "detections": int8_detections,
            "macs": quantized.total_macs,
            "weight_bytes": quantized.weight_bytes,
            "table": quantized.lowered_table(),
        },
        "layer_timings": model.layer_timings() if layer_timing else {},
        "metrics": get_registry().snapshot(),
    }
