"""Section IV-C experiment: quantize, verify parity, analyse deployment."""

from __future__ import annotations

import numpy as np

from ..core.architecture import build_lightweight_cnn
from ..core.crossval import subject_folds
from ..core.trainer import train_model
from ..eval.metrics import segment_metrics
from ..edge.cortex_m7 import (
    CortexM7Config,
    estimate_fusion_cycles_per_sample,
)
from ..edge.deploy import deployment_report
from ..quant.qmodel import QuantizedModel
from .configs import ExperimentScale, get_scale
from .runners import (
    _segments_for,
    build_experiment_dataset,
    training_config,
)

__all__ = ["run_edge_experiment"]


def run_edge_experiment(
    scale: ExperimentScale | None = None,
    window_ms: float = 400.0,
) -> dict:
    """Train the CNN, quantize it, and produce the on-edge readout.

    Returns float-vs-int8 metric parity, the flash/RAM/latency report and
    the quantized model itself (for code generation).
    """
    scale = scale or get_scale()
    dataset = build_experiment_dataset(scale)
    segments = _segments_for(dataset, window_ms, 0.5)
    fold = subject_folds(segments.subjects, k=scale.folds,
                         n_val_subjects=scale.n_val_subjects,
                         seed=scale.seed)[0]
    train = segments.by_subjects(fold.train_subjects)
    val = segments.by_subjects(fold.val_subjects)
    test = segments.by_subjects(fold.test_subjects)
    model, _ = train_model(build_lightweight_cnn, train, val,
                           training_config(scale))

    # Calibrate on (a sample of) the training inputs, never on test data.
    rng = np.random.default_rng(scale.seed)
    calib_idx = rng.choice(len(train), size=min(512, len(train)),
                           replace=False)
    qmodel = QuantizedModel.convert(model, train.X[calib_idx])

    float_probs = model.predict(test.X).reshape(-1)
    int8_probs = qmodel.predict(test.X).reshape(-1)
    float_metrics = segment_metrics(test.y, float_probs)
    int8_metrics = segment_metrics(test.y, int8_probs)

    cfg = CortexM7Config()
    report = deployment_report(qmodel, hop_samples=int(
        round(window_ms / 10.0 / 2.0)))
    report["fusion_cycles_per_sample"] = estimate_fusion_cycles_per_sample(cfg)
    return {
        "model": model,
        "qmodel": qmodel,
        "float_metrics": float_metrics,
        "int8_metrics": int8_metrics,
        "f1_drop_points": 100.0 * (float_metrics["f1"] - int8_metrics["f1"]),
        "decision_agreement": float(
            np.mean((float_probs >= 0.5) == (int8_probs >= 0.5))
        ),
        "report": report,
    }
