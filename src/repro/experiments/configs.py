"""Experiment scale configurations.

The paper trains on ~252 k segments from 61 subjects with TensorFlow on a
workstation; this reproduction runs a from-scratch numpy framework on one
laptop core.  Every experiment is therefore parameterised by a *scale*:

* ``QUICK`` — seconds; used by the test-suite.
* ``BENCH`` — minutes; the default for the benchmark harness, small but
  faithful (all task types, subject-independent CV, same protocol).
* ``PAPER`` — the paper's full dimensions (61 subjects, 5 folds, 200
  epochs); provided for completeness, expect hours.

Select via the ``REPRO_SCALE`` environment variable (quick/bench/paper) or
pass a scale explicitly to any runner.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

__all__ = ["ExperimentScale", "QUICK", "BENCH", "PAPER", "get_scale"]


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs shared by all experiment runners."""

    name: str
    kfall_subjects: int
    selfcollected_subjects: int
    trials_per_task: int
    duration_scale: float
    folds: int
    max_folds: int | None
    n_val_subjects: int
    epochs: int
    patience: int
    batch_size: int
    seed: int = 7
    #: Worker processes for fold/grid fan-out; ``None`` defers to the
    #: runner argument or the ``REPRO_JOBS`` environment variable
    #: (default serial).  Results are bit-identical for any value.
    n_jobs: int | None = None

    def with_overrides(self, **changes) -> "ExperimentScale":
        return replace(self, **changes)


QUICK = ExperimentScale(
    name="quick",
    kfall_subjects=3,
    selfcollected_subjects=3,
    trials_per_task=1,
    duration_scale=0.3,
    folds=3,
    max_folds=1,
    n_val_subjects=1,
    epochs=8,
    patience=4,
    batch_size=64,
)

BENCH = ExperimentScale(
    name="bench",
    kfall_subjects=5,
    selfcollected_subjects=5,
    trials_per_task=1,
    duration_scale=0.4,
    folds=5,
    max_folds=1,
    n_val_subjects=2,
    epochs=15,
    patience=6,
    batch_size=64,
)

PAPER = ExperimentScale(
    name="paper",
    kfall_subjects=32,
    selfcollected_subjects=29,
    trials_per_task=5,
    duration_scale=1.0,
    folds=5,
    max_folds=None,
    n_val_subjects=4,
    epochs=200,
    patience=20,
    batch_size=64,
)

_SCALES = {"quick": QUICK, "bench": BENCH, "paper": PAPER}


def get_scale(name: str | None = None) -> ExperimentScale:
    """Resolve a scale by name, env var ``REPRO_SCALE``, or default bench."""
    if name is None:
        name = os.environ.get("REPRO_SCALE", "bench")
    try:
        return _SCALES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown scale {name!r}; options: {sorted(_SCALES)}"
        ) from None
