"""Rotation utilities built on Rodrigues' rotation formula.

The paper aligns the KFall sensor frame with the self-collected frame
"using a rotation matrix computed through Rodrigues' rotation formula".
This module provides exactly that: axis-angle rotation matrices and the
rotation taking one measured gravity direction onto another.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "rodrigues_matrix",
    "rotation_between",
    "rotate_vectors",
    "is_rotation_matrix",
]


def rodrigues_matrix(axis: np.ndarray, angle_rad: float) -> np.ndarray:
    """Rotation matrix for a rotation of ``angle_rad`` about ``axis``.

    Implements ``R = I + sin(t) K + (1 - cos(t)) K^2`` with ``K`` the
    cross-product (skew) matrix of the normalised axis.
    """
    axis = np.asarray(axis, dtype=float)
    norm = np.linalg.norm(axis)
    if norm == 0:
        raise ValueError("rotation axis must be non-zero")
    ux, uy, uz = axis / norm
    k = np.array([[0.0, -uz, uy], [uz, 0.0, -ux], [-uy, ux, 0.0]])
    return np.eye(3) + np.sin(angle_rad) * k + (1.0 - np.cos(angle_rad)) * (k @ k)


def rotation_between(source: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Smallest rotation mapping direction ``source`` onto ``target``.

    This is the paper's alignment step: ``source`` is e.g. the mean gravity
    vector measured in the KFall frame while the subject stands still, and
    ``target`` the same in the self-collected frame.  Handles the parallel
    and anti-parallel degenerate cases explicitly.
    """
    s = np.asarray(source, dtype=float)
    t = np.asarray(target, dtype=float)
    sn, tn = np.linalg.norm(s), np.linalg.norm(t)
    if sn == 0 or tn == 0:
        raise ValueError("cannot align zero-length vectors")
    s, t = s / sn, t / tn
    cos_angle = float(np.clip(np.dot(s, t), -1.0, 1.0))
    if cos_angle > 1.0 - 1e-12:
        return np.eye(3)
    if cos_angle < -1.0 + 1e-12:
        # 180 degrees: rotate about any axis orthogonal to s.
        helper = np.array([1.0, 0.0, 0.0])
        if abs(s[0]) > 0.9:
            helper = np.array([0.0, 1.0, 0.0])
        axis = np.cross(s, helper)
        return rodrigues_matrix(axis, np.pi)
    axis = np.cross(s, t)
    # atan2 form: well-conditioned for nearly (anti)parallel vectors,
    # where arccos(dot) loses half the significant digits.
    angle = np.arctan2(np.linalg.norm(axis), cos_angle)
    return rodrigues_matrix(axis, angle)


def rotate_vectors(rotation: np.ndarray, vectors: np.ndarray) -> np.ndarray:
    """Apply a rotation matrix to row vectors ``(n, 3)`` (or a single (3,))."""
    rotation = np.asarray(rotation, dtype=float)
    if rotation.shape != (3, 3):
        raise ValueError(f"rotation must be 3x3, got {rotation.shape}")
    vectors = np.asarray(vectors, dtype=float)
    return vectors @ rotation.T


def is_rotation_matrix(matrix: np.ndarray, atol: float = 1e-8) -> bool:
    """True when ``matrix`` is orthonormal with determinant +1."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.shape != (3, 3):
        return False
    identity_err = np.max(np.abs(matrix @ matrix.T - np.eye(3)))
    return bool(identity_err < atol and abs(np.linalg.det(matrix) - 1.0) < atol)
