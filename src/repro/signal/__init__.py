"""``repro.signal`` — DSP substrate for the fall-detection pipeline.

Butterworth low-pass design + zero-phase filtering (validated against
scipy), sliding-window segmentation, complementary-filter orientation
estimation, Rodrigues rotations and unit conversion.
"""

from .filters import (
    OnlineSosFilter,
    butter_lowpass_sos,
    lowpass_filter,
    sosfilt,
    sosfilt_zi,
    sosfiltfilt,
)
from .orientation import ComplementaryFilter, accel_inclination, estimate_euler_angles
from .rotation import (
    is_rotation_matrix,
    rodrigues_matrix,
    rotate_vectors,
    rotation_between,
)
from .segmentation import (
    SegmentationConfig,
    label_segments,
    segment_signal,
    segment_starts,
)
from .units import GRAVITY, accel_from_g, accel_to_g, gyro_to_dps

__all__ = [
    "butter_lowpass_sos",
    "sosfilt",
    "sosfilt_zi",
    "sosfiltfilt",
    "lowpass_filter",
    "OnlineSosFilter",
    "SegmentationConfig",
    "segment_signal",
    "segment_starts",
    "label_segments",
    "ComplementaryFilter",
    "estimate_euler_angles",
    "accel_inclination",
    "rodrigues_matrix",
    "rotation_between",
    "rotate_vectors",
    "is_rotation_matrix",
    "GRAVITY",
    "accel_to_g",
    "accel_from_g",
    "gyro_to_dps",
]
