"""Butterworth low-pass filtering, implemented from first principles.

The paper removes sensor noise with a *fourth-order Butterworth low-pass
filter at 5 Hz* before segmentation.  This module implements the full
design chain — analog prototype poles, frequency pre-warping, bilinear
transform, second-order-section factorisation — plus a zero-phase
forward-backward filter (``sosfiltfilt``).  The test-suite validates every
piece against ``scipy.signal``.

All public filter functions operate on arrays shaped ``(samples,)`` or
``(samples, channels)`` and filter along axis 0.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "butter_lowpass_sos",
    "sosfilt",
    "sosfilt_zi",
    "sosfiltfilt",
    "lowpass_filter",
    "OnlineSosFilter",
]


def _analog_lowpass_poles(order: int) -> np.ndarray:
    """Poles of the normalised (1 rad/s) analog Butterworth prototype."""
    k = np.arange(1, order + 1)
    theta = np.pi * (2 * k - 1) / (2 * order) + np.pi / 2
    return np.exp(1j * theta)


def _bilinear_pole(analog_pole: complex, fs: float) -> complex:
    """Map one s-plane pole to the z-plane via the bilinear transform."""
    return (2 * fs + analog_pole) / (2 * fs - analog_pole)


def butter_lowpass_sos(order: int, cutoff_hz: float, fs: float) -> np.ndarray:
    """Design a digital Butterworth low-pass as second-order sections.

    Parameters
    ----------
    order:
        Filter order (the paper uses 4).
    cutoff_hz:
        -3 dB cutoff frequency in Hz (the paper uses 5 Hz).
    fs:
        Sampling frequency in Hz (IMU data: 100 Hz).

    Returns
    -------
    ndarray of shape ``(n_sections, 6)`` with rows ``[b0 b1 b2 1 a1 a2]``,
    the same layout as ``scipy.signal.butter(..., output='sos')``.
    """
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    if not 0.0 < cutoff_hz < fs / 2.0:
        raise ValueError(
            f"cutoff must lie in (0, fs/2) = (0, {fs / 2}), got {cutoff_hz}"
        )
    # Pre-warp the cutoff so the digital filter lands exactly on cutoff_hz.
    warped = 2.0 * fs * np.tan(np.pi * cutoff_hz / fs)
    analog_poles = warped * _analog_lowpass_poles(order)
    digital_poles = np.array([_bilinear_pole(p, fs) for p in analog_poles])
    # The bilinear transform maps the order analog zeros at infinity to -1.
    n_sections = (order + 1) // 2
    sos = np.zeros((n_sections, 6))
    # Pair complex-conjugate poles (sorted for determinism: ascending |imag|).
    upper = sorted(
        (p for p in digital_poles if p.imag > 1e-12), key=lambda p: abs(p.imag)
    )
    real = sorted((p.real for p in digital_poles if abs(p.imag) <= 1e-12))
    section = 0
    if order % 2 == 1:
        # One real pole -> first-order section.
        p = real.pop()
        sos[section] = [1.0, 1.0, 0.0, 1.0, -p, 0.0]
        section += 1
    for p in upper:
        # Conjugate pair -> z^2 - 2*Re(p) z + |p|^2 denominator, zeros at -1.
        sos[section] = [1.0, 2.0, 1.0, 1.0, -2.0 * p.real, abs(p) ** 2]
        section += 1
    # Normalise overall DC gain to exactly 1.
    for row in sos:
        b_dc = row[0] + row[1] + row[2]
        a_dc = row[3] + row[4] + row[5]
        row[:3] *= a_dc / b_dc
    return sos


def sosfilt(sos: np.ndarray, x: np.ndarray, zi: np.ndarray | None = None):
    """Causal direct-form-II-transposed filtering along axis 0.

    ``zi`` holds per-section state of shape ``(n_sections, 2, channels)``;
    pass the state returned by a previous call to continue a stream.
    Returns ``(y, zf)``.
    """
    sos = np.asarray(sos, dtype=float)
    x = np.asarray(x, dtype=float)
    squeeze = x.ndim == 1
    if squeeze:
        x = x[:, None]
    n_sections = sos.shape[0]
    channels = x.shape[1]
    if zi is None:
        state = np.zeros((n_sections, 2, channels))
    else:
        state = np.array(zi, dtype=float, copy=True)
        if state.shape != (n_sections, 2, channels):
            raise ValueError(
                f"zi must have shape {(n_sections, 2, channels)}, got {state.shape}"
            )
    # One fused pass over time, cascading the sections per sample, instead
    # of one full pass per section.  The per-(section, sample) arithmetic
    # and its order are unchanged — DF2T state for section s at sample n
    # depends only on section s-1's outputs up to n — so results are
    # bit-identical to the section-major loop while skipping the
    # per-section intermediate arrays (this runs on every streaming
    # sample, so constant factors matter).
    coeffs = [
        (sos[s, 0], sos[s, 1], sos[s, 2], sos[s, 4], sos[s, 5])
        for s in range(n_sections)
    ]
    z1s = [state[s, 0].copy() for s in range(n_sections)]
    z2s = [state[s, 1].copy() for s in range(n_sections)]
    y = np.empty_like(x)
    for n in range(x.shape[0]):
        v = x[n]
        for s, (b0, b1, b2, a1, a2) in enumerate(coeffs):
            z1 = z1s[s]
            yn = b0 * v + z1
            z1s[s] = b1 * v - a1 * yn + z2s[s]
            z2s[s] = b2 * v - a2 * yn
            v = yn
        y[n] = v
    for s in range(n_sections):
        state[s, 0] = z1s[s]
        state[s, 1] = z2s[s]
    if squeeze:
        return y[:, 0], state
    return y, state


def sosfilt_zi(sos: np.ndarray) -> np.ndarray:
    """Steady-state (unit step) initial conditions per section.

    Scaling this by the first input sample makes ``sosfilt`` start-up
    transient-free for signals with a DC offset — essential for IMU data,
    which always carries the 1 g gravity offset.
    Returns shape ``(n_sections, 2)``.
    """
    sos = np.asarray(sos, dtype=float)
    zi = np.zeros((sos.shape[0], 2))
    gain = 1.0
    for s, row in enumerate(sos):
        b0, b1, b2, _, a1, a2 = row
        # Solve the 2-state DF2T steady state for a constant unit input.
        #   z1 = b1 - a1*y + z2,  z2 = b2 - a2*y,  y = b0 + z1
        # => y = (b0+b1+b2)/(1+a1+a2)
        y_ss = (b0 + b1 + b2) / (1.0 + a1 + a2)
        z2 = (b2 - a2 * y_ss) * gain
        z1 = (b1 - a1 * y_ss) * gain + z2
        zi[s, 0] = z1
        zi[s, 1] = z2
        gain *= y_ss
    return zi


def _odd_ext(x: np.ndarray, n: int) -> np.ndarray:
    """Odd extension at both ends along axis 0 (scipy's filtfilt default)."""
    if n < 1:
        return x
    if n >= x.shape[0]:
        raise ValueError(
            f"signal too short ({x.shape[0]} samples) for padlen {n}"
        )
    head = 2 * x[0] - x[1 : n + 1][::-1]
    tail = 2 * x[-1] - x[-n - 1 : -1][::-1]
    return np.concatenate([head, x, tail], axis=0)


def sosfiltfilt(sos: np.ndarray, x: np.ndarray, padlen: int | None = None):
    """Zero-phase filtering: forward pass, reverse, forward, reverse.

    Uses odd extension and steady-state initial conditions like
    ``scipy.signal.sosfiltfilt``.
    """
    sos = np.asarray(sos, dtype=float)
    x = np.asarray(x, dtype=float)
    squeeze = x.ndim == 1
    if squeeze:
        x = x[:, None]
    if padlen is None:
        # scipy's default: enough samples for the edge transients to settle.
        trailing_zeros = min(
            int((sos[:, 2] == 0).sum()), int((sos[:, 5] == 0).sum())
        )
        padlen = 3 * (2 * sos.shape[0] + 1 - trailing_zeros)
    ext = _odd_ext(x, padlen)
    zi = sosfilt_zi(sos)[:, :, None]  # broadcast over channels
    y, _ = sosfilt(sos, ext, zi * ext[0])
    y, _ = sosfilt(sos, y[::-1], zi * y[-1])
    y = y[::-1]
    if padlen:
        y = y[padlen:-padlen]
    return y[:, 0] if squeeze else y


def lowpass_filter(
    x: np.ndarray, fs: float, cutoff_hz: float = 5.0, order: int = 4
) -> np.ndarray:
    """The paper's noise-removal step: zero-phase 4th-order Butterworth.

    Convenience wrapper around :func:`butter_lowpass_sos` +
    :func:`sosfiltfilt` with the paper's defaults (5 Hz cutoff, order 4).
    """
    sos = butter_lowpass_sos(order, cutoff_hz, fs)
    return sosfiltfilt(sos, x)


class OnlineSosFilter:
    """Streaming causal filter for the on-device (real-time) pipeline.

    The offline pipeline can run zero-phase filtering, but the embedded
    detector sees samples one at a time; this class keeps per-section state
    across :meth:`process` calls.  State is initialised at steady state for
    the first sample to avoid the gravity-offset start-up transient.
    """

    def __init__(self, sos: np.ndarray, channels: int):
        self.sos = np.asarray(sos, dtype=float)
        self.channels = int(channels)
        self._zi_template = sosfilt_zi(self.sos)[:, :, None]
        self._state: np.ndarray | None = None

    @property
    def primed(self) -> bool:
        """True once the filter holds state from a first sample."""
        return self._state is not None

    def reset(self) -> None:
        """Forget all state; the next sample re-initialises it."""
        self._state = None

    def reprime(self, sample: np.ndarray) -> None:
        """Re-initialise at steady state for ``sample`` (warm-up skip).

        Used after a long stream gap: priming on the first post-gap sample
        makes a constant input pass through transient-free, exactly like
        the start-of-stream bootstrap.
        """
        sample = np.asarray(sample, dtype=float).reshape(self.channels)
        self._state = self._zi_template * sample

    def process(self, samples: np.ndarray) -> np.ndarray:
        """Filter a block of samples ``(n, channels)`` (or a single ``(channels,)``)."""
        samples = np.atleast_2d(np.asarray(samples, dtype=float))
        if samples.shape[1] != self.channels:
            raise ValueError(
                f"expected {self.channels} channels, got {samples.shape[1]}"
            )
        if self._state is not None and not np.isfinite(self._state).all():
            # A non-finite input poisons IIR state forever; self-heal by
            # re-priming from the first sample of this block.
            self._state = None
        if self._state is None:
            self._state = self._zi_template * samples[0]
        y, self._state = sosfilt(self.sos, samples, self._state)
        return y
