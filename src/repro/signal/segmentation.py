"""Sliding-window segmentation.

The paper feeds the CNN fixed-length windows of the filtered 9-channel
signal: "we experimented with different segment sizes (ranging from 100 ms
to 400 ms) and various overlap sizes (from 0 % to 75 %, in increments of
25 %)", with the best configuration at 400 ms / 50 %.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

__all__ = ["SegmentationConfig", "segment_signal", "segment_starts", "label_segments"]


@dataclass(frozen=True)
class SegmentationConfig:
    """Window length and overlap, expressed in milliseconds like the paper.

    Attributes
    ----------
    window_ms:
        Segment duration in ms (100–400 in the paper's sweep).
    overlap:
        Fractional overlap between consecutive windows in [0, 1).
    fs:
        Sampling frequency in Hz.
    """

    window_ms: float
    overlap: float = 0.5
    fs: float = 100.0

    def __post_init__(self):
        if self.window_ms <= 0:
            raise ValueError(f"window_ms must be positive, got {self.window_ms}")
        if not 0.0 <= self.overlap < 1.0:
            raise ValueError(f"overlap must be in [0, 1), got {self.overlap}")
        if self.fs <= 0:
            raise ValueError(f"fs must be positive, got {self.fs}")
        if self.window_samples < 1:
            raise ValueError("window shorter than one sample")

    @property
    def window_samples(self) -> int:
        """Samples per window (paper: n = window_ms / 10 at 100 Hz)."""
        return int(round(self.window_ms * self.fs / 1000.0))

    @property
    def stride_samples(self) -> int:
        """Hop between window starts; at least 1 sample."""
        return max(1, int(round(self.window_samples * (1.0 - self.overlap))))

    @property
    def overlap_ms(self) -> float:
        return (self.window_samples - self.stride_samples) * 1000.0 / self.fs


def segment_starts(n_samples: int, config: SegmentationConfig) -> np.ndarray:
    """Start indices of every full window fitting in ``n_samples``."""
    window = config.window_samples
    if n_samples < window:
        return np.empty(0, dtype=int)
    return np.arange(0, n_samples - window + 1, config.stride_samples)


def segment_signal(x: np.ndarray, config: SegmentationConfig) -> np.ndarray:
    """Cut ``x`` of shape ``(samples, channels)`` into ``(k, window, channels)``.

    Trailing samples that do not fill a complete window are dropped,
    mirroring a real-time system that only ever sees whole windows.
    """
    x = np.asarray(x)
    if x.ndim != 2:
        raise ValueError(f"expected (samples, channels), got shape {x.shape}")
    starts = segment_starts(x.shape[0], config)
    window = config.window_samples
    if len(starts) == 0:
        return np.empty((0, window, x.shape[1]), dtype=x.dtype)
    # One strided view + one gather instead of k python-level slices; the
    # swapaxes undoes sliding_window_view putting the window axis last.
    windows = sliding_window_view(x, window, axis=0)[starts]
    return np.ascontiguousarray(np.swapaxes(windows, 1, 2))


def label_segments(
    sample_labels: np.ndarray,
    config: SegmentationConfig,
    min_fraction: float = 0.5,
) -> np.ndarray:
    """Segment-level labels from per-sample labels.

    A window is positive when at least ``min_fraction`` of its samples are
    positive — with 0.5 (default) a window straddling the fall onset is
    positive once the falling phase dominates it.
    """
    if not 0.0 < min_fraction <= 1.0:
        raise ValueError(f"min_fraction must be in (0, 1], got {min_fraction}")
    labels = np.asarray(sample_labels).astype(float)
    starts = segment_starts(labels.shape[0], config)
    window = config.window_samples
    if len(starts) == 0:
        return np.empty(0, dtype=int)
    fractions = sliding_window_view(labels, window)[starts].mean(axis=-1)
    return (fractions >= min_fraction).astype(int)
