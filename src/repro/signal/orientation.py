"""Euler-angle estimation from accelerometer + gyroscope.

The paper's acquisition firmware "computed on the edge the Eulerian angle
data (pitch, roll, yaw) to capture detailed movement dynamics" — i.e. a
lightweight sensor-fusion step suitable for a Cortex-M7.  We implement the
classic *complementary filter*: accelerometer-derived inclination corrects
the drift of integrated gyroscope rates, and yaw (unobservable from the
accelerometer) is pure gyro integration.

Sensor frame convention (sensor on the lower back):
``x`` forward, ``y`` left, ``z`` up, so quiet standing measures
``accel ≈ (0, 0, +1) g``.  Angles are in degrees:

* pitch — forward (+) / backward (−) lean, rotation about ``y``;
* roll  — right (+) / left (−) lean, rotation about ``x``;
* yaw   — heading, rotation about ``z``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["accel_inclination", "ComplementaryFilter", "estimate_euler_angles"]


def accel_inclination(accel_g: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Pitch and roll (degrees) implied by the accelerometer alone.

    Only exact while the sensor is quasi-static (gravity dominates), which
    is precisely why the complementary filter blends it with the gyro.
    """
    a = np.atleast_2d(np.asarray(accel_g, dtype=float))
    ax, ay, az = a[:, 0], a[:, 1], a[:, 2]
    pitch = np.degrees(np.arctan2(ax, np.sqrt(ay**2 + az**2)))
    roll = np.degrees(np.arctan2(ay, az))
    return pitch, roll


class ComplementaryFilter:
    """First-order complementary filter producing pitch/roll/yaw.

    Parameters
    ----------
    fs:
        Sampling frequency (Hz).
    tau:
        Fusion time constant in seconds.  The blend factor is
        ``alpha = tau / (tau + dt)``: gyro dominates on short timescales,
        the accelerometer pins the long-term inclination.
    """

    def __init__(self, fs: float = 100.0, tau: float = 0.5):
        if fs <= 0 or tau <= 0:
            raise ValueError("fs and tau must be positive")
        self.fs = float(fs)
        self.dt = 1.0 / self.fs
        self.alpha = tau / (tau + self.dt)
        self._angles: np.ndarray | None = None  # (pitch, roll, yaw) degrees

    def reset(self) -> None:
        self._angles = None

    def update(self, accel_g: np.ndarray, gyro_dps: np.ndarray) -> np.ndarray:
        """Fuse one sample; returns ``[pitch, roll, yaw]`` in degrees."""
        accel_g = np.asarray(accel_g, dtype=float)
        gyro_dps = np.asarray(gyro_dps, dtype=float)
        pitch_acc, roll_acc = accel_inclination(accel_g[None, :])
        pitch_acc, roll_acc = float(pitch_acc[0]), float(roll_acc[0])
        if self._angles is None:
            # Bootstrap from the accelerometer; yaw starts at 0.
            self._angles = np.array([pitch_acc, roll_acc, 0.0])
            return self._angles.copy()
        gx, gy, gz = gyro_dps
        pitch, roll, yaw = self._angles
        # Integrate body rates (small-angle approximation, as an MCU would).
        pitch_gyro = pitch + gy * self.dt
        roll_gyro = roll + gx * self.dt
        yaw += gz * self.dt
        pitch = self.alpha * pitch_gyro + (1.0 - self.alpha) * pitch_acc
        roll = self.alpha * roll_gyro + (1.0 - self.alpha) * roll_acc
        self._angles = np.array([pitch, roll, yaw])
        return self._angles.copy()

    def update_block(
        self,
        accel_g: np.ndarray,
        gyro_dps: np.ndarray,
        reset_rows=None,
    ) -> np.ndarray:
        """Fuse a block ``(n, 3)`` carrying streaming state across calls.

        Bit-identical to calling :meth:`update` once per row: the
        accelerometer inclination is vectorised (elementwise, so each row
        matches the per-sample call exactly) while the blend recurrence —
        inherently sequential — runs in one tight scalar pass using the
        same operation order as :meth:`update`.  ``reset_rows`` lists row
        indices at which to :meth:`reset` *before* fusing that row (the
        detector's long-gap stream resets).  Unlike :meth:`process`, the
        entry state is honoured and the exit state is kept for the next
        call.
        """
        accel_g = np.asarray(accel_g, dtype=float)
        gyro_dps = np.asarray(gyro_dps, dtype=float)
        n = accel_g.shape[0]
        out = np.empty((n, 3))
        if n == 0:
            return out
        pitch_acc, roll_acc = accel_inclination(accel_g)
        pa = pitch_acc.tolist()
        ra = roll_acc.tolist()
        gx = gyro_dps[:, 0].tolist()
        gy = gyro_dps[:, 1].tolist()
        gz = gyro_dps[:, 2].tolist()
        resets = set(reset_rows) if reset_rows is not None else ()
        alpha = self.alpha
        one_m_alpha = 1.0 - alpha
        dt = self.dt
        if self._angles is None:
            state = None
        else:
            state = (float(self._angles[0]), float(self._angles[1]),
                     float(self._angles[2]))
        for i in range(n):
            if i in resets:
                state = None
            if state is None:
                # Bootstrap from the accelerometer; yaw starts at 0.
                state = (pa[i], ra[i], 0.0)
            else:
                pitch, roll, yaw = state
                state = (
                    alpha * (pitch + gy[i] * dt) + one_m_alpha * pa[i],
                    alpha * (roll + gx[i] * dt) + one_m_alpha * ra[i],
                    yaw + gz[i] * dt,
                )
            out[i, 0] = state[0]
            out[i, 1] = state[1]
            out[i, 2] = state[2]
        self._angles = np.array(state)
        return out

    def process(self, accel_g: np.ndarray, gyro_dps: np.ndarray) -> np.ndarray:
        """Fuse whole aligned arrays ``(n, 3)``; returns angles ``(n, 3)``.

        Produces bit-identical results to calling :meth:`update` sample by
        sample (the recurrence is a first-order IIR, evaluated here with a
        vectorised filter for dataset-scale speed).  Ignores and resets any
        streaming state.
        """
        from scipy.signal import lfilter

        accel_g = np.asarray(accel_g, dtype=float)
        gyro_dps = np.asarray(gyro_dps, dtype=float)
        if accel_g.shape != gyro_dps.shape or accel_g.ndim != 2:
            raise ValueError(
                f"accel and gyro must both be (n, 3); got {accel_g.shape} "
                f"and {gyro_dps.shape}"
            )
        self.reset()
        n = accel_g.shape[0]
        pitch_acc, roll_acc = accel_inclination(accel_g)
        out = np.empty((n, 3))
        if n == 0:
            return out
        # angle_t = alpha * angle_{t-1} + u_t  with
        # u_t = alpha*dt*gyro_t + (1-alpha)*angle_acc_t, bootstrapped from
        # the accelerometer at t=0.
        a = self.alpha
        for col, (acc_angle, rate) in enumerate(
            [(pitch_acc, gyro_dps[:, 1]), (roll_acc, gyro_dps[:, 0])]
        ):
            u = a * self.dt * rate + (1.0 - a) * acc_angle
            out[0, col] = acc_angle[0]
            if n > 1:
                y, _ = lfilter([1.0], [1.0, -a], u[1:], zi=[a * acc_angle[0]])
                out[1:, col] = y
        yaw = np.cumsum(gyro_dps[:, 2]) * self.dt
        out[:, 2] = yaw - yaw[0]
        return out


def estimate_euler_angles(
    accel_g: np.ndarray, gyro_dps: np.ndarray, fs: float = 100.0, tau: float = 0.5
) -> np.ndarray:
    """One-shot Euler angle estimation for a whole recording."""
    return ComplementaryFilter(fs=fs, tau=tau).process(accel_g, gyro_dps)
