"""Unit handling for inertial data.

The paper standardises "the units of measurement across both datasets,
converting all values to gravitational acceleration (g)".  Acceleration is
stored either in g or m/s²; angular rate in deg/s or rad/s.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "GRAVITY",
    "ACCEL_UNITS",
    "GYRO_UNITS",
    "accel_to_g",
    "accel_from_g",
    "gyro_to_dps",
]

#: Standard gravity in m/s².
GRAVITY = 9.80665

ACCEL_UNITS = ("g", "m/s^2")
GYRO_UNITS = ("deg/s", "rad/s")


def accel_to_g(values: np.ndarray, unit: str) -> np.ndarray:
    """Convert acceleration samples to g."""
    values = np.asarray(values, dtype=float)
    if unit == "g":
        return values
    if unit == "m/s^2":
        return values / GRAVITY
    raise ValueError(f"unknown acceleration unit {unit!r}; options: {ACCEL_UNITS}")


def accel_from_g(values: np.ndarray, unit: str) -> np.ndarray:
    """Convert acceleration samples from g to ``unit``."""
    values = np.asarray(values, dtype=float)
    if unit == "g":
        return values
    if unit == "m/s^2":
        return values * GRAVITY
    raise ValueError(f"unknown acceleration unit {unit!r}; options: {ACCEL_UNITS}")


def gyro_to_dps(values: np.ndarray, unit: str) -> np.ndarray:
    """Convert angular-rate samples to deg/s."""
    values = np.asarray(values, dtype=float)
    if unit == "deg/s":
        return values
    if unit == "rad/s":
        return np.degrees(values)
    raise ValueError(f"unknown gyroscope unit {unit!r}; options: {GYRO_UNITS}")
