"""Small shared utilities with no internal dependencies."""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager

__all__ = ["atomic_write", "Backoff"]


class Backoff:
    """Bounded, jitter-free deterministic exponential backoff.

    ``next()`` returns the delay before the k-th retry:
    ``min(max_s, initial_s * factor**k)`` for k = 0, 1, 2, ... — a fixed,
    reproducible schedule (no jitter: the repo's tests and benchmarks
    must be able to predict supervisor timing exactly).  After
    ``max_attempts`` calls the policy is ``exhausted`` and the caller
    should stop retrying (``next()`` then raises, so an exhausted policy
    can never silently retry forever).

    ``reset()`` re-arms the schedule — callers reset on success so only
    *consecutive* failures walk up the curve (a worker that crashes once
    an hour restarts in ``initial_s`` every time; a crash loop backs off
    to ``max_s``).
    """

    def __init__(self, initial_s: float = 0.05, factor: float = 2.0,
                 max_s: float = 2.0, max_attempts: int = 5):
        if initial_s <= 0:
            raise ValueError(f"initial_s must be positive, got {initial_s}")
        if factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {factor}")
        if max_s < initial_s:
            raise ValueError(
                f"max_s must be >= initial_s, got {max_s} < {initial_s}")
        if max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {max_attempts}")
        self.initial_s = float(initial_s)
        self.factor = float(factor)
        self.max_s = float(max_s)
        self.max_attempts = int(max_attempts)
        self.attempts = 0

    @property
    def exhausted(self) -> bool:
        """True once ``max_attempts`` delays have been handed out."""
        return self.attempts >= self.max_attempts

    def next(self) -> float:
        """The next delay in seconds; raises ``RuntimeError`` when
        exhausted (check :attr:`exhausted` first)."""
        if self.exhausted:
            raise RuntimeError(
                f"backoff exhausted after {self.attempts} attempt(s)")
        delay = min(self.max_s, self.initial_s * self.factor ** self.attempts)
        self.attempts += 1
        return delay

    def reset(self) -> None:
        """Re-arm the schedule after a success."""
        self.attempts = 0

    def schedule(self) -> list:
        """The full delay schedule, without consuming any attempts."""
        return [min(self.max_s, self.initial_s * self.factor ** k)
                for k in range(self.max_attempts)]


@contextmanager
def atomic_write(path, mode: str = "w", encoding: str | None = None):
    """Write to ``path`` atomically: temp file in the same directory, then
    ``os.replace`` into place.

    A crash (or full disk) mid-write never leaves a truncated artifact at
    ``path`` — the destination either keeps its previous content or gets
    the complete new one.  Text modes default to UTF-8.
    """
    if "r" in mode or "a" in mode or "+" in mode:
        raise ValueError(f"atomic_write only supports write modes, got {mode!r}")
    if "b" not in mode and encoding is None:
        encoding = "utf-8"
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, mode, encoding=encoding) as fh:
            yield fh
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
