"""Small shared utilities with no internal dependencies."""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager

__all__ = ["atomic_write"]


@contextmanager
def atomic_write(path, mode: str = "w", encoding: str | None = None):
    """Write to ``path`` atomically: temp file in the same directory, then
    ``os.replace`` into place.

    A crash (or full disk) mid-write never leaves a truncated artifact at
    ``path`` — the destination either keeps its previous content or gets
    the complete new one.  Text modes default to UTF-8.
    """
    if "r" in mode or "a" in mode or "+" in mode:
        raise ValueError(f"atomic_write only supports write modes, got {mode!r}")
    if "b" not in mode and encoding is None:
        encoding = "utf-8"
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, mode, encoding=encoding) as fh:
            yield fh
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
