"""repro — reproduction of "A Lightweight CNN for Real-Time Pre-Impact Fall
Detection" (Turetta et al., DATE 2025).

Subpackages
-----------
``repro.nn``
    Numpy deep-learning framework (the TensorFlow/Keras substitute).
``repro.signal``
    DSP substrate: Butterworth filtering, segmentation, orientation
    estimation, Rodrigues rotations, unit handling.
``repro.datasets``
    Synthetic KFall-like and self-collected-like IMU datasets with
    frame-accurate fall annotations.
``repro.augment``
    Time-warping / window-warping augmentation.
``repro.core``
    The paper's method: preprocessing pipeline, the lightweight 3-branch
    CNN, baselines, training protocol, subject-independent cross-validation,
    event-level evaluation and the streaming ``FallDetector``.
``repro.quant``
    Post-training int8 quantization with fixed-point requantization.
``repro.edge``
    STM32F722 (Cortex-M7) deployment model: flash/RAM footprint, latency,
    and C code generation.
``repro.eval``
    Metrics and paper-style report tables.
``repro.experiments``
    Config-driven runners regenerating every table and figure.
``repro.obs``
    Observability: tracing spans, metrics (counters/gauges/histograms),
    logging, and the deadline-monitor plumbing behind ``repro profile``.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
