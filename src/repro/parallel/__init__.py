"""``repro.parallel`` — deterministic multi-process execution + artifact cache.

Two pieces:

* :mod:`repro.parallel.pool` — :func:`run_parallel`, a fork/spawn-safe
  process pool with per-task deterministic seeding, serial fallback,
  worker-crash containment and child→parent span/metric shipping;
* :mod:`repro.parallel.cache` — :class:`ArtifactCache`, a
  content-addressed on-disk cache for pipeline artifacts (datasets,
  segment sets) shared across processes and across runs.

Both are wired into ``cross_validate(n_jobs=...)`` and the experiment
runners; results are bit-identical for any ``n_jobs`` and any cache
state.  See the README's "Parallel execution & caching" section.
"""

from .cache import (
    CACHE_DIR_ENV,
    CACHE_ENV,
    ArtifactCache,
    artifact_key,
    code_version_salt,
    default_cache,
)
from .pool import (
    JOBS_ENV,
    ParallelTask,
    TaskResult,
    in_worker,
    last_run_stats,
    resolve_n_jobs,
    run_parallel,
    task_seed,
)

__all__ = [
    # pool
    "ParallelTask",
    "TaskResult",
    "run_parallel",
    "resolve_n_jobs",
    "task_seed",
    "in_worker",
    "last_run_stats",
    "JOBS_ENV",
    # cache
    "ArtifactCache",
    "artifact_key",
    "code_version_salt",
    "default_cache",
    "CACHE_DIR_ENV",
    "CACHE_ENV",
]
