"""Fork/spawn-safe process pool with deterministic per-task seeding.

The reproduction's workloads are embarrassingly parallel — independent CV
folds, independent grid cells — but they must stay *bit-identical* to the
serial run.  :func:`run_parallel` guarantees that by construction:

* every task gets its own seed derived from ``(base_seed, task index)``
  via ``np.random.SeedSequence``, applied to the **global** NumPy RNG the
  same way in the serial path, the pooled path and the retry-serial path,
  so scheduling order can never leak into results;
* results come back in submission order regardless of completion order;
* a worker that crashes or raises poisons only its own task — the parent
  re-runs that task serially (`retried_serial`) instead of failing the
  whole batch;
* child-side trace spans and metrics ship back with each result and are
  merged into the parent collector/registry, so observability does not go
  dark behind the pool boundary.

Serial fallback is the common path: ``n_jobs=1`` (the default when
``REPRO_JOBS`` is unset), a failed pool start, or running *inside* a
worker (guarded by ``REPRO_PARALLEL_WORKER`` so pools never nest) all
execute tasks in-process with identical seeding.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field

import numpy as np

from ..obs import get_collector, get_logger, get_registry, span, tracing_enabled
from ..obs.trace import SpanRecord

__all__ = [
    "ParallelTask",
    "TaskResult",
    "run_parallel",
    "resolve_n_jobs",
    "task_seed",
    "in_worker",
    "last_run_stats",
    "JOBS_ENV",
]

_logger = get_logger(__name__)

#: Environment variable read by :func:`resolve_n_jobs` when the caller
#: passes ``n_jobs=None``; ``0`` (or any value <= 0) means "all cores".
JOBS_ENV = "REPRO_JOBS"
#: Set inside pool workers so nested ``run_parallel`` calls degrade to
#: serial instead of forking grandchild pools.
_WORKER_ENV = "REPRO_PARALLEL_WORKER"


@dataclass(frozen=True)
class ParallelTask:
    """One unit of work: a picklable module-level callable plus arguments.

    ``seed`` overrides the derived per-task seed; ``name`` labels the task
    in logs and :class:`TaskResult`.
    """

    fn: object
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    seed: int | None = None
    name: str | None = None


@dataclass
class TaskResult:
    """Outcome of one task, in submission order."""

    index: int
    value: object
    duration_s: float
    worker: str
    retried_serial: bool = False
    name: str | None = None


def in_worker() -> bool:
    """True when running inside a ``run_parallel`` worker process."""
    return os.environ.get(_WORKER_ENV) == "1"


def resolve_n_jobs(n_jobs: int | None = None) -> int:
    """Effective worker count: explicit arg > ``REPRO_JOBS`` env > 1.

    Values <= 0 mean "all cores".  Inside a pool worker the answer is
    always 1, so parallel callers can be composed without nesting pools.
    """
    if in_worker():
        return 1
    if n_jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        if not raw:
            return 1
        try:
            n_jobs = int(raw)
        except ValueError:
            _logger.warning("ignoring non-integer %s=%r", JOBS_ENV, raw)
            return 1
    n_jobs = int(n_jobs)
    if n_jobs <= 0:
        n_jobs = os.cpu_count() or 1
    return max(1, n_jobs)


def task_seed(base_seed: int, index: int) -> int:
    """Deterministic per-task seed, independent of scheduling order."""
    seq = np.random.SeedSequence([int(base_seed) & 0x7FFFFFFF, int(index)])
    return int(seq.generate_state(1, np.uint32)[0])


def _normalize(task) -> ParallelTask:
    if isinstance(task, ParallelTask):
        return task
    if callable(task):
        return ParallelTask(fn=task)
    raise TypeError(f"task must be a ParallelTask or callable, got {task!r}")


def _seed_for(task: ParallelTask, base_seed: int | None, index: int):
    if task.seed is not None:
        return int(task.seed)
    if base_seed is None:
        return None
    return task_seed(base_seed, index)


def _run_task_in_worker(payload):
    """Executed in the pool worker; must stay module-level (picklable).

    Clears the inherited registry/collector first (a fork child starts
    with the parent's counts — shipping those back would double-count),
    then returns either ``{"ok": True, value, duration_s, pid, spans,
    metrics}`` or ``{"ok": False, error, traceback}``.  Task exceptions
    are returned, not raised: raising would require the exception itself
    to pickle, and the parent retries serially either way.
    """
    fn, args, kwargs, seed, ship_trace = payload
    os.environ[_WORKER_ENV] = "1"
    collector = get_collector()
    collector.clear()
    collector.enabled = bool(ship_trace)
    registry = get_registry()
    registry.clear()
    if seed is not None:
        np.random.seed(seed)
    start = time.perf_counter()
    try:
        value = fn(*args, **kwargs)
    except BaseException as exc:
        return {
            "ok": False,
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
        }
    duration = time.perf_counter() - start
    return {
        "ok": True,
        "value": value,
        "duration_s": duration,
        "pid": os.getpid(),
        "spans": ([rec.to_json() for rec in collector.records()]
                  if ship_trace else []),
        "metrics": registry.entries(),
    }


def _run_serial(task: ParallelTask, seed, index: int,
                retried: bool = False) -> TaskResult:
    if seed is not None:
        np.random.seed(seed)
    start = time.perf_counter()
    value = task.fn(*task.args, **task.kwargs)
    return TaskResult(
        index=index,
        value=value,
        duration_s=time.perf_counter() - start,
        worker="serial",
        retried_serial=retried,
        name=task.name,
    )


#: Stats of the most recent ``run_parallel`` call in this process, for
#: benchmark reports; see :func:`last_run_stats`.
_LAST_STATS: dict = {}


def last_run_stats() -> dict:
    """Shallow copy of the most recent :func:`run_parallel` stats:
    mode, n_jobs, task count, retries, wall/busy seconds and per-worker
    busy seconds.  Empty before the first run."""
    return dict(_LAST_STATS)


def run_parallel(tasks, n_jobs: int | None = None, base_seed: int | None = None,
                 label: str = "tasks") -> list:
    """Run ``tasks`` (ParallelTask or bare callables) and return ordered
    :class:`TaskResult` rows; bit-identical results for any ``n_jobs``.

    ``base_seed`` derives a per-task seed (see :func:`task_seed`) applied
    to the global NumPy RNG immediately before each task in *every*
    execution path; pass ``None`` to leave RNG state alone (tasks that
    seed themselves internally).
    """
    tasks = [_normalize(t) for t in tasks]
    n_jobs = resolve_n_jobs(n_jobs)
    seeds = [_seed_for(task, base_seed, i) for i, task in enumerate(tasks)]
    registry = get_registry()
    results: list = [None] * len(tasks)
    retried = 0
    mode = "serial"
    start = time.perf_counter()
    with span(f"parallel/{label}", tasks=len(tasks), n_jobs=n_jobs):
        if n_jobs == 1 or len(tasks) <= 1:
            for i, task in enumerate(tasks):
                results[i] = _run_serial(task, seeds[i], i)
        else:
            mode = "process"
            done = _run_pooled(tasks, seeds, n_jobs, results)
            for i, task in enumerate(tasks):
                if done[i]:
                    continue
                results[i] = _run_serial(task, seeds[i], i, retried=True)
                retried += 1
    wall = time.perf_counter() - start
    busy = sum(r.duration_s for r in results)
    per_worker: dict[str, float] = {}
    task_hist = registry.histogram("parallel/task_seconds")
    for result in results:
        per_worker[result.worker] = (per_worker.get(result.worker, 0.0)
                                     + result.duration_s)
        task_hist.observe(result.duration_s)
    registry.counter("parallel/tasks").inc(len(tasks))
    registry.gauge("parallel/n_jobs").set(n_jobs)
    if retried:
        registry.counter("parallel/retry_serial").inc(retried)
    _LAST_STATS.clear()
    _LAST_STATS.update({
        "label": label,
        "mode": mode,
        "n_jobs": n_jobs,
        "tasks": len(tasks),
        "retried_serial": retried,
        "wall_s": wall,
        "busy_s": busy,
        "parallelism": busy / wall if wall > 0 else 0.0,
        "per_worker_busy_s": per_worker,
    })
    return results


def _run_pooled(tasks, seeds, n_jobs, results) -> list:
    """Fill ``results`` from a process pool; returns a per-task done mask.

    Any per-task failure — worker crash (``BrokenProcessPool``), unpicklable
    payload, or an exception inside the task — leaves that slot not-done for
    the caller's serial retry.  A pool that cannot start at all leaves every
    slot not-done (full serial fallback).
    """
    done = [False] * len(tasks)
    ship_trace = tracing_enabled()
    try:
        # fork keeps the parent's memoized datasets and perf_counter epoch;
        # spawn is the portable fallback.
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        executor = concurrent.futures.ProcessPoolExecutor(
            max_workers=min(n_jobs, len(tasks)), mp_context=context)
    except Exception as exc:
        _logger.warning("process pool unavailable (%s); running %d task(s) "
                        "serially", exc, len(tasks))
        return done
    futures = {}
    with executor:
        for i, task in enumerate(tasks):
            payload = (task.fn, tuple(task.args), dict(task.kwargs),
                       seeds[i], ship_trace)
            try:
                futures[i] = executor.submit(_run_task_in_worker, payload)
            except Exception as exc:
                _logger.warning("submit failed for task %d (%s); will retry "
                                "serially", i, exc)
        registry = get_registry()
        collector = get_collector()
        for i, future in futures.items():
            try:
                outcome = future.result()
            except Exception as exc:
                _logger.warning("task %d lost to a worker failure (%s); "
                                "retrying serially", i, exc)
                continue
            if not outcome["ok"]:
                _logger.warning("task %d raised in worker: %s; retrying "
                                "serially\n%s", i, outcome["error"],
                                outcome["traceback"])
                continue
            results[i] = TaskResult(
                index=i,
                value=outcome["value"],
                duration_s=outcome["duration_s"],
                worker=f"pid{outcome['pid']}",
                name=tasks[i].name,
            )
            done[i] = True
            if outcome["metrics"]:
                registry.merge_entries(outcome["metrics"])
            if outcome["spans"]:
                collector.adopt(SpanRecord.from_json(obj)
                                for obj in outcome["spans"])
    return done
