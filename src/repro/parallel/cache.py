"""Content-addressed on-disk cache for pipeline artifacts.

Synthesizing, filtering and segmenting the 61-subject corpus dominates
every experiment's wall-clock, yet the result is a pure function of
(config, code).  This cache makes that explicit: the key is a SHA-256
over the canonical-JSON build config, a *code-version salt* (a hash of
the source files that define the artifact's content — editing the
pipeline invalidates every prior entry automatically) and the on-disk
format version.  Values live under ``<root>/<kind>/<key>.npz`` with a
``<key>.json`` sidecar; both are written via
:func:`repro.utils.atomic_write`, payload first, so a crash never leaves
a sidecar pointing at a truncated payload.

Unlike :func:`repro.datasets.save_dataset` (a float32 interchange
format), the codecs here are **lossless**: arrays round-trip with their
exact dtypes, so a cache hit is bit-identical to a fresh build and the
determinism guarantee of ``cross_validate`` survives warm starts.

Entries that fail validation — unreadable sidecar, foreign/stale format,
key mismatch, corrupt payload — are deleted and counted
(``cache/invalid/<kind>``), then treated as a miss: the artifact is
rebuilt, never trusted.

Environment: ``REPRO_CACHE_DIR`` overrides the root (default
``~/.cache/repro/artifacts``); ``REPRO_CACHE=0`` disables the cache
entirely (every lookup misses, writes are skipped).
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import pathlib
import shutil

import numpy as np

from ..obs import get_logger, get_registry, span
from ..utils import atomic_write

__all__ = [
    "ArtifactCache",
    "artifact_key",
    "code_version_salt",
    "default_cache",
    "CACHE_DIR_ENV",
    "CACHE_ENV",
]

_logger = get_logger(__name__)

ARTIFACT_FORMAT = "repro-artifact"
ARTIFACT_VERSION = 1
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
CACHE_ENV = "REPRO_CACHE"

#: Source files (relative to the ``repro`` package) whose code determines
#: the *content* of cached artifacts.  Editing any of them changes
#: :func:`code_version_salt` and therefore every key — stale entries from
#: older code can never be served.
_SALTED_SOURCES = (
    "datasets",
    "signal",
    "core/pipeline.py",
    "core/preprocessing.py",
)


@functools.lru_cache(maxsize=1)
def code_version_salt() -> str:
    """Hex digest over the sources in :data:`_SALTED_SOURCES`."""
    package_root = pathlib.Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for entry in _SALTED_SOURCES:
        target = package_root / entry
        files = (sorted(target.rglob("*.py")) if target.is_dir()
                 else [target])
        for path in files:
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


def artifact_key(kind: str, config: dict, salt: str | None = None) -> str:
    """Content address of an artifact: SHA-256 of the canonical config."""
    payload = json.dumps(
        {
            "kind": kind,
            "config": config,
            "salt": salt if salt is not None else code_version_salt(),
            "version": ARTIFACT_VERSION,
        },
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


# ---------------------------------------------------------------------------
# Lossless codecs.  Object-dtype provenance arrays (subject/event ids) are
# stored as unicode arrays — npz cannot hold dtype=object without pickle —
# and restored to object on load so equality with fresh builds holds.

def _dataset_to_arrays(dataset) -> dict:
    arrays: dict[str, np.ndarray] = {}
    recordings = []
    for i, rec in enumerate(dataset):
        arrays[f"r{i}/accel"] = rec.accel
        arrays[f"r{i}/gyro"] = rec.gyro
        arrays[f"r{i}/euler"] = rec.euler
        recordings.append({
            "subject_id": rec.subject_id,
            "task_id": rec.task_id,
            "trial": rec.trial,
            "fs": rec.fs,
            "fall_onset": rec.fall_onset,
            "impact": rec.impact,
            "frame": rec.frame,
            "accel_unit": rec.accel_unit,
            "gyro_unit": rec.gyro_unit,
            "dataset": rec.dataset,
            "meta": rec.meta,
        })
    meta = {"name": dataset.name, "frame": dataset.frame,
            "recordings": recordings}
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    return arrays


def _dataset_from_npz(data):
    from ..datasets.schema import Dataset, Recording

    meta = json.loads(bytes(data["__meta__"]).decode("utf-8"))
    recordings = []
    for i, info in enumerate(meta["recordings"]):
        recordings.append(Recording(
            subject_id=info["subject_id"],
            task_id=int(info["task_id"]),
            trial=int(info["trial"]),
            fs=float(info["fs"]),
            accel=data[f"r{i}/accel"],
            gyro=data[f"r{i}/gyro"],
            euler=data[f"r{i}/euler"],
            fall_onset=info["fall_onset"],
            impact=info["impact"],
            frame=info["frame"],
            accel_unit=info["accel_unit"],
            gyro_unit=info["gyro_unit"],
            dataset=info["dataset"],
            meta=dict(info.get("meta") or {}),
        ))
    return Dataset(meta["name"], recordings, frame=meta["frame"])


def _segments_to_arrays(segments) -> dict:
    meta = {"n": len(segments)}
    return {
        "X": segments.X,
        "y": segments.y,
        "subject": segments.subject.astype(str),
        "task_id": segments.task_id,
        "event_id": segments.event_id.astype(str),
        "event_is_fall": segments.event_is_fall,
        "trigger_valid": segments.trigger_valid,
        "__meta__": np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8),
    }


def _segments_from_npz(data):
    from ..core.preprocessing import SegmentSet

    meta = json.loads(bytes(data["__meta__"]).decode("utf-8"))
    segments = SegmentSet(
        X=data["X"],
        y=data["y"],
        subject=data["subject"].astype(object),
        task_id=data["task_id"],
        event_id=data["event_id"].astype(object),
        event_is_fall=data["event_is_fall"],
        trigger_valid=data["trigger_valid"],
    )
    if len(segments) != meta["n"]:
        raise ValueError(
            f"segment payload declares {meta['n']} rows, found "
            f"{len(segments)}")
    return segments


_CODECS = {
    "dataset": (_dataset_to_arrays, _dataset_from_npz),
    "segments": (_segments_to_arrays, _segments_from_npz),
}


class ArtifactCache:
    """Get-or-build cache over the codecs above; safe for concurrent use
    across processes (atomic writes, last-writer-wins on identical keys).
    """

    def __init__(self, root=None, enabled: bool | None = None):
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV, "").strip() or os.path.join(
                os.path.expanduser("~"), ".cache", "repro", "artifacts")
        self.root = pathlib.Path(root)
        if enabled is None:
            enabled = os.environ.get(CACHE_ENV, "1").strip().lower() not in (
                "0", "false", "off", "no")
        self.enabled = bool(enabled)
        self._registry = get_registry()

    # -- key/path plumbing ---------------------------------------------
    def _paths(self, kind: str, key: str):
        base = self.root / kind
        return base / f"{key}.npz", base / f"{key}.json"

    def _count(self, event: str, kind: str) -> None:
        # Bounded namespace: `kind` is one of the _CODECS keys.
        self._registry.counter(f"cache/{event}/{kind}").inc()  # metric-name: dynamic

    def _invalidate(self, kind: str, key: str, reason: str) -> None:
        payload, sidecar = self._paths(kind, key)
        _logger.warning("cache entry %s/%s invalid (%s); rebuilding",
                        kind, key, reason)
        for path in (payload, sidecar):
            try:
                path.unlink()
            except OSError:
                pass
        self._count("invalid", kind)

    # -- lookup / store -------------------------------------------------
    def get(self, kind: str, config: dict):
        """The cached artifact for ``config``, or ``None`` on a miss.

        Never trusts a bad entry: validation failure deletes it and
        reports a miss.
        """
        if not self.enabled:
            return None
        _, decode = _CODECS[kind]
        key = artifact_key(kind, config)
        payload, sidecar = self._paths(kind, key)
        if not (payload.is_file() and sidecar.is_file()):
            self._count("miss", kind)
            return None
        try:
            meta = json.loads(sidecar.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            self._invalidate(kind, key, f"unreadable sidecar: {exc}")
            self._count("miss", kind)
            return None
        if (not isinstance(meta, dict)
                or meta.get("format") != ARTIFACT_FORMAT
                or meta.get("version") != ARTIFACT_VERSION
                or meta.get("key") != key):
            self._invalidate(
                kind, key,
                f"stale or foreign sidecar (format={meta.get('format')!r}, "
                f"version={meta.get('version')!r})")
            self._count("miss", kind)
            return None
        try:
            with span(f"cache/load/{kind}", key=key):
                with np.load(payload) as data:
                    value = decode(data)
        except Exception as exc:
            self._invalidate(kind, key, f"corrupt payload: {exc}")
            self._count("miss", kind)
            return None
        self._count("hit", kind)
        return value

    def put(self, kind: str, config: dict, value) -> str | None:
        """Store ``value`` under its content address; returns the key."""
        if not self.enabled:
            return None
        encode, _ = _CODECS[kind]
        key = artifact_key(kind, config)
        payload, sidecar = self._paths(kind, key)
        payload.parent.mkdir(parents=True, exist_ok=True)
        with span(f"cache/store/{kind}", key=key):
            with atomic_write(payload, "wb") as fh:
                np.savez_compressed(fh, **encode(value))
            with atomic_write(sidecar) as fh:
                json.dump({
                    "format": ARTIFACT_FORMAT,
                    "version": ARTIFACT_VERSION,
                    "kind": kind,
                    "key": key,
                    "salt": code_version_salt(),
                    "config": config,
                }, fh, sort_keys=True, default=str)
        self._count("write", kind)
        return key

    def get_or_build(self, kind: str, config: dict, build):
        """``get`` falling back to ``build()`` + ``put``."""
        value = self.get(kind, config)
        if value is not None:
            return value
        value = build()
        self.put(kind, config, value)
        return value

    # -- maintenance ----------------------------------------------------
    def entries(self) -> list:
        """``(kind, key, bytes, mtime)`` for every stored payload."""
        out = []
        if not self.root.is_dir():
            return out
        for payload in sorted(self.root.glob("*/*.npz")):
            stat = payload.stat()
            out.append((payload.parent.name, payload.stem,
                        stat.st_size, stat.st_mtime))
        return out

    def size_bytes(self) -> int:
        return sum(size for _, _, size, _ in self.entries())

    def clear(self) -> int:
        """Delete everything; returns the number of entries removed."""
        removed = len(self.entries())
        if self.root.is_dir():
            shutil.rmtree(self.root)
        return removed

    def prune(self, max_bytes: int | None = None,
              max_entries: int | None = None) -> int:
        """Evict oldest-mtime entries until under the given budget(s)."""
        entries = sorted(self.entries(), key=lambda e: e[3])
        total = sum(size for _, _, size, _ in entries)
        removed = 0
        while entries and (
                (max_bytes is not None and total > max_bytes)
                or (max_entries is not None and len(entries) > max_entries)):
            kind, key, size, _ = entries.pop(0)
            payload, sidecar = self._paths(kind, key)
            for path in (payload, sidecar):
                try:
                    path.unlink()
                except OSError:
                    pass
            total -= size
            removed += 1
        if removed:
            self._registry.counter("cache/evicted").inc(removed)
        return removed

    def stats(self) -> dict:
        entries = self.entries()
        by_kind: dict[str, dict] = {}
        for kind, _, size, _ in entries:
            bucket = by_kind.setdefault(kind, {"entries": 0, "bytes": 0})
            bucket["entries"] += 1
            bucket["bytes"] += size
        return {
            "root": str(self.root),
            "enabled": self.enabled,
            "entries": len(entries),
            "bytes": sum(size for _, _, size, _ in entries),
            "by_kind": by_kind,
        }


def default_cache() -> ArtifactCache:
    """A cache configured from the environment.

    Constructed per call (construction is path math, no I/O) so tests and
    benchmarks can redirect ``REPRO_CACHE_DIR`` / toggle ``REPRO_CACHE``
    without touching module state.
    """
    return ArtifactCache()
