"""Stdlib HTTP surface over the observability stack.

One tiny :class:`ObservabilityServer` (``http.server`` — no new
dependencies, like everything else in this repo) exposes the pieces the
previous PRs built, so an operator can point ``curl`` or Prometheus at
a running fleet:

==============  =====================================================
``/metrics``    Prometheus text exposition of the engine registry
                (:func:`repro.obs.render_exposition`), fleet-merged
                extras included
``/healthz``    JSON liveness + fleet summary (always 200 while the
                process serves)
``/alerts``     JSON query over the alert :class:`~repro.alerts.EventStore`
                — ``?stream=&severity=&kind=&since=&until=&limit=``
``/slo``        JSON SLO report: error-budget status, burn-rate state
                and per-stage latency-budget attribution
``/dashboard``  the ``repro tail`` text dashboard, one frame per GET
==============  =====================================================

The server is deliberately read-only and decoupled: it takes callables
(and an optional store/manager), never touches engine internals, and a
handler error returns 500 to that client without disturbing serving.
``repro serve-http`` wires it to a live synthetic fleet.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from ..obs import get_logger, render_exposition

__all__ = ["ObservabilityServer"]

_logger = get_logger(__name__)

#: Query parameters ``/alerts`` accepts, with their coercions.
_ALERT_PARAMS = {
    "stream": str,
    "severity": str,
    "kind": str,
    "since": float,
    "until": float,
    "limit": int,
}


class ObservabilityServer:
    """Threaded HTTP server over registry / store / dashboard callables.

    Parameters are all optional — a missing piece turns its route into
    a 404 (with a JSON hint), so the server composes with whatever
    subset of the stack a deployment runs.

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    :meth:`start` (how the smoke test avoids collisions).
    """

    def __init__(self, *, registry=None, extra_metrics=None,
                 manager=None, store=None, dashboard=None, health=None,
                 slo=None, host: str = "127.0.0.1", port: int = 0,
                 namespace: str = "repro", clock=None):
        self.registry = registry
        #: Callable returning ``{name: metric}`` merged into the
        #: exposition (e.g. the engine's fleet-merged latency histogram).
        self.extra_metrics = extra_metrics
        self.manager = manager
        self.store = store if store is not None else (
            manager.store if manager is not None else None)
        #: Callable returning the dashboard frame as text.
        self.dashboard = dashboard
        #: Callable returning extra ``/healthz`` JSON fields.
        self.health = health
        #: Callable returning the SLO report dict (e.g.
        #: ``engine.slo_report``); ``None`` → ``/slo`` is 404.
        self.slo = slo
        #: Injectable uptime clock; monotonic by default so ``/healthz``
        #: uptime survives wall-clock jumps.
        self.clock = clock if clock is not None else time.monotonic
        self._started_at: float | None = None
        self.host = host
        self.port = port
        self.namespace = namespace
        self.requests = 0
        self.errors = 0
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    # -- responses ------------------------------------------------------
    def render_metrics(self) -> str:
        if self.registry is None:
            raise LookupError("no metrics registry attached")
        extra = self.extra_metrics() if self.extra_metrics is not None else None
        return render_exposition(self.registry, namespace=self.namespace,
                                 extra=extra)

    def render_healthz(self) -> dict:
        body = {"status": "ok"}
        if self._started_at is not None:
            body["uptime_s"] = max(0.0, self.clock() - self._started_at)
        if self.manager is not None:
            report = self.manager.report()
            body["alerts_active"] = report["active"]
            body["alerts_raised"] = report["raised"]
            body["alert_errors"] = report["errors"]
        if self.health is not None:
            body.update(self.health())
        return body

    def render_alerts(self, query: dict) -> dict:
        if self.store is None and self.manager is None:
            raise LookupError("no alert store attached")
        filters = {}
        for key, coerce in _ALERT_PARAMS.items():
            if key in query:
                try:
                    filters[key] = coerce(query[key][-1])
                except (TypeError, ValueError):
                    raise ValueError(
                        f"bad value for {key!r}: {query[key][-1]!r}"
                    ) from None
        unknown = sorted(set(query) - set(_ALERT_PARAMS))
        if unknown:
            raise ValueError(f"unknown parameter(s) {unknown}; "
                             f"valid: {sorted(_ALERT_PARAMS)}")
        events = (self.store.query(**filters) if self.store is not None
                  else [])
        body = {"count": len(events), "events": events}
        if self.manager is not None:
            body["active"] = [a.to_json()
                              for a in self.manager.active_alerts()]
        return body

    def render_dashboard_text(self) -> str:
        if self.dashboard is None:
            raise LookupError("no dashboard attached")
        return self.dashboard()

    def render_slo(self) -> dict:
        if self.slo is None:
            raise LookupError("no SLO tracker attached")
        body = self.slo()
        if body is None:  # engine configured with slo=None
            raise LookupError("SLO tracking is disabled")
        return body

    # -- lifecycle ------------------------------------------------------
    def start(self) -> int:
        """Bind and serve from a daemon thread; returns the bound port."""
        if self._httpd is not None:
            raise RuntimeError("server already started")
        server = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt, *args):  # stdlib prints by default
                _logger.debug("http: " + fmt, *args)

            def do_GET(self):
                server._handle(self)

        self._httpd = ThreadingHTTPServer((self.host, self.port), Handler)
        self._httpd.daemon_threads = True
        self._started_at = self.clock()
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-observability-http", daemon=True,
        )
        self._thread.start()
        _logger.info("observability endpoint on http://%s:%d "
                     "(/metrics /healthz /alerts /slo /dashboard)",
                     self.host, self.port)
        return self.port

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        self._httpd = None
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- request plumbing -----------------------------------------------
    def _handle(self, handler: BaseHTTPRequestHandler) -> None:
        self.requests += 1
        parsed = urlparse(handler.path)
        route = parsed.path.rstrip("/") or "/"
        try:
            if route == "/metrics":
                self._send(handler, 200, self.render_metrics(),
                           "text/plain; version=0.0.4; charset=utf-8")
            elif route == "/healthz":
                self._send_json(handler, 200, self.render_healthz())
            elif route == "/alerts":
                body = self.render_alerts(parse_qs(parsed.query))
                self._send_json(handler, 200, body)
            elif route == "/slo":
                self._send_json(handler, 200, self.render_slo())
            elif route == "/dashboard":
                self._send(handler, 200, self.render_dashboard_text(),
                           "text/plain; charset=utf-8")
            elif route == "/":
                self._send_json(handler, 200, {
                    "endpoints": ["/metrics", "/healthz", "/alerts",
                                  "/slo", "/dashboard"],
                })
            else:
                self._send_json(handler, 404, {
                    "error": f"no route {route!r}",
                    "endpoints": ["/metrics", "/healthz", "/alerts",
                                  "/slo", "/dashboard"],
                })
        except ValueError as exc:  # bad query parameters
            self._send_json(handler, 400, {"error": str(exc)})
        except LookupError as exc:  # route's backend not attached
            self._send_json(handler, 404, {"error": str(exc)})
        except Exception:
            # Contained: one bad request must not take the process (or
            # the serving loop next to it) down.
            self.errors += 1
            _logger.exception("observability endpoint failed on %s",
                              handler.path)
            try:
                self._send_json(handler, 500, {"error": "internal error"})
            except Exception:
                pass

    @staticmethod
    def _send(handler, status: int, text: str, content_type: str) -> None:
        payload = text.encode("utf-8")
        handler.send_response(status)
        handler.send_header("Content-Type", content_type)
        handler.send_header("Content-Length", str(len(payload)))
        handler.end_headers()
        handler.wfile.write(payload)

    @classmethod
    def _send_json(cls, handler, status: int, body: dict) -> None:
        cls._send(handler, status, json.dumps(body, indent=1),
                  "application/json; charset=utf-8")
