"""Fleet alert aggregation: escalation, dedup, demotion, persistence.

The :class:`AlertManager` is the production layer between per-stream
detections and operator-facing alerts.  It owns one
:class:`~repro.alerts.EscalationMachine` per stream and, on every
escalation to ``alert``:

* **dedups** — a stream re-alerting within ``dedup_horizon_s`` of its
  previous alert's last activity collapses into that alert (repeat
  count bumped, reactivated if it had resolved) instead of opening a
  new one, so a flapping stream is one alert line, not fifty;
* **demotes** — an episode whose stream was ``degraded``/``fault``/
  ``quarantined`` at any detection raises at severity ``suspect``
  rather than ``critical`` (a spiking sensor is a maintenance ticket,
  not a fall);
* **persists** — alert lifecycle events (``alert`` / ``repeat`` /
  ``ack`` / ``resolve``) and every escalation transition land in the
  bounded :class:`~repro.alerts.EventStore`, queryable afterwards via
  :meth:`query` and the HTTP ``/alerts`` endpoint;
* **marks** — the stream's flight recorder gets a ``mark`` on each
  raised alert, freezing the pre-alert history into an incident.

Fail-safe contract (AirbagController style): the public entry points
``observe`` / ``tick`` / ``ack`` never raise into the serve path —
an internal error increments ``alerts/errors``, logs once and returns
an empty transition list.  Alerting must never take the airbag down.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs import get_logger, get_registry
from .escalation import STATE_LEVEL, EscalationConfig, EscalationMachine
from .store import EventStore, EventStoreConfig

__all__ = ["AlertConfig", "Alert", "AlertManager", "SEVERITIES"]

_logger = get_logger(__name__)

#: Alert severities, worst first.
SEVERITIES = ("critical", "suspect")


@dataclass(frozen=True)
class AlertConfig:
    """Fleet alerting policy."""

    escalation: EscalationConfig = field(default_factory=EscalationConfig)
    #: Same-stream alerts within this horizon of the previous alert's
    #: last activity collapse into it (stream-time seconds).
    dedup_horizon_s: float = 30.0
    #: Persist lifecycle events + transitions here; ``None`` keeps the
    #: manager memory-only (alerts still queryable via :meth:`alerts`).
    store: EventStoreConfig | None = None
    #: Bound on retained alert records; oldest *resolved* alerts are
    #: pruned first, so a long-running fleet cannot grow without limit.
    max_alerts: int = 1024
    #: Export a per-stream escalation-state gauge
    #: (``alerts/stream/<id>/state``).  Disable when stream cardinality
    #: would flood the registry, like ``ServeConfig.per_stream_metrics``.
    per_stream_metrics: bool = True

    def __post_init__(self):
        if self.dedup_horizon_s < 0:
            raise ValueError(
                f"dedup_horizon_s must be >= 0, got {self.dedup_horizon_s}"
            )
        if self.max_alerts < 1:
            raise ValueError(f"max_alerts must be >= 1, got {self.max_alerts}")


@dataclass
class Alert:
    """One operator-facing alert (possibly covering many detections)."""

    id: str
    stream: str
    severity: str
    state: str  # active / acked / resolved
    first_t: float
    last_t: float
    detections: int = 0
    repeats: int = 0
    probability: float | None = None
    source: str | None = None
    worst_health: str = "healthy"

    def to_json(self) -> dict:
        return {
            "id": self.id, "stream": self.stream,
            "severity": self.severity, "state": self.state,
            "first_t": self.first_t, "last_t": self.last_t,
            "detections": self.detections, "repeats": self.repeats,
            "probability": self.probability, "source": self.source,
            "worst_health": self.worst_health,
        }


class AlertManager:
    """Fleet-wide alert pipeline over per-stream escalation machines."""

    def __init__(self, config: AlertConfig | None = None, *,
                 registry=None, store: EventStore | None = None):
        self.config = config or AlertConfig()
        self.registry = registry if registry is not None else get_registry()
        if store is None and self.config.store is not None:
            store = EventStore(self.config.store, registry=self.registry)
        self.store = store
        self._machines: dict[str, EscalationMachine] = {}
        self._alerts: list[Alert] = []
        self._last_by_stream: dict[str, Alert] = {}
        self._next_alert = 0
        self.errors = 0

    # -- fail-safe entry points ----------------------------------------
    def observe(self, stream_id: str, *, t: float,
                probability: float | None = None, source: str = "cnn",
                health: str = "healthy", recorder=None) -> list[dict]:
        """Feed one detection from ``stream_id``; never raises."""
        try:
            return self._observe(stream_id, t=t, probability=probability,
                                 source=source, health=health,
                                 recorder=recorder)
        except Exception:
            self._contain("observe", stream_id)
            return []

    def tick(self, t: float) -> list[dict]:
        """Advance every stream's timers to ``t``; never raises."""
        try:
            transitions: list[dict] = []
            for machine in self._machines.values():
                moved = machine.advance(t)
                if moved:
                    self._emit(machine, moved, recorder=None)
                    transitions += moved
            return transitions
        except Exception:
            self._contain("tick", None)
            return []

    def ack(self, alert_id: str, t: float | None = None) -> bool:
        """Operator acknowledgement by alert id; never raises."""
        try:
            return self._ack(alert_id, t)
        except Exception:
            self._contain("ack", alert_id)
            return False

    def raise_direct(self, subject: str, *, t: float,
                     severity: str = "critical", source: str = "slo",
                     message: str | None = None) -> Alert | None:
        """Raise (or dedup into) an alert with no escalation machine
        behind it — the entry point for SLO burn-rate alerts, whose
        evidence is a fleet-level rate rather than per-stream detections.
        ``subject`` plays the stream role (e.g.
        ``slo/window_latency_p99/fast_burn``) so dedup, lifecycle
        persistence, gauges and the ``/alerts`` view all apply unchanged.
        Never raises.
        """
        try:
            return self._raise_direct(subject, t=float(t), severity=severity,
                                      source=source, message=message)
        except Exception:
            self._contain("raise_direct", subject)
            return None

    def resolve_direct(self, subject: str, *, t: float) -> bool:
        """Resolve a :meth:`raise_direct` alert (burn stopped); never
        raises."""
        try:
            self._resolve(subject, float(t))
            self._sync_active_gauges()
            return True
        except Exception:
            self._contain("resolve_direct", subject)
            return False

    def _contain(self, entry: str, subject) -> None:
        self.errors += 1
        self.registry.counter("alerts/errors").inc()
        _logger.exception("alert manager %s failed (%r); alerting is "
                          "fail-safe, serving continues", entry, subject)

    # -- core -----------------------------------------------------------
    def _machine(self, stream_id: str) -> EscalationMachine:
        machine = self._machines.get(stream_id)
        if machine is None:
            machine = EscalationMachine(stream_id, self.config.escalation)
            self._machines[stream_id] = machine
        return machine

    def _observe(self, stream_id, *, t, probability, source, health,
                 recorder) -> list[dict]:
        self.registry.counter("alerts/detections_in").inc()
        machine = self._machine(stream_id)
        transitions = machine.observe_detection(
            float(t), probability=probability, source=source, health=health,
        )
        self._emit(machine, transitions, recorder=recorder)
        alert = self._last_by_stream.get(stream_id)
        if alert is not None and alert.state in ("active", "acked"):
            # Keep the live alert's envelope current with the episode.
            alert.last_t = float(t)
            if machine.episode_max_probability is not None:
                alert.probability = (
                    machine.episode_max_probability
                    if alert.probability is None
                    else max(alert.probability,
                             machine.episode_max_probability)
                )
            alert.source = machine.episode_source
            if not transitions:
                # Post-raise detection riding an already-open alert;
                # raise/repeat paths account for their own counts.
                alert.detections += 1
        return transitions

    def _emit(self, machine: EscalationMachine, transitions: list[dict],
              *, recorder) -> None:
        """Turn machine transitions into metrics, store events, alert
        lifecycle updates and flight-recorder marks."""
        cfg = self.config
        for transition in transitions:
            to, reason = transition["to"], transition["reason"]
            self.registry.counter("alerts/transitions").inc()
            self.registry.counter(  # metric-name: dynamic
                f"alerts/transitions/{to}").inc()
            if cfg.per_stream_metrics:
                self.registry.gauge(  # metric-name: dynamic
                    f"alerts/stream/{machine.stream_id}/state"
                ).set(float(STATE_LEVEL[to]))
            if self.store is not None:
                self.store.append(transition)
            if to == "alert":
                self._raise_alert(machine, transition, recorder)
            elif to == "idle" and reason == "expired":
                self.registry.counter("alerts/expired").inc()
            elif to == "idle" and reason == "auto_resolve":
                self._resolve(machine.stream_id, transition["t"])
        if transitions:
            self._sync_active_gauges()

    def _raise_alert(self, machine: EscalationMachine, transition: dict,
                     recorder) -> None:
        stream_id = machine.stream_id
        t = transition["t"]
        severity = machine.severity
        previous = self._last_by_stream.get(stream_id)
        if (previous is not None
                and t - previous.last_t <= self.config.dedup_horizon_s):
            previous.repeats += 1
            previous.last_t = t
            previous.detections += machine.episode_detections
            previous.worst_health = machine.worst_health
            if previous.state == "resolved":
                previous.state = "active"
            # A repeat never *upgrades* a suspect alert silently — but a
            # clean-stream repeat of a suspect alert is strong evidence,
            # so severity tightens to the worst (critical wins).
            if severity == "critical":
                previous.severity = "critical"
            self.registry.counter("alerts/deduped").inc()
            self._store_lifecycle("repeat", previous, t)
            _logger.info("alert %s deduped repeat from %s (x%d)",
                         previous.id, stream_id, previous.repeats)
            return
        alert = Alert(
            id=f"a-{self._next_alert:06d}",
            stream=stream_id,
            severity=severity,
            state="active",
            first_t=t,
            last_t=t,
            detections=machine.episode_detections,
            probability=machine.episode_max_probability,
            source=machine.episode_source,
            worst_health=machine.worst_health,
        )
        self._next_alert += 1
        self._alerts.append(alert)
        self._last_by_stream[stream_id] = alert
        self._prune_alerts()
        self.registry.counter("alerts/raised").inc()
        self.registry.counter(  # metric-name: dynamic
            f"alerts/raised/{severity}").inc()
        self._store_lifecycle("alert", alert, t)
        if recorder is not None:
            # Freeze the stream's pre-alert history as an incident.
            recorder.mark(f"alert:{alert.id}")
        _logger.info("alert %s raised for %s (%s)", alert.id, stream_id,
                     severity)

    def _raise_direct(self, subject, *, t, severity, source,
                      message) -> Alert:
        if severity not in SEVERITIES:
            raise ValueError(f"unknown severity {severity!r}; "
                             f"expected one of {SEVERITIES}")
        previous = self._last_by_stream.get(subject)
        if previous is not None and (
                previous.state in ("active", "acked")
                or t - previous.last_t <= self.config.dedup_horizon_s):
            previous.repeats += 1
            previous.last_t = t
            if previous.state == "resolved":
                previous.state = "active"
            if severity == "critical":
                previous.severity = "critical"
            self.registry.counter("alerts/deduped").inc()
            self._store_lifecycle("repeat", previous, t)
            self._sync_active_gauges()
            return previous
        alert = Alert(
            id=f"a-{self._next_alert:06d}",
            stream=subject,
            severity=severity,
            state="active",
            first_t=t,
            last_t=t,
            source=source,
        )
        self._next_alert += 1
        self._alerts.append(alert)
        self._last_by_stream[subject] = alert
        self._prune_alerts()
        self.registry.counter("alerts/raised").inc()
        self.registry.counter(  # metric-name: dynamic
            f"alerts/raised/{severity}").inc()
        self._store_lifecycle("alert", alert, t)
        self._sync_active_gauges()
        _logger.warning("alert %s raised for %s (%s)%s", alert.id, subject,
                        severity, f": {message}" if message else "")
        return alert

    def _resolve(self, stream_id: str, t: float) -> None:
        alert = self._last_by_stream.get(stream_id)
        if alert is None or alert.state == "resolved":
            return
        alert.state = "resolved"
        alert.last_t = float(t)
        self.registry.counter("alerts/resolved").inc()
        self._store_lifecycle("resolve", alert, t)

    def _ack(self, alert_id: str, t: float | None) -> bool:
        alert = next((a for a in self._alerts if a.id == alert_id), None)
        if alert is None or alert.state != "active":
            return False
        machine = self._machines.get(alert.stream)
        when = float(t) if t is not None else alert.last_t
        if machine is not None and machine.state == "alert":
            self._emit(machine, machine.ack(when), recorder=None)
        alert.state = "acked"
        self.registry.counter("alerts/acked").inc()
        self._store_lifecycle("ack", alert, when)
        return True

    def _store_lifecycle(self, kind: str, alert: Alert, t: float) -> None:
        if self.store is None:
            return
        self.store.append({
            "kind": kind,
            "t": float(t),
            "alert_id": alert.id,
            "stream": alert.stream,
            "severity": alert.severity,
            "state": alert.state,
            "detections": alert.detections,
            "repeats": alert.repeats,
            "probability": alert.probability,
            "source": alert.source,
            "worst_health": alert.worst_health,
        })

    def _prune_alerts(self) -> None:
        overflow = len(self._alerts) - self.config.max_alerts
        if overflow <= 0:
            return
        keep: list[Alert] = []
        for alert in self._alerts:
            if overflow > 0 and alert.state == "resolved":
                overflow -= 1
                if self._last_by_stream.get(alert.stream) is alert:
                    del self._last_by_stream[alert.stream]
                continue
            keep.append(alert)
        # Still over (everything active): drop oldest outright — bounded
        # memory beats a complete ledger here, same as the flight ring.
        while overflow > 0 and keep:
            dropped = keep.pop(0)
            if self._last_by_stream.get(dropped.stream) is dropped:
                del self._last_by_stream[dropped.stream]
            overflow -= 1
        self._alerts = keep

    def _sync_active_gauges(self) -> None:
        active = [a for a in self._alerts if a.state in ("active", "acked")]
        self.registry.gauge("alerts/active").set(float(len(active)))
        for severity in SEVERITIES:
            self.registry.gauge(  # metric-name: dynamic
                f"alerts/active/{severity}"
            ).set(float(sum(a.severity == severity for a in active)))

    # -- views ----------------------------------------------------------
    @property
    def alerts(self) -> list[Alert]:
        return list(self._alerts)

    def active_alerts(self) -> list[Alert]:
        return [a for a in self._alerts if a.state in ("active", "acked")]

    def stream_state(self, stream_id: str) -> str:
        machine = self._machines.get(stream_id)
        return machine.state if machine is not None else "idle"

    def query(self, **filters) -> list[dict]:
        """Event-store query passthrough (empty without a store)."""
        if self.store is None:
            return []
        return self.store.query(**filters)

    def report(self) -> dict:
        """Fleet alerting summary for dashboards and test assertions."""
        active = self.active_alerts()
        counts = {s: 0 for s in SEVERITIES}
        for alert in active:
            counts[alert.severity] = counts.get(alert.severity, 0) + 1
        raised = self.registry.counter("alerts/raised").value
        return {
            "streams": len(self._machines),
            "alerts": len(self._alerts),
            "active": len(active),
            "active_by_severity": counts,
            "raised": raised,
            "deduped": self.registry.counter("alerts/deduped").value,
            "resolved": self.registry.counter("alerts/resolved").value,
            "acked": self.registry.counter("alerts/acked").value,
            "expired": self.registry.counter("alerts/expired").value,
            "transitions": self.registry.counter("alerts/transitions").value,
            "errors": self.errors,
            "store": self.store.stats() if self.store is not None else None,
        }
