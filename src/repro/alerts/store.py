"""Persistent bounded event store: JSONL segments with capped rotation.

Incidents frozen by the flight recorder land as loose files; the alert
pipeline needs somewhere durable and *bounded* for its own lifecycle
events (escalations, raised/deduped/resolved alerts) that survives the
process and stays queryable afterwards.  :class:`EventStore` is that
place:

* events append to a single **active segment** — a versioned JSONL file
  (schema header first, one event per line) rewritten through
  :func:`repro.utils.atomic_write`, so a crash mid-write never leaves a
  truncated segment behind;
* when the active segment outgrows ``max_segment_bytes`` it is sealed
  and a new one starts; once more than ``max_segments`` segments exist
  the oldest is deleted — disk use is O(max_segments *
  max_segment_bytes) forever, the same bounded-ring discipline as the
  flight recorder;
* :meth:`EventStore.query` filters by stream / severity / kind / time
  range across every surviving segment, oldest first, so ``/alerts`` on
  the HTTP endpoint is one call.

Reopening an existing store resumes the last unsealed segment and
continues the global sequence numbering, so a restart appends rather
than clobbers.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass

from ..obs import get_logger

__all__ = ["EventStoreConfig", "EventStore", "load_segment"]

_logger = get_logger(__name__)

EVENTS_FORMAT = "repro-events"
EVENTS_VERSION = 1

_SEGMENT_RE = re.compile(r"^events-(\d{6})\.jsonl$")


@dataclass(frozen=True)
class EventStoreConfig:
    """Disk layout and bounds for one :class:`EventStore`."""

    #: Directory the segment files live in (created on demand).
    root: str
    #: Seal the active segment once its serialized size passes this.
    max_segment_bytes: int = 64 * 1024
    #: Oldest segments beyond this count are deleted.
    max_segments: int = 8

    def __post_init__(self):
        if self.max_segment_bytes < 1024:
            raise ValueError(
                f"max_segment_bytes must be >= 1024, got "
                f"{self.max_segment_bytes}"
            )
        if self.max_segments < 1:
            raise ValueError(
                f"max_segments must be >= 1, got {self.max_segments}"
            )


def _segment_header(index: int) -> dict:
    return {"format": EVENTS_FORMAT, "version": EVENTS_VERSION,
            "segment": index}


def load_segment(path, *, skip_corrupt: bool = False,
                 on_corrupt=None) -> tuple[dict, list]:
    """Read one segment; validates the schema header like
    :func:`repro.obs.load_incident` does for incident files.

    The header is always strict — a bad header means the file is not
    ours and the whole segment is rejected.  Body lines are strict by
    default; with ``skip_corrupt=True`` a torn or garbage line (e.g. a
    partial write from a crashed foreign writer) is skipped rather than
    failing the segment, and ``on_corrupt(path, line)`` is invoked per
    skipped line so callers can count them.
    """
    with open(path, "r", encoding="utf-8") as fh:
        lines = [line for line in (raw.strip() for raw in fh) if line]
    if not lines:
        raise ValueError(f"{path}: empty file, not an event segment")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: header is not JSON: {exc}") from None
    if not isinstance(header, dict) or header.get("format") != EVENTS_FORMAT:
        raise ValueError(
            f"{path}: not a {EVENTS_FORMAT} file (header {header!r})"
        )
    if header.get("version") != EVENTS_VERSION:
        raise ValueError(
            f"{path}: segment version {header.get('version')!r} "
            f"(this build reads version {EVENTS_VERSION})"
        )
    events = []
    for line in lines[1:]:
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if not skip_corrupt:
                raise ValueError(f"{path}: corrupt event line: {exc}") \
                    from None
            if on_corrupt is not None:
                on_corrupt(path, line)
    return header, events


class EventStore:
    """Append-only, size-bounded, queryable JSONL event store.

    Single-writer by design (the :class:`~repro.alerts.AlertManager`
    owns it); readers — ``query`` from the HTTP endpoint, offline
    tooling — always see complete segments thanks to the atomic
    rewrites.
    """

    def __init__(self, config: EventStoreConfig, *, registry=None):
        self.config = config
        os.makedirs(config.root, exist_ok=True)
        self._active_index = 1
        self._active_events: list[dict] = []
        self._active_bytes = 0
        self._next_seq = 0
        self.appended = 0
        self.corrupt_lines = 0
        self._corrupt_counter = (
            registry.counter("store/corrupt_lines")
            if registry is not None else None
        )
        self._resume()

    def _note_corrupt(self, path, line) -> None:
        self.corrupt_lines += 1
        if self._corrupt_counter is not None:
            self._corrupt_counter.inc()
        _logger.warning("event store skipping corrupt line in %s: %.80s",
                        path, line)

    # -- writing --------------------------------------------------------
    def append(self, event: dict) -> dict:
        """Persist one event; returns the stored record (with ``seq``).

        The event must be a JSON-serializable dict with a ``kind``; the
        store stamps a monotonic ``seq`` so global ordering survives
        segment rotation.
        """
        if not isinstance(event, dict) or not event.get("kind"):
            raise ValueError(f"event must be a dict with a 'kind', "
                             f"got {event!r}")
        record = dict(event)
        record["seq"] = self._next_seq
        line = json.dumps(record)  # raises early on unserializable payloads
        self._next_seq += 1
        self.appended += 1
        self._active_events.append(record)
        self._active_bytes += len(line) + 1
        self._write_active()
        if self._active_bytes >= self.config.max_segment_bytes:
            self._rotate()
        return record

    def _write_active(self) -> None:
        from ..utils import atomic_write

        path = self.segment_path(self._active_index)
        with atomic_write(path) as fh:
            fh.write(json.dumps(_segment_header(self._active_index)) + "\n")
            for record in self._active_events:
                fh.write(json.dumps(record) + "\n")

    def _rotate(self) -> None:
        _logger.info(
            "event store sealed segment %06d (%d events, %d bytes)",
            self._active_index, len(self._active_events), self._active_bytes,
        )
        self._active_index += 1
        self._active_events = []
        self._active_bytes = 0
        self._write_active()
        self._prune()

    def _prune(self) -> None:
        indices = self.segment_indices()
        while len(indices) > self.config.max_segments:
            victim = indices.pop(0)
            try:
                os.unlink(self.segment_path(victim))
            except OSError:  # already gone: pruning is best-effort
                pass
            _logger.info("event store pruned segment %06d", victim)

    def _resume(self) -> None:
        indices = self.segment_indices()
        if not indices:
            self._write_active()
            return
        last = indices[-1]
        self._next_seq = max(
            (e["seq"] + 1 for e in self.events() if "seq" in e), default=0
        )
        try:
            _, events = load_segment(
                self.segment_path(last), skip_corrupt=True,
                on_corrupt=self._note_corrupt,
            )
        except ValueError:
            # A foreign or corrupt trailing file: leave it alone and
            # start a fresh segment after it.
            _logger.warning(
                "event store could not resume segment %06d; starting %06d",
                last, last + 1,
            )
            self._active_index = last + 1
            self._write_active()
            return
        size = os.path.getsize(self.segment_path(last))
        if size >= self.config.max_segment_bytes:
            self._active_index = last + 1
            self._write_active()
        else:
            self._active_index = last
            self._active_events = events
            self._active_bytes = size

    # -- reading --------------------------------------------------------
    def segment_indices(self) -> list[int]:
        out = []
        for name in os.listdir(self.config.root):
            match = _SEGMENT_RE.match(name)
            if match:
                out.append(int(match.group(1)))
        return sorted(out)

    def segment_path(self, index: int) -> str:
        return os.path.join(self.config.root, f"events-{index:06d}.jsonl")

    def events(self) -> list[dict]:
        """Every surviving event, oldest first.

        A segment whose *header* fails validation is a foreign file and
        is skipped whole; a corrupt line **inside** an otherwise valid
        segment (torn write, bit rot) only loses that line — the rest of
        the segment still serves, with each skip counted on
        ``store/corrupt_lines``.
        """
        out: list[dict] = []
        for index in self.segment_indices():
            try:
                _, events = load_segment(
                    self.segment_path(index), skip_corrupt=True,
                    on_corrupt=self._note_corrupt,
                )
            except (ValueError, OSError):
                continue
            out.extend(events)
        out.sort(key=lambda e: e.get("seq", -1))
        return out

    def seal(self) -> bool:
        """Seal the active segment now (graceful shutdown).

        Rotates a non-empty active segment so the events written this
        run live in a complete, closed segment; a later process starts
        fresh instead of appending to (and re-serializing) ours.  A
        no-op on an empty active segment; returns whether it rotated.
        """
        if not self._active_events:
            return False
        self._rotate()
        return True

    def query(self, *, stream: str | None = None,
              severity: str | None = None, kind: str | None = None,
              since: float | None = None, until: float | None = None,
              limit: int | None = None) -> list[dict]:
        """Filtered event view (oldest first; ``limit`` keeps the newest).

        ``since``/``until`` bound the event ``t`` field inclusively;
        events without a ``t`` are excluded by any time filter.
        """
        out = []
        for event in self.events():
            if stream is not None and event.get("stream") != stream:
                continue
            if severity is not None and event.get("severity") != severity:
                continue
            if kind is not None and event.get("kind") != kind:
                continue
            if since is not None or until is not None:
                t = event.get("t")
                if t is None:
                    continue
                if since is not None and t < since:
                    continue
                if until is not None and t > until:
                    continue
            out.append(event)
        if limit is not None and limit >= 0:
            out = out[-limit:]
        return out

    def stats(self) -> dict:
        indices = self.segment_indices()
        total = 0
        for index in indices:
            try:
                total += os.path.getsize(self.segment_path(index))
            except OSError:
                pass
        return {
            "root": self.config.root,
            "segments": len(indices),
            "events": len(self.events()),
            "bytes": total,
            "appended": self.appended,
            "corrupt_lines": self.corrupt_lines,
        }
