"""``repro.alerts`` — the incident-to-alert production pipeline.

Per-stream detections (and the flight-recorder incidents behind them)
are raw material; a deployed fleet pages operators on *alerts*.  This
package is the layer between, built from four pieces:

* :mod:`repro.alerts.escalation` — a per-stream state machine
  (detection → confirm window → alert → ack/auto-resolve) encoding the
  "false-positive bursts dominate" lesson from real ADL streams;
* :mod:`repro.alerts.manager` — fleet aggregation: dedup of same-stream
  repeats inside a horizon, demotion of alerts from degraded/faulted
  streams to ``suspect``, ``alerts/*`` metrics, flight-recorder marks,
  all behind a fail-safe boundary that never raises into serving;
* :mod:`repro.alerts.store` — a persistent bounded event store (JSONL
  segments, atomic writes, size-capped rotation, ``query()`` by
  stream/severity/kind/time);
* :mod:`repro.alerts.http` — a stdlib HTTP endpoint serving
  ``/metrics``, ``/healthz``, ``/alerts`` and ``/dashboard``.

Wire-up is one config field: ``ServeConfig(alerts=AlertConfig(...))``
gives a :class:`~repro.serve.ServeEngine` a fleet alert pipeline; the
``repro serve-http`` CLI command exposes it over HTTP.
"""

from .escalation import ESCALATION_STATES, EscalationConfig, EscalationMachine
from .http import ObservabilityServer
from .manager import SEVERITIES, Alert, AlertConfig, AlertManager
from .store import EventStore, EventStoreConfig, load_segment

__all__ = [
    "ESCALATION_STATES",
    "EscalationConfig",
    "EscalationMachine",
    "SEVERITIES",
    "Alert",
    "AlertConfig",
    "AlertManager",
    "EventStore",
    "EventStoreConfig",
    "load_segment",
    "ObservabilityServer",
]
