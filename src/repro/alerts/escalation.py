"""Per-stream escalation state machine: detection → alert lifecycle.

"Watch Your Step" (arXiv 2509.11789) shows the dominant failure mode of
fall detectors on real ADL-dominated streams is the false-positive
burst — a single above-threshold window is weak evidence, a cluster
inside a short horizon is strong.  The escalation machine encodes that
as a four-state lifecycle per stream::

    idle --detection--> confirming --N more detections
                            |          within confirm_window_s--> alert
                            +--window elapses--> idle   ("expired")

    alert --operator ack--> acked
    alert/acked --no detections for auto_resolve_s--> idle ("auto_resolve")

The machine is pure bookkeeping on stream time: it owns no metrics, no
I/O and no clock — every call takes an explicit ``t`` and returns the
list of transitions it caused, which the
:class:`~repro.alerts.AlertManager` turns into ``alerts/*`` metrics,
flight-recorder marks and event-store records.  That keeps the machine
trivially testable and keeps all the fail-safe wrapping in one place
(the manager), mirroring how ``AirbagController`` contains the detector.

While an episode is open the machine tracks the *worst* detector health
it saw; the manager uses :attr:`EscalationMachine.severity` to demote
alerts from degraded/faulted streams to ``suspect`` — a spiking sensor
should page nobody at ``critical``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EscalationConfig", "EscalationMachine", "ESCALATION_STATES"]

#: Lifecycle states, in escalation order.
ESCALATION_STATES = ("idle", "confirming", "alert", "acked")

#: Numeric level per state for the exported per-stream gauge.
STATE_LEVEL = {state: i for i, state in enumerate(ESCALATION_STATES)}

#: Health states (detector three-state machine plus the engine's
#: quarantine) that demote an episode's alerts to ``suspect``.
SUSPECT_HEALTHS = ("degraded", "fault", "quarantined")

_HEALTH_RANK = {"healthy": 0, "degraded": 1, "fault": 2, "quarantined": 3}


@dataclass(frozen=True)
class EscalationConfig:
    """Escalation policy knobs (stream-time seconds throughout)."""

    #: Confirmation horizon after the first detection of an episode.
    confirm_window_s: float = 2.0
    #: Detections *after* the first that must land inside the horizon to
    #: escalate — 2 means "a detection followed by 2 confirming windows".
    confirm_detections: int = 2
    #: An alert with no further detections for this long resolves itself.
    auto_resolve_s: float = 10.0

    def __post_init__(self):
        if self.confirm_window_s <= 0:
            raise ValueError(
                f"confirm_window_s must be positive, got "
                f"{self.confirm_window_s}"
            )
        if self.confirm_detections < 1:
            raise ValueError(
                f"confirm_detections must be >= 1, got "
                f"{self.confirm_detections}"
            )
        if self.auto_resolve_s <= 0:
            raise ValueError(
                f"auto_resolve_s must be positive, got {self.auto_resolve_s}"
            )


class EscalationMachine:
    """One stream's escalation lifecycle (see module docstring)."""

    def __init__(self, stream_id: str, config: EscalationConfig | None = None):
        self.stream_id = str(stream_id)
        self.config = config or EscalationConfig()
        self.state = "idle"
        self.transitions = 0
        self._confirm_deadline: float | None = None
        self._confirmations = 0
        self._last_detection_t: float | None = None
        self._episode_reset()

    def _episode_reset(self) -> None:
        self.episode_detections = 0
        self.episode_max_probability: float | None = None
        self.episode_source: str | None = None
        self._episode_worst_health = "healthy"

    # -- inputs ---------------------------------------------------------
    def observe_detection(self, t: float, probability: float | None = None,
                          source: str = "cnn",
                          health: str = "healthy") -> list[dict]:
        """Feed one detector firing at stream time ``t``."""
        transitions = self.advance(t)
        cfg = self.config
        self._last_detection_t = t
        if self.state == "idle":
            self._episode_reset()
            self._confirmations = 0
            self._confirm_deadline = t + cfg.confirm_window_s
            transitions += self._goto("confirming", t, "detection")
        elif self.state == "confirming":
            self._confirmations += 1
            if self._confirmations >= cfg.confirm_detections:
                transitions += self._goto("alert", t, "confirmed")
        # alert / acked: the detection keeps the episode warm (resets the
        # auto-resolve timer via _last_detection_t) without transitioning.
        self.episode_detections += 1
        if probability is not None:
            probability = float(probability)
            if (self.episode_max_probability is None
                    or probability > self.episode_max_probability):
                self.episode_max_probability = probability
        self.episode_source = source
        if (_HEALTH_RANK.get(health, 0)
                > _HEALTH_RANK.get(self._episode_worst_health, 0)):
            self._episode_worst_health = health
        return transitions

    def advance(self, t: float) -> list[dict]:
        """Advance timers to stream time ``t`` (no detection)."""
        cfg = self.config
        if (self.state == "confirming"
                and self._confirm_deadline is not None
                and t > self._confirm_deadline):
            return self._goto("idle", t, "expired")
        if (self.state in ("alert", "acked")
                and self._last_detection_t is not None
                and t - self._last_detection_t >= cfg.auto_resolve_s):
            return self._goto("idle", t, "auto_resolve")
        return []

    def ack(self, t: float) -> list[dict]:
        """Operator acknowledgement; only a raised alert can be acked."""
        if self.state != "alert":
            return []
        return self._goto("acked", t, "ack")

    # -- outputs --------------------------------------------------------
    @property
    def severity(self) -> str:
        """Alert severity for the current episode: ``critical`` from a
        healthy stream, ``suspect`` once the stream was degraded or worse
        at any detection in the episode."""
        return ("suspect" if self._episode_worst_health in SUSPECT_HEALTHS
                else "critical")

    @property
    def worst_health(self) -> str:
        return self._episode_worst_health

    def _goto(self, new: str, t: float, reason: str) -> list[dict]:
        old, self.state = self.state, new
        self.transitions += 1
        if new == "idle":
            self._confirm_deadline = None
            self._confirmations = 0
        return [{
            "kind": "escalation",
            "stream": self.stream_id,
            "t": float(t),
            "from": old,
            "to": new,
            "reason": reason,
        }]
