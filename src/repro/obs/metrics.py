"""Counters, gauges and fixed-bucket histograms with a default registry.

The histogram is the workhorse: the streaming detector records one
latency sample per inference window, and the profile report summarises
them as p50/p95/p99 against the real-time deadline.  Buckets are fixed at
construction (geometric by default), so memory stays O(buckets) no matter
how long the detector streams — the same discipline an MCU firmware
counter would use.
"""

from __future__ import annotations

import json
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "default_latency_buckets",
    "load_snapshot",
]

#: Schema version of the metrics-snapshot JSONL files written by
#: :meth:`MetricsRegistry.snapshot_to_jsonl`.
SNAPSHOT_FORMAT = "repro-metrics-snapshot"
SNAPSHOT_VERSION = 1


class Counter:
    """Monotonically increasing count (thread-safe)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up; use a Gauge instead")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge:
    """Last-written value (thread-safe)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


def default_latency_buckets() -> tuple:
    """Geometric edges (×2) from 1e-3 to 1e5 — in ms, that is 1 µs…100 s."""
    edges = []
    edge = 1e-3
    while edge < 1e5:
        edges.append(edge)
        edge *= 2.0
    return tuple(edges)


class Histogram:
    """Fixed-bucket histogram with percentile summaries.

    ``buckets`` is an increasing sequence of upper edges; values above the
    last edge land in an overflow bucket whose percentile estimate is the
    observed maximum.  Percentiles interpolate linearly inside a bucket,
    clamped to the observed min/max so tiny sample counts stay sane.
    """

    def __init__(self, buckets=None):
        edges = tuple(float(b) for b in (buckets or default_latency_buckets()))
        if not edges or any(later <= earlier
                            for later, earlier in zip(edges[1:], edges)):
            raise ValueError("buckets must be strictly increasing and non-empty")
        self.edges = edges
        self._lock = threading.Lock()
        self._counts = [0] * (len(edges) + 1)  # +1 = overflow
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)
            for i, edge in enumerate(self.edges):
                if value <= edge:
                    self._counts[i] += 1
                    return
            self._counts[-1] += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """Bucket-interpolated percentile; ``q`` in [0, 100]."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        with self._lock:
            if self._count == 0:
                return 0.0
            target = q / 100.0 * self._count
            cumulative = 0
            for i, bucket_count in enumerate(self._counts):
                if bucket_count == 0:
                    continue
                if cumulative + bucket_count >= target:
                    if i >= len(self.edges):  # overflow bucket
                        return self._max
                    lower = self.edges[i - 1] if i > 0 else min(self._min, self.edges[i])
                    upper = self.edges[i]
                    frac = (target - cumulative) / bucket_count
                    value = lower + frac * (upper - lower)
                    return min(max(value, self._min), self._max)
                cumulative += bucket_count
            return self._max

    def summary(self) -> dict:
        """count / mean / min / max / p50 / p95 / p99 in one dict."""
        with self._lock:
            count, total = self._count, self._sum
            lo = self._min if count else 0.0
            hi = self._max if count else 0.0
        return {
            "count": count,
            "mean": total / count if count else 0.0,
            "min": lo,
            "max": hi,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
        }

    def bucket_counts(self) -> tuple:
        """Raw per-bucket counts, one per edge plus the overflow bucket."""
        with self._lock:
            return tuple(self._counts)

    def cumulative_buckets(self) -> list:
        """Prometheus-style cumulative buckets: ``(upper_edge, count<=edge)``
        pairs, ending with ``(None, total)`` — the ``+Inf`` bucket."""
        with self._lock:
            counts = list(self._counts)
        out, running = [], 0
        for edge, count in zip(self.edges, counts):
            running += count
            out.append((edge, running))
        out.append((None, running + counts[-1]))
        return out

    def snapshot(self) -> dict:
        """:meth:`summary` plus the raw exposition data: ``sum`` and the
        cumulative ``buckets`` (``[upper_edge_or_None, count]`` pairs)."""
        out = self.summary()
        with self._lock:
            out["sum"] = self._sum
        out["buckets"] = [[edge, count]
                          for edge, count in self.cumulative_buckets()]
        return out

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other``'s observations into this histogram (fleet view).

        Both histograms must share identical bucket edges — merging is a
        plain element-wise sum of raw bucket counts, so per-stream latency
        histograms aggregate exactly.  Returns ``self`` for chaining.
        """
        if not isinstance(other, Histogram):
            raise TypeError(f"can only merge Histogram, got "
                            f"{type(other).__name__}")
        if other.edges != self.edges:
            raise ValueError(
                f"bucket edges differ: {len(self.edges)} edges vs "
                f"{len(other.edges)}; merge needs identical buckets"
            )
        with other._lock:
            counts = list(other._counts)
            count, total = other._count, other._sum
            lo, hi = other._min, other._max
        with self._lock:
            for i, c in enumerate(counts):
                self._counts[i] += c
            self._count += count
            self._sum += total
            self._min = min(self._min, lo)
            self._max = max(self._max, hi)
        return self

    @classmethod
    def from_entry(cls, entry: dict) -> "Histogram":
        """Rebuild a histogram from a :meth:`MetricsRegistry.snapshot_to_jsonl`
        entry, so archived per-run snapshots can be merged offline."""
        hist = cls(buckets=entry["edges"])
        counts = entry["counts"]
        if len(counts) != len(hist._counts):
            raise ValueError(
                f"entry has {len(counts)} bucket counts for "
                f"{len(hist.edges)} edges"
            )
        hist._counts = [int(c) for c in counts]
        hist._count = int(entry["count"])
        hist._sum = float(entry["sum"])
        if entry["count"]:
            hist._min = float(entry["min"])
            hist._max = float(entry["max"])
        return hist

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.edges) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = float("inf")
            self._max = float("-inf")


class MetricsRegistry:
    """Named metrics with get-or-create semantics (thread-safe)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, object] = {}

    def _get_or_create(self, name: str, cls, factory):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = factory()
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} is a {type(metric).__name__}, "
                    f"not a {cls.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, Gauge)

    def histogram(self, name: str, buckets=None) -> Histogram:
        return self._get_or_create(
            name, Histogram, lambda: Histogram(buckets=buckets)
        )

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def metrics(self) -> dict:
        """Name → metric *object* view (sorted copy) for typed consumers
        like the Prometheus exposition renderer."""
        with self._lock:
            metrics = dict(self._metrics)
        return {name: metrics[name] for name in sorted(metrics)}

    def snapshot(self) -> dict:
        """Plain-dict view: counters/gauges → value, histograms → summary
        plus raw cumulative buckets (see :meth:`Histogram.snapshot`)."""
        with self._lock:
            metrics = dict(self._metrics)
        out = {}
        for name in sorted(metrics):
            metric = metrics[name]
            if isinstance(metric, Histogram):
                out[name] = metric.snapshot()
            else:
                out[name] = metric.value
        return out

    def entries(self) -> list:
        """The registry as plain snapshot-entry dicts (sorted by name).

        Same per-metric schema as :meth:`snapshot_to_jsonl` lines — JSON
        and pickle safe, so a worker process can ship its registry across
        a pool boundary without serialising locks; fold them back in with
        :meth:`merge_entries`.
        """
        out = []
        for name, metric in self.metrics().items():
            if isinstance(metric, Histogram):
                with metric._lock:
                    entry = {
                        "name": name,
                        "type": "histogram",
                        "edges": list(metric.edges),
                        "counts": list(metric._counts),
                        "count": metric._count,
                        "sum": metric._sum,
                        "min": metric._min if metric._count else None,
                        "max": metric._max if metric._count else None,
                    }
            elif isinstance(metric, Counter):
                entry = {"name": name, "type": "counter",
                         "value": metric.value}
            else:
                entry = {"name": name, "type": "gauge",
                         "value": metric.value}
            out.append(entry)
        return out

    def merge_entries(self, entries) -> int:
        """Fold snapshot entries (:meth:`entries` / :func:`load_snapshot`
        values) into this registry; returns the number merged.

        Counters add, gauges take the incoming value (last write wins,
        matching :meth:`Gauge.set`), histograms bucket-sum via
        :meth:`Histogram.merge`.  A histogram whose edges differ from an
        existing same-name metric raises ``ValueError`` — that is a naming
        collision, not mergeable data.
        """
        merged = 0
        for entry in entries:
            name, kind = entry["name"], entry["type"]
            if kind == "counter":
                self.counter(name).inc(int(entry["value"]))  # metric-name: dynamic
            elif kind == "gauge":
                self.gauge(name).set(float(entry["value"]))  # metric-name: dynamic
            elif kind == "histogram":
                hist = self.histogram(name, buckets=entry["edges"])  # metric-name: dynamic
                hist.merge(Histogram.from_entry(entry))
            else:
                raise ValueError(f"unknown metric entry type {kind!r}")
            merged += 1
        return merged

    def snapshot_to_jsonl(self, path) -> int:
        """Archive the registry to a versioned JSONL file (atomic write).

        Line 1 is a schema header; every following line is one metric with
        its type and, for histograms, the raw bucket edges/counts needed
        to :meth:`Histogram.merge` runs offline.  Mirrors the trace
        collector's ``export_jsonl``.  Returns the metric count.
        """
        from ..utils import atomic_write

        entries = self.entries()
        with atomic_write(path) as fh:
            fh.write(json.dumps({
                "format": SNAPSHOT_FORMAT,
                "version": SNAPSHOT_VERSION,
                "metrics": len(entries),
            }) + "\n")
            for entry in entries:
                fh.write(json.dumps(entry) + "\n")
        return len(entries)

    def reset(self) -> None:
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.reset()

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()


def load_snapshot(path) -> dict:
    """Read a file written by :meth:`MetricsRegistry.snapshot_to_jsonl`.

    Validates the schema header (clear errors on a foreign or
    newer-version file, like ``datasets.load_dataset``) and returns
    ``{name: entry}`` where each entry carries its ``type`` plus the raw
    values; rebuild histograms with :meth:`Histogram.from_entry`.
    """
    with open(path, "r", encoding="utf-8") as fh:
        lines = [line for line in (raw.strip() for raw in fh) if line]
    if not lines:
        raise ValueError(f"{path}: empty file, not a metrics snapshot")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: header is not JSON: {exc}") from None
    if not isinstance(header, dict) or header.get("format") != SNAPSHOT_FORMAT:
        raise ValueError(
            f"{path}: not a {SNAPSHOT_FORMAT} file "
            f"(header {header!r})"
        )
    version = header.get("version")
    if version != SNAPSHOT_VERSION:
        raise ValueError(
            f"{path}: snapshot version {version!r} "
            f"(this build reads version {SNAPSHOT_VERSION}); "
            f"re-archive with the current code"
        )
    out: dict = {}
    for lineno, line in enumerate(lines[1:], start=2):
        entry = json.loads(line)
        if "name" not in entry or entry.get("type") not in (
                "counter", "gauge", "histogram"):
            raise ValueError(
                f"{path}:{lineno}: malformed metric entry {entry!r}"
            )
        out[entry["name"]] = entry
    declared = header.get("metrics")
    if declared is not None and declared != len(out):
        raise ValueError(
            f"{path}: header declares {declared} metrics, found {len(out)} "
            f"(truncated file?)"
        )
    return out


_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _DEFAULT
