"""Counters, gauges and fixed-bucket histograms with a default registry.

The histogram is the workhorse: the streaming detector records one
latency sample per inference window, and the profile report summarises
them as p50/p95/p99 against the real-time deadline.  Buckets are fixed at
construction (geometric by default), so memory stays O(buckets) no matter
how long the detector streams — the same discipline an MCU firmware
counter would use.
"""

from __future__ import annotations

import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "default_latency_buckets",
]


class Counter:
    """Monotonically increasing count (thread-safe)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up; use a Gauge instead")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge:
    """Last-written value (thread-safe)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


def default_latency_buckets() -> tuple:
    """Geometric edges (×2) from 1e-3 to 1e5 — in ms, that is 1 µs…100 s."""
    edges = []
    edge = 1e-3
    while edge < 1e5:
        edges.append(edge)
        edge *= 2.0
    return tuple(edges)


class Histogram:
    """Fixed-bucket histogram with percentile summaries.

    ``buckets`` is an increasing sequence of upper edges; values above the
    last edge land in an overflow bucket whose percentile estimate is the
    observed maximum.  Percentiles interpolate linearly inside a bucket,
    clamped to the observed min/max so tiny sample counts stay sane.
    """

    def __init__(self, buckets=None):
        edges = tuple(float(b) for b in (buckets or default_latency_buckets()))
        if not edges or any(later <= earlier
                            for later, earlier in zip(edges[1:], edges)):
            raise ValueError("buckets must be strictly increasing and non-empty")
        self.edges = edges
        self._lock = threading.Lock()
        self._counts = [0] * (len(edges) + 1)  # +1 = overflow
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)
            for i, edge in enumerate(self.edges):
                if value <= edge:
                    self._counts[i] += 1
                    return
            self._counts[-1] += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """Bucket-interpolated percentile; ``q`` in [0, 100]."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        with self._lock:
            if self._count == 0:
                return 0.0
            target = q / 100.0 * self._count
            cumulative = 0
            for i, bucket_count in enumerate(self._counts):
                if bucket_count == 0:
                    continue
                if cumulative + bucket_count >= target:
                    if i >= len(self.edges):  # overflow bucket
                        return self._max
                    lower = self.edges[i - 1] if i > 0 else min(self._min, self.edges[i])
                    upper = self.edges[i]
                    frac = (target - cumulative) / bucket_count
                    value = lower + frac * (upper - lower)
                    return min(max(value, self._min), self._max)
                cumulative += bucket_count
            return self._max

    def summary(self) -> dict:
        """count / mean / min / max / p50 / p95 / p99 in one dict."""
        with self._lock:
            count, total = self._count, self._sum
            lo = self._min if count else 0.0
            hi = self._max if count else 0.0
        return {
            "count": count,
            "mean": total / count if count else 0.0,
            "min": lo,
            "max": hi,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
        }

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.edges) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = float("inf")
            self._max = float("-inf")


class MetricsRegistry:
    """Named metrics with get-or-create semantics (thread-safe)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, object] = {}

    def _get_or_create(self, name: str, cls, factory):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = factory()
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} is a {type(metric).__name__}, "
                    f"not a {cls.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, Gauge)

    def histogram(self, name: str, buckets=None) -> Histogram:
        return self._get_or_create(
            name, Histogram, lambda: Histogram(buckets=buckets)
        )

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> dict:
        """Plain-dict view: counters/gauges → value, histograms → summary."""
        with self._lock:
            metrics = dict(self._metrics)
        out = {}
        for name in sorted(metrics):
            metric = metrics[name]
            if isinstance(metric, Histogram):
                out[name] = metric.summary()
            else:
                out[name] = metric.value
        return out

    def reset(self) -> None:
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.reset()

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()


_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _DEFAULT
