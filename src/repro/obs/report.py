"""Render collected spans as a tree with per-stage totals.

Repeated spans at the same path (e.g. ``fit/epoch`` once per epoch) are
aggregated into one line with a call count, so the tree stays readable no
matter how long the run was.
"""

from __future__ import annotations

__all__ = ["aggregate_spans", "format_span_tree"]


def aggregate_spans(records) -> dict:
    """Group span records by path: ``{path: {...totals...}}``.

    Returns, per path: ``calls``, ``total_s``, ``max_s``, ``depth``,
    ``name``, ``first_start_s`` (for stable ordering) and ``parent`` path.
    """
    # Span names may themselves contain slashes ("pipeline/build_kfall"),
    # so parent paths come from parent_id, not from splitting the path.
    path_by_id = {record.span_id: record.path for record in records}
    stages: dict[str, dict] = {}
    for record in records:
        stage = stages.get(record.path)
        if stage is None:
            parent = path_by_id.get(record.parent_id)
            stage = stages[record.path] = {
                "name": record.name,
                "depth": record.depth,
                "parent": parent,
                "calls": 0,
                "total_s": 0.0,
                "max_s": 0.0,
                "first_start_s": record.start_s,
            }
        stage["calls"] += 1
        stage["total_s"] += record.duration_s
        stage["max_s"] = max(stage["max_s"], record.duration_s)
        stage["first_start_s"] = min(stage["first_start_s"], record.start_s)
    return stages


def format_span_tree(records, title: str | None = None) -> str:
    """ASCII tree of aggregated spans with totals and call counts."""
    stages = aggregate_spans(records)
    if not stages:
        return "(no spans recorded — is tracing enabled?)"

    children: dict = {}
    roots = []
    for path, stage in stages.items():
        parent = stage["parent"]
        if parent in stages:
            children.setdefault(parent, []).append(path)
        else:
            roots.append(path)
    for sibling_paths in children.values():
        sibling_paths.sort(key=lambda p: stages[p]["first_start_s"])
    roots.sort(key=lambda p: stages[p]["first_start_s"])

    total_s = sum(stages[p]["total_s"] for p in roots) or 1.0
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{'stage':44s}{'total':>10s}{'calls':>7s}{'share':>7s}")
    lines.append("-" * 68)

    def _emit(path: str, depth: int) -> None:
        stage = stages[path]
        label = ("  " * depth) + stage["name"]
        share = 100.0 * stage["total_s"] / total_s
        lines.append(
            f"{label:44s}{1000.0 * stage['total_s']:8.1f}ms"
            f"{stage['calls']:>7d}{share:6.1f}%"
        )
        for child in children.get(path, ()):
            _emit(child, depth + 1)

    for root in roots:
        _emit(root, 0)
    return "\n".join(lines)
