"""Zero-dependency tracing core: nestable spans on the monotonic clock.

The paper's contribution is a latency budget (4 ms inference inside a
150 ms airbag-inflation window), so the reproduction needs first-class
timing.  A :class:`Span` measures one stage with ``time.perf_counter``;
spans nest per thread, building slash-joined paths (``profile/dataset``)
that the profile report renders as a tree with per-stage totals.

Tracing is **off by default**: :func:`span` returns a shared no-op object
when the collector is disabled, so instrumented hot paths pay a single
attribute check.  Enable it explicitly::

    from repro import obs

    obs.enable_tracing()
    with obs.span("fit/epoch", epoch=3):
        ...
    obs.get_collector().export_jsonl("trace.jsonl")
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from dataclasses import dataclass, field, replace

__all__ = [
    "SpanRecord",
    "Span",
    "TraceCollector",
    "get_collector",
    "span",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "clear_trace",
    "load_jsonl",
]


@dataclass
class SpanRecord:
    """One finished span, as stored by the collector."""

    name: str
    path: str
    depth: int
    start_s: float
    duration_s: float
    span_id: int
    parent_id: int | None
    thread: int
    attrs: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "path": self.path,
            "depth": self.depth,
            "start_s": round(self.start_s, 9),
            "duration_s": round(self.duration_s, 9),
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread": self.thread,
            "attrs": self.attrs,
        }

    @classmethod
    def from_json(cls, obj: dict) -> "SpanRecord":
        return cls(
            name=obj["name"],
            path=obj["path"],
            depth=int(obj["depth"]),
            start_s=float(obj["start_s"]),
            duration_s=float(obj["duration_s"]),
            span_id=int(obj["span_id"]),
            parent_id=(None if obj.get("parent_id") is None
                       else int(obj["parent_id"])),
            thread=int(obj.get("thread", 0)),
            attrs=dict(obj.get("attrs", {})),
        )


class _NullSpan:
    """Shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, key, value) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Span:
    """A live span; use as a context manager, annotate with :meth:`set`."""

    __slots__ = ("name", "attrs", "_collector", "_start", "_id", "_parent",
                 "_path", "_depth")

    def __init__(self, collector: "TraceCollector", name: str, attrs: dict):
        self.name = name
        self.attrs = attrs
        self._collector = collector
        self._start = 0.0
        self._id = 0
        self._parent: Span | None = None
        self._path = name
        self._depth = 0

    def set(self, key, value) -> None:
        """Attach an attribute (e.g. item counts) to the span record."""
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        stack = self._collector._stack()
        self._parent = stack[-1] if stack else None
        if self._parent is not None:
            self._path = f"{self._parent._path}/{self.name}"
            self._depth = self._parent._depth + 1
        self._id = self._collector._next_id()
        stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        duration = time.perf_counter() - self._start
        stack = self._collector._stack()
        if stack and stack[-1] is self:
            stack.pop()
        self._collector._record(
            SpanRecord(
                name=self.name,
                path=self._path,
                depth=self._depth,
                start_s=self._start - self._collector.epoch,
                duration_s=duration,
                span_id=self._id,
                parent_id=None if self._parent is None else self._parent._id,
                thread=threading.get_ident(),
                attrs=self.attrs,
            )
        )
        return False


class TraceCollector:
    """Thread-safe in-process store of finished spans.

    Each thread keeps its own active-span stack (spans nest within one
    thread); finished records land in a single list guarded by a lock.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = bool(enabled)
        self.epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._records: list[SpanRecord] = []
        self._local = threading.local()
        self._ids = itertools.count(1)

    # -- internals used by Span ---------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _next_id(self) -> int:
        with self._lock:
            return next(self._ids)

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)

    # -- public API ----------------------------------------------------
    def span(self, name: str, **attrs):
        """A nestable timing context; no-op while the collector is off."""
        if not self.enabled:
            return _NULL_SPAN
        return Span(self, name, attrs)

    def records(self) -> list[SpanRecord]:
        """Snapshot of the finished spans (oldest first)."""
        with self._lock:
            return list(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def adopt(self, records) -> int:
        """Append spans recorded by *another* collector (e.g. a worker
        process), remapping span ids into this collector's sequence so
        ids stay unique; parent links are preserved within the adopted
        batch.  Returns the number of spans adopted.
        """
        records = list(records)
        with self._lock:
            mapping = {rec.span_id: next(self._ids) for rec in records}
        adopted = [
            replace(
                rec,
                span_id=mapping[rec.span_id],
                parent_id=(None if rec.parent_id is None
                           else mapping.get(rec.parent_id)),
            )
            for rec in records
        ]
        with self._lock:
            self._records.extend(adopted)
        return len(adopted)

    def export_jsonl(self, path) -> int:
        """Write one JSON object per span; returns the record count.

        The write is atomic (temp file + ``os.replace``), so a crash
        mid-export never leaves a truncated trace behind.
        """
        from ..utils import atomic_write

        records = self.records()
        with atomic_write(path) as fh:
            for record in records:
                fh.write(json.dumps(record.to_json()) + "\n")
        return len(records)


def load_jsonl(path) -> list[SpanRecord]:
    """Read spans back from a file written by :meth:`export_jsonl`."""
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(SpanRecord.from_json(json.loads(line)))
    return records


_DEFAULT = TraceCollector()


def get_collector() -> TraceCollector:
    """The process-wide default collector."""
    return _DEFAULT


def span(name: str, **attrs):
    """Open a span on the default collector (no-op unless tracing is on)."""
    if not _DEFAULT.enabled:
        return _NULL_SPAN
    return Span(_DEFAULT, name, attrs)


def enable_tracing() -> None:
    _DEFAULT.enabled = True


def disable_tracing() -> None:
    _DEFAULT.enabled = False


def tracing_enabled() -> bool:
    return _DEFAULT.enabled


def clear_trace() -> None:
    _DEFAULT.clear()
