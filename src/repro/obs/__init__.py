"""``repro.obs`` — tracing, metrics and logging for the reproduction.

The paper's claim is a *latency budget*: 4 ms inference on an STM32F722
inside the 150 ms airbag-inflation window.  This package is how the
reproduction measures itself against that budget — zero external
dependencies, off by default, negligible overhead when disabled.

Three small pieces:

* :mod:`repro.obs.trace` — nestable spans on the monotonic clock with a
  thread-safe collector and JSONL export;
* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket histograms
  (p50/p95/p99 summaries) behind a default registry;
* :mod:`repro.obs.log` — stdlib logging with a ``NullHandler`` on the
  ``repro`` root, so the library is silent unless the CLI asks for
  ``--verbose``.

Example — time a pipeline stage and summarise detector latency::

    from repro import obs

    obs.enable_tracing()
    with obs.span("pipeline/build", subjects=6) as sp:
        dataset = build_merged_dataset(kfall_subjects=3,
                                       selfcollected_subjects=3)
        sp.set("recordings", len(dataset))

    hist = obs.get_registry().histogram("detector/latency_ms")
    hist.observe(1.8)
    hist.observe(2.4)
    print(hist.summary()["p95"])                  # bucketed p95 estimate
    print(obs.format_span_tree(obs.get_collector().records()))
    obs.get_collector().export_jsonl("trace.jsonl")

``repro profile`` (the CLI subcommand) wires all of this together for a
full pipeline → train → streaming-detector workload.
"""

from .export import MetricsSampler, metric_to_family, render_exposition
from .flight import (
    TRIGGERS,
    FlightConfig,
    FlightRecorder,
    Incident,
    load_incident,
    render_replay_report,
    replay_incident,
)
from .log import configure_logging, get_logger
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_latency_buckets,
    get_registry,
    load_snapshot,
)
from .report import aggregate_spans, format_span_tree
from .slo import (
    STAGES,
    BurnRateRule,
    SLOConfig,
    SLOObjective,
    SLOTracker,
    StageTimer,
    stage_attribution,
)
from .trace import (
    Span,
    SpanRecord,
    TraceCollector,
    clear_trace,
    disable_tracing,
    enable_tracing,
    get_collector,
    load_jsonl,
    span,
    tracing_enabled,
)

__all__ = [
    # trace
    "Span",
    "SpanRecord",
    "TraceCollector",
    "span",
    "get_collector",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "clear_trace",
    "load_jsonl",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "default_latency_buckets",
    "load_snapshot",
    # export
    "MetricsSampler",
    "render_exposition",
    "metric_to_family",
    # slo
    "STAGES",
    "StageTimer",
    "stage_attribution",
    "BurnRateRule",
    "SLOObjective",
    "SLOConfig",
    "SLOTracker",
    # flight
    "FlightConfig",
    "FlightRecorder",
    "Incident",
    "load_incident",
    "replay_incident",
    "render_replay_report",
    "TRIGGERS",
    # report
    "aggregate_spans",
    "format_span_tree",
    # logging
    "get_logger",
    "configure_logging",
]
