"""Stdlib-logging integration for the whole ``repro`` package.

Library code never prints: every module gets a child of the ``repro``
logger via :func:`get_logger`, and the package root carries a
``NullHandler`` so importing the library stays silent.  The CLI's
``--verbose`` flag calls :func:`configure_logging` to attach one stream
handler at INFO (or DEBUG with ``-vv``).
"""

from __future__ import annotations

import logging
import sys

__all__ = ["ROOT_LOGGER_NAME", "get_logger", "configure_logging"]

ROOT_LOGGER_NAME = "repro"

# Importing the library must not emit "No handlers could be found" noise.
logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())

_handler: logging.Handler | None = None


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger under the ``repro`` hierarchy.

    ``get_logger("repro.core.trainer")`` and ``get_logger("core.trainer")``
    return the same logger; with no name, the package root logger.
    """
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def configure_logging(level: int = logging.INFO, stream=None) -> logging.Logger:
    """Attach one stream handler to the ``repro`` root and set its level.

    Idempotent: calling again replaces the previous handler, so repeated
    CLI invocations in one process never duplicate output.
    """
    global _handler
    root = logging.getLogger(ROOT_LOGGER_NAME)
    if _handler is not None:
        root.removeHandler(_handler)
    _handler = logging.StreamHandler(stream or sys.stderr)
    _handler.setFormatter(
        logging.Formatter("%(asctime)s %(levelname)-7s %(name)s: %(message)s",
                          datefmt="%H:%M:%S")
    )
    root.addHandler(_handler)
    root.setLevel(level)
    return root
