"""Metrics time-series sampling and Prometheus-style text exposition.

Point-in-time ``registry.snapshot()`` answers "what is the p95 *now*";
a fleet operator needs "how has it evolved" and a scrape endpoint needs
the wire format.  Two pieces close that gap:

* :class:`MetricsSampler` — snapshots a registry on a fixed monotonic
  cadence into a bounded in-memory series (O(capacity) forever), either
  driven manually from a serving loop (``maybe_sample``) or by its own
  daemon thread (``start``/``stop``);
* :func:`render_exposition` — renders a registry as Prometheus text
  exposition: ``# TYPE`` lines, cumulative ``_bucket{le="..."}``
  histogram series ending at ``+Inf``, and the documented per-stream
  namespace ``<prefix>/stream/<id>/<metric>`` folded into one metric
  family per ``<metric>`` with a ``stream`` label, so 32 streams are 32
  labelled series rather than 32 metric families.

``scripts/check_metric_names.py --exposition`` lints the rendered text.
"""

from __future__ import annotations

import re
import threading
import time
from collections import deque

from .metrics import Counter, Histogram, MetricsRegistry, get_registry

__all__ = ["MetricsSampler", "render_exposition", "metric_to_family"]

#: ``<prefix>/stream/<id>/<metric>`` — the one documented namespace whose
#: middle segment is data-derived (see README "Serving").
_STREAM_RE = re.compile(r"^(?P<head>.+)/stream/(?P<id>[^/]+)/(?P<rest>.+)$")
#: ``<prefix>/stage/<stage>/<metric>`` — per-stage latency attribution
#: (the stage set is static: :data:`repro.obs.slo.STAGES`), folded into a
#: ``stage`` label so six stages are six series of one family.
_STAGE_RE = re.compile(r"^(?P<head>.+)/stage/(?P<id>[^/]+)/(?P<rest>.+)$")
#: ``slo/<objective>/<metric>`` — SLO event counters keyed by the (static)
#: objective names, folded into an ``slo`` label.
_SLO_RE = re.compile(r"^slo/(?P<id>[^/]+)/(?P<rest>.+)$")
_UNSAFE_RE = re.compile(r"[^a-z0-9_]")


class MetricsSampler:
    """Bounded time series of registry snapshots on a monotonic cadence.

    ``interval_s`` is the minimum spacing :meth:`maybe_sample` enforces;
    ``capacity`` bounds memory — the oldest snapshot is evicted first,
    the same ring-buffer discipline as the flight recorder.  ``now`` can
    be injected everywhere (e.g. stream time instead of wall time), which
    keeps sampled benchmarks deterministic.
    """

    def __init__(self, registry: MetricsRegistry | None = None,
                 interval_s: float = 1.0, capacity: int = 600, *,
                 clock=None):
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.registry = registry if registry is not None else get_registry()
        self.interval_s = float(interval_s)
        #: Read whenever ``now`` is not passed explicitly — injectable so
        #: samplers in tests never touch the wall clock.
        self.clock = clock if clock is not None else time.monotonic
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._samples: deque = deque(maxlen=capacity)
        self._taken = 0
        self._last_t: float | None = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def sample(self, now: float | None = None) -> dict:
        """Take one snapshot unconditionally; returns the stored entry."""
        if now is None:
            now = self.clock()
        entry = {"t": float(now), "metrics": self.registry.snapshot()}
        with self._lock:
            self._samples.append(entry)
            self._taken += 1
            self._last_t = entry["t"]
            self._cond.notify_all()
        return entry

    def wait_for_samples(self, n: int, timeout: float | None = None) -> bool:
        """Block until at least ``n`` samples have ever been taken.

        The deterministic way to test the background thread: wait on the
        sample condition instead of sleeping for a guessed interval.
        Returns False on timeout.
        """
        with self._cond:
            return self._cond.wait_for(lambda: self._taken >= n, timeout)

    def maybe_sample(self, now: float | None = None) -> dict | None:
        """Snapshot only when ``interval_s`` has elapsed since the last
        one — the hook a serving loop calls every round."""
        if now is None:
            now = self.clock()
        with self._lock:
            due = (self._last_t is None
                   or now - self._last_t >= self.interval_s)
        return self.sample(now) if due else None

    def snapshots(self) -> list:
        """Oldest-first copy of the retained snapshots."""
        with self._lock:
            return list(self._samples)

    def series(self, name: str, field: str | None = None) -> list:
        """Extract one metric as ``(t, value)`` pairs across the series.

        ``field`` selects inside a histogram snapshot (e.g. ``"p95"``);
        snapshots missing the metric are skipped, so a series is well
        defined even for metrics created mid-run.
        """
        out = []
        for entry in self.snapshots():
            value = entry["metrics"].get(name)
            if value is None:
                continue
            if field is not None:
                if not isinstance(value, dict) or field not in value:
                    continue
                value = value[field]
            out.append((entry["t"], value))
        return out

    # -- optional background cadence -----------------------------------
    def start(self) -> None:
        """Sample from a daemon thread every ``interval_s`` until
        :meth:`stop`.  Manual ``sample``/``maybe_sample`` still work."""
        if self._thread is not None:
            raise RuntimeError("sampler thread already running")
        self._stop.clear()

        def _loop():
            while not self._stop.wait(self.interval_s):
                self.sample()

        self._thread = threading.Thread(
            target=_loop, name="repro-metrics-sampler", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None


def metric_to_family(name: str, namespace: str = "repro") -> tuple:
    """Map a registry metric name onto ``(family, labels)``.

    ``serve/stream/s007/health`` → ``("repro_serve_stream_health",
    {"stream": "s007"})``; any other name flattens slashes to
    underscores.  Characters outside ``[a-z0-9_]`` are replaced so the
    family always satisfies the exposition lint, whatever the stream id
    contains (the raw id survives in the label value).
    """
    match = _STREAM_RE.match(name)
    stage = _STAGE_RE.match(name)
    slo = _SLO_RE.match(name)
    if match:
        flat = f"{match.group('head')}/stream/{match.group('rest')}"
        labels = {"stream": match.group("id")}
    elif stage:
        flat = f"{stage.group('head')}/stage/{stage.group('rest')}"
        labels = {"stage": stage.group("id")}
    elif slo:
        flat = f"slo/{slo.group('rest')}"
        labels = {"slo": slo.group("id")}
    else:
        flat = name
        labels = {}
    family = _UNSAFE_RE.sub("_", f"{namespace}/{flat}".lower().replace("/", "_"))
    return family, labels


def _fmt_value(value) -> str:
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _fmt_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{_escape_label(value)}"'
                     for key, value in sorted(labels.items()))
    return "{" + inner + "}"


def render_exposition(registry: MetricsRegistry | None = None, *,
                      namespace: str = "repro",
                      extra: dict | None = None) -> str:
    """Render a registry as Prometheus text exposition.

    ``extra`` merges additional ``{name: metric_object}`` series that do
    not live in the registry — e.g. the serve engine's fleet-aggregated
    (merged) latency histogram.  Same-family series (the per-stream
    namespace) share one ``# TYPE`` line; a family collected at two
    different metric types is a naming bug and raises.
    """
    registry = registry if registry is not None else get_registry()
    metrics = registry.metrics()
    if extra:
        metrics = {**metrics, **extra}
    families: dict = {}
    for name in sorted(metrics):
        metric = metrics[name]
        family, labels = metric_to_family(name, namespace)
        if isinstance(metric, Histogram):
            kind = "histogram"
        elif isinstance(metric, Counter):
            kind = "counter"
        else:
            kind = "gauge"
        entry = families.setdefault(family, {"type": kind, "series": []})
        if entry["type"] != kind:
            raise ValueError(
                f"metric family {family!r} rendered as both "
                f"{entry['type']} and {kind}; fix the metric names"
            )
        entry["series"].append((labels, metric))
    lines = []
    for family in sorted(families):
        entry = families[family]
        lines.append(f"# TYPE {family} {entry['type']}")
        for labels, metric in entry["series"]:
            if entry["type"] == "histogram":
                snap = metric.snapshot()
                for edge, count in snap["buckets"]:
                    le = "+Inf" if edge is None else _fmt_value(edge)
                    bucket_labels = dict(labels, le=le)
                    lines.append(
                        f"{family}_bucket{_fmt_labels(bucket_labels)} "
                        f"{count}"
                    )
                lines.append(f"{family}_sum{_fmt_labels(labels)} "
                             f"{_fmt_value(snap['sum'])}")
                lines.append(f"{family}_count{_fmt_labels(labels)} "
                             f"{snap['count']}")
            else:
                lines.append(f"{family}{_fmt_labels(labels)} "
                             f"{_fmt_value(metric.value)}")
    return "\n".join(lines) + "\n"
