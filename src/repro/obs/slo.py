"""SLOs: per-stage latency-budget attribution and burn-rate alerting.

The paper's whole contract is a hard real-time budget — the airbag takes
150 ms to inflate, so every millisecond a window spends in the pipeline
is subtracted from the reaction margin.  Plain latency histograms say
*that* a deadline was missed; this module says *which stage spent the
budget* and *whether the fleet is trending toward violation* before a
user feels it:

:class:`StageTimer`
    Per-detector wall-clock attribution across the streaming pipeline's
    stages (:data:`STAGES`): ingest/repair, orientation fusion, SOS
    filtering, window assembly, CNN inference, fallback+decision.  Stage
    costs accumulate between window inferences and flush into per-stage
    histograms on every :meth:`~repro.core.detector.FallDetector.complete`,
    so one observation per stage per window.  The end-to-end histogram
    records the *sum* of the flushed stages — attribution sums to the
    recorded end-to-end latency exactly, by construction.  All histograms
    live off-registry (plain attributes, like ``FallDetector.latency``)
    so enabling timing cannot perturb the ``push_block ≡ push_collect``
    bit-identity suite, which compares registry snapshots.

:class:`SLOConfig` / :class:`SLOTracker`
    Counting SLOs over the window stream.  A percentile objective is
    expressed as a bad-event ratio ("p99 window latency ≤ 150 ms" ⟺
    "fraction of windows slower than 150 ms ≤ 1 %"), which makes error
    budgets and burn rates additive across a fleet.  The tracker keeps
    time-bucketed good/bad counts, evaluates Google-SRE-style
    multi-window **burn rates** (a fast-burn rule over a short+long
    window pair pages at ``critical``; a slow-burn rule tickets at
    ``suspect``) and raises/resolves the alerts through an
    :class:`~repro.alerts.AlertManager`.  Clocks are injectable and
    every ``record``/``evaluate`` accepts an explicit ``now`` — the
    serving engine drives the tracker on *stream* time, so burn-rate
    behaviour is deterministic and testable without sleeping.

Event totals are also counted into the metrics registry
(``slo/<objective>/events`` and ``slo/<objective>/bad``), so fleet
workers ship them back with the rest of their registry and the front's
``merge_entries`` rolls them up by plain addition.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .metrics import Histogram

__all__ = [
    "STAGES",
    "StageTimer",
    "BurnRateRule",
    "SLOObjective",
    "SLOConfig",
    "SLOTracker",
    "stage_attribution",
]

#: Pipeline stages, in stream order.  ``ingest`` is repair/clamp/stuck
#: tracking plus timestamp/gap handling; ``fusion`` the complementary
#: orientation filter; ``filter`` the causal SOS low-pass; ``window``
#: channel scaling and window assembly; ``inference`` the CNN forward
#: pass (charged by ``complete``); ``decision`` the magnitude fallback,
#: health replay, staging and debounce logic.
STAGES = ("ingest", "fusion", "filter", "window", "inference", "decision")

#: Stage costs are microseconds-to-milliseconds per window; reuse the
#: detector's latency edges (10 µs resolution, ~84 s overflow tail).
_STAGE_BUCKETS_MS = tuple(0.01 * 2 ** i for i in range(23))


class StageTimer:
    """Accumulate-and-flush per-stage wall-clock attribution.

    The detector calls :meth:`add` with paired reads of ``clock`` around
    each stage's code (or :meth:`add_ms` for externally measured costs
    like the micro-batched inference latency); :meth:`flush` — called
    once per completed window — observes each stage's accumulated
    milliseconds into its histogram, observes their sum into the
    end-to-end histogram and clears the accumulators.  ``clock`` is
    injectable for deterministic tests; the default is
    ``time.perf_counter``.
    """

    def __init__(self, clock=None):
        self.clock = clock if clock is not None else time.perf_counter
        self.histograms = {
            stage: Histogram(buckets=_STAGE_BUCKETS_MS) for stage in STAGES
        }
        self.e2e = Histogram(buckets=_STAGE_BUCKETS_MS)
        #: Cumulative flushed milliseconds per stage (the attribution
        #: totals); pending accumulators hold the current window's costs.
        self.totals_ms = dict.fromkeys(STAGES, 0.0)
        self._pending_ms = dict.fromkeys(STAGES, 0.0)

    def add(self, stage: str, elapsed_s: float) -> None:
        """Accumulate ``elapsed_s`` seconds (a paired-clock difference)."""
        self._pending_ms[stage] += 1000.0 * elapsed_s

    def add_ms(self, stage: str, ms: float) -> None:
        """Accumulate an externally measured cost in milliseconds."""
        self._pending_ms[stage] += float(ms)

    def pending_ms(self, stage: str) -> float:
        """Milliseconds accumulated for ``stage`` since the last flush."""
        return self._pending_ms[stage]

    def discard_pending(self) -> None:
        """Drop unflushed accumulators (detector reset mid-window)."""
        self._pending_ms = dict.fromkeys(STAGES, 0.0)

    def flush(self) -> float:
        """Close out one window: observe every stage and their sum.

        Returns the end-to-end milliseconds observed.
        """
        total = 0.0
        for stage in STAGES:
            ms = self._pending_ms[stage]
            self.histograms[stage].observe(ms)
            self.totals_ms[stage] += ms
            total += ms
            self._pending_ms[stage] = 0.0
        self.e2e.observe(total)
        return total

    @property
    def windows(self) -> int:
        """Completed windows flushed through this timer."""
        return self.e2e.count

    def merge(self, other: "StageTimer") -> "StageTimer":
        """Fold another timer's *flushed* statistics in (fleet rollup)."""
        for stage in STAGES:
            self.histograms[stage].merge(other.histograms[stage])
            self.totals_ms[stage] += other.totals_ms[stage]
        self.e2e.merge(other.e2e)
        return self

    def report(self) -> dict:
        """Stage summaries plus end-to-end, for ``/slo`` and the CLI."""
        return {
            "windows": self.e2e.count,
            "e2e": self.e2e.summary(),
            "stages": {
                stage: dict(self.histograms[stage].summary(),
                            total_ms=self.totals_ms[stage])
                for stage in STAGES
            },
        }


def stage_attribution(report: dict, budget_ms: float) -> list[dict]:
    """Rows of a budget-attribution table from a :meth:`StageTimer.report`.

    One row per stage with its mean per-window cost, share of the
    measured end-to-end mean, and share of ``budget_ms`` — the "150 ms
    budget: filter 11 %, inference 52 %, …" view.
    """
    e2e_mean = report["e2e"]["mean"]
    rows = []
    for stage in STAGES:
        stats = report["stages"][stage]
        rows.append({
            "stage": stage,
            "mean_ms": stats["mean"],
            "p99_ms": stats["p99"],
            "total_ms": stats["total_ms"],
            "share_of_e2e": stats["mean"] / e2e_mean if e2e_mean else 0.0,
            "share_of_budget": stats["mean"] / budget_ms if budget_ms else 0.0,
        })
    return rows


@dataclass(frozen=True)
class BurnRateRule:
    """One Google-SRE multi-window burn-rate alerting rule.

    The rule fires when the burn rate — observed bad fraction divided by
    the objective's allowed bad fraction — exceeds ``threshold`` over
    *both* the short and the long window.  The short window makes the
    alert resolve quickly once the burn stops; the long window keeps a
    brief blip from paging.
    """

    name: str
    short_window_s: float
    long_window_s: float
    threshold: float
    severity: str = "critical"

    def __post_init__(self):
        if not 0 < self.short_window_s <= self.long_window_s:
            raise ValueError("need 0 < short_window_s <= long_window_s")
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")


@dataclass(frozen=True)
class SLOObjective:
    """One counting SLO: at most ``bad_fraction`` of events may be bad."""

    name: str
    description: str
    #: Allowed bad-event fraction, e.g. 0.01 for "p99 ≤ threshold".
    bad_fraction: float
    #: For latency objectives: the per-window threshold in milliseconds;
    #: ``None`` for event objectives fed a boolean (deadline misses).
    threshold_ms: float | None = None

    def __post_init__(self):
        if not 0 < self.bad_fraction < 1:
            raise ValueError("bad_fraction must be in (0, 1)")


@dataclass(frozen=True)
class SLOConfig:
    """Objectives, burn-rate rules and bookkeeping for a tracker.

    Defaults encode the paper's contract: the p99 of end-to-end window
    latency must stay under the 150 ms inflation budget (≤ 1 % of
    windows may exceed it), and at most 0.1 % of windows may miss the
    real-time inference deadline.  The default rules are the classic SRE
    pairs scaled to streaming time: a fast burn (14.4×, 1 min / 10 min)
    pages at ``critical``; a slow burn (6×, 5 min / 1 h) tickets at
    ``suspect``.  Demos and tests shrink the windows rather than sleep.
    """

    latency_budget_ms: float = 150.0
    latency_bad_fraction: float = 0.01
    deadline_bad_fraction: float = 0.001
    fast_burn: BurnRateRule = field(default_factory=lambda: BurnRateRule(
        name="fast_burn", short_window_s=60.0, long_window_s=600.0,
        threshold=14.4, severity="critical"))
    slow_burn: BurnRateRule = field(default_factory=lambda: BurnRateRule(
        name="slow_burn", short_window_s=300.0, long_window_s=3600.0,
        threshold=6.0, severity="suspect"))
    #: Error budgets are accounted over this horizon.
    budget_window_s: float = 3600.0
    #: Good/bad counts are bucketed at this resolution; the deques hold
    #: at most ``horizon / bucket_s`` entries.
    bucket_s: float = 1.0
    #: Fewer total events than this in a rule's long window keeps the
    #: rule silent — burn rates over a handful of windows are noise.
    min_events: int = 10

    def __post_init__(self):
        if self.latency_budget_ms <= 0:
            raise ValueError("latency_budget_ms must be positive")
        if self.bucket_s <= 0:
            raise ValueError("bucket_s must be positive")
        if self.budget_window_s <= 0:
            raise ValueError("budget_window_s must be positive")

    @property
    def objectives(self) -> tuple[SLOObjective, ...]:
        return (
            SLOObjective(
                name="window_latency_p99",
                description=(f"p99 end-to-end window latency <= "
                             f"{self.latency_budget_ms:g} ms"),
                bad_fraction=self.latency_bad_fraction,
                threshold_ms=self.latency_budget_ms,
            ),
            SLOObjective(
                name="deadline_miss",
                description="window inference deadline-miss ratio",
                bad_fraction=self.deadline_bad_fraction,
            ),
        )

    @property
    def rules(self) -> tuple[BurnRateRule, ...]:
        return (self.fast_burn, self.slow_burn)


class _ObjectiveState:
    """Time-bucketed good/bad counts for one objective."""

    def __init__(self, objective: SLOObjective, horizon_s: float,
                 bucket_s: float):
        self.objective = objective
        self.bucket_s = bucket_s
        self.horizon_s = horizon_s
        #: ``[bucket_index, total, bad]`` triples, oldest first.
        self._buckets: list[list] = []
        self.events = 0
        self.bad = 0
        #: rule name -> True while that rule's alert is standing.
        self.burning: dict[str, bool] = {}

    def record(self, bad: bool, n: int, now: float) -> None:
        index = int(now // self.bucket_s)
        if self._buckets and self._buckets[-1][0] == index:
            slot = self._buckets[-1]
        else:
            slot = [index, 0, 0]
            self._buckets.append(slot)
        slot[1] += n
        self.events += n
        if bad:
            slot[2] += n
            self.bad += n
        self._prune(now)

    def _prune(self, now: float) -> None:
        cutoff = int((now - self.horizon_s) // self.bucket_s)
        while self._buckets and self._buckets[0][0] < cutoff:
            self._buckets.pop(0)

    def window_counts(self, window_s: float, now: float) -> tuple[int, int]:
        """``(total, bad)`` over the trailing ``window_s`` seconds."""
        cutoff = int((now - window_s) // self.bucket_s)
        total = bad = 0
        for index, n, b in reversed(self._buckets):
            if index < cutoff:
                break
            total += n
            bad += b
        return total, bad

    def burn_rate(self, window_s: float, now: float) -> float:
        total, bad = self.window_counts(window_s, now)
        if total == 0:
            return 0.0
        return (bad / total) / self.objective.bad_fraction


class SLOTracker:
    """Maintain objectives, error budgets and burn-rate alerts.

    ``record(...)`` feeds one batch of window completions; ``evaluate``
    re-checks every burn-rate rule and, when an :class:`AlertManager` is
    attached, raises (and later resolves) one alert per standing
    ``(objective, rule)`` pair under the subject
    ``slo/<objective>/<rule>``.  Both methods take an explicit ``now``
    (the serving engine passes stream time); without one the injectable
    ``clock`` is read.  Never raises out of ``record``/``evaluate`` —
    the manager's own ``_contain`` guards the alert path.
    """

    def __init__(self, config: SLOConfig | None = None, *,
                 registry=None, alerts=None, clock=None):
        self.config = config or SLOConfig()
        self.alerts = alerts
        self.clock = clock if clock is not None else time.monotonic
        self._registry = registry
        horizon = max(
            [self.config.budget_window_s]
            + [rule.long_window_s for rule in self.config.rules]
        )
        self._states = {
            obj.name: _ObjectiveState(obj, horizon, self.config.bucket_s)
            for obj in self.config.objectives
        }
        self.alerts_raised = 0
        self.alerts_resolved = 0

    def _count(self, objective: str, n: int, bad: bool) -> None:
        if self._registry is None:
            return
        self._registry.counter(f"slo/{objective}/events").inc(n)
        if bad:
            self._registry.counter(f"slo/{objective}/bad").inc(n)

    def record(self, *, latency_ms: float, deadline_miss: bool,
               n: int = 1, now: float | None = None) -> None:
        """Record ``n`` window completions sharing one measured latency.

        The micro-batching engine charges every window in a round the
        wall-clock of the whole batch, so one ``record`` per round with
        ``n = len(batch)`` is exact.
        """
        if n <= 0:
            return
        if now is None:
            now = self.clock()
        cfg = self.config
        latency_bad = latency_ms > cfg.latency_budget_ms
        self._states["window_latency_p99"].record(latency_bad, n, now)
        self._count("window_latency_p99", n, latency_bad)
        self._states["deadline_miss"].record(bool(deadline_miss), n, now)
        self._count("deadline_miss", n, bool(deadline_miss))

    def evaluate(self, now: float | None = None) -> list[dict]:
        """Re-check every burn-rate rule; returns state transitions.

        Each transition is ``{"subject", "severity", "burning"}``; alerts
        ride through the attached manager when one is present.
        """
        if now is None:
            now = self.clock()
        transitions = []
        for state in self._states.values():
            for rule in self.config.rules:
                total_long, _ = state.window_counts(rule.long_window_s, now)
                burning = (
                    total_long >= self.config.min_events
                    and state.burn_rate(rule.short_window_s, now)
                    > rule.threshold
                    and state.burn_rate(rule.long_window_s, now)
                    > rule.threshold
                )
                was = state.burning.get(rule.name, False)
                if burning == was:
                    continue
                state.burning[rule.name] = burning
                subject = f"slo/{state.objective.name}/{rule.name}"
                transitions.append({
                    "subject": subject,
                    "severity": rule.severity,
                    "burning": burning,
                })
                if self.alerts is None:
                    continue
                if burning:
                    self.alerts_raised += 1
                    self.alerts.raise_direct(
                        subject, t=now, severity=rule.severity,
                        source="slo",
                        message=(
                            f"{state.objective.description}: burn rate > "
                            f"{rule.threshold:g}x over "
                            f"{rule.short_window_s:g}s and "
                            f"{rule.long_window_s:g}s"
                        ),
                    )
                else:
                    self.alerts_resolved += 1
                    self.alerts.resolve_direct(subject, t=now)
        return transitions

    def report(self, now: float | None = None) -> dict:
        """Error-budget and burn-rate status per objective."""
        if now is None:
            now = self.clock()
        cfg = self.config
        objectives = {}
        for state in self._states.values():
            obj = state.objective
            total, bad = state.window_counts(cfg.budget_window_s, now)
            allowed = total * obj.bad_fraction
            remaining = 1.0 - (bad / allowed) if allowed > 0 else 1.0
            objectives[obj.name] = {
                "description": obj.description,
                "objective_bad_fraction": obj.bad_fraction,
                "events": total,
                "bad": bad,
                "bad_fraction": bad / total if total else 0.0,
                "budget_remaining": remaining,
                "burn_rates": {
                    rule.name: {
                        "short": state.burn_rate(rule.short_window_s, now),
                        "long": state.burn_rate(rule.long_window_s, now),
                        "threshold": rule.threshold,
                        "severity": rule.severity,
                        "burning": state.burning.get(rule.name, False),
                    }
                    for rule in cfg.rules
                },
            }
        return {
            "budget_window_s": cfg.budget_window_s,
            "latency_budget_ms": cfg.latency_budget_ms,
            "alerts_raised": self.alerts_raised,
            "alerts_resolved": self.alerts_resolved,
            "objectives": objectives,
        }
