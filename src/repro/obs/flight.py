"""Flight recorder: always-on bounded capture with incident freeze + replay.

A deployed pre-impact detector that misfires must be debuggable from the
device's own record — the falling phase is over in ~300 ms and cannot be
re-run.  The :class:`FlightRecorder` therefore rides along with a
:class:`~repro.core.detector.FallDetector` (and every stream session in
the serving engine), continuously recording into a bounded ring buffer:

* every raw sample pushed (pre-repair values, so replay sees exactly what
  the device saw), its repaired 6-vector and the health state after it;
* every window inference (probability, charged latency, deadline
  outcome, a content hash of the staged window);
* every decision (CNN or fallback) and health transition;
* explicit resets and marks.

On a trigger — detection, fallback activation, deadline violation,
health transition, or an explicit :meth:`FlightRecorder.mark` — the
recorder keeps capturing for ``post_trigger_samples`` more samples, then
freezes the ring into a versioned JSONL *incident* (atomic write) whose
header carries the stream id, trigger, detector config + hash and a
metric snapshot.

:func:`replay_incident` turns any incident into a regression test: it
re-feeds the captured raw samples through a freshly constructed detector
with the recorded config, injects the *recorded* per-window latencies
(so deadline accounting and load shedding replay deterministically
instead of depending on the replaying machine's wall clock), and diffs
probabilities, decisions, health transitions and repaired samples
bit-for-bit against the record.  Replay is exact from the first recorded
``reset`` event (each evaluation trial starts with one); an incident cut
mid-stream without a reset replays on a best-effort basis and reports
where comparison started.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass

import numpy as np

from .log import get_logger

__all__ = [
    "FlightConfig",
    "FlightRecorder",
    "Incident",
    "load_incident",
    "replay_incident",
    "render_replay_report",
    "TRIGGERS",
]

_logger = get_logger(__name__)

INCIDENT_FORMAT = "repro-incident"
INCIDENT_VERSION = 1

#: Trigger reasons a recorder can freeze an incident on.
TRIGGERS = ("detection", "fallback", "deadline", "health", "mark")


@dataclass(frozen=True)
class FlightConfig:
    """Knobs for one :class:`FlightRecorder`."""

    #: Ring capacity in *events* (sample events dominate; at 100 Hz the
    #: default holds ~75 s of stream plus its windows and decisions).
    capacity: int = 8192
    #: Samples captured after a trigger before the incident freezes —
    #: the post-context showing what happened next.
    post_trigger_samples: int = 100
    #: Directory incident files land in (created on demand); ``None``
    #: keeps incidents in memory only (:attr:`FlightRecorder.incidents`).
    out_dir: str | None = None
    #: Subset of :data:`TRIGGERS` that arm a freeze.  An empty tuple
    #: records continuously but only freezes on an explicit ``flush()``
    #: (the replay harness runs its shadow recorder this way).
    triggers: tuple = TRIGGERS
    #: Hard cap on incidents per recorder — bounds disk for a detector
    #: stuck in a trigger-happy state.
    max_incidents: int = 32
    #: Cap on incident *files* across the whole ``out_dir`` — the fleet
    #: case, where many per-stream recorders share one directory and the
    #: per-recorder cap alone cannot bound the disk.  Oldest files are
    #: pruned first.  ``None`` leaves the directory unbounded.
    max_dir_incidents: int | None = None

    def __post_init__(self):
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")
        if self.post_trigger_samples < 0:
            raise ValueError("post_trigger_samples must be >= 0")
        if self.max_incidents < 1:
            raise ValueError("max_incidents must be >= 1")
        if self.max_dir_incidents is not None and self.max_dir_incidents < 1:
            raise ValueError("max_dir_incidents must be >= 1 or None")
        unknown = [t for t in self.triggers if t not in TRIGGERS]
        if unknown:
            raise ValueError(
                f"unknown trigger(s) {unknown}; valid: {list(TRIGGERS)}"
            )


@dataclass
class Incident:
    """One frozen capture: a schema header plus its event list."""

    meta: dict
    events: list
    path: str | None = None

    @property
    def trigger(self) -> str:
        return self.meta["trigger"]

    @property
    def stream_id(self) -> str:
        return self.meta["stream_id"]

    def samples(self) -> list:
        return [e for e in self.events if e["kind"] == "sample"]

    def windows(self) -> list:
        return [e for e in self.events if e["kind"] == "window"]

    def decisions(self) -> list:
        return [e for e in self.events if e["kind"] == "decision"]


def _config_sha256(config: dict) -> str:
    return hashlib.sha256(
        json.dumps(config, sort_keys=True, default=list).encode("utf-8")
    ).hexdigest()[:16]


def _window_sha(window: np.ndarray) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(window).tobytes()
    ).hexdigest()[:16]


class FlightRecorder:
    """Bounded event ring with trigger-driven incident freeze.

    One recorder serves one detector (attach it via
    ``FallDetector(..., recorder=...)``; the detector calls :meth:`bind`
    with its config).  Like the detector itself it is single-stream /
    single-thread: the serving engine gives every session its own.
    """

    def __init__(self, config: FlightConfig | None = None, *,
                 stream_id: str = "detector"):
        from collections import deque

        self.config = config or FlightConfig()
        self.stream_id = str(stream_id)
        self._ring: "deque" = deque(maxlen=self.config.capacity)
        self._pending: dict | None = None
        self._seq = 0
        self.suppressed_triggers = 0
        #: Frozen incidents, oldest first (also kept when written to disk).
        self.incidents: list[Incident] = []
        #: Paths of incident files written so far.
        self.incident_paths: list[str] = []
        self._bound: dict = {"config": None, "config_sha256": None,
                             "has_model": None}
        self._snapshot_fn = None

    # -- detector-facing hooks -----------------------------------------
    def bind(self, config: dict, has_model: bool, snapshot_fn=None) -> None:
        """Called by the owning detector: its config (as a plain dict),
        whether it has a CNN, and a callable returning a metric snapshot
        for incident headers."""
        self._bound = {
            "config": dict(config),
            "config_sha256": _config_sha256(config),
            "has_model": bool(has_model),
        }
        self._snapshot_fn = snapshot_fn

    def record_sample(self, index: int, t, accel, gyro, repaired,
                      anomaly: bool, health: str) -> None:
        self._append({
            "kind": "sample",
            "i": int(index),
            "t": None if t is None else float(t),
            "accel": [float(v) for v in accel],
            "gyro": [float(v) for v in gyro],
            "repaired": ([float(v) for v in repaired]
                         if repaired is not None else None),
            "anomaly": bool(anomaly),
            "health": health,
        }, is_sample=True)

    def record_window(self, index: int, prob, latency_ms, violation: bool,
                      failed: bool, window) -> None:
        self._append({
            "kind": "window",
            "i": int(index),
            "prob": None if prob is None else float(prob),
            "latency_ms": None if latency_ms is None else float(latency_ms),
            "violation": bool(violation),
            "failed": bool(failed),
            "window_sha": _window_sha(window),
        })
        if violation:
            self.trigger("deadline", index)

    def record_decision(self, detection) -> None:
        self._append({
            "kind": "decision",
            "i": int(detection.sample_index),
            "t": float(detection.time_s),
            "prob": float(detection.probability),
            "source": detection.source,
        })
        self.trigger(
            "fallback" if detection.source == "fallback" else "detection",
            detection.sample_index,
        )

    def record_health(self, index: int, old: str, new: str) -> None:
        self._append({"kind": "health", "i": int(index),
                      "from": old, "to": new})
        self.trigger("health", index)

    def note_reset(self) -> None:
        """A full detector reset — the point replay is exact from.

        Events before a reset belong to a different stream epoch (the
        detector forgot them too), so any pending capture freezes now and
        the ring is cleared: every frozen incident then replays from
        clean detector state, however long the previous trial was.
        """
        if self._pending is not None:
            self._freeze()
        self._ring.clear()
        self._append({"kind": "reset"})

    def mark(self, label: str = "mark") -> None:
        """Explicit operator trigger (e.g. 'the user reported a fall')."""
        self._append({"kind": "mark", "label": str(label)})
        self.trigger("mark")

    # -- trigger machinery ---------------------------------------------
    def trigger(self, reason: str, index: int | None = None) -> None:
        if reason not in self.config.triggers:
            return
        if len(self.incidents) >= self.config.max_incidents:
            self.suppressed_triggers += 1
            return
        if self._pending is not None:
            self._pending["extra_triggers"].append(reason)
            return
        self._pending = {
            "trigger": reason,
            "trigger_index": None if index is None else int(index),
            "left": self.config.post_trigger_samples,
            "extra_triggers": [],
        }
        if self._pending["left"] == 0:
            self._freeze()

    def flush(self) -> Incident | None:
        """Freeze a pending capture immediately (end of run / shutdown),
        without waiting out the remaining post-trigger samples."""
        if self._pending is None:
            return None
        return self._freeze()

    @property
    def pending(self) -> bool:
        return self._pending is not None

    def events(self) -> list:
        """Copy of the live ring (oldest first)."""
        return list(self._ring)

    # -- internals ------------------------------------------------------
    def _append(self, event: dict, is_sample: bool = False) -> None:
        self._ring.append(event)
        if is_sample and self._pending is not None:
            self._pending["left"] -= 1
            if self._pending["left"] <= 0:
                self._freeze()

    def _freeze(self) -> Incident:
        pending, self._pending = self._pending, None
        events = list(self._ring)
        meta = {
            "format": INCIDENT_FORMAT,
            "version": INCIDENT_VERSION,
            "stream_id": self.stream_id,
            "seq": self._seq,
            "trigger": pending["trigger"],
            "trigger_index": pending["trigger_index"],
            "extra_triggers": pending["extra_triggers"],
            "events": len(events),
            "unix_time": time.time(),
            "config": self._bound["config"],
            "config_sha256": self._bound["config_sha256"],
            "has_model": self._bound["has_model"],
            "metrics": self._snapshot_fn() if self._snapshot_fn else None,
        }
        incident = Incident(meta=meta, events=events)
        self._seq += 1
        if self.config.out_dir is not None:
            incident.path = self._write(incident)
            self.incident_paths.append(incident.path)
        self.incidents.append(incident)
        _logger.info(
            "flight recorder froze incident %d for %s (trigger=%s, "
            "%d events)%s", meta["seq"], self.stream_id, meta["trigger"],
            len(events), f" -> {incident.path}" if incident.path else "",
        )
        return incident

    def _write(self, incident: Incident) -> str:
        from ..utils import atomic_write

        out_dir = self.config.out_dir
        os.makedirs(out_dir, exist_ok=True)
        safe = "".join(c if c.isalnum() or c in "-_" else "_"
                       for c in self.stream_id)
        name = (f"incident-{safe}-{incident.meta['seq']:03d}-"
                f"{incident.meta['trigger']}.jsonl")
        path = os.path.join(out_dir, name)
        with atomic_write(path) as fh:
            fh.write(json.dumps(incident.meta) + "\n")
            for event in incident.events:
                fh.write(json.dumps(event) + "\n")
        if self.config.max_dir_incidents is not None:
            self._prune_dir(out_dir, keep=path)
        return path

    def _prune_dir(self, out_dir: str, *, keep: str) -> None:
        """Drop the oldest incident files beyond ``max_dir_incidents``.

        Age is modification time (name as tie-break, so the order is
        total even on coarse filesystem clocks); the file just written
        is never pruned — a recorder must not erase its own incident.
        """
        entries = []
        with os.scandir(out_dir) as it:
            for entry in it:
                if (entry.is_file() and entry.name.startswith("incident-")
                        and entry.name.endswith(".jsonl")):
                    entries.append((entry.stat().st_mtime, entry.name,
                                    entry.path))
        excess = len(entries) - self.config.max_dir_incidents
        if excess <= 0:
            return
        keep = os.path.abspath(keep)
        for _, _, victim in sorted(entries)[:excess]:
            if os.path.abspath(victim) == keep:
                continue
            try:
                os.remove(victim)
                _logger.info("pruned incident file %s "
                             "(directory cap %d)", victim,
                             self.config.max_dir_incidents)
            except OSError:  # pragma: no cover - racing pruners
                _logger.warning("could not prune %s", victim,
                                exc_info=True)


def load_incident(path) -> Incident:
    """Read an incident file back; validates format + version up front."""
    with open(path, "r", encoding="utf-8") as fh:
        lines = [line for line in (raw.strip() for raw in fh) if line]
    if not lines:
        raise ValueError(f"{path}: empty file, not an incident")
    try:
        meta = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: header is not JSON: {exc}") from None
    if not isinstance(meta, dict) or meta.get("format") != INCIDENT_FORMAT:
        raise ValueError(
            f"{path}: not a {INCIDENT_FORMAT} file (header {meta!r})"
        )
    if meta.get("version") != INCIDENT_VERSION:
        raise ValueError(
            f"{path}: incident version {meta.get('version')!r} "
            f"(this build reads version {INCIDENT_VERSION})"
        )
    events = [json.loads(line) for line in lines[1:]]
    if meta.get("events") is not None and meta["events"] != len(events):
        raise ValueError(
            f"{path}: header declares {meta['events']} events, "
            f"found {len(events)} (truncated file?)"
        )
    return Incident(meta=meta, events=events, path=os.fspath(path))


class _ReplayModelStub:
    """Placeholder satisfying ``model is not None`` during replay; the
    harness drives ``complete`` itself, so ``predict`` must never run."""

    def predict(self, x):  # pragma: no cover - defensive
        raise RuntimeError("replay stub model must not be called")


def replay_incident(incident, model="recorded") -> dict:
    """Re-run an incident through a fresh detector and diff the record.

    ``model="recorded"`` replays the recorded per-window probabilities
    (no CNN needed — probabilities trivially match and the diff
    exercises the DSP, staging cadence, decision and health logic); pass
    the actual model object to recompute probabilities live and verify
    them bit-for-bit too.  Recorded latencies are always injected, so
    deadline/shedding behaviour replays deterministically.  Returns a
    diff-count dict (``identical`` when every category is clean).
    """
    from ..core.detector import DetectorConfig, FallDetector
    from .metrics import MetricsRegistry

    if not isinstance(incident, Incident):
        incident = load_incident(incident)
    meta = incident.meta
    if meta.get("config") is None:
        raise ValueError("incident has no recorded detector config")
    cfg_dict = dict(meta["config"])
    cfg_dict["channel_scales"] = tuple(cfg_dict.get("channel_scales", ()))
    config = DetectorConfig(**cfg_dict)
    live_model = not isinstance(model, str)
    if live_model:
        model_obj = model
    else:
        if model != "recorded":
            raise ValueError(f"model must be 'recorded' or a model object, "
                             f"got {model!r}")
        model_obj = _ReplayModelStub() if meta["has_model"] else None

    events = incident.events
    resets = [i for i, e in enumerate(events) if e["kind"] == "reset"]
    start = resets[0] if resets else 0
    recorded = events[start:]

    shadow = FlightRecorder(
        FlightConfig(capacity=len(events) + 16, triggers=()),
        stream_id=f"replay:{meta['stream_id']}",
    )
    detector = FallDetector(
        model_obj, config, registry=MetricsRegistry(),
        metric_prefix="replay", recorder=shadow,
    )
    rec_windows = [e for e in recorded if e["kind"] == "window"]
    wi = 0
    structural_diffs = 0
    tail_windows = 0
    for event in recorded:
        kind = event["kind"]
        if kind == "reset":
            detector.reset()
        elif kind == "sample":
            _, requests = detector.push_collect(
                np.array(event["accel"]), np.array(event["gyro"]),
                t=event["t"],
            )
            for request in requests:
                if wi >= len(rec_windows):
                    # Deferred-path incidents freeze on a sample event;
                    # windows staged but not yet batch-completed at
                    # freeze time have no recorded event.  Leave them
                    # uncompleted, exactly as the live engine had them.
                    tail_windows += 1
                    continue
                rec = rec_windows[wi]
                wi += 1
                if rec["failed"]:
                    # The recorded inference raised; replay the error
                    # injection so shedding/fallback control flow matches.
                    detector.complete(request, None, failed=True)
                elif live_model:
                    prob = float(np.asarray(
                        model_obj.predict(request.window[None, :, :])
                    ).reshape(-1)[0])
                    detector.complete(request, prob,
                                      latency_ms=rec["latency_ms"])
                else:
                    detector.complete(request, rec["prob"],
                                      latency_ms=rec["latency_ms"])
    structural_diffs += len(rec_windows) - wi if wi < len(rec_windows) else 0
    replayed = shadow.events()
    result = _diff_events(recorded, replayed, meta, start,
                          live_model=live_model,
                          structural_diffs=structural_diffs)
    result["uncompleted_tail_windows"] = tail_windows
    return result


def _by_kind(events, kind):
    return [e for e in events if e["kind"] == kind]


def _diff_events(recorded, replayed, meta, start, *, live_model,
                 structural_diffs) -> dict:
    """Category-wise diff of two event streams.

    Categories are compared as independent ordered sequences because the
    inline path records a push's window/decision events *before* its
    sample event while the deferred path records them after — the
    within-category order is identical either way.
    """
    examples: list[str] = []

    def note(text):
        if len(examples) < 8:
            examples.append(text)

    rec_s, rep_s = _by_kind(recorded, "sample"), _by_kind(replayed, "sample")
    repaired_diffs = 0
    health_state_diffs = 0
    for a, b in zip(rec_s, rep_s):
        if a["repaired"] != b["repaired"]:
            repaired_diffs += 1
            note(f"sample {a['i']}: repaired values differ")
        if a["health"] != b["health"]:
            health_state_diffs += 1
            note(f"sample {a['i']}: health {a['health']} -> {b['health']}")
    if len(rec_s) != len(rep_s):
        structural_diffs += abs(len(rec_s) - len(rep_s))
        note(f"sample count {len(rec_s)} vs {len(rep_s)}")

    rec_w, rep_w = _by_kind(recorded, "window"), _by_kind(replayed, "window")
    probability_diffs = 0
    window_hash_diffs = 0
    deadline_diffs = 0
    for a, b in zip(rec_w, rep_w):
        pa, pb = a["prob"], b["prob"]
        same = (pa is None and pb is None) or (
            pa is not None and pb is not None
            and (pa == pb or (pa != pa and pb != pb))  # NaN == NaN here
        )
        if not same:
            probability_diffs += 1
            note(f"window @{a['i']}: prob {pa!r} vs {pb!r}")
        if a["window_sha"] != b["window_sha"]:
            window_hash_diffs += 1
            note(f"window @{a['i']}: staged window content differs")
        if a["violation"] != b["violation"]:
            deadline_diffs += 1
            note(f"window @{a['i']}: deadline outcome differs")

    rec_d = [(e["i"], e["source"], e["prob"])
             for e in _by_kind(recorded, "decision")]
    rep_d = [(e["i"], e["source"], e["prob"])
             for e in _by_kind(replayed, "decision")]
    decision_diffs = sum(a != b for a, b in zip(rec_d, rep_d))
    decision_diffs += abs(len(rec_d) - len(rep_d))
    if rec_d != rep_d:
        note(f"decisions: recorded {rec_d[:3]}... vs replayed {rep_d[:3]}...")

    rec_h = [(e["i"], e["from"], e["to"])
             for e in _by_kind(recorded, "health")]
    rep_h = [(e["i"], e["from"], e["to"])
             for e in _by_kind(replayed, "health")]
    health_diffs = sum(a != b for a, b in zip(rec_h, rep_h))
    health_diffs += abs(len(rec_h) - len(rep_h))
    if rec_h != rep_h:
        note(f"health transitions: {rec_h} vs {rep_h}")

    counts = {
        "probability_diffs": probability_diffs,
        "decision_diffs": decision_diffs,
        "health_transition_diffs": health_diffs,
        "health_state_diffs": health_state_diffs,
        "repaired_sample_diffs": repaired_diffs,
        "window_hash_diffs": window_hash_diffs,
        "deadline_diffs": deadline_diffs,
        "structural_diffs": structural_diffs,
    }
    return {
        "stream_id": meta["stream_id"],
        "trigger": meta["trigger"],
        "config_sha256": meta["config_sha256"],
        "model": "live" if live_model else "recorded",
        "exact_from_reset": start > 0 or any(
            e["kind"] == "reset" for e in recorded[:1]),
        "skipped_prefix_events": start,
        "events_compared": len(recorded),
        "samples": len(rec_s),
        "windows": len(rec_w),
        "decisions_recorded": len(rec_d),
        "decisions_replayed": len(rep_d),
        **counts,
        "identical": not any(counts.values()),
        "examples": examples,
    }


def render_replay_report(result: dict) -> str:
    """Human-readable replay verdict (callers decide where it goes)."""
    lines = [
        f"replay: incident from stream {result['stream_id']!r} "
        f"(trigger {result['trigger']}, config {result['config_sha256']})",
        "=" * 64,
        f"mode                 : {result['model']} probabilities",
        f"events compared      : {result['events_compared']} "
        f"({result['skipped_prefix_events']} pre-reset events skipped)",
        f"samples / windows    : {result['samples']} / {result['windows']}",
        f"decisions            : recorded {result['decisions_recorded']}, "
        f"replayed {result['decisions_replayed']}",
        "",
        f"probability diffs    : {result['probability_diffs']}",
        f"decision diffs       : {result['decision_diffs']}",
        f"health transition    : {result['health_transition_diffs']}",
        f"health state diffs   : {result['health_state_diffs']}",
        f"repaired sample diffs: {result['repaired_sample_diffs']}",
        f"window hash diffs    : {result['window_hash_diffs']}",
        f"deadline diffs       : {result['deadline_diffs']}",
        f"structural diffs     : {result['structural_diffs']}",
        "",
        ("REPLAY IDENTICAL — the incident reproduces bit-for-bit"
         if result["identical"] else
         "REPLAY DIVERGED — see examples below"),
    ]
    if result["examples"] and not result["identical"]:
        lines += [""] + [f"  - {e}" for e in result["examples"]]
    return "\n".join(lines)
