"""Time-series augmentation: time warping and window warping.

The paper augments only the *fall* segments of the training set with
"time warping and its window warping variant": time warping smoothly
stretches/compresses the time axis (Um et al., 2017), window warping
speeds a randomly selected sub-window up or down (Rashid & Louis, 2019).
Both operate on ``(time, channels)`` arrays and preserve length.
"""

from __future__ import annotations

import numpy as np

__all__ = ["time_warp", "window_warp", "jitter", "scale"]


def _check_segment(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=float)
    if x.ndim != 2:
        raise ValueError(f"expected (time, channels), got shape {x.shape}")
    if x.shape[0] < 4:
        raise ValueError(f"segment too short to warp: {x.shape[0]} samples")
    return x


def _resample_to(x: np.ndarray, positions: np.ndarray) -> np.ndarray:
    """Linear re-interpolation of every channel at fractional positions."""
    idx = np.arange(x.shape[0], dtype=float)
    out = np.empty((positions.size, x.shape[1]))
    for ch in range(x.shape[1]):
        out[:, ch] = np.interp(positions, idx, x[:, ch])
    return out


def time_warp(
    x: np.ndarray,
    rng: np.random.Generator,
    sigma: float = 0.2,
    knots: int = 4,
) -> np.ndarray:
    """Smooth random warping of the whole time axis (Um et al., 2017).

    A smooth random speed curve (positive spline through ``knots``
    log-normal control points) is integrated into a warp path; the signal
    is resampled along it.  ``sigma`` controls warp strength.
    """
    x = _check_segment(x)
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    if knots < 2:
        raise ValueError(f"knots must be >= 2, got {knots}")
    n = x.shape[0]
    # Smooth positive speed profile interpolated from random control points.
    control_t = np.linspace(0.0, n - 1.0, knots)
    control_v = rng.lognormal(mean=0.0, sigma=sigma, size=knots)
    speed = np.interp(np.arange(n, dtype=float), control_t, control_v)
    path = np.concatenate([[0.0], np.cumsum(speed[:-1])])
    # Normalise so the warp path spans the original support exactly.
    path *= (n - 1.0) / path[-1]
    return _resample_to(x, path)


def window_warp(
    x: np.ndarray,
    rng: np.random.Generator,
    window_ratio: float = 0.3,
    scales: tuple[float, ...] = (0.5, 2.0),
) -> np.ndarray:
    """Warp one random sub-window (Rashid & Louis, 2019).

    A window covering ``window_ratio`` of the segment is resampled by a
    factor drawn from ``scales`` (0.5 = sped up, 2.0 = slowed down); the
    whole series is then resampled back to the original length.
    """
    x = _check_segment(x)
    if not 0.0 < window_ratio < 1.0:
        raise ValueError(f"window_ratio must be in (0, 1), got {window_ratio}")
    n = x.shape[0]
    w = max(2, int(round(n * window_ratio)))
    start = int(rng.integers(0, n - w + 1))
    stop = start + w
    factor = float(rng.choice(np.asarray(scales, dtype=float)))
    if factor <= 0:
        raise ValueError(f"scale factors must be positive, got {factor}")
    warped_len = max(2, int(round(w * factor)))
    head = x[:start]
    mid = _resample_to(x[start:stop], np.linspace(0.0, w - 1.0, warped_len))
    tail = x[stop:]
    combined = np.concatenate([head, mid, tail], axis=0)
    return _resample_to(combined, np.linspace(0.0, combined.shape[0] - 1.0, n))


def jitter(x: np.ndarray, rng: np.random.Generator, sigma: float = 0.01) -> np.ndarray:
    """Additive white noise (extra augmentation beyond the paper's two)."""
    x = _check_segment(x)
    return x + rng.normal(0.0, sigma, size=x.shape)


def scale(x: np.ndarray, rng: np.random.Generator, sigma: float = 0.1) -> np.ndarray:
    """Random per-channel amplitude scaling (extra augmentation)."""
    x = _check_segment(x)
    factors = rng.normal(1.0, sigma, size=(1, x.shape[1]))
    return x * factors
