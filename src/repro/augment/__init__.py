"""``repro.augment`` — minority-class (fall) segment augmentation."""

from .warping import jitter, scale, time_warp, window_warp

__all__ = ["time_warp", "window_warp", "jitter", "scale"]
