"""Serve-path benchmark: micro-batched engine vs sequential detectors.

Replays K synthetic IMU streams two ways and reports the speedup:

* **sequential** — K independent :class:`~repro.core.detector.FallDetector`
  instances, each running its own batch-of-1 ``Model.predict`` per due
  window (the pre-``repro.serve`` deployment story);
* **batched** — one :class:`~repro.serve.ServeEngine` scheduling all K
  streams through shared batched forwards.

Two timings are reported for each arm.  End-to-end wall-clock includes
the per-sample DSP (filtering, fusion, validation) that every stream pays
regardless of how inference is scheduled; inference wall-clock isolates
the time spent inside ``Model.predict``, which is what batching
amortises.  A solo-engine reference run per stream additionally checks
that batching never changes results: every stream's detections must be
identical to the same stream served alone.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.detector import DetectorConfig, FallDetector
from ..obs.export import render_exposition
from ..obs.metrics import MetricsRegistry
from .engine import ServeConfig, ServeEngine

__all__ = ["ServeBenchConfig", "run_serve_benchmark", "render_serve_report"]

_G = 9.81


@dataclass(frozen=True)
class ServeBenchConfig:
    """Workload shape for :func:`run_serve_benchmark`."""

    n_streams: int = 32
    duration_s: float = 8.0
    seed: int = 7
    detector: DetectorConfig = field(default_factory=DetectorConfig)
    #: Call ``engine.step`` every this many samples per stream; 0 means
    #: once per detector hop (the smallest cadence that can batch a full
    #: window round across streams).
    step_every: int = 0

    def __post_init__(self):
        if self.n_streams < 1:
            raise ValueError("n_streams must be >= 1")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")


def synth_stream(stream_index: int, config: ServeBenchConfig):
    """One synthetic wearable recording: ``(accel_g, gyro_dps, t)``.

    Quiet activities-of-daily-living motion (gravity plus sway and sensor
    noise) with, on every third stream, one fall-like event: a free-fall
    dip toward 0 g followed by an impact spike and a rotation burst.
    """
    cfg = config.detector
    fs = cfg.fs
    n = int(round(config.duration_s * fs))
    rng = np.random.default_rng(config.seed * 7919 + stream_index)
    t = np.arange(n) / fs
    sway = 0.05 * np.sin(2.0 * np.pi * (0.4 + 0.05 * stream_index) * t)
    accel = rng.normal(0.0, 0.02, size=(n, 3))
    accel[:, 2] += 1.0 + sway          # gravity on z, in g
    accel[:, 0] += 0.5 * sway
    gyro = rng.normal(0.0, 2.0, size=(n, 3))
    if stream_index % 3 == 0 and n > int(fs):
        onset = int(n * (0.35 + 0.3 * rng.random()))
        dip = slice(onset, min(n, onset + int(0.3 * fs)))
        impact = slice(dip.stop, min(n, dip.stop + int(0.1 * fs)))
        accel[dip, 2] -= 0.85          # free fall: |a| -> ~0.15 g
        accel[impact] += rng.normal(0.0, 1.5, size=(impact.stop - impact.start, 3))
        accel[impact, 2] += 4.0        # impact spike
        gyro[dip] += rng.normal(0.0, 120.0, size=(dip.stop - dip.start, 3))
    return accel, gyro, t


def _collect(detections: dict, stream_id: str, detection) -> None:
    if detection is not None:
        detections.setdefault(stream_id, []).append(detection)


def _run_sequential(model, streams, config: ServeBenchConfig):
    """Baseline arm: independent inline detectors, batch-of-1 forwards."""
    detections: dict = {}
    inference_s = 0.0
    t0 = time.perf_counter()
    for stream_id, (accel, gyro, t) in streams.items():
        detector = FallDetector(
            model, config.detector, registry=MetricsRegistry(),
        )
        for i in range(len(t)):
            _collect(detections, stream_id,
                     detector.push(accel[i], gyro[i], t[i]))
        stats = detector.latency.summary()
        inference_s += stats["count"] * stats["mean"] / 1000.0
    wall_s = time.perf_counter() - t0
    return detections, wall_s, inference_s


def _run_engine(model, streams, config: ServeBenchConfig,
                stream_ids=None):
    """Engine arm: round-robin interleaved submits, stepped per hop."""
    if stream_ids is None:
        stream_ids = list(streams)
    serve_cfg = ServeConfig(detector=config.detector)
    engine = ServeEngine(model, serve_cfg, registry=MetricsRegistry())
    hop = config.step_every or config.detector.hop_samples
    n = max(len(t) for _, _, t in streams.values())
    detections: dict = {}
    t0 = time.perf_counter()
    for i in range(n):
        for stream_id in stream_ids:
            accel, gyro, t = streams[stream_id]
            if i < len(t):
                engine.submit(stream_id, accel[i], gyro[i], t[i])
        if (i + 1) % hop == 0:
            for stream_id, detection in engine.step():
                _collect(detections, stream_id, detection)
    for stream_id, detection in engine.step():
        _collect(detections, stream_id, detection)
    wall_s = time.perf_counter() - t0
    return detections, wall_s, engine


def run_serve_benchmark(model, config: ServeBenchConfig | None = None) -> dict:
    """Benchmark sequential vs batched serving; returns a report dict.

    Besides the two timed arms, every stream is replayed through a *solo*
    engine and its detections compared against the shared-engine run —
    ``mismatched_streams`` counts streams whose detections differ (must
    be zero: batching is not allowed to change results).
    """
    config = config or ServeBenchConfig()
    streams = {
        f"s{idx:03d}": synth_stream(idx, config)
        for idx in range(config.n_streams)
    }
    seq_detections, seq_wall_s, seq_infer_s = _run_sequential(
        model, streams, config)
    bat_detections, bat_wall_s, engine = _run_engine(model, streams, config)
    mismatched = []
    for stream_id in streams:
        solo_detections, _, _ = _run_engine(
            model, {stream_id: streams[stream_id]}, config)
        if (solo_detections.get(stream_id, [])
                != bat_detections.get(stream_id, [])):
            mismatched.append(stream_id)
    n_samples = sum(len(t) for _, _, t in streams.values())
    report = engine.report()
    # Scrape-format snapshot of the batched arm: per-stream series plus
    # the fleet-aggregated (merged-histogram) window latency.
    exposition = render_exposition(
        engine.registry,
        extra={"serve/fleet/window_latency_ms": engine.fleet_latency()},
    )
    return {
        "n_streams": config.n_streams,
        "duration_s": config.duration_s,
        "seed": config.seed,
        "n_samples": n_samples,
        "sequential_wall_s": seq_wall_s,
        "sequential_inference_s": seq_infer_s,
        "batched_wall_s": bat_wall_s,
        "batched_inference_s": engine.inference_seconds,
        "wall_speedup": seq_wall_s / bat_wall_s if bat_wall_s else 0.0,
        "inference_speedup": (seq_infer_s / engine.inference_seconds
                              if engine.inference_seconds else 0.0),
        "windows_inferred": report["windows_inferred"],
        "batches": report["batches"],
        "mean_batch_size": report["batch_size"]["mean"],
        "sequential_detections": sum(map(len, seq_detections.values())),
        "batched_detections": sum(map(len, bat_detections.values())),
        "mismatched_streams": mismatched,
        "engine_report": report,
        "exposition": exposition,
    }


def render_serve_report(report: dict) -> str:
    """Human-readable serve-bench summary (callers decide where it goes)."""
    lines = [
        "serve-bench: micro-batched multi-stream inference",
        "=" * 49,
        f"streams              : {report['n_streams']}",
        f"duration             : {report['duration_s']:.1f} s "
        f"({report['n_samples']} samples total, seed {report['seed']})",
        "",
        "                         sequential      batched",
        f"end-to-end wall      : {report['sequential_wall_s']:>9.3f} s "
        f"{report['batched_wall_s']:>9.3f} s   "
        f"({report['wall_speedup']:.2f}x)",
        f"inference wall       : {report['sequential_inference_s']:>9.3f} s "
        f"{report['batched_inference_s']:>9.3f} s   "
        f"({report['inference_speedup']:.2f}x)",
        "",
        f"windows inferred     : {report['windows_inferred']} "
        f"in {report['batches']} batches "
        f"(mean batch {report['mean_batch_size']:.1f})",
        f"detections           : sequential {report['sequential_detections']}, "
        f"batched {report['batched_detections']}",
        f"mismatched streams   : {len(report['mismatched_streams'])}"
        + (f" {report['mismatched_streams']}"
           if report["mismatched_streams"] else " (batching changed nothing)"),
    ]
    return "\n".join(lines)
