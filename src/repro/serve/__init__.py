"""``repro.serve`` — micro-batched multi-stream serving.

The paper's detector runs one stream on one wearable; a fleet backend
sees many streams at once.  This package schedules K concurrent streams
over a single window model: each :class:`StreamSession` keeps its own
filter / ring-buffer / health state (a hardened
:class:`~repro.core.detector.FallDetector` driven in deferred-inference
mode) while :class:`ServeEngine` collects due windows across sessions
into one batched ``Model.predict`` per round — batched under
:func:`repro.nn.batch_invariant` so every stream's detections are
byte-identical to a solo run regardless of batch composition.

:func:`run_serve_benchmark` replays synthetic streams through both the
sequential per-stream baseline and the engine and reports the speedup
(``repro serve-bench`` on the command line).
"""

from .bench import ServeBenchConfig, render_serve_report, run_serve_benchmark
from .dashboard import TailConfig, render_dashboard, run_tail, sparkline
from .engine import ServeConfig, ServeEngine
from .session import StreamSession

__all__ = [
    "ServeBenchConfig",
    "ServeConfig",
    "ServeEngine",
    "StreamSession",
    "TailConfig",
    "render_dashboard",
    "render_serve_report",
    "run_serve_benchmark",
    "run_tail",
    "sparkline",
]
