"""Micro-batched multi-stream inference engine.

The single-stream :class:`~repro.core.detector.FallDetector` costs one
batch-of-1 ``Model.predict`` per due window — N concurrent wearables cost
N full forwards.  :class:`ServeEngine` amortises that: it accepts
interleaved ``(stream_id, accel, gyro, t)`` samples into bounded
per-stream queues, advances every session's filter/ring-buffer state, and
collects *all* windows that come due across sessions into **one** batched
``Model.predict`` call per inference round.

Correctness contract
--------------------
* **Isolation** — every stream owns its full detector state; a stream
  feeding NaNs, gaps or garbage degrades only itself.  A model exception
  on a batch is retried per window so one poisoned window cannot take
  detections away from healthy streams, and a session whose detector
  breaks its never-raises promise is quarantined, not propagated.
* **Bitwise reproducibility** — batched forwards run under
  :func:`repro.nn.batch_invariant`, so a stream's probabilities (and
  therefore its detections) are byte-identical no matter which other
  streams share its batches; a solo run of the same stream through an
  engine reproduces them exactly.
* **Deadline pressure** — every window is charged the wall-clock of the
  whole batch it rode in (its result is not available any earlier).
  Sustained violations trip the per-stream detector's load shedding
  exactly like the single-stream path: that stream's CNN is shed and its
  :class:`~repro.core.detector.MagnitudeFallback` becomes authoritative
  until the retry probe succeeds, while other streams keep the CNN.

Throughput, batch-size/latency histograms, queue depths and per-stream
deadline violations are exported through :mod:`repro.obs`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..alerts import AlertConfig, AlertManager
from ..core.detector import Detection, DetectorConfig
from ..nn.config import batch_invariant
from ..obs import (
    FlightConfig,
    Histogram,
    SLOConfig,
    SLOTracker,
    StageTimer,
    get_logger,
    get_registry,
    stage_attribution,
)
from .session import StreamSession

__all__ = ["ServeConfig", "ServeEngine"]

_logger = get_logger(__name__)

#: Batch-size histogram edges: exact buckets for the small batches that
#: dominate, then powers of two up to 4096 windows.
_BATCH_BUCKETS = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096)
_LATENCY_BUCKETS_MS = tuple(0.01 * 2 ** i for i in range(23))


@dataclass(frozen=True)
class ServeConfig:
    """Engine-level knobs; per-stream behaviour lives in ``detector``."""

    detector: DetectorConfig = field(default_factory=DetectorConfig)
    #: Numeric backend for the window model: ``"float32"`` serves the
    #: float graph as-is; ``"int8"`` converts it once at engine
    #: construction (post-training quantization, needs ``calibration``
    #: windows unless the model is already a
    #: :class:`~repro.quant.QuantizedModel`) and routes every forward —
    #: batched rounds and the per-window retry path alike — through the
    #: batched integer kernels.
    backend: str = "float32"
    #: Bounded per-stream queue; when full the *oldest* sample is shed
    #: (freshest data wins — a pre-impact detector must not fall behind).
    queue_capacity: int = 512
    #: Hard cap on concurrent sessions; submits for new streams beyond it
    #: are rejected (and counted) instead of growing without bound.
    max_streams: int = 4096
    #: Run batched forwards under :func:`repro.nn.batch_invariant` so
    #: results are independent of batch composition.  Disable only when
    #: last-ulp reproducibility matters less than raw BLAS throughput.
    batch_invariant: bool = True
    metric_prefix: str = "serve"
    #: Give each stream its own metric namespace
    #: (``<prefix>/stream/<id>/...``).  Disable to share one namespace
    #: when stream cardinality would flood the registry.
    per_stream_metrics: bool = True
    #: Attach a :class:`repro.obs.FlightRecorder` with this config to
    #: every session, so incidents (detections, shedding, health flips,
    #: quarantines) freeze the stream's recent history to disk.  ``None``
    #: serves without flight recording.
    flight: FlightConfig | None = None
    #: Attach an :class:`repro.alerts.AlertManager` with this config:
    #: every detection feeds the per-stream escalation machines, alerts
    #: are deduped fleet-wide, demoted on bad stream health, persisted
    #: to the configured event store and exported as ``alerts/*``
    #: metrics.  ``None`` serves without the alert pipeline.
    alerts: AlertConfig | None = None
    #: SLO objectives + burn-rate policy (:class:`repro.obs.SLOConfig`).
    #: Armed by default — the tracker is a few counters per round; every
    #: window completion feeds the error budgets, and burn-rate alerts
    #: ride the attached :class:`~repro.alerts.AlertManager` (no-op
    #: without one).  ``None`` disables SLO tracking.
    slo: SLOConfig | None = field(default_factory=SLOConfig)

    def __post_init__(self):
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.max_streams < 1:
            raise ValueError("max_streams must be >= 1")
        if self.backend not in ("float32", "int8"):
            raise ValueError(
                f"backend must be 'float32' or 'int8', got {self.backend!r}"
            )


class ServeEngine:
    """Cross-stream micro-batching scheduler around one window model.

    Usage::

        engine = ServeEngine(model)
        for sample in telemetry:               # interleaved streams
            engine.submit(sample.stream_id, sample.accel, sample.gyro,
                          t=sample.t)
        for stream_id, detection in engine.step():   # drain + infer
            fire_airbag(stream_id, detection)
    """

    def __init__(self, model, config: ServeConfig | None = None, *,
                 registry=None, latency_clock=None, stage_clock=None,
                 calibration=None):
        if model is None:
            raise ValueError(
                "ServeEngine needs a window model; a fallback-only "
                "deployment does not benefit from batching"
            )
        self.config = config or ServeConfig()
        self.registry = registry if registry is not None else get_registry()
        self._sessions: dict[str, StreamSession] = {}
        cfg = self.config
        window_n = cfg.detector.window_samples
        self.model = self._resolve_backend(model, calibration, window_n)
        self._empty_batch = np.empty((0, window_n, 9))
        prefix = cfg.metric_prefix
        self.registry.gauge(f"{prefix}/backend_int8").set(
            1.0 if cfg.backend == "int8" else 0.0)
        self._batch_size_hist = self.registry.histogram(
            f"{prefix}/batch_size", buckets=_BATCH_BUCKETS)
        self._batch_latency_hist = self.registry.histogram(
            f"{prefix}/batch_latency_ms", buckets=_LATENCY_BUCKETS_MS)
        self._queue_depth_gauge = self.registry.gauge(f"{prefix}/queue_depth")
        self._active_gauge = self.registry.gauge(f"{prefix}/active_streams")
        # Hot-path totals accumulate as plain ints and sync to registry
        # counters once per step — per-sample lock traffic would tax the
        # very throughput this engine exists to buy.
        self.samples_in = 0
        self.dropped_samples = 0
        self.rejected_streams = 0
        self.windows_inferred = 0
        self.batches = 0
        self.batch_errors = 0
        self.stream_errors = 0
        self.detections = 0
        self._synced: dict[str, int] = {}
        self._inference_s = 0.0
        # Deepest any stream's queue got since the last step — bursty
        # submits between steps are otherwise invisible to the gauge.
        self._peak_queue_depth = 0
        #: Fleet alert pipeline (``None`` unless ``config.alerts``).
        self.alerts = (AlertManager(cfg.alerts, registry=self.registry)
                       if cfg.alerts is not None else None)
        # Injectable clocks: `latency_clock` times the batched forward
        # (swap in a synthetic clock to drive overload scenarios and
        # burn-rate tests deterministically); `stage_clock` reaches each
        # session's detector StageTimer.
        self._clock = (latency_clock if latency_clock is not None
                       else time.perf_counter)
        self._stage_clock = stage_clock
        #: SLO tracker (``None`` when ``config.slo`` is).  Driven on
        #: stream time, so burn-rate behaviour is deterministic.
        self.slo = (SLOTracker(cfg.slo, registry=self.registry,
                               alerts=self.alerts)
                    if cfg.slo is not None else None)
        self.rounds = 0
        #: Stream time of the latest completed step — the liveness stamp
        #: ``/healthz`` reports so "serving" and "stuck" look different.
        self.last_round_t: float | None = None
        self._latest_t: float | None = None

    # ------------------------------------------------------------------
    # backend
    # ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        """Numeric backend serving this engine's forwards."""
        return self.config.backend

    def _resolve_backend(self, model, calibration, window_n: int):
        """Materialize the configured backend's model, converting once.

        ``backend="int8"`` accepts either a float model plus
        ``calibration`` windows (converted here, post-training) or an
        already-converted :class:`~repro.quant.QuantizedModel` (so a
        pruned+quantized model can be served directly).  The integer
        kernels are batch-invariant by construction — no float matmul is
        involved — and this asserts it on a probe batch rather than
        trusting the construction.
        """
        if self.config.backend == "float32":
            return model
        from ..quant.qmodel import QuantizedModel

        if isinstance(model, QuantizedModel):
            quantized = model
        else:
            if calibration is None:
                raise ValueError(
                    "backend='int8' needs `calibration` windows to "
                    "convert the float model (or pass an already-"
                    "converted QuantizedModel)"
                )
            quantized = QuantizedModel.convert(
                model, np.asarray(calibration, dtype=np.float32))
        self._assert_batch_invariant(quantized, window_n)
        return quantized

    @staticmethod
    def _assert_batch_invariant(quantized, window_n: int) -> None:
        """Probe: batched int8 predictions must be bitwise equal to the
        same windows predicted one at a time."""
        rng = np.random.default_rng(0)
        probe = rng.normal(0.0, 1.0, size=(2, window_n, 9))
        together = quantized.predict(probe)
        singly = np.concatenate(
            [quantized.predict(probe[i : i + 1]) for i in range(len(probe))]
        )
        if not np.array_equal(together, singly):
            raise AssertionError(
                "int8 backend is not batch-invariant: batched probe "
                "predictions differ bitwise from solo predictions"
            )

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def session(self, stream_id: str) -> StreamSession:
        """Get or create the session for ``stream_id``."""
        session = self._sessions.get(stream_id)
        if session is None:
            if len(self._sessions) >= self.config.max_streams:
                raise KeyError(
                    f"stream limit reached ({self.config.max_streams}); "
                    f"cannot admit {stream_id!r}"
                )
            session = StreamSession(
                stream_id,
                self.model,
                self.config.detector,
                registry=self.registry,
                metric_prefix=f"{self.config.metric_prefix}/stream",
                per_stream_metrics=self.config.per_stream_metrics,
                flight=self.config.flight,
                stage_clock=self._stage_clock,
            )
            self._sessions[stream_id] = session
        return session

    def submit(self, stream_id: str, accel_g, gyro_dps,
               t: float | None = None) -> bool:
        """Enqueue one sample; False when it was shed or rejected.

        Never raises on load: an unknown stream beyond ``max_streams`` is
        rejected and counted, a full queue sheds its oldest sample, and a
        quarantined stream's samples are dropped.
        """
        session = self._sessions.get(stream_id)
        if session is None:
            try:
                session = self.session(stream_id)
            except KeyError:
                self.rejected_streams += 1
                return False
        if session.quarantined:
            self.dropped_samples += 1
            return False
        queue = session.queue
        if len(queue) >= self.config.queue_capacity:
            queue.popleft()
            session.dropped_samples += 1
            self.dropped_samples += 1
        queue.append((accel_g, gyro_dps, t))
        if len(queue) > self._peak_queue_depth:
            self._peak_queue_depth = len(queue)
        self.samples_in += 1
        if t is not None and (self._latest_t is None or t > self._latest_t):
            # Fleet stream clock: drives alert confirm-window expiry and
            # auto-resolve even on rounds with no detections.
            self._latest_t = float(t)
        return True

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def step(self) -> list[tuple[str, Detection]]:
        """Drain every queue and run the due windows in micro-batches.

        Each session's whole queue is ingested as one vectorized
        ``push_block`` (bit-identical to the per-sample loop with
        completes deferred to the block boundary), then one batched
        forward runs for all staged windows across streams; rounds repeat
        until every queue is empty.  The queue-depth gauge reports the
        deepest any stream's queue got since the previous step (burst
        peaks included), then settles to the post-drain depth so tail
        readers see steady-state 0 between bursts.  Returns
        ``(stream_id, detection)`` pairs in processing order.
        """
        detections: list[tuple[str, Detection]] = []
        sessions = self._sessions.values()
        depth = max((len(s.queue) for s in sessions), default=0)
        self._queue_depth_gauge.set(float(max(depth, self._peak_queue_depth)))
        self._peak_queue_depth = 0
        first_round = True
        while True:
            staged = self._advance_round(detections)
            if not staged and not first_round:
                break
            self._infer_batch(staged, detections)
            first_round = False
            if not staged:
                break
        self._queue_depth_gauge.set(
            float(max((len(s.queue) for s in sessions), default=0)))
        self.rounds += 1
        if self._latest_t is not None:
            self.last_round_t = self._latest_t
        if self.slo is not None:
            # Evaluate burn rates on stream time (falls back to the
            # tracker's own clock when no sample ever carried one).
            self.slo.evaluate(now=self._latest_t)
        if self.alerts is not None:
            self._feed_alerts(detections)
        self._sync_metrics()
        return detections

    def _advance_round(self, detections) -> list[StreamSession]:
        """Drain each session's queue as one vectorized block; returns
        the sessions that staged windows this round."""
        staged_sessions = []
        for session in self._sessions.values():
            if session.quarantined:
                session.queue.clear()
                continue
            if not session.queue:
                continue
            try:
                accel, gyro, t = session.drain_block()
                hits, requests = session.detector.push_block(accel, gyro, t)
            except Exception:
                self._quarantine(session)
                continue
            for hit in hits:
                session.detections += 1
                self.detections += 1
                detections.append((session.stream_id, hit))
            if requests:
                session.staged = requests
                staged_sessions.append(session)
        return staged_sessions

    def _infer_batch(self, staged_sessions, detections) -> None:
        """One batched forward for every staged window, then fan-out."""
        pairs = [(session, request) for session in staged_sessions
                 for request in session.staged]
        for session in staged_sessions:
            session.staged = []
        if pairs:
            batch = np.stack([request.window for _, request in pairs])
        else:
            batch = self._empty_batch
        t0 = self._clock()
        try:
            with batch_invariant(self.config.batch_invariant):
                out = np.asarray(self.model.predict(batch))
            # (k, 1) sigmoid outputs -> (k,).  reshape(-1) on the empty
            # batch relies on predict keeping the model's output shape
            # for zero-row input (reshape(0, -1) would be ambiguous).
            probs = (out.reshape(len(pairs), -1)[:, 0] if pairs
                     else out.reshape(-1))
        except Exception:
            self.batch_errors += 1
            _logger.exception(
                "batched inference raised for %d windows; retrying "
                "per window", len(pairs),
            )
            self._infer_singly(pairs, detections)
            return
        latency_ms = 1000.0 * (self._clock() - t0)
        self._inference_s += latency_ms / 1000.0
        self.batches += 1
        self.windows_inferred += len(pairs)
        self._batch_size_hist.observe(len(pairs))
        if pairs:
            self._batch_latency_hist.observe(latency_ms)
        for (session, request), prob in zip(pairs, probs):
            self._complete(session, request, prob, latency_ms, False,
                           detections)
        if self.slo is not None and pairs:
            self._record_slo(latency_ms, len(pairs))

    def _infer_singly(self, pairs, detections) -> None:
        """Batch failed: isolate the poison by retrying one window at a
        time, so healthy streams still get their CNN verdicts."""
        for session, request in pairs:
            t0 = self._clock()
            try:
                with batch_invariant(self.config.batch_invariant):
                    prob = float(np.asarray(
                        self.model.predict(request.window[None])
                    ).reshape(-1)[0])
            except Exception:
                self._complete(session, request, None, 0.0, True, detections)
                continue
            latency_ms = 1000.0 * (self._clock() - t0)
            self._inference_s += latency_ms / 1000.0
            self.windows_inferred += 1
            self._complete(session, request, prob, latency_ms, False,
                           detections)
            if self.slo is not None:
                self._record_slo(latency_ms, 1)

    def _record_slo(self, latency_ms: float, n: int) -> None:
        """Charge ``n`` completed windows to the error budgets.

        Every rider of a batch is charged the batch's wall-clock, exactly
        as the detector's deadline accounting does; ``now`` is stream
        time so burn-rate windows advance deterministically.
        """
        self.slo.record(
            latency_ms=latency_ms,
            deadline_miss=(latency_ms
                           > self.config.detector.effective_deadline_ms),
            n=n,
            now=self._latest_t,
        )

    def _complete(self, session, request, prob, latency_ms, failed,
                  detections) -> None:
        try:
            hit = session.detector.complete(
                request, prob, latency_ms=latency_ms, failed=failed,
            )
        except Exception:
            self._quarantine(session)
            return
        if hit is not None:
            session.detections += 1
            self.detections += 1
            detections.append((session.stream_id, hit))

    def _feed_alerts(self, detections) -> None:
        """Escalate this round's detections and advance alert timers.

        The manager's entry points are fail-safe (they contain their own
        exceptions), so alerting can never stall or poison the serve
        path — the same containment story as the AirbagController.
        """
        for stream_id, detection in detections:
            session = self._sessions.get(stream_id)
            self.alerts.observe(
                stream_id,
                t=detection.time_s,
                probability=detection.probability,
                source=detection.source,
                health=session.health if session is not None else "healthy",
                recorder=session.recorder if session is not None else None,
            )
        if self._latest_t is not None:
            self.alerts.tick(self._latest_t)

    def _quarantine(self, session) -> None:
        session.errors += 1
        session.quarantined = True
        session.queue.clear()
        session.staged = []
        self.stream_errors += 1
        if session.recorder is not None:
            # The most valuable capture of all: what the stream looked
            # like right before its detector broke the no-raise promise.
            session.recorder.mark("quarantined")
            session.recorder.flush()
        _logger.exception(
            "detector for stream %r raised; quarantining the session",
            session.stream_id,
        )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def _sync_metrics(self) -> None:
        self._active_gauge.set(float(len(self._sessions)))
        prefix = self.config.metric_prefix
        for name in ("samples_in", "dropped_samples", "rejected_streams",
                     "windows_inferred", "batches", "batch_errors",
                     "stream_errors", "detections"):
            total = getattr(self, name)
            delta = total - self._synced.get(name, 0)
            if delta:
                self.registry.counter(  # metric-name: dynamic
                    f"{prefix}/{name}").inc(delta)
                self._synced[name] = total

    @property
    def inference_seconds(self) -> float:
        """Cumulative wall-clock spent inside ``Model.predict``."""
        return self._inference_s

    @property
    def stream_ids(self) -> list[str]:
        return list(self._sessions)

    def stream_report(self) -> dict:
        """Per-stream health/counter view (see ``StreamSession.report``)."""
        return {sid: session.report()
                for sid, session in self._sessions.items()}

    def stream_health(self, stream_id: str) -> str:
        """Health state of one stream (``healthy`` for unknown streams)."""
        session = self._sessions.get(stream_id)
        return session.health if session is not None else "healthy"

    def fleet_latency(self) -> Histogram:
        """Every stream's per-window latency merged into one histogram.

        The per-stream histograms live on the detectors (identical bucket
        edges), so the fleet view is an exact merge, not an estimate.
        Returns a fresh histogram; pass it to
        :func:`repro.obs.render_exposition` via ``extra=`` — merging into
        the registry would double-count the per-stream series.
        """
        fleet = Histogram(buckets=_LATENCY_BUCKETS_MS)
        for session in self._sessions.values():
            fleet.merge(session.detector.latency)
        return fleet

    def fleet_stages(self) -> StageTimer | None:
        """Every stream's per-stage attribution merged into one timer.

        Stage histograms live off-registry on the detectors (see
        :class:`repro.obs.StageTimer`), so like :meth:`fleet_latency`
        this is an exact merge.  ``None`` when stage timing is disabled.
        """
        fleet = None
        for session in self._sessions.values():
            stages = session.detector.stages
            if stages is None:
                continue
            if fleet is None:
                fleet = StageTimer()
            fleet.merge(stages)
        return fleet

    def slo_report(self) -> dict | None:
        """SLO + budget-attribution view: error-budget status per
        objective, burn-rate state per rule, and the per-stage latency
        attribution against the airbag budget.  ``None`` when SLO
        tracking is disabled."""
        if self.slo is None:
            return None
        report = self.slo.report(now=self._latest_t)
        fleet = self.fleet_stages()
        if fleet is not None:
            stage_report = fleet.report()
            report["stages"] = stage_report
            report["attribution"] = stage_attribution(
                stage_report, self.config.slo.latency_budget_ms)
        return report

    def incident_paths(self) -> list[str]:
        """Incident files written by every stream's flight recorder."""
        return [path for session in self._sessions.values()
                if session.recorder is not None
                for path in session.recorder.incident_paths]

    def flush_incidents(self) -> int:
        """Freeze any pending captures (shutdown / end of bench); returns
        how many incidents were flushed."""
        flushed = 0
        for session in self._sessions.values():
            if (session.recorder is not None
                    and session.recorder.flush() is not None):
                flushed += 1
        return flushed

    def report(self) -> dict:
        """Engine-level serving summary."""
        out = self._base_report()
        if self.alerts is not None:
            out["alerts"] = self.alerts.report()
        if self.slo is not None:
            out["slo"] = self.slo_report()
        return out

    def _base_report(self) -> dict:
        return {
            "backend": self.config.backend,
            "streams": len(self._sessions),
            "rounds": self.rounds,
            "last_round_t": self.last_round_t,
            "samples_in": self.samples_in,
            "dropped_samples": self.dropped_samples,
            "rejected_streams": self.rejected_streams,
            "windows_inferred": self.windows_inferred,
            "batches": self.batches,
            "batch_errors": self.batch_errors,
            "stream_errors": self.stream_errors,
            "detections": self.detections,
            "inference_seconds": self._inference_s,
            "batch_size": self._batch_size_hist.summary(),
            "batch_latency_ms": self._batch_latency_hist.summary(),
        }
