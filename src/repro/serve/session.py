"""Per-stream serving state: one hardened detector plus a bounded queue.

A :class:`StreamSession` is the unit the multi-stream engine schedules:
it owns the per-stream filter / ring-buffer / health state (a full
:class:`~repro.core.detector.FallDetector` driven in deferred-inference
mode), a bounded sample queue, and the per-stream accounting the engine
reports.  Sessions never run the model themselves — they stage
:class:`~repro.core.detector.WindowRequest` objects that the engine
micro-batches across streams.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..core.detector import DetectorConfig, FallDetector
from ..obs import FlightRecorder

__all__ = ["StreamSession"]


class StreamSession:
    """One wearable stream inside a :class:`~repro.serve.ServeEngine`.

    ``quarantined`` is the engine's outermost containment: the hardened
    detector promises never to raise, but if that promise is ever broken
    the engine flips this flag, drops the stream's queue and keeps serving
    everyone else — one faulty stream can never stall another.
    """

    __slots__ = (
        "stream_id",
        "detector",
        "recorder",
        "queue",
        "staged",
        "dropped_samples",
        "detections",
        "errors",
        "quarantined",
    )

    def __init__(
        self,
        stream_id: str,
        model,
        config: DetectorConfig,
        *,
        registry=None,
        metric_prefix: str = "serve/stream",
        per_stream_metrics: bool = True,
        flight=None,
        stage_clock=None,
    ):
        prefix = (f"{metric_prefix}/{stream_id}" if per_stream_metrics
                  else metric_prefix)
        self.stream_id = stream_id
        #: Per-stream flight recorder (``None`` unless the engine config
        #: carries a :class:`repro.obs.FlightConfig`).
        self.recorder = (FlightRecorder(flight, stream_id=stream_id)
                         if flight is not None else None)
        self.detector = FallDetector(
            model, config, registry=registry, metric_prefix=prefix,
            recorder=self.recorder, stage_clock=stage_clock,
        )
        self.queue: deque = deque()
        #: Requests staged by the last ``push_collect`` and not yet
        #: completed; the engine drains this every inference round.
        self.staged: list = []
        self.dropped_samples = 0
        self.detections = 0
        self.errors = 0
        self.quarantined = False

    def drain_block(self):
        """Pop every queued sample, stacked for ``FallDetector.push_block``.

        Returns ``(accel (n, 3), gyro (n, 3), t)`` where ``t`` is ``None``
        when no queued sample carried a timestamp, else a float array with
        NaN marking the untimestamped entries.  Malformed queued samples
        make the stacking raise — the same outcome the per-sample drain
        reached via ``push_collect``, and the engine's quarantine
        containment handles both identically.
        """
        queue = self.queue
        n = len(queue)
        accel = np.array([s[0] for s in queue], dtype=float).reshape(n, 3)
        gyro = np.array([s[1] for s in queue], dtype=float).reshape(n, 3)
        ts = [s[2] for s in queue]
        queue.clear()
        if any(v is not None for v in ts):
            t = np.array([np.nan if v is None else float(v) for v in ts])
        else:
            t = None
        return accel, gyro, t

    @property
    def health(self) -> str:
        """The stream's health, folding in engine-level quarantine."""
        return "quarantined" if self.quarantined else self.detector.health

    def report(self) -> dict:
        """Per-stream serving view: health, queue and detector counters."""
        return {
            "health": self.health,
            "backend": getattr(self.detector, "backend", "float32"),
            "queue_depth": len(self.queue),
            "dropped_samples": self.dropped_samples,
            "detections": self.detections,
            "errors": self.errors,
            "deadline_violations": self.detector.deadline_violations,
            "fallback_detections": self.detector.fallback_detections,
            "cnn_shed": self.detector.health_report()["cnn_shed"],
            "incidents": (len(self.recorder.incidents)
                          if self.recorder is not None else 0),
        }
