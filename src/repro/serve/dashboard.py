"""Terminal dashboard over a running :class:`~repro.serve.ServeEngine`.

``repro tail`` renders this: a fleet header (streams, throughput,
batches, detections), a sparkline of batch-latency p95 over time fed by a
:class:`~repro.obs.MetricsSampler`, the fleet-aggregated window-latency
histogram (exact merge of every stream's histogram — see
``ServeEngine.fleet_latency``), and a per-stream table sorted
worst-health-first.  Everything renders to a plain string, so the same
frame goes to a refreshing terminal, a test assertion, or ``make
tail-demo`` output unchanged.

:func:`run_tail` drives the synthetic serve-bench workload through an
engine with flight recording armed and faults injected on a couple of
streams — a self-contained demo of the whole observability story: the
dashboard shows the degradation live, the recorders freeze the incidents.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..alerts import AlertConfig
from ..core.detector import DetectorConfig
from ..obs import FlightConfig, MetricsSampler, render_exposition
from ..obs.metrics import MetricsRegistry
from .bench import ServeBenchConfig, synth_stream
from .engine import ServeConfig, ServeEngine

__all__ = ["TailConfig", "render_dashboard", "run_tail", "sparkline"]

_SPARK = "▁▂▃▄▅▆▇█"

#: Health states ordered worst-first for the stream table sort.
_HEALTH_ORDER = {"quarantined": 0, "fault": 1, "degraded": 2, "healthy": 3}


@dataclass(frozen=True)
class TailConfig:
    """Workload and rendering knobs for :func:`run_tail`."""

    n_streams: int = 8
    duration_s: float = 6.0
    seed: int = 11
    detector: DetectorConfig = field(default_factory=DetectorConfig)
    #: Metrics sampling cadence in *stream* seconds (the sampler is driven
    #: on stream time, so frames are deterministic for a given workload).
    interval_s: float = 0.5
    #: Max rows in the per-stream table (worst health first).
    max_rows: int = 12
    #: Directory incident files land in; ``None`` keeps them in memory.
    incident_dir: str | None = None
    #: Inject faults (NaN burst / dead gyro) into two streams so the
    #: dashboard shows degradation and the recorders capture incidents.
    inject_faults: bool = True
    #: Arm the fleet alert pipeline on the engine; ``None`` runs the
    #: historical tail workload without alerting.
    alerts: AlertConfig | None = None

    def __post_init__(self):
        if self.n_streams < 1:
            raise ValueError("n_streams must be >= 1")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")


def sparkline(values, width: int = 32) -> str:
    """Down-sampled unicode sparkline of a numeric series."""
    values = [float(v) for v in values]
    if not values:
        return "(no samples yet)"
    if len(values) > width:
        # Keep the most recent `width` points — a tail view, not a mean.
        values = values[-width:]
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return _SPARK[0] * len(values)
    return "".join(
        _SPARK[min(len(_SPARK) - 1, int((v - lo) / span * len(_SPARK)))]
        for v in values
    )


def _fmt_ms(value) -> str:
    return "--" if value is None else f"{value:.2f}"


#: Alert rows shown in the dashboard pane (most recent first).
_MAX_ALERT_ROWS = 4


def _alert_pane(manager) -> list[str]:
    """Alert summary + most recent alert lines for the dashboard."""
    report = manager.report()
    by_sev = report["active_by_severity"]
    lines = [
        f"alerts       : {report['active']:>8} active "
        f"(crit {by_sev.get('critical', 0)}, "
        f"susp {by_sev.get('suspect', 0)})   "
        f"raised {report['raised']}  deduped {report['deduped']}  "
        f"resolved {report['resolved']}"
    ]
    recent = sorted(manager.alerts, key=lambda a: a.last_t,
                    reverse=True)[:_MAX_ALERT_ROWS]
    for alert in recent:
        lines.append(
            f"  {alert.id}  {alert.stream:<9} {alert.severity:<8} "
            f"{alert.state:<8} t={alert.last_t:7.2f}s "
            f"det={alert.detections} rep={alert.repeats}"
        )
    return lines


def _slo_pane(engine) -> list[str]:
    """Error-budget status and budget attribution for the dashboard."""
    report = engine.slo_report()
    if report is None:
        return []
    lines = []
    for name, obj in report["objectives"].items():
        burning = [rule for rule, state in obj["burn_rates"].items()
                   if state["burning"]]
        status = (f"BURNING ({', '.join(burning)})" if burning
                  else "within budget")
        lines.append(
            f"slo          : {name:<19} bad {obj['bad_fraction']:.3%} "
            f"(allowed {obj['objective_bad_fraction']:.3%}, "
            f"budget left {obj['budget_remaining']:+.0%})  {status}"
        )
    attribution = report.get("attribution")
    if attribution:
        shares = ", ".join(f"{row['stage']} {row['share_of_budget']:.2%}"
                           for row in attribution)
        lines.append(
            f"{report['latency_budget_ms']:g} ms budget : {shares}")
    return lines


def render_dashboard(engine: ServeEngine, sampler: MetricsSampler | None = None,
                     *, title: str = "repro tail", max_rows: int = 12) -> str:
    """One dashboard frame as a plain string."""
    report = engine.report()
    streams = engine.stream_report()
    fleet = engine.fleet_latency().summary()
    quarantined = sum(s["health"] == "quarantined" for s in streams.values())
    lines = [
        f"{title} — {report['streams']} streams",
        "=" * 64,
        f"samples in   : {report['samples_in']:>8}    "
        f"dropped      : {report['dropped_samples']}",
        f"windows      : {report['windows_inferred']:>8}    "
        f"batches      : {report['batches']} "
        f"(mean {report['batch_size']['mean']:.1f})",
        f"detections   : {report['detections']:>8}    "
        f"quarantined  : {quarantined}",
        f"batch p95    : {_fmt_ms(report['batch_latency_ms']['p95']):>8} ms "
        f"  errors     : batch {report['batch_errors']}, "
        f"stream {report['stream_errors']}",
    ]
    if sampler is not None:
        p95 = [v for _, v in sampler.series("serve/batch_latency_ms", "p95")
               if v is not None]
        lines.append(f"p95 trend    : {sparkline(p95)}")
    lines.append(
        f"fleet window : p50 {_fmt_ms(fleet['p50'])} ms, "
        f"p95 {_fmt_ms(fleet['p95'])} ms, "
        f"p99 {_fmt_ms(fleet['p99'])} ms "
        f"({fleet['count']} windows)"
    )
    if engine.slo is not None:
        lines += _slo_pane(engine)
    if engine.alerts is not None:
        lines += _alert_pane(engine.alerts)
    lines.append("")
    lines.append("stream    health       queue  viol  fback  det  incid")
    lines.append("-" * 54)
    ordered = sorted(
        streams.items(),
        key=lambda kv: (_HEALTH_ORDER.get(kv[1]["health"], 9), kv[0]),
    )
    shown = ordered[:max_rows]
    for stream_id, s in shown:
        lines.append(
            f"{stream_id:<9} {s['health']:<12} {s['queue_depth']:>5} "
            f"{s['deadline_violations']:>5} {s['fallback_detections']:>6} "
            f"{s['detections']:>4} {s['incidents']:>6}"
        )
    hidden = len(ordered) - len(shown)
    if hidden > 0:
        lines.append(f"... {hidden} more healthy streams not shown")
    return "\n".join(lines)


def _tail_streams(config: TailConfig) -> dict:
    """Synthetic fleet for the demo; two streams degraded when enabled."""
    from ..faults import builtin_scenarios

    bench_cfg = ServeBenchConfig(
        n_streams=config.n_streams, duration_s=config.duration_s,
        seed=config.seed, detector=config.detector,
    )
    streams = {}
    scenarios = (builtin_scenarios(seed=config.seed)
                 if config.inject_faults else {})
    for idx in range(config.n_streams):
        accel, gyro, t = synth_stream(idx, bench_cfg)
        if config.inject_faults and config.n_streams > 2:
            if idx == 1:
                t, accel, gyro = scenarios["nan_burst"].apply_arrays(
                    t, accel, gyro)
            elif idx == 2:
                t, accel, gyro = scenarios["gyro_dead"].apply_arrays(
                    t, accel, gyro)
        streams[f"s{idx:03d}"] = (accel, gyro, t)
    return streams


def run_tail(model, config: TailConfig | None = None, *,
             on_frame=None, should_stop=None) -> dict:
    """Run the tail workload; calls ``on_frame(frame_str)`` per interval.

    Drives the synthetic fleet through a flight-recording
    :class:`ServeEngine` on a dedicated registry, sampling metrics on
    stream time so the frame sequence is deterministic.  Returns the
    engine, registry, sampler, incident paths, the final rendered frame
    and the closing Prometheus exposition (with the fleet-merged latency
    histogram attached).

    ``should_stop`` is polled once per sample round; when it returns
    true the feed stops early but the shutdown path still runs — the
    trailing step, incident flush, final frame and exposition — so a
    SIGTERM'd ``repro tail`` leaves complete artifacts behind (the
    result carries ``interrupted=True``).
    """
    config = config or TailConfig()
    streams = _tail_streams(config)
    registry = MetricsRegistry()
    serve_cfg = ServeConfig(
        detector=config.detector,
        flight=FlightConfig(out_dir=config.incident_dir,
                            post_trigger_samples=25),
        alerts=config.alerts,
    )
    engine = ServeEngine(model, serve_cfg, registry=registry)
    sampler = MetricsSampler(registry, interval_s=config.interval_s,
                             capacity=4096)
    hop = config.detector.hop_samples
    fs = config.detector.fs
    n = max(len(t) for _, _, t in streams.values())
    frames = 0
    interrupted = False
    next_frame_t = config.interval_s
    for i in range(n):
        if should_stop is not None and should_stop():
            interrupted = True
            break
        for stream_id, (accel, gyro, t) in streams.items():
            if i < len(t):
                engine.submit(stream_id, accel[i], gyro[i], t[i])
        if (i + 1) % hop == 0:
            engine.step()
        stream_t = (i + 1) / fs
        sampler.maybe_sample(now=stream_t)
        if on_frame is not None and stream_t >= next_frame_t:
            on_frame(render_dashboard(engine, sampler,
                                      max_rows=config.max_rows))
            frames += 1
            next_frame_t += config.interval_s
    engine.step()
    engine.flush_incidents()
    sampler.sample(now=n / fs)
    final_frame = render_dashboard(engine, sampler,
                                   max_rows=config.max_rows)
    extra = {"serve/fleet/window_latency_ms": engine.fleet_latency()}
    fleet_stages = engine.fleet_stages()
    if fleet_stages is not None:
        for stage, hist in fleet_stages.histograms.items():
            # Folded to one family with a `stage` label on exposition.
            extra[f"serve/stage/{stage}/latency_ms"] = hist
    exposition = render_exposition(registry, extra=extra)
    return {
        "engine": engine,
        "registry": registry,
        "sampler": sampler,
        "frames": frames,
        "interrupted": interrupted,
        "final_frame": final_frame,
        "exposition": exposition,
        "incident_paths": engine.incident_paths(),
        "stream_report": engine.stream_report(),
    }
