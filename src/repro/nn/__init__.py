"""``repro.nn`` — a from-scratch numpy deep-learning framework.

Stands in for TensorFlow/Keras in this reproduction: functional layer
graphs, backpropagation (including BPTT for LSTM/ConvLSTM2D), weighted
losses, Adam/SGD/RMSprop, callbacks with early stopping, and npz weight
serialisation.

Quick tour::

    from repro import nn

    inp = nn.Input((40, 9))
    h = nn.layers.Conv1D(16, 5, activation="relu")(inp)
    h = nn.layers.MaxPool1D(2)(h)
    h = nn.layers.Flatten()(h)
    out = nn.layers.Dense(1, activation="sigmoid")(h)
    model = nn.Model(inp, out).compile("adam", "binary_crossentropy")
"""

from . import activations, callbacks, initializers, layers, losses, metrics, optimizers
from .analysis import estimate_macs, macs_breakdown
from .config import (
    EPSILON,
    asfloat,
    batch_invariant,
    batch_invariant_enabled,
    float_precision,
    floatx,
    set_batch_invariant,
    set_floatx,
)
from .graph import Input, Node
from .model import Model
from .sequential import Sequential
from .serialization import load_weights, save_weights

__all__ = [
    "Input",
    "Node",
    "Model",
    "Sequential",
    "layers",
    "losses",
    "optimizers",
    "metrics",
    "callbacks",
    "initializers",
    "activations",
    "save_weights",
    "load_weights",
    "estimate_macs",
    "macs_breakdown",
    "floatx",
    "set_floatx",
    "float_precision",
    "asfloat",
    "batch_invariant",
    "batch_invariant_enabled",
    "set_batch_invariant",
    "EPSILON",
]
