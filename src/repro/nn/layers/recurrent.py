"""LSTM layer with full backpropagation-through-time.

Implements the standard Keras LSTM cell (gate order i, f, g, o; sigmoid
recurrent activations, tanh candidate/output activation):

    i_t = sigmoid(x_t Wi + h_{t-1} Ui + bi)
    f_t = sigmoid(x_t Wf + h_{t-1} Uf + bf)
    g_t =    tanh(x_t Wg + h_{t-1} Ug + bg)
    o_t = sigmoid(x_t Wo + h_{t-1} Uo + bo)
    c_t = f_t * c_{t-1} + i_t * g_t
    h_t = o_t * tanh(c_t)

Used by the paper's LSTM baseline (Table III).
"""

from __future__ import annotations

import numpy as np

from .. import initializers
from ..activations import sigmoid, tanh
from ..config import floatx
from .base import Layer

__all__ = ["LSTM"]


class LSTM(Layer):
    """Long Short-Term Memory over ``(batch, time, features)`` inputs.

    Parameters
    ----------
    units:
        Hidden state size.
    return_sequences:
        If True the layer outputs the whole hidden sequence
        ``(batch, time, units)``; otherwise only the final hidden state
        ``(batch, units)``.
    unit_forget_bias:
        Initialise the forget-gate bias to 1 (Keras default), which helps
        gradient flow early in training.
    """

    def __init__(
        self,
        units,
        return_sequences=False,
        unit_forget_bias=True,
        kernel_initializer="glorot_uniform",
        recurrent_initializer="orthogonal",
        name=None,
        seed=None,
    ):
        super().__init__(name=name, seed=seed)
        if units <= 0:
            raise ValueError(f"units must be positive, got {units}")
        self.units = int(units)
        self.return_sequences = bool(return_sequences)
        self.unit_forget_bias = bool(unit_forget_bias)
        self.kernel_initializer = initializers.get(kernel_initializer)
        self.recurrent_initializer = initializers.get(recurrent_initializer)

    def build(self, input_shapes):
        (shape,) = input_shapes
        if len(shape) != 2:
            raise ValueError(f"LSTM expects (time, features), got {shape}")
        _, features = shape
        h = self.units
        self.params["W"] = self.kernel_initializer((features, 4 * h), self._rng)
        self.params["U"] = self.recurrent_initializer((h, 4 * h), self._rng)
        bias = np.zeros(4 * h, dtype=floatx())
        if self.unit_forget_bias:
            bias[h : 2 * h] = 1.0
        self.params["b"] = bias

    def compute_output_shape(self, input_shapes):
        (shape,) = input_shapes
        time, _ = shape
        if self.return_sequences:
            return (time, self.units)
        return (self.units,)

    def forward(self, inputs, training=False):
        x = self._single(inputs)
        batch, time, _ = x.shape
        h_units = self.units
        W, U, b = self.params["W"], self.params["U"], self.params["b"]

        h_prev = np.zeros((batch, h_units), dtype=x.dtype)
        c_prev = np.zeros((batch, h_units), dtype=x.dtype)
        # Pre-compute the input contribution for every step at once.
        xw = x @ W + b  # (batch, time, 4h)

        steps = []
        hs = np.empty((batch, time, h_units), dtype=x.dtype)
        for t in range(time):
            z = xw[:, t, :] + h_prev @ U
            i = sigmoid(z[:, :h_units])
            f = sigmoid(z[:, h_units : 2 * h_units])
            g = tanh(z[:, 2 * h_units : 3 * h_units])
            o = sigmoid(z[:, 3 * h_units :])
            c = f * c_prev + i * g
            tc = tanh(c)
            h = o * tc
            steps.append((h_prev, c_prev, i, f, g, o, tc))
            hs[:, t, :] = h
            h_prev, c_prev = h, c
        if training:
            self._cache = (x, steps)
        if self.return_sequences:
            return hs
        return h_prev

    def backward(self, grad):
        x, steps = self._take_cache()
        batch, time, features = x.shape
        h_units = self.units
        W, U = self.params["W"], self.params["U"]

        dW = np.zeros_like(W)
        dU = np.zeros_like(U)
        db = np.zeros_like(self.params["b"])
        dx = np.empty_like(x)

        if self.return_sequences:
            grad_seq = grad
            dh_next = np.zeros((batch, h_units), dtype=x.dtype)
        else:
            grad_seq = None
            dh_next = grad
        dc_next = np.zeros((batch, h_units), dtype=x.dtype)

        for t in range(time - 1, -1, -1):
            h_prev, c_prev, i, f, g, o, tc = steps[t]
            dh = dh_next if grad_seq is None else dh_next + grad_seq[:, t, :]
            do = dh * tc
            dc = dc_next + dh * o * (1.0 - tc * tc)
            di = dc * g
            dg = dc * i
            df = dc * c_prev
            dc_next = dc * f
            # Back through gate non-linearities.
            dz = np.concatenate(
                [
                    di * i * (1.0 - i),
                    df * f * (1.0 - f),
                    dg * (1.0 - g * g),
                    do * o * (1.0 - o),
                ],
                axis=1,
            )
            dW += x[:, t, :].T @ dz
            dU += h_prev.T @ dz
            db += dz.sum(axis=0)
            dx[:, t, :] = dz @ W.T
            dh_next = dz @ U.T

        self.grads["W"] = dW
        self.grads["U"] = dU
        self.grads["b"] = db
        return [dx]
