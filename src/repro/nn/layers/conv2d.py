"""2-D convolution and pooling layers (channels-last, stride 1).

Built on the functional kernels ConvLSTM2D uses; provided so the framework
covers ordinary image-like heads too (e.g. spectrogram front-ends, a
common fall-detection variant).
"""

from __future__ import annotations

import numpy as np

from .. import activations, initializers
from .base import Layer
from .functional import (
    conv2d_backward_input,
    conv2d_backward_kernel,
    conv2d_forward,
    conv2d_output_shape,
)

__all__ = ["Conv2D", "MaxPool2D"]


class Conv2D(Layer):
    """Stride-1 2-D convolution over ``(batch, rows, cols, channels)``."""

    def __init__(
        self,
        filters,
        kernel_size,
        padding="valid",
        activation=None,
        use_bias=True,
        kernel_initializer="glorot_uniform",
        bias_initializer="zeros",
        name=None,
        seed=None,
    ):
        super().__init__(name=name, seed=seed)
        if isinstance(kernel_size, int):
            kernel_size = (kernel_size, kernel_size)
        if filters <= 0 or min(kernel_size) <= 0:
            raise ValueError("filters and kernel_size must be positive")
        if padding not in ("valid", "same"):
            raise ValueError(f"padding must be 'valid' or 'same', got {padding!r}")
        self.filters = int(filters)
        self.kernel_size = (int(kernel_size[0]), int(kernel_size[1]))
        self.padding = padding
        self.activation_name = activation
        self._act, self._act_grad = activations.get(activation)
        self.use_bias = bool(use_bias)
        self.kernel_initializer = initializers.get(kernel_initializer)
        self.bias_initializer = initializers.get(bias_initializer)

    def build(self, input_shapes):
        (shape,) = input_shapes
        if len(shape) != 3:
            raise ValueError(
                f"Conv2D expects (rows, cols, channels), got {shape}"
            )
        rows, cols, channels = shape
        kh, kw = self.kernel_size
        conv2d_output_shape(rows, cols, kh, kw, self.padding)  # validates
        self.params["W"] = self.kernel_initializer(
            (kh, kw, channels, self.filters), self._rng
        )
        if self.use_bias:
            self.params["b"] = self.bias_initializer((self.filters,), self._rng)

    def compute_output_shape(self, input_shapes):
        (shape,) = input_shapes
        rows, cols, _ = shape
        kh, kw = self.kernel_size
        ho, wo = conv2d_output_shape(rows, cols, kh, kw, self.padding)
        return (ho, wo, self.filters)

    def forward(self, inputs, training=False):
        x = self._single(inputs)
        bias = self.params.get("b")
        z, cols = conv2d_forward(x, self.params["W"], bias=bias,
                                 padding=self.padding)
        y = self._act(z)
        if training:
            self._cache = (x.shape, cols, z, y)
        return y

    def backward(self, grad):
        x_shape, cols, z, y = self._take_cache()
        dz = grad * self._act_grad(z, y)
        self.grads["W"] = conv2d_backward_kernel(cols, dz)
        if self.use_bias:
            self.grads["b"] = dz.sum(axis=(0, 1, 2))
        dx = conv2d_backward_input(dz, self.params["W"], x_shape, self.padding)
        return [dx]


class MaxPool2D(Layer):
    """Non-overlapping 2-D max pooling (pool == stride, 'valid')."""

    def __init__(self, pool_size=2, name=None):
        super().__init__(name=name)
        if isinstance(pool_size, int):
            pool_size = (pool_size, pool_size)
        if min(pool_size) <= 0:
            raise ValueError("pool_size must be positive")
        self.pool_size = (int(pool_size[0]), int(pool_size[1]))

    def build(self, input_shapes):
        (shape,) = input_shapes
        if len(shape) != 3:
            raise ValueError(
                f"MaxPool2D expects (rows, cols, channels), got {shape}"
            )
        ph, pw = self.pool_size
        if shape[0] < ph or shape[1] < pw:
            raise ValueError("input smaller than pool window")

    def compute_output_shape(self, input_shapes):
        (shape,) = input_shapes
        ph, pw = self.pool_size
        return (shape[0] // ph, shape[1] // pw, shape[2])

    def forward(self, inputs, training=False):
        x = self._single(inputs)
        batch, rows, cols, channels = x.shape
        ph, pw = self.pool_size
        ho, wo = rows // ph, cols // pw
        trimmed = x[:, : ho * ph, : wo * pw, :]
        windows = trimmed.reshape(batch, ho, ph, wo, pw, channels)
        windows = windows.transpose(0, 1, 3, 2, 4, 5).reshape(
            batch, ho, wo, ph * pw, channels
        )
        argmax = windows.argmax(axis=3)
        out = np.take_along_axis(windows, argmax[:, :, :, None, :], axis=3)
        if training:
            self._cache = (x.shape, argmax)
        return out[:, :, :, 0, :]

    def backward(self, grad):
        x_shape, argmax = self._take_cache()
        batch, rows, cols, channels = x_shape
        ph, pw = self.pool_size
        ho, wo = rows // ph, cols // pw
        dwindows = np.zeros((batch, ho, wo, ph * pw, channels),
                            dtype=grad.dtype)
        np.put_along_axis(dwindows, argmax[:, :, :, None, :],
                          grad[:, :, :, None, :], axis=3)
        dx = np.zeros(x_shape, dtype=grad.dtype)
        dwin = dwindows.reshape(batch, ho, wo, ph, pw, channels).transpose(
            0, 1, 3, 2, 4, 5
        )
        dx[:, : ho * ph, : wo * pw, :] = dwin.reshape(
            batch, ho * ph, wo * pw, channels
        )
        return [dx]
