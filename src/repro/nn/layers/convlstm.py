"""ConvLSTM2D layer (Xingjian et al., 2015) with full BPTT.

The gate pre-activations are 2-D convolutions instead of matrix products:

    z_t = conv(x_t, Wx) + conv(h_{t-1}, Wh) + b
    i, f, g, o = split(z_t);  c_t = f*c_{t-1} + i*g;  h_t = o*tanh(c_t)

Input layout: ``(batch, time, rows, cols, channels)``.  The input
convolution honours ``padding``; the recurrent convolution is always
'same' so the state keeps its spatial shape (Keras semantics, stride 1).

This layer backs the ConvLSTM2D baseline of Table III, mirroring the
architecture used by the KFall benchmark paper [6].
"""

from __future__ import annotations

import numpy as np

from .. import initializers
from ..activations import sigmoid, tanh
from ..config import floatx
from .base import Layer
from .functional import (
    conv2d_backward_input,
    conv2d_backward_kernel,
    conv2d_forward,
    conv2d_output_shape,
)

__all__ = ["ConvLSTM2D"]


class ConvLSTM2D(Layer):
    """Convolutional LSTM over spatio-temporal inputs (stride 1)."""

    def __init__(
        self,
        filters,
        kernel_size,
        padding="same",
        return_sequences=False,
        unit_forget_bias=True,
        kernel_initializer="glorot_uniform",
        recurrent_initializer="orthogonal",
        name=None,
        seed=None,
    ):
        super().__init__(name=name, seed=seed)
        if filters <= 0:
            raise ValueError(f"filters must be positive, got {filters}")
        if isinstance(kernel_size, int):
            kernel_size = (kernel_size, kernel_size)
        self.filters = int(filters)
        self.kernel_size = (int(kernel_size[0]), int(kernel_size[1]))
        if padding not in ("valid", "same"):
            raise ValueError(f"padding must be 'valid' or 'same', got {padding!r}")
        self.padding = padding
        self.return_sequences = bool(return_sequences)
        self.unit_forget_bias = bool(unit_forget_bias)
        self.kernel_initializer = initializers.get(kernel_initializer)
        self.recurrent_initializer = initializers.get(recurrent_initializer)

    def build(self, input_shapes):
        (shape,) = input_shapes
        if len(shape) != 4:
            raise ValueError(
                f"ConvLSTM2D expects (time, rows, cols, channels), got {shape}"
            )
        _, rows, cols, channels = shape
        kh, kw = self.kernel_size
        conv2d_output_shape(rows, cols, kh, kw, self.padding)  # validates size
        self.params["Wx"] = self.kernel_initializer(
            (kh, kw, channels, 4 * self.filters), self._rng
        )
        self.params["Wh"] = self.recurrent_initializer(
            (kh, kw, self.filters, 4 * self.filters), self._rng
        )
        bias = np.zeros(4 * self.filters, dtype=floatx())
        if self.unit_forget_bias:
            bias[self.filters : 2 * self.filters] = 1.0
        self.params["b"] = bias

    def _state_shape(self, input_shape):
        _, rows, cols, _ = input_shape
        kh, kw = self.kernel_size
        ho, wo = conv2d_output_shape(rows, cols, kh, kw, self.padding)
        return ho, wo

    def compute_output_shape(self, input_shapes):
        (shape,) = input_shapes
        time = shape[0]
        ho, wo = self._state_shape(shape)
        if self.return_sequences:
            return (time, ho, wo, self.filters)
        return (ho, wo, self.filters)

    def forward(self, inputs, training=False):
        x = self._single(inputs)
        batch, time = x.shape[0], x.shape[1]
        ho, wo = self._state_shape(x.shape[1:])
        nf = self.filters
        Wx, Wh, b = self.params["Wx"], self.params["Wh"], self.params["b"]

        h = np.zeros((batch, ho, wo, nf), dtype=x.dtype)
        c = np.zeros((batch, ho, wo, nf), dtype=x.dtype)
        steps = []
        hs = np.empty((batch, time, ho, wo, nf), dtype=x.dtype)
        for t in range(time):
            zx, cols_x = conv2d_forward(x[:, t], Wx, bias=b, padding=self.padding)
            zh, cols_h = conv2d_forward(h, Wh, padding="same")
            z = zx + zh
            i = sigmoid(z[..., :nf])
            f = sigmoid(z[..., nf : 2 * nf])
            g = tanh(z[..., 2 * nf : 3 * nf])
            o = sigmoid(z[..., 3 * nf :])
            c_prev = c
            c = f * c_prev + i * g
            tc = tanh(c)
            h_prev_shape = h.shape
            h = o * tc
            steps.append((cols_x, cols_h, h_prev_shape, c_prev, i, f, g, o, tc))
            hs[:, t] = h
        if training:
            self._cache = (x.shape, steps)
        if self.return_sequences:
            return hs
        return h

    def backward(self, grad):
        x_shape, steps = self._take_cache()
        batch, time = x_shape[0], x_shape[1]
        nf = self.filters
        Wx, Wh = self.params["Wx"], self.params["Wh"]

        dWx = np.zeros_like(Wx)
        dWh = np.zeros_like(Wh)
        db = np.zeros_like(self.params["b"])
        dx = np.empty(x_shape, dtype=grad.dtype)

        if self.return_sequences:
            grad_seq = grad
            dh_next = np.zeros(steps[-1][2], dtype=grad.dtype)
        else:
            grad_seq = None
            dh_next = grad
        dc_next = np.zeros(steps[-1][2], dtype=grad.dtype)

        frame_shape = (batch,) + tuple(x_shape[2:])
        for t in range(time - 1, -1, -1):
            cols_x, cols_h, h_prev_shape, c_prev, i, f, g, o, tc = steps[t]
            dh = dh_next if grad_seq is None else dh_next + grad_seq[:, t]
            do = dh * tc
            dc = dc_next + dh * o * (1.0 - tc * tc)
            di = dc * g
            dg = dc * i
            df = dc * c_prev
            dc_next = dc * f
            dz = np.concatenate(
                [
                    di * i * (1.0 - i),
                    df * f * (1.0 - f),
                    dg * (1.0 - g * g),
                    do * o * (1.0 - o),
                ],
                axis=-1,
            )
            dWx += conv2d_backward_kernel(cols_x, dz)
            dWh += conv2d_backward_kernel(cols_h, dz)
            db += dz.sum(axis=(0, 1, 2))
            dx[:, t] = conv2d_backward_input(dz, Wx, frame_shape, self.padding)
            dh_next = conv2d_backward_input(dz, Wh, h_prev_shape, "same")

        self.grads["Wx"] = dWx
        self.grads["Wh"] = dWh
        self.grads["b"] = db
        return [dx]
