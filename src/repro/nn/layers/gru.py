"""GRU layer and a Bidirectional wrapper.

Enables the CNN-BiGRU related-work baseline (Kiran et al. 2024, Table I of
the paper).  The cell follows the classic Cho et al. formulation
(``reset_after=False`` in Keras terms):

    z_t = sigmoid(x_t Wz + h_{t-1} Uz + bz)        (update gate)
    r_t = sigmoid(x_t Wr + h_{t-1} Ur + br)        (reset gate)
    c_t =    tanh(x_t Wc + (r_t * h_{t-1}) Uc + bc)
    h_t = z_t * h_{t-1} + (1 - z_t) * c_t
"""

from __future__ import annotations

import numpy as np

from .. import initializers
from ..activations import sigmoid, tanh
from ..config import floatx
from .base import Layer

__all__ = ["GRU", "Bidirectional"]


class GRU(Layer):
    """Gated recurrent unit over ``(batch, time, features)`` inputs."""

    def __init__(
        self,
        units,
        return_sequences=False,
        kernel_initializer="glorot_uniform",
        recurrent_initializer="orthogonal",
        name=None,
        seed=None,
    ):
        super().__init__(name=name, seed=seed)
        if units <= 0:
            raise ValueError(f"units must be positive, got {units}")
        self.units = int(units)
        self.return_sequences = bool(return_sequences)
        self.kernel_initializer = initializers.get(kernel_initializer)
        self.recurrent_initializer = initializers.get(recurrent_initializer)

    def build(self, input_shapes):
        (shape,) = input_shapes
        if len(shape) != 2:
            raise ValueError(f"GRU expects (time, features), got {shape}")
        _, features = shape
        h = self.units
        self.params["W"] = self.kernel_initializer((features, 3 * h), self._rng)
        self.params["U"] = self.recurrent_initializer((h, 3 * h), self._rng)
        self.params["b"] = np.zeros(3 * h, dtype=floatx())

    def compute_output_shape(self, input_shapes):
        (shape,) = input_shapes
        time, _ = shape
        return (time, self.units) if self.return_sequences else (self.units,)

    def forward(self, inputs, training=False):
        x = self._single(inputs)
        batch, time, _ = x.shape
        h_units = self.units
        W, U, b = self.params["W"], self.params["U"], self.params["b"]
        Uz, Ur, Uc = U[:, :h_units], U[:, h_units:2 * h_units], U[:, 2 * h_units:]

        h_prev = np.zeros((batch, h_units), dtype=x.dtype)
        xw = x @ W + b  # (batch, time, 3h)
        steps = []
        hs = np.empty((batch, time, h_units), dtype=x.dtype)
        for t in range(time):
            xz = xw[:, t, :h_units]
            xr = xw[:, t, h_units:2 * h_units]
            xc = xw[:, t, 2 * h_units:]
            z = sigmoid(xz + h_prev @ Uz)
            r = sigmoid(xr + h_prev @ Ur)
            rh = r * h_prev
            c = tanh(xc + rh @ Uc)
            h = z * h_prev + (1.0 - z) * c
            steps.append((h_prev, z, r, c, rh))
            hs[:, t, :] = h
            h_prev = h
        if training:
            self._cache = (x, steps)
        return hs if self.return_sequences else h_prev

    def backward(self, grad):
        x, steps = self._take_cache()
        batch, time, features = x.shape
        h_units = self.units
        W, U = self.params["W"], self.params["U"]
        Uz, Ur, Uc = U[:, :h_units], U[:, h_units:2 * h_units], U[:, 2 * h_units:]

        dW = np.zeros_like(W)
        dU = np.zeros_like(U)
        db = np.zeros_like(self.params["b"])
        dx = np.empty_like(x)

        if self.return_sequences:
            grad_seq = grad
            dh_next = np.zeros((batch, h_units), dtype=x.dtype)
        else:
            grad_seq = None
            dh_next = grad

        for t in range(time - 1, -1, -1):
            h_prev, z, r, c, rh = steps[t]
            dh = dh_next if grad_seq is None else dh_next + grad_seq[:, t, :]
            dz = dh * (h_prev - c)
            dc = dh * (1.0 - z)
            dzc = dz * z * (1.0 - z)          # through sigmoid
            dcc = dc * (1.0 - c * c)          # through tanh
            drh = dcc @ Uc.T
            dr = drh * h_prev
            drc = dr * r * (1.0 - r)
            # Accumulate parameter gradients.
            dgates = np.concatenate([dzc, drc, dcc], axis=1)
            dW += x[:, t, :].T @ dgates
            db += dgates.sum(axis=0)
            dU[:, :h_units] += h_prev.T @ dzc
            dU[:, h_units:2 * h_units] += h_prev.T @ drc
            dU[:, 2 * h_units:] += rh.T @ dcc
            dx[:, t, :] = dgates @ W.T
            dh_next = (
                dh * z
                + dzc @ Uz.T
                + drc @ Ur.T
                + drh * r
            )

        self.grads["W"] = dW
        self.grads["U"] = dU
        self.grads["b"] = db
        return [dx]


class Bidirectional(Layer):
    """Run a recurrent layer forwards and backwards, concatenating outputs.

    ``layer_factory`` must build a *fresh* recurrent layer on each call —
    e.g. ``Bidirectional(lambda s: GRU(32, seed=s), seed=0)``.  The two
    directions hold independent weights, exposed through this layer's
    ``params`` under ``fw_``/``bw_`` prefixes (shared storage, so the
    optimizer updates the children in place).
    """

    def __init__(self, layer_factory, name=None, seed=None):
        super().__init__(name=name, seed=seed)
        fw_seed = int(self._rng.integers(0, 2**31 - 1))
        bw_seed = int(self._rng.integers(0, 2**31 - 1))
        self.forward_layer = layer_factory(fw_seed)
        self.backward_layer = layer_factory(bw_seed)
        for child, tag in ((self.forward_layer, "fw"),
                           (self.backward_layer, "bw")):
            if not hasattr(child, "return_sequences"):
                raise TypeError(
                    "Bidirectional wraps recurrent layers with a "
                    "return_sequences attribute"
                )
            child.name = f"{self.name}_{tag}"
        if (self.forward_layer.return_sequences
                != self.backward_layer.return_sequences):
            raise ValueError("both directions must agree on return_sequences")
        self.return_sequences = self.forward_layer.return_sequences

    def build(self, input_shapes):
        self.forward_layer.build(input_shapes)
        self.backward_layer.build(input_shapes)
        self.forward_layer.built = self.backward_layer.built = True
        # Expose children's parameters (shared array objects).
        for tag, child in (("fw", self.forward_layer),
                           ("bw", self.backward_layer)):
            for key, value in child.params.items():
                self.params[f"{tag}_{key}"] = value

    def compute_output_shape(self, input_shapes):
        fw = self.forward_layer.compute_output_shape(input_shapes)
        return fw[:-1] + (2 * fw[-1],)

    def forward(self, inputs, training=False):
        x = self._single(inputs)
        # Re-sync child parameters: Model.set_weights may have rebound the
        # arrays in our params dict, which children cannot observe.
        for tag, child in (("fw", self.forward_layer),
                           ("bw", self.backward_layer)):
            for key in child.params:
                child.params[key] = self.params[f"{tag}_{key}"]
        fw = self.forward_layer.forward([x], training=training)
        bw = self.backward_layer.forward([x[:, ::-1]], training=training)
        if self.return_sequences:
            bw = bw[:, ::-1]
        return np.concatenate([fw, bw], axis=-1)

    def backward(self, grad):
        units = grad.shape[-1] // 2
        grad_fw = grad[..., :units]
        grad_bw = grad[..., units:]
        if self.return_sequences:
            grad_bw = grad_bw[:, ::-1]
        dx_fw = self.forward_layer.backward(np.ascontiguousarray(grad_fw))[0]
        dx_bw = self.backward_layer.backward(np.ascontiguousarray(grad_bw))[0]
        for tag, child in (("fw", self.forward_layer),
                           ("bw", self.backward_layer)):
            for key, value in child.grads.items():
                self.grads[f"{tag}_{key}"] = value
        return [dx_fw + dx_bw[:, ::-1]]

    def count_params(self) -> int:
        return (self.forward_layer.count_params()
                + self.backward_layer.count_params())
