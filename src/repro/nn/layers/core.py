"""Core layers: Dense, Activation, Flatten, Dropout, Slice, Reshape.

``Slice`` is what implements the paper's three-way split of the ``[n x 9]``
input window into accelerometer / gyroscope / Euler-angle branches.
"""

from __future__ import annotations

import numpy as np

from .. import activations, initializers
from ..config import floatx, matmul
from .base import Layer

__all__ = ["Dense", "Activation", "Flatten", "Dropout", "Slice", "Reshape"]


class Dense(Layer):
    """Fully-connected layer ``y = activation(x @ W + b)``.

    Operates on the last axis; leading axes (batch, time, ...) are preserved,
    matching Keras semantics.
    """

    def __init__(
        self,
        units,
        activation=None,
        use_bias=True,
        kernel_initializer="glorot_uniform",
        bias_initializer="zeros",
        name=None,
        seed=None,
    ):
        super().__init__(name=name, seed=seed)
        if units <= 0:
            raise ValueError(f"units must be positive, got {units}")
        self.units = int(units)
        self.activation_name = activation
        self._act, self._act_grad = activations.get(activation)
        self.use_bias = bool(use_bias)
        self.kernel_initializer = initializers.get(kernel_initializer)
        self.bias_initializer = initializers.get(bias_initializer)

    def build(self, input_shapes):
        (shape,) = input_shapes
        in_features = shape[-1]
        self.params["W"] = self.kernel_initializer((in_features, self.units), self._rng)
        if self.use_bias:
            self.params["b"] = self.bias_initializer((self.units,), self._rng)

    def compute_output_shape(self, input_shapes):
        (shape,) = input_shapes
        return shape[:-1] + (self.units,)

    def forward(self, inputs, training=False):
        x = self._single(inputs)
        z = matmul(x, self.params["W"])
        if self.use_bias:
            z = z + self.params["b"]
        y = self._act(z)
        if training:
            self._cache = (x, z, y)
        return y

    def backward(self, grad):
        x, z, y = self._take_cache()
        dz = grad * self._act_grad(z, y)
        # Collapse any leading axes so dW has shape (in, out).
        x2 = x.reshape(-1, x.shape[-1])
        dz2 = dz.reshape(-1, dz.shape[-1])
        self.grads["W"] = x2.T @ dz2
        if self.use_bias:
            self.grads["b"] = dz2.sum(axis=0)
        dx = dz @ self.params["W"].T
        return [dx]


class Activation(Layer):
    """Standalone element-wise activation layer."""

    def __init__(self, activation, name=None):
        super().__init__(name=name)
        self.activation_name = activation
        self._act, self._act_grad = activations.get(activation)

    def forward(self, inputs, training=False):
        x = self._single(inputs)
        y = self._act(x)
        if training:
            self._cache = (x, y)
        return y

    def backward(self, grad):
        x, y = self._take_cache()
        return [grad * self._act_grad(x, y)]


class Flatten(Layer):
    """Flatten every per-sample axis into one feature axis."""

    def compute_output_shape(self, input_shapes):
        (shape,) = input_shapes
        return (int(np.prod(shape)),)

    def forward(self, inputs, training=False):
        x = self._single(inputs)
        self._in_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad):
        return [grad.reshape(self._in_shape)]


class Dropout(Layer):
    """Inverted dropout: active only while training."""

    def __init__(self, rate, name=None, seed=None):
        super().__init__(name=name, seed=seed)
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = float(rate)

    def forward(self, inputs, training=False):
        x = self._single(inputs)
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        mask = (self._rng.random(x.shape) < keep).astype(floatx()) / keep
        self._mask = mask
        return x * mask

    def backward(self, grad):
        mask = self._mask
        self._mask = None
        if mask is None:
            return [grad]
        return [grad * mask]


class Slice(Layer):
    """Take a contiguous slice along one per-sample axis.

    ``Slice(axis=-1, start=0, stop=3)`` extracts the accelerometer columns
    from a ``[n x 9]`` window.  The backward pass scatters the incoming
    gradient into a zero tensor of the input's shape.
    """

    def __init__(self, axis, start, stop, name=None):
        super().__init__(name=name)
        self.axis = int(axis)
        self.start = int(start)
        self.stop = int(stop)
        if self.stop <= self.start:
            raise ValueError(f"empty slice [{start}, {stop})")

    def _array_axis(self, ndim_with_batch):
        """Resolve the user-facing per-sample axis to an array axis."""
        axis = self.axis
        if axis < 0:
            return ndim_with_batch + axis
        return axis + 1  # +1 for the batch axis

    def build(self, input_shapes):
        (shape,) = input_shapes
        axis = self.axis if self.axis >= 0 else len(shape) + self.axis
        if not 0 <= axis < len(shape):
            raise ValueError(f"axis {self.axis} out of range for shape {shape}")
        if self.stop > shape[axis]:
            raise ValueError(
                f"slice [{self.start}, {self.stop}) exceeds axis size {shape[axis]}"
            )

    def compute_output_shape(self, input_shapes):
        (shape,) = input_shapes
        axis = self.axis if self.axis >= 0 else len(shape) + self.axis
        out = list(shape)
        out[axis] = self.stop - self.start
        return tuple(out)

    def forward(self, inputs, training=False):
        x = self._single(inputs)
        self._in_shape = x.shape
        axis = self._array_axis(x.ndim)
        index = [slice(None)] * x.ndim
        index[axis] = slice(self.start, self.stop)
        self._index = tuple(index)
        return x[self._index]

    def backward(self, grad):
        dx = np.zeros(self._in_shape, dtype=grad.dtype)
        dx[self._index] = grad
        return [dx]


class Reshape(Layer):
    """Reshape the per-sample axes (batch axis untouched)."""

    def __init__(self, target_shape, name=None):
        super().__init__(name=name)
        self.target_shape = tuple(int(s) for s in target_shape)

    def build(self, input_shapes):
        (shape,) = input_shapes
        if int(np.prod(shape)) != int(np.prod(self.target_shape)):
            raise ValueError(
                f"cannot reshape per-sample shape {shape} into {self.target_shape}"
            )

    def compute_output_shape(self, input_shapes):
        return self.target_shape

    def forward(self, inputs, training=False):
        x = self._single(inputs)
        self._in_shape = x.shape
        return x.reshape((x.shape[0],) + self.target_shape)

    def backward(self, grad):
        return [grad.reshape(self._in_shape)]
