"""1-D convolution over the time axis.

Input layout is ``(batch, time, channels)`` ("channels-last"), matching
both Keras ``Conv1D`` and the paper's ``[n x 3]`` per-branch matrices.

The forward pass is an im2col matrix product; the backward pass scatters
column gradients back over the (small) kernel taps, which keeps everything
vectorised across batch and time.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .. import activations, initializers
from ..config import matmul
from .base import Layer

__all__ = ["Conv1D", "conv1d_output_length"]


def conv1d_output_length(length, kernel_size, stride, padding) -> int:
    """Output length of a 1-D convolution (``padding`` in {'valid','same'})."""
    if padding == "valid":
        if length < kernel_size:
            raise ValueError(
                f"input length {length} shorter than kernel {kernel_size} "
                "with 'valid' padding"
            )
        return (length - kernel_size) // stride + 1
    if padding == "same":
        return (length + stride - 1) // stride
    raise ValueError(f"padding must be 'valid' or 'same', got {padding!r}")


def _same_pad_amounts(length, kernel_size, stride) -> tuple[int, int]:
    """Left/right zero-padding replicating TensorFlow's 'same' rule."""
    out_len = (length + stride - 1) // stride
    total = max((out_len - 1) * stride + kernel_size - length, 0)
    left = total // 2
    return left, total - left


class Conv1D(Layer):
    """Temporal convolution with optional fused activation.

    Parameters mirror ``keras.layers.Conv1D``: ``filters``, ``kernel_size``,
    ``strides``, ``padding`` ('valid' or 'same') and ``activation``.
    """

    def __init__(
        self,
        filters,
        kernel_size,
        strides=1,
        padding="valid",
        activation=None,
        use_bias=True,
        kernel_initializer="glorot_uniform",
        bias_initializer="zeros",
        name=None,
        seed=None,
    ):
        super().__init__(name=name, seed=seed)
        if filters <= 0 or kernel_size <= 0 or strides <= 0:
            raise ValueError("filters, kernel_size and strides must be positive")
        if padding not in ("valid", "same"):
            raise ValueError(f"padding must be 'valid' or 'same', got {padding!r}")
        self.filters = int(filters)
        self.kernel_size = int(kernel_size)
        self.strides = int(strides)
        self.padding = padding
        self.activation_name = activation
        self._act, self._act_grad = activations.get(activation)
        self.use_bias = bool(use_bias)
        self.kernel_initializer = initializers.get(kernel_initializer)
        self.bias_initializer = initializers.get(bias_initializer)

    def build(self, input_shapes):
        (shape,) = input_shapes
        if len(shape) != 2:
            raise ValueError(
                f"Conv1D expects (time, channels) per-sample input, got {shape}"
            )
        _, channels = shape
        self.params["W"] = self.kernel_initializer(
            (self.kernel_size, channels, self.filters), self._rng
        )
        if self.use_bias:
            self.params["b"] = self.bias_initializer((self.filters,), self._rng)

    def compute_output_shape(self, input_shapes):
        (shape,) = input_shapes
        length, _ = shape
        out_len = conv1d_output_length(
            length, self.kernel_size, self.strides, self.padding
        )
        return (out_len, self.filters)

    # ------------------------------------------------------------------
    def _pad(self, x):
        if self.padding == "same":
            left, right = _same_pad_amounts(x.shape[1], self.kernel_size, self.strides)
            if left or right:
                return np.pad(x, ((0, 0), (left, right), (0, 0))), (left, right)
            return x, (0, 0)
        return x, (0, 0)

    def forward(self, inputs, training=False):
        x = self._single(inputs)
        xp, pads = self._pad(x)
        k, cin, cout = self.params["W"].shape
        # windows: (batch, out_len, k, cin)
        windows = sliding_window_view(xp, k, axis=1)[:, :: self.strides]
        windows = np.swapaxes(windows, 2, 3)
        batch, out_len = windows.shape[0], windows.shape[1]
        cols = windows.reshape(batch, out_len, k * cin)
        z = matmul(cols, self.params["W"].reshape(k * cin, cout))
        if self.use_bias:
            z = z + self.params["b"]
        y = self._act(z)
        if training:
            self._cache = (x.shape, xp.shape, pads, cols, z, y)
        return y

    def backward(self, grad):
        in_shape, padded_shape, pads, cols, z, y = self._take_cache()
        k, cin, cout = self.params["W"].shape
        dz = grad * self._act_grad(z, y)
        batch, out_len = dz.shape[0], dz.shape[1]
        dz2 = dz.reshape(batch * out_len, cout)
        cols2 = cols.reshape(batch * out_len, k * cin)
        self.grads["W"] = (cols2.T @ dz2).reshape(k, cin, cout)
        if self.use_bias:
            self.grads["b"] = dz2.sum(axis=0)
        # Gradient w.r.t. the padded input: scatter each kernel tap.
        dcols = (dz2 @ self.params["W"].reshape(k * cin, cout).T).reshape(
            batch, out_len, k, cin
        )
        dxp = np.zeros(padded_shape, dtype=grad.dtype)
        # Stride-spaced positions never collide for a fixed tap, so a plain
        # slice "+=" is safe (and much faster than np.add.at).
        for tap in range(k):
            dxp[:, tap : tap + self.strides * out_len : self.strides, :] += dcols[
                :, :, tap, :
            ]
        left, right = pads
        if left or right:
            dx = dxp[:, left : dxp.shape[1] - right, :]
        else:
            dx = dxp
        assert dx.shape == in_shape
        return [dx]
