"""Layer base class.

Layers hold parameters and implement the forward/backward contract:

* ``build(input_shapes)`` — allocate parameters once shapes are known.
* ``forward(inputs, training)`` — compute the output from a list of input
  arrays (batch axis first), caching whatever ``backward`` will need.
* ``backward(grad)`` — given the loss gradient w.r.t. the output, fill
  ``self.grads`` and return the list of gradients w.r.t. each input.

A layer instance owns exactly one position in the graph: calling it a second
time raises, which keeps the cache-in-``self`` backward scheme sound.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..graph import Node

_layer_counters: dict[str, itertools.count] = {}


def _auto_name(cls_name: str) -> str:
    key = cls_name.lower()
    counter = _layer_counters.setdefault(key, itertools.count())
    return f"{key}_{next(counter)}"


class Layer:
    """Base class for all layers."""

    def __init__(self, name=None, seed=None):
        self.name = name or _auto_name(type(self).__name__)
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}
        #: Non-trainable buffers (e.g. batch-norm running statistics);
        #: serialised alongside params but never touched by optimizers.
        self.state: dict[str, np.ndarray] = {}
        self.built = False
        self._called = False
        self._rng = np.random.default_rng(seed)
        self.input_shapes: tuple[tuple[int, ...], ...] | None = None
        #: Backward-pass state stashed by ``forward(..., training=True)``.
        #: Inference forwards leave it ``None`` so serving never pins
        #: per-batch activations; ``backward`` consumes it exactly once
        #: via :meth:`_take_cache`.
        self._cache = None

    # ------------------------------------------------------------------
    # Graph wiring
    # ------------------------------------------------------------------
    def __call__(self, inputs):
        """Apply the layer to one node or a list of nodes, returning a node."""
        if self._called:
            raise RuntimeError(
                f"layer {self.name!r} is already wired into a graph; layers "
                "cannot be shared (create a new instance instead)"
            )
        nodes = inputs if isinstance(inputs, (list, tuple)) else [inputs]
        if not nodes:
            raise ValueError(f"layer {self.name!r} called with no inputs")
        for node in nodes:
            if not isinstance(node, Node):
                raise TypeError(
                    f"layer {self.name!r} must be called on graph nodes, got "
                    f"{type(node).__name__}"
                )
        shapes = tuple(node.shape for node in nodes)
        self.input_shapes = shapes
        self.build(shapes)
        self.built = True
        self._called = True
        out_shape = self.compute_output_shape(shapes)
        return Node(layer=self, parents=nodes, shape=out_shape)

    # ------------------------------------------------------------------
    # Subclass interface
    # ------------------------------------------------------------------
    def build(self, input_shapes) -> None:
        """Allocate parameters; default is parameter-free."""

    def compute_output_shape(self, input_shapes):
        """Per-sample output shape; default: identity on a single input."""
        if len(input_shapes) != 1:
            raise ValueError(f"layer {self.name!r} expects exactly one input")
        return input_shapes[0]

    def forward(self, inputs, training=False):  # pragma: no cover - abstract
        raise NotImplementedError

    def backward(self, grad):  # pragma: no cover - abstract
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def count_params(self) -> int:
        """Total number of scalar parameters in the layer."""
        return int(sum(p.size for p in self.params.values()))

    def _single(self, inputs) -> np.ndarray:
        """Unwrap the single input of a one-input layer."""
        if len(inputs) != 1:
            raise ValueError(f"layer {self.name!r} expects exactly one input")
        return inputs[0]

    def _take_cache(self):
        """Pop the forward cache for ``backward``; one-shot by design.

        Clearing on read keeps nothing alive between training steps, and
        a ``None`` cache fails loudly: backward after an inference-mode
        forward (which skips caching) is a caller bug, not a silent
        zero-gradient.
        """
        cache = self._cache
        if cache is None:
            raise RuntimeError(
                f"layer {self.name!r}: backward() requires a preceding "
                "forward(training=True); inference-mode forward skips the "
                "backward cache"
            )
        self._cache = None
        return cache

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
