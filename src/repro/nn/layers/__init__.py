"""Neural-network layers."""

from .base import Layer
from .conv import Conv1D, conv1d_output_length
from .conv2d import Conv2D, MaxPool2D
from .convlstm import ConvLSTM2D
from .core import Activation, Dense, Dropout, Flatten, Reshape, Slice
from .gru import GRU, Bidirectional
from .merge import Add, Concatenate
from .norm import BatchNorm
from .pooling import AvgPool1D, GlobalAvgPool1D, GlobalMaxPool1D, MaxPool1D
from .recurrent import LSTM

__all__ = [
    "Layer",
    "Dense",
    "Activation",
    "Flatten",
    "Dropout",
    "Slice",
    "Reshape",
    "Conv1D",
    "conv1d_output_length",
    "Conv2D",
    "MaxPool2D",
    "MaxPool1D",
    "AvgPool1D",
    "GlobalAvgPool1D",
    "GlobalMaxPool1D",
    "Concatenate",
    "Add",
    "BatchNorm",
    "LSTM",
    "GRU",
    "Bidirectional",
    "ConvLSTM2D",
]
