"""Functional 2-D convolution kernels shared by Conv2D and ConvLSTM2D.

All tensors are channels-last: inputs ``(batch, rows, cols, cin)``, kernels
``(kh, kw, cin, cout)``.  Only stride 1 is implemented — that is all the
paper's ConvLSTM2D baseline needs — with 'valid' or 'same' padding.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

__all__ = [
    "conv2d_pad_amounts",
    "conv2d_output_shape",
    "conv2d_forward",
    "conv2d_backward_input",
    "conv2d_backward_kernel",
]


def conv2d_pad_amounts(size, kernel) -> tuple[int, int]:
    """Symmetric-ish 'same' padding for one spatial axis (stride 1)."""
    total = max(kernel - 1, 0)
    left = total // 2
    return left, total - left


def conv2d_output_shape(rows, cols, kh, kw, padding) -> tuple[int, int]:
    """Spatial output shape of a stride-1 2-D convolution."""
    if padding == "same":
        return rows, cols
    if padding == "valid":
        if rows < kh or cols < kw:
            raise ValueError(
                f"input ({rows}x{cols}) smaller than kernel ({kh}x{kw})"
            )
        return rows - kh + 1, cols - kw + 1
    raise ValueError(f"padding must be 'valid' or 'same', got {padding!r}")


def _pad_input(x, kh, kw, padding):
    if padding == "same":
        top, bottom = conv2d_pad_amounts(x.shape[1], kh)
        left, right = conv2d_pad_amounts(x.shape[2], kw)
        if top or bottom or left or right:
            return np.pad(x, ((0, 0), (top, bottom), (left, right), (0, 0)))
    return x


def _im2col(xp, kh, kw):
    """Return columns ``(batch, ho, wo, kh, kw, cin)`` for stride-1 conv."""
    windows = sliding_window_view(xp, (kh, kw), axis=(1, 2))
    # sliding_window_view yields (batch, ho, wo, cin, kh, kw).
    return np.moveaxis(windows, 3, 5)


def conv2d_forward(x, kernel, bias=None, padding="same"):
    """Stride-1 2-D convolution; returns ``(y, cols)`` where ``cols`` is the
    im2col tensor needed by the backward helpers."""
    kh, kw, cin, cout = kernel.shape
    xp = _pad_input(x, kh, kw, padding)
    cols = _im2col(xp, kh, kw)
    batch, ho, wo = cols.shape[:3]
    y = cols.reshape(batch * ho * wo, kh * kw * cin) @ kernel.reshape(-1, cout)
    y = y.reshape(batch, ho, wo, cout)
    if bias is not None:
        y = y + bias
    return y, cols


def conv2d_backward_kernel(cols, dy):
    """Gradient w.r.t. the kernel given cached ``cols`` and output grad."""
    batch, ho, wo, kh, kw, cin = cols.shape
    cout = dy.shape[-1]
    cols2 = cols.reshape(batch * ho * wo, kh * kw * cin)
    dy2 = dy.reshape(batch * ho * wo, cout)
    return (cols2.T @ dy2).reshape(kh, kw, cin, cout)


def conv2d_backward_input(dy, kernel, input_shape, padding="same"):
    """Gradient w.r.t. the (unpadded) input of a stride-1 2-D convolution."""
    kh, kw, cin, cout = kernel.shape
    batch, rows, cols_, _ = input_shape
    if padding == "same":
        top, _ = conv2d_pad_amounts(rows, kh)
        left, _ = conv2d_pad_amounts(cols_, kw)
        padded = (
            batch,
            rows + kh - 1 if kh > 1 else rows,
            cols_ + kw - 1 if kw > 1 else cols_,
            cin,
        )
    else:
        top = left = 0
        padded = (batch, rows, cols_, cin)
    ho, wo = dy.shape[1], dy.shape[2]
    dcols = dy.reshape(batch * ho * wo, cout) @ kernel.reshape(-1, cout).T
    dcols = dcols.reshape(batch, ho, wo, kh, kw, cin)
    dxp = np.zeros(padded, dtype=dy.dtype)
    for ih in range(kh):
        for iw in range(kw):
            dxp[:, ih : ih + ho, iw : iw + wo, :] += dcols[:, :, :, ih, iw, :]
    if padding == "same":
        return dxp[:, top : top + rows, left : left + cols_, :]
    return dxp
