"""Pooling layers over the time axis for ``(batch, time, channels)`` tensors."""

from __future__ import annotations

import numpy as np

from .base import Layer

__all__ = ["MaxPool1D", "AvgPool1D", "GlobalAvgPool1D", "GlobalMaxPool1D"]


class _Pool1D(Layer):
    """Shared shape logic for fixed-size 1-D pooling ('valid' padding)."""

    def __init__(self, pool_size=2, strides=None, name=None):
        super().__init__(name=name)
        if pool_size <= 0:
            raise ValueError(f"pool_size must be positive, got {pool_size}")
        self.pool_size = int(pool_size)
        self.strides = int(strides) if strides is not None else self.pool_size
        if self.strides <= 0:
            raise ValueError(f"strides must be positive, got {strides}")

    def build(self, input_shapes):
        (shape,) = input_shapes
        if len(shape) != 2:
            raise ValueError(
                f"{type(self).__name__} expects (time, channels), got {shape}"
            )
        if shape[0] < self.pool_size:
            raise ValueError(
                f"time axis {shape[0]} shorter than pool_size {self.pool_size}"
            )

    def compute_output_shape(self, input_shapes):
        (shape,) = input_shapes
        length, channels = shape
        out_len = (length - self.pool_size) // self.strides + 1
        return (out_len, channels)

    def _window_starts(self, length) -> np.ndarray:
        out_len = (length - self.pool_size) // self.strides + 1
        return self.strides * np.arange(out_len)


class MaxPool1D(_Pool1D):
    """Max pooling; backward routes the gradient to each window's argmax."""

    def forward(self, inputs, training=False):
        x = self._single(inputs)
        starts = self._window_starts(x.shape[1])
        # windows: (batch, out_len, pool, channels)
        idx = starts[:, None] + np.arange(self.pool_size)[None, :]
        windows = x[:, idx, :]
        argmax = windows.argmax(axis=2)  # (batch, out_len, channels)
        out = np.take_along_axis(windows, argmax[:, :, None, :], axis=2)[:, :, 0, :]
        if training:
            self._cache = (x.shape, starts, argmax)
        return out

    def backward(self, grad):
        in_shape, starts, argmax = self._take_cache()
        dx = np.zeros(in_shape, dtype=grad.dtype)
        batch, out_len, channels = grad.shape
        # Absolute time index of each selected maximum.
        time_idx = starts[None, :, None] + argmax  # (batch, out_len, channels)
        b_idx = np.arange(batch)[:, None, None]
        c_idx = np.arange(channels)[None, None, :]
        # Overlapping windows may select the same sample twice: accumulate.
        np.add.at(dx, (b_idx, time_idx, c_idx), grad)
        return [dx]


class AvgPool1D(_Pool1D):
    """Average pooling; backward spreads the gradient uniformly."""

    def forward(self, inputs, training=False):
        x = self._single(inputs)
        starts = self._window_starts(x.shape[1])
        idx = starts[:, None] + np.arange(self.pool_size)[None, :]
        windows = x[:, idx, :]
        if training:
            self._cache = (x.shape, starts)
        return windows.mean(axis=2)

    def backward(self, grad):
        in_shape, starts = self._take_cache()
        dx = np.zeros(in_shape, dtype=grad.dtype)
        share = grad / self.pool_size
        for offset in range(self.pool_size):
            if self.strides >= self.pool_size:
                # Non-overlapping windows: direct slice accumulate.
                dx[:, starts + offset, :] += share
            else:
                np.add.at(dx, (slice(None), starts + offset), share)
        return [dx]


class GlobalAvgPool1D(Layer):
    """Mean over the whole time axis: (batch, time, ch) -> (batch, ch)."""

    def compute_output_shape(self, input_shapes):
        (shape,) = input_shapes
        return (shape[-1],)

    def forward(self, inputs, training=False):
        x = self._single(inputs)
        self._in_shape = x.shape
        return x.mean(axis=1)

    def backward(self, grad):
        batch, length, channels = self._in_shape
        dx = np.broadcast_to(grad[:, None, :] / length, self._in_shape)
        return [np.array(dx)]


class GlobalMaxPool1D(Layer):
    """Max over the whole time axis: (batch, time, ch) -> (batch, ch)."""

    def compute_output_shape(self, input_shapes):
        (shape,) = input_shapes
        return (shape[-1],)

    def forward(self, inputs, training=False):
        x = self._single(inputs)
        argmax = x.argmax(axis=1)  # (batch, channels)
        if training:
            self._cache = (x.shape, argmax)
        return np.take_along_axis(x, argmax[:, None, :], axis=1)[:, 0, :]

    def backward(self, grad):
        in_shape, argmax = self._take_cache()
        batch, length, channels = in_shape
        dx = np.zeros(in_shape, dtype=grad.dtype)
        b_idx = np.arange(batch)[:, None]
        c_idx = np.arange(channels)[None, :]
        dx[b_idx, argmax, c_idx] = grad
        return [dx]
