"""Multi-input merge layers: Concatenate and Add.

``Concatenate`` joins the three convolutional branch outputs of the paper's
CNN before the dense head.
"""

from __future__ import annotations

import numpy as np

from .base import Layer

__all__ = ["Concatenate", "Add"]


class Concatenate(Layer):
    """Concatenate along a per-sample axis (default: last)."""

    def __init__(self, axis=-1, name=None):
        super().__init__(name=name)
        self.axis = int(axis)

    def _array_axis(self, ndim_with_batch) -> int:
        if self.axis < 0:
            return ndim_with_batch + self.axis
        return self.axis + 1

    def build(self, input_shapes):
        if len(input_shapes) < 2:
            raise ValueError("Concatenate needs at least two inputs")
        rank = len(input_shapes[0])
        axis = self.axis if self.axis >= 0 else rank + self.axis
        if not 0 <= axis < rank:
            raise ValueError(f"axis {self.axis} out of range for rank {rank}")
        for shape in input_shapes[1:]:
            if len(shape) != rank:
                raise ValueError(f"rank mismatch: {input_shapes}")
            for ax in range(rank):
                if ax != axis and shape[ax] != input_shapes[0][ax]:
                    raise ValueError(
                        f"non-concatenation axes must match: {input_shapes}"
                    )

    def compute_output_shape(self, input_shapes):
        rank = len(input_shapes[0])
        axis = self.axis if self.axis >= 0 else rank + self.axis
        out = list(input_shapes[0])
        out[axis] = sum(shape[axis] for shape in input_shapes)
        return tuple(out)

    def forward(self, inputs, training=False):
        axis = self._array_axis(inputs[0].ndim)
        self._sizes = [x.shape[axis] for x in inputs]
        self._axis_resolved = axis
        return np.concatenate(inputs, axis=axis)

    def backward(self, grad):
        splits = np.cumsum(self._sizes[:-1])
        return list(np.split(grad, splits, axis=self._axis_resolved))


class Add(Layer):
    """Element-wise sum of same-shaped inputs (residual connections)."""

    def build(self, input_shapes):
        if len(input_shapes) < 2:
            raise ValueError("Add needs at least two inputs")
        for shape in input_shapes[1:]:
            if shape != input_shapes[0]:
                raise ValueError(f"Add inputs must share a shape: {input_shapes}")

    def compute_output_shape(self, input_shapes):
        return input_shapes[0]

    def forward(self, inputs, training=False):
        self._n = len(inputs)
        out = inputs[0].copy()
        for x in inputs[1:]:
            out += x
        return out

    def backward(self, grad):
        return [grad] * self._n
