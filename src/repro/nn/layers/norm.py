"""Batch normalisation over the feature (last) axis."""

from __future__ import annotations

import numpy as np

from ..config import floatx
from .base import Layer

__all__ = ["BatchNorm"]


class BatchNorm(Layer):
    """Batch normalisation with running statistics for inference.

    Normalises over every axis except the last (features/channels), so it
    works for both ``(batch, features)`` and ``(batch, time, channels)``
    tensors, like Keras's ``BatchNormalization(axis=-1)``.
    """

    def __init__(self, momentum=0.99, epsilon=1e-3, name=None):
        super().__init__(name=name)
        if not 0.0 < momentum < 1.0:
            raise ValueError(f"momentum must be in (0, 1), got {momentum}")
        self.momentum = float(momentum)
        self.epsilon = float(epsilon)

    def build(self, input_shapes):
        (shape,) = input_shapes
        features = shape[-1]
        self.params["gamma"] = np.ones(features, dtype=floatx())
        self.params["beta"] = np.zeros(features, dtype=floatx())
        # Running statistics are state, not trainable parameters.
        self.state["mean"] = np.zeros(features, dtype=floatx())
        self.state["var"] = np.ones(features, dtype=floatx())

    def forward(self, inputs, training=False):
        x = self._single(inputs)
        axes = tuple(range(x.ndim - 1))
        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            m = self.momentum
            self.state["mean"] = m * self.state["mean"] + (1.0 - m) * mean
            self.state["var"] = m * self.state["var"] + (1.0 - m) * var
        else:
            mean, var = self.state["mean"], self.state["var"]
        inv_std = 1.0 / np.sqrt(var + self.epsilon)
        x_hat = (x - mean) * inv_std
        if training:
            self._cache = (x_hat, inv_std, axes)
        return self.params["gamma"] * x_hat + self.params["beta"]

    def backward(self, grad):
        # Only a training-mode forward caches, so the batch statistics
        # always depend on x here — the frozen-stats branch is gone.
        x_hat, inv_std, axes = self._take_cache()
        self.grads["gamma"] = (grad * x_hat).sum(axis=axes)
        self.grads["beta"] = grad.sum(axis=axes)
        g = grad * self.params["gamma"]
        # Standard batch-norm input gradient (statistics depend on x).
        dx = (
            g - g.mean(axis=axes) - x_hat * (g * x_hat).mean(axis=axes)
        ) * inv_std
        # mean over axes already divides by n; formula above uses means.
        return [dx]
