"""Activation functions with analytic derivatives.

Each activation is a pair ``(f, df)`` where ``df`` is expressed in terms of
the *output* ``y = f(x)`` whenever possible (cheaper: no need to keep the
pre-activation around), otherwise in terms of the input.
"""

from __future__ import annotations

import numpy as np

from .config import EPSILON

__all__ = [
    "relu",
    "relu_grad",
    "leaky_relu",
    "leaky_relu_grad",
    "sigmoid",
    "sigmoid_grad",
    "tanh",
    "tanh_grad",
    "softmax",
    "linear",
    "linear_grad",
    "get",
]


def relu(x):
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def relu_grad(x, y):
    return (x > 0.0).astype(x.dtype)


def leaky_relu(x, alpha=0.01):
    return np.where(x > 0.0, x, alpha * x)


def leaky_relu_grad(x, y, alpha=0.01):
    return np.where(x > 0.0, 1.0, alpha).astype(x.dtype)


def sigmoid(x):
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def sigmoid_grad(x, y):
    return y * (1.0 - y)


def tanh(x):
    return np.tanh(x)


def tanh_grad(x, y):
    return 1.0 - y * y


def softmax(x, axis=-1):
    """Shift-invariant softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    ex = np.exp(shifted)
    return ex / (np.sum(ex, axis=axis, keepdims=True) + EPSILON)


def linear(x):
    return x


def linear_grad(x, y):
    return np.ones_like(x)


#: name -> (forward, grad) pairs usable by Activation layers.
_REGISTRY = {
    "relu": (relu, relu_grad),
    "leaky_relu": (leaky_relu, leaky_relu_grad),
    "sigmoid": (sigmoid, sigmoid_grad),
    "tanh": (tanh, tanh_grad),
    "linear": (linear, linear_grad),
    None: (linear, linear_grad),
}


def get(identifier):
    """Resolve an activation name to a ``(forward, grad)`` pair.

    ``softmax`` is intentionally excluded: it is only supported fused into
    the categorical cross-entropy loss, where the combined gradient is
    simple and stable.
    """
    if isinstance(identifier, tuple) and len(identifier) == 2:
        return identifier
    try:
        return _REGISTRY[identifier]
    except KeyError:
        raise ValueError(
            f"unknown activation {identifier!r}; options: "
            f"{sorted(k for k in _REGISTRY if k)}"
        ) from None
