"""Weight (de)serialisation.

Architectures are rebuilt from the builder functions in
:mod:`repro.core.architecture` / :mod:`repro.core.baselines`; this module
persists weights and state buffers keyed by ``layer/param`` into a single
``.npz`` file, with shape checking on load.
"""

from __future__ import annotations

import numpy as np

__all__ = ["save_weights", "load_weights"]

_STATE_PREFIX = "state:"


def save_weights(model, path) -> None:
    """Write every parameter and state buffer of ``model`` to ``path``."""
    arrays: dict[str, np.ndarray] = {}
    for layer in model.layers:
        for key, value in layer.params.items():
            arrays[f"{layer.name}/{key}"] = value
        for key, value in layer.state.items():
            arrays[f"{layer.name}/{_STATE_PREFIX}{key}"] = value
    np.savez(path, **arrays)


def load_weights(model, path, strict=True) -> None:
    """Load weights saved by :func:`save_weights` into ``model``.

    With ``strict`` (default) every model parameter must be present in the
    file and vice versa; shapes always must match.
    """
    with np.load(path) as data:
        stored = {name: data[name] for name in data.files}

    expected: set[str] = set()
    for layer in model.layers:
        for key in layer.params:
            expected.add(f"{layer.name}/{key}")
        for key in layer.state:
            expected.add(f"{layer.name}/{_STATE_PREFIX}{key}")

    if strict:
        missing = expected - set(stored)
        extra = set(stored) - expected
        if missing or extra:
            raise ValueError(
                f"weight file mismatch: missing={sorted(missing)} "
                f"extra={sorted(extra)}"
            )

    for layer in model.layers:
        for key in layer.params:
            name = f"{layer.name}/{key}"
            if name not in stored:
                continue
            value = stored[name]
            if value.shape != layer.params[key].shape:
                raise ValueError(
                    f"shape mismatch for {name}: file {value.shape} vs "
                    f"model {layer.params[key].shape}"
                )
            layer.params[key] = value.astype(layer.params[key].dtype)
        for key in layer.state:
            name = f"{layer.name}/{_STATE_PREFIX}{key}"
            if name in stored:
                layer.state[key] = stored[name].astype(layer.state[key].dtype)
