"""Static model analysis: per-layer and total multiply-accumulate counts.

Parameter counts mislead about deployability — the paper's CNN keeps most
of its parameters in one cheap dense layer, while recurrent baselines
re-run their kernels at every time step.  ``estimate_macs`` walks a built
model graph and counts multiply-accumulates per inference.
"""

from __future__ import annotations

import numpy as np

from .layers import GRU, LSTM, Bidirectional, Conv1D, Conv2D, ConvLSTM2D, Dense
from .model import Model

__all__ = ["estimate_macs", "macs_breakdown"]


def _layer_macs(layer, node) -> int:
    in_shape = layer.input_shapes[0]
    if isinstance(layer, Dense):
        leading = int(np.prod(node.shape[:-1])) if len(node.shape) > 1 else 1
        return leading * in_shape[-1] * layer.units
    if isinstance(layer, Conv1D):
        out_len = node.shape[0]
        k, cin, cout = layer.params["W"].shape
        return out_len * k * cin * cout
    if isinstance(layer, Conv2D):
        ho, wo, cout = node.shape
        kh, kw, cin, _ = layer.params["W"].shape
        return ho * wo * kh * kw * cin * cout
    if isinstance(layer, LSTM):
        time, features = in_shape
        h = layer.units
        return time * 4 * (features * h + h * h)
    if isinstance(layer, GRU):
        time, features = in_shape
        h = layer.units
        return time * 3 * (features * h + h * h)
    if isinstance(layer, Bidirectional):
        time, features = in_shape
        child = layer.forward_layer
        h = child.units
        gates = 4 if isinstance(child, LSTM) else 3
        return 2 * time * gates * (features * h + h * h)
    if isinstance(layer, ConvLSTM2D):
        time = in_shape[0]
        kh, kw, cin, four_f = layer.params["Wx"].shape
        _, _, nf, _ = layer.params["Wh"].shape
        ho, wo = layer._state_shape(in_shape)
        x_macs = ho * wo * kh * kw * cin * four_f
        h_macs = ho * wo * kh * kw * nf * four_f
        return time * (x_macs + h_macs)
    return 0  # pooling, reshapes, merges: no multiplies worth counting


def macs_breakdown(model: Model) -> dict[str, int]:
    """Per-layer MAC counts keyed by layer name."""
    out = {}
    for node in model.nodes:
        if node.layer is not None:
            out[node.layer.name] = _layer_macs(node.layer, node)
    return out


def estimate_macs(model: Model) -> int:
    """Total multiply-accumulates for one forward pass (batch of 1)."""
    return int(sum(macs_breakdown(model).values()))
