"""The ``Model`` class: functional graph execution, training and evaluation.

A model is defined by one input node and one output node (everything the
paper needs — the branched CNN has a single ``[n x 9]`` input).  The graph
is topologically sorted once at construction; forward and backward passes
replay that order.
"""

from __future__ import annotations

import time

import numpy as np

from . import losses as losses_module
from . import metrics as metrics_module
from . import optimizers as optimizers_module
from ..obs import get_logger, span
from .config import asfloat, floatx
from .graph import Node, topological_order

_logger = get_logger(__name__)

__all__ = ["Model"]


class Model:
    """A trainable computation graph with a Keras-like interface."""

    def __init__(self, inputs: Node, outputs: Node, name="model"):
        if isinstance(inputs, (list, tuple)):
            if len(inputs) != 1:
                raise ValueError("Model supports exactly one input node")
            inputs = inputs[0]
        if isinstance(outputs, (list, tuple)):
            if len(outputs) != 1:
                raise ValueError("Model supports exactly one output node")
            outputs = outputs[0]
        if not inputs.is_input:
            raise ValueError("`inputs` must be an Input node")
        self.input_node = inputs
        self.output_node = outputs
        self.name = name
        self.nodes = topological_order([outputs])
        if self.input_node not in self.nodes:
            raise ValueError("output node is not connected to the input node")
        for node in self.nodes:
            if node.is_input and node is not self.input_node:
                raise ValueError(
                    f"graph depends on a foreign input node {node.name!r}"
                )
        # Unique layers in dependency order.
        self.layers = [node.layer for node in self.nodes if node.layer is not None]
        self.optimizer = None
        self.loss = None
        self.metric_fns: list = []
        self.metric_names: list[str] = []
        self.stop_training = False
        # Opt-in per-layer timing (see enable_layer_timing); keeping the
        # flag False preserves the untimed hot path byte for byte.
        self._layer_timing = False
        self._timing_registry = None

    # ------------------------------------------------------------------
    # Shapes / parameters
    # ------------------------------------------------------------------
    @property
    def input_shape(self):
        return self.input_node.shape

    @property
    def output_shape(self):
        return self.output_node.shape

    def count_params(self) -> int:
        return sum(layer.count_params() for layer in self.layers)

    def get_layer(self, name: str):
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"no layer named {name!r} in model {self.name!r}")

    def get_weights(self) -> list[np.ndarray]:
        """All parameters and state buffers, in deterministic order."""
        weights = []
        for layer in self.layers:
            for key in sorted(layer.params):
                weights.append(layer.params[key].copy())
            for key in sorted(layer.state):
                weights.append(layer.state[key].copy())
        return weights

    def set_weights(self, weights) -> None:
        weights = list(weights)
        expected = sum(len(l.params) + len(l.state) for l in self.layers)
        if len(weights) != expected:
            raise ValueError(
                f"expected {expected} weight arrays, got {len(weights)}"
            )
        idx = 0
        for layer in self.layers:
            for key in sorted(layer.params):
                new = np.asarray(weights[idx])
                if new.shape != layer.params[key].shape:
                    raise ValueError(
                        f"shape mismatch for {layer.name}/{key}: "
                        f"{new.shape} vs {layer.params[key].shape}"
                    )
                layer.params[key] = new.astype(layer.params[key].dtype).copy()
                idx += 1
            for key in sorted(layer.state):
                layer.state[key] = (
                    np.asarray(weights[idx]).astype(layer.state[key].dtype).copy()
                )
                idx += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def enable_layer_timing(self, enabled: bool = True, registry=None):
        """Record per-layer forward/backward wall time into histograms.

        Off by default: when disabled the execution loops are exactly the
        untimed originals, so training/inference performance is unchanged.
        When enabled, every layer call lands one millisecond sample in
        ``nn/forward/<layer>`` and ``nn/backward/<layer>`` histograms of
        ``registry`` (default: the :func:`repro.obs.get_registry` one).
        """
        self._layer_timing = bool(enabled)
        if self._layer_timing:
            if registry is None:
                from ..obs import get_registry

                registry = get_registry()
            self._timing_registry = registry
        else:
            self._timing_registry = None
        return self

    def layer_timings(self) -> dict:
        """Summaries of the per-layer histograms recorded so far."""
        if self._timing_registry is None:
            return {}
        prefix = ("nn/forward/", "nn/backward/")
        return {
            name: self._timing_registry.histogram(name).summary()  # metric-name: dynamic
            for name in self._timing_registry.names()
            if name.startswith(prefix)
        }

    def _forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        values: dict[int, np.ndarray] = {self.input_node.uid: x}
        if not self._layer_timing:
            for node in self.nodes:
                if node.is_input:
                    continue
                inputs = [values[parent.uid] for parent in node.parents]
                values[node.uid] = node.layer.forward(inputs, training=training)
        else:
            registry = self._timing_registry
            for node in self.nodes:
                if node.is_input:
                    continue
                inputs = [values[parent.uid] for parent in node.parents]
                t0 = time.perf_counter()
                values[node.uid] = node.layer.forward(inputs, training=training)
                registry.histogram(  # metric-name: dynamic — layer names are finite
                    f"nn/forward/{node.layer.name}").observe(
                    1000.0 * (time.perf_counter() - t0)
                )
        self._values = values
        return values[self.output_node.uid]

    def _backward(self, grad_output: np.ndarray) -> None:
        timing = self._layer_timing
        registry = self._timing_registry
        grads: dict[int, np.ndarray] = {self.output_node.uid: grad_output}
        for node in reversed(self.nodes):
            if node.is_input:
                continue
            upstream = grads.pop(node.uid, None)
            if upstream is None:
                continue
            if timing:
                t0 = time.perf_counter()
                parent_grads = node.layer.backward(upstream)
                registry.histogram(  # metric-name: dynamic — layer names are finite
                    f"nn/backward/{node.layer.name}").observe(
                    1000.0 * (time.perf_counter() - t0)
                )
            else:
                parent_grads = node.layer.backward(upstream)
            for parent, pgrad in zip(node.parents, parent_grads):
                if parent.uid in grads:
                    grads[parent.uid] = grads[parent.uid] + pgrad
                else:
                    grads[parent.uid] = pgrad

    def _check_input(self, x: np.ndarray) -> np.ndarray:
        x = asfloat(x)
        if x.shape[1:] != self.input_shape:
            raise ValueError(
                f"model {self.name!r} expects per-sample shape "
                f"{self.input_shape}, got {x.shape[1:]}"
            )
        return x

    def predict(self, x, batch_size=256) -> np.ndarray:
        """Run inference in batches; returns the stacked outputs.

        An empty input returns an empty array of the model's *output*
        shape, ``(0,) + output_shape``, so downstream ``concatenate`` /
        indexing (e.g. the batched serving scheduler with no windows due)
        behaves exactly like the non-empty case.
        """
        x = self._check_input(np.asarray(x))
        chunks = []
        for start in range(0, len(x), batch_size):
            chunks.append(self._forward(x[start : start + batch_size], training=False))
        if not chunks:
            return np.empty((0,) + tuple(self.output_shape), dtype=floatx())
        return np.concatenate(chunks, axis=0)

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def compile(self, optimizer="adam", loss="binary_crossentropy", metrics=()):
        """Attach optimizer, loss and epoch metrics."""
        self.optimizer = optimizers_module.get(optimizer)
        self.loss = losses_module.get(loss)
        self.metric_fns = [metrics_module.get(m) for m in metrics]
        self.metric_names = [
            m if isinstance(m, str) else getattr(m, "__name__", "metric")
            for m in metrics
        ]
        return self

    def _require_compiled(self):
        if self.optimizer is None or self.loss is None:
            raise RuntimeError("call model.compile(...) before training/evaluating")

    def _collect_params(self) -> tuple[dict, dict]:
        params, grads = {}, {}
        for layer in self.layers:
            for key, value in layer.params.items():
                params[(layer.name, key)] = value
            for key, value in layer.grads.items():
                grads[(layer.name, key)] = value
        return params, grads

    def train_on_batch(self, x, y, sample_weight=None) -> float:
        """One forward/backward/update step; returns the batch loss."""
        self._require_compiled()
        x = self._check_input(np.asarray(x))
        y_pred = self._forward(x, training=True)
        loss_value = self.loss(y, y_pred, sample_weight)
        grad = self.loss.grad(y, y_pred, sample_weight)
        self._backward(grad)
        params, grads = self._collect_params()
        self.optimizer.apply(params, grads)
        return loss_value

    def evaluate(self, x, y, sample_weight=None, batch_size=256) -> dict:
        """Mean loss (+ metrics) over ``(x, y)`` without updating weights."""
        self._require_compiled()
        y_pred = self.predict(x, batch_size=batch_size)
        logs = {"loss": self.loss(y, y_pred, sample_weight)}
        for fn, name in zip(self.metric_fns, self.metric_names):
            logs[name] = float(fn(y, y_pred))
        return logs

    def fit(
        self,
        x,
        y,
        epochs=1,
        batch_size=32,
        validation_data=None,
        sample_weight=None,
        class_weight=None,
        callbacks=(),
        shuffle=True,
        verbose=0,
        seed=None,
    ):
        """Mini-batch training loop.

        ``class_weight`` is a mapping ``{class: weight}`` applied per sample
        (this is how the paper counteracts the fall/ADL imbalance);
        ``sample_weight`` overrides it when both are given.

        Returns the :class:`~repro.nn.callbacks.History` callback.
        """
        from .callbacks import History

        self._require_compiled()
        x = self._check_input(np.asarray(x))
        y = np.asarray(y)
        if len(x) != len(y):
            raise ValueError(f"x and y disagree on length: {len(x)} vs {len(y)}")
        if len(x) == 0:
            raise ValueError("cannot fit on an empty dataset")

        if sample_weight is None and class_weight is not None:
            flat = y.reshape(len(y), -1)[:, 0].astype(int)
            sample_weight = np.array(
                [float(class_weight.get(int(c), 1.0)) for c in flat]
            )
        if sample_weight is not None:
            sample_weight = np.asarray(sample_weight, dtype=float)
            if len(sample_weight) != len(x):
                raise ValueError("sample_weight length must match x")

        history = History()
        all_callbacks = [history, *callbacks]
        for cb in all_callbacks:
            cb.set_model(self)
            cb.on_train_begin()

        rng = np.random.default_rng(seed)
        self.stop_training = False
        n = len(x)
        for epoch in range(epochs):
            with span("fit/epoch", epoch=epoch):
                for cb in all_callbacks:
                    cb.on_epoch_begin(epoch)
                order = rng.permutation(n) if shuffle else np.arange(n)
                epoch_loss = 0.0
                seen = 0
                for start in range(0, n, batch_size):
                    idx = order[start : start + batch_size]
                    sw = None if sample_weight is None else sample_weight[idx]
                    batch_loss = self.train_on_batch(x[idx], y[idx], sw)
                    epoch_loss += batch_loss * len(idx)
                    seen += len(idx)
                logs = {"loss": epoch_loss / max(seen, 1)}
                if self.metric_fns:
                    y_pred = self.predict(x, batch_size=max(batch_size, 256))
                    for fn, name in zip(self.metric_fns, self.metric_names):
                        logs[name] = float(fn(y, y_pred))
                if validation_data is not None:
                    val_x, val_y = validation_data[0], validation_data[1]
                    val_logs = self.evaluate(val_x, val_y,
                                             batch_size=max(batch_size, 256))
                    logs.update({f"val_{k}": v for k, v in val_logs.items()})
                for cb in all_callbacks:
                    cb.on_epoch_end(epoch, logs)
            if verbose:
                rendered = "  ".join(f"{k}={v:.4f}" for k, v in logs.items())
                _logger.info("epoch %d/%d  %s", epoch + 1, epochs, rendered)
            if self.stop_training:
                break
        for cb in all_callbacks:
            cb.on_train_end()
        return history

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def summary(self) -> str:
        """Human-readable table of layers, output shapes and params."""
        lines = [f"Model: {self.name}", "-" * 62]
        lines.append(f"{'layer':30s}{'output shape':20s}{'params':>10s}")
        lines.append("-" * 62)
        for node in self.nodes:
            if node.is_input:
                lines.append(f"{node.name:30s}{str(node.shape):20s}{'0':>10s}")
            else:
                layer = node.layer
                count = layer.count_params()
                lines.append(
                    f"{layer.name:30s}{str(node.shape):20s}{count:>10d}"
                )
        lines.append("-" * 62)
        lines.append(f"total params: {self.count_params()}")
        return "\n".join(lines)
