"""Weight initializers.

Mirrors the Keras initializers the paper's TensorFlow implementation would
have used (Glorot-uniform for dense/conv kernels, orthogonal for recurrent
kernels, zeros for biases).
"""

from __future__ import annotations

import numpy as np

from .config import asfloat

__all__ = [
    "zeros",
    "ones",
    "constant",
    "random_normal",
    "random_uniform",
    "glorot_uniform",
    "glorot_normal",
    "he_uniform",
    "he_normal",
    "orthogonal",
    "get",
]


def zeros(shape, rng=None):
    """All-zeros tensor (standard bias initializer)."""
    return asfloat(np.zeros(shape))


def ones(shape, rng=None):
    """All-ones tensor (e.g. batch-norm scale)."""
    return asfloat(np.ones(shape))


class _ConstantInit:
    """Constant-fill initializer as a class, not a closure: layers keep a
    reference to their initializers, and closures cannot be pickled when a
    trained model crosses a process-pool boundary."""

    def __init__(self, value):
        self.value = value

    def __call__(self, shape, rng=None):
        return asfloat(np.full(shape, self.value))


def constant(value):
    """Return an initializer producing a constant-filled tensor."""
    return _ConstantInit(value)


def _require_rng(rng) -> np.random.Generator:
    if rng is None:
        rng = np.random.default_rng()
    return rng


def random_normal(shape, rng=None, stddev=0.05):
    rng = _require_rng(rng)
    return asfloat(rng.normal(0.0, stddev, size=shape))


def random_uniform(shape, rng=None, limit=0.05):
    rng = _require_rng(rng)
    return asfloat(rng.uniform(-limit, limit, size=shape))


def _fans(shape) -> tuple[int, int]:
    """Compute (fan_in, fan_out) for a kernel shape.

    Follows the Keras convention: for a dense kernel ``(in, out)`` the fans
    are the two axes; for a conv kernel ``(k..., in, out)`` the receptive
    field size multiplies both fans.
    """
    shape = tuple(int(s) for s in shape)
    if len(shape) < 1:
        raise ValueError("initializer shape must have at least one axis")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[:-2])) if len(shape) > 2 else 1
    fan_in = shape[-2] * receptive
    fan_out = shape[-1] * receptive
    return fan_in, fan_out


def glorot_uniform(shape, rng=None):
    """Glorot/Xavier uniform — Keras's default kernel initializer."""
    rng = _require_rng(rng)
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return asfloat(rng.uniform(-limit, limit, size=shape))


def glorot_normal(shape, rng=None):
    rng = _require_rng(rng)
    fan_in, fan_out = _fans(shape)
    stddev = np.sqrt(2.0 / (fan_in + fan_out))
    return asfloat(rng.normal(0.0, stddev, size=shape))


def he_uniform(shape, rng=None):
    """He uniform — suited to ReLU activations."""
    rng = _require_rng(rng)
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return asfloat(rng.uniform(-limit, limit, size=shape))


def he_normal(shape, rng=None):
    rng = _require_rng(rng)
    fan_in, _ = _fans(shape)
    stddev = np.sqrt(2.0 / fan_in)
    return asfloat(rng.normal(0.0, stddev, size=shape))


def orthogonal(shape, rng=None, gain=1.0):
    """Orthogonal initializer (Keras default for recurrent kernels)."""
    rng = _require_rng(rng)
    if len(shape) < 2:
        raise ValueError("orthogonal initializer needs at least 2 axes")
    rows = int(np.prod(shape[:-1]))
    cols = int(shape[-1])
    flat = rng.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    # Make the decomposition unique / uniformly distributed.
    q *= np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return asfloat(np.ascontiguousarray(gain * q[:rows, :cols]).reshape(shape))


_REGISTRY = {
    "zeros": zeros,
    "ones": ones,
    "random_normal": random_normal,
    "random_uniform": random_uniform,
    "glorot_uniform": glorot_uniform,
    "glorot_normal": glorot_normal,
    "he_uniform": he_uniform,
    "he_normal": he_normal,
    "orthogonal": orthogonal,
}


def get(identifier):
    """Resolve an initializer from a name or pass a callable through."""
    if callable(identifier):
        return identifier
    try:
        return _REGISTRY[identifier]
    except KeyError:
        raise ValueError(
            f"unknown initializer {identifier!r}; options: {sorted(_REGISTRY)}"
        ) from None
