"""Symbolic tensor graph used by the functional model API.

The paper's lightweight CNN is a *branched* network (the 9-channel window is
split into three 3-channel matrices processed by independent convolutional
branches, then concatenated), so a purely sequential container is not
enough.  This module provides a minimal Keras-functional-style graph:

    >>> inp = Input((40, 9))
    >>> accel = Slice(axis=-1, start=0, stop=3)(inp)
    >>> ...
    >>> model = Model(inp, out)

A :class:`Node` is a symbolic tensor: it records the layer that produces it
and the parent nodes consumed by that layer.  :class:`~repro.nn.model.Model`
topologically sorts the nodes once and replays the order for every forward
and backward pass.
"""

from __future__ import annotations

import itertools

__all__ = ["Node", "Input", "topological_order"]

_node_counter = itertools.count()


class Node:
    """A symbolic tensor in the layer graph.

    Parameters
    ----------
    layer:
        The layer producing this tensor, or ``None`` for graph inputs.
    parents:
        Nodes consumed by ``layer`` (empty for inputs).
    shape:
        Tensor shape *excluding* the batch axis.
    """

    __slots__ = ("layer", "parents", "shape", "uid", "name")

    def __init__(self, layer, parents, shape, name=None):
        self.layer = layer
        self.parents = tuple(parents)
        self.shape = tuple(int(s) for s in shape)
        self.uid = next(_node_counter)
        self.name = name or (layer.name if layer is not None else f"input_{self.uid}")

    @property
    def is_input(self) -> bool:
        return self.layer is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.name}, shape={self.shape})"


def Input(shape, name=None) -> Node:
    """Create a graph input node with the given per-sample shape."""
    shape = tuple(int(s) for s in (shape if hasattr(shape, "__len__") else (shape,)))
    if any(s <= 0 for s in shape):
        raise ValueError(f"input shape must be positive, got {shape}")
    return Node(layer=None, parents=(), shape=shape, name=name)


def topological_order(outputs) -> list[Node]:
    """Return all nodes reachable from ``outputs`` in dependency order.

    Parents always appear before children; the order is deterministic
    (depth-first post-order on the recorded parent lists).
    """
    order: list[Node] = []
    seen: set[int] = set()

    def visit(node: Node) -> None:
        if node.uid in seen:
            return
        seen.add(node.uid)
        for parent in node.parents:
            visit(parent)
        order.append(node)

    for out in outputs:
        visit(out)
    return order
