"""Loss functions.

Every loss exposes ``__call__(y_true, y_pred, sample_weight)`` returning the
scalar mean loss, and ``grad(y_true, y_pred, sample_weight)`` returning the
gradient of that mean w.r.t. ``y_pred`` (already divided by the batch size,
so the model backward pass can feed it straight into the graph).

The paper trains with binary cross-entropy plus *class weights* to counter
the 96/4 activity/fall imbalance; class weights enter here through
``sample_weight``.
"""

from __future__ import annotations

import numpy as np

from .config import EPSILON

__all__ = [
    "Loss",
    "BinaryCrossentropy",
    "CategoricalCrossentropy",
    "MeanSquaredError",
    "get",
]


def _normalise_weight(sample_weight, y_true):
    if sample_weight is None:
        return None
    w = np.asarray(sample_weight, dtype=y_true.dtype)
    if w.shape != y_true.shape:
        w = w.reshape(y_true.shape[0], *([1] * (y_true.ndim - 1)))
    return w


class Loss:
    """Base class; subclasses implement ``__call__`` and ``grad``."""

    name = "loss"

    def __call__(self, y_true, y_pred, sample_weight=None):  # pragma: no cover
        raise NotImplementedError

    def grad(self, y_true, y_pred, sample_weight=None):  # pragma: no cover
        raise NotImplementedError


class BinaryCrossentropy(Loss):
    """Binary cross-entropy on sigmoid *probabilities*.

    ``y_pred`` is clipped away from {0, 1}.  With the clip inactive, the
    gradient composed with the sigmoid derivative reduces to the familiar
    stable ``(p - y) / N`` form.
    """

    name = "binary_crossentropy"

    def __call__(self, y_true, y_pred, sample_weight=None):
        y_true = np.asarray(y_true, dtype=y_pred.dtype).reshape(y_pred.shape)
        p = np.clip(y_pred, EPSILON, 1.0 - EPSILON)
        losses = -(y_true * np.log(p) + (1.0 - y_true) * np.log(1.0 - p))
        w = _normalise_weight(sample_weight, y_true)
        if w is not None:
            losses = losses * w
        return float(losses.mean())

    def grad(self, y_true, y_pred, sample_weight=None):
        y_true = np.asarray(y_true, dtype=y_pred.dtype).reshape(y_pred.shape)
        p = np.clip(y_pred, EPSILON, 1.0 - EPSILON)
        g = (p - y_true) / (p * (1.0 - p)) / y_pred.size
        w = _normalise_weight(sample_weight, y_true)
        if w is not None:
            g = g * w
        return g


class CategoricalCrossentropy(Loss):
    """Cross-entropy on probability rows (one-hot ``y_true``)."""

    name = "categorical_crossentropy"

    def __call__(self, y_true, y_pred, sample_weight=None):
        y_true = np.asarray(y_true, dtype=y_pred.dtype)
        p = np.clip(y_pred, EPSILON, 1.0)
        losses = -(y_true * np.log(p)).sum(axis=-1)
        if sample_weight is not None:
            losses = losses * np.asarray(sample_weight, dtype=y_pred.dtype)
        return float(losses.mean())

    def grad(self, y_true, y_pred, sample_weight=None):
        y_true = np.asarray(y_true, dtype=y_pred.dtype)
        p = np.clip(y_pred, EPSILON, 1.0)
        g = -(y_true / p) / y_pred.shape[0]
        if sample_weight is not None:
            w = np.asarray(sample_weight, dtype=y_pred.dtype)[:, None]
            g = g * w
        return g


class MeanSquaredError(Loss):
    name = "mean_squared_error"

    def __call__(self, y_true, y_pred, sample_weight=None):
        y_true = np.asarray(y_true, dtype=y_pred.dtype).reshape(y_pred.shape)
        losses = (y_pred - y_true) ** 2
        w = _normalise_weight(sample_weight, y_true)
        if w is not None:
            losses = losses * w
        return float(losses.mean())

    def grad(self, y_true, y_pred, sample_weight=None):
        y_true = np.asarray(y_true, dtype=y_pred.dtype).reshape(y_pred.shape)
        g = 2.0 * (y_pred - y_true) / y_pred.size
        w = _normalise_weight(sample_weight, y_true)
        if w is not None:
            g = g * w
        return g


_REGISTRY = {
    "binary_crossentropy": BinaryCrossentropy,
    "bce": BinaryCrossentropy,
    "categorical_crossentropy": CategoricalCrossentropy,
    "mse": MeanSquaredError,
    "mean_squared_error": MeanSquaredError,
}


def get(identifier) -> Loss:
    """Resolve a loss instance from a name, class or instance."""
    if isinstance(identifier, Loss):
        return identifier
    if isinstance(identifier, type) and issubclass(identifier, Loss):
        return identifier()
    try:
        return _REGISTRY[identifier]()
    except KeyError:
        raise ValueError(
            f"unknown loss {identifier!r}; options: {sorted(_REGISTRY)}"
        ) from None
