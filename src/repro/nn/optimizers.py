"""Gradient-descent optimizers: SGD (+momentum), RMSprop, Adam.

Optimizers update parameter arrays *in place*.  Per-parameter state (e.g.
Adam moments) is keyed by the caller-supplied parameter key, so the same
optimizer instance keeps consistent state across batches.

All optimizers support global-norm gradient clipping (``clipnorm``), which
matters for the LSTM baselines.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Optimizer", "SGD", "RMSprop", "Adam", "get"]


class Optimizer:
    """Base optimizer.

    ``weight_decay`` applies *decoupled* L2 regularisation (AdamW-style:
    the decay is added to the update, not to the gradient statistics).
    Bias/scale vectors (1-D parameters) are exempt, the usual convention.
    """

    def __init__(self, learning_rate=0.001, clipnorm=None, weight_decay=0.0):
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        self.learning_rate = float(learning_rate)
        self.clipnorm = None if clipnorm is None else float(clipnorm)
        self.weight_decay = float(weight_decay)
        self.iterations = 0

    # ------------------------------------------------------------------
    def apply(self, params: dict, grads: dict) -> None:
        """Update every parameter in ``params`` using matching ``grads``."""
        grads = self._maybe_clip(grads)
        self.iterations += 1
        for key, param in params.items():
            grad = grads.get(key)
            if grad is None:
                continue
            self._update_one(key, param, np.asarray(grad, dtype=param.dtype))
            if self.weight_decay and param.ndim > 1:
                param -= self.learning_rate * self.weight_decay * param

    def _maybe_clip(self, grads: dict) -> dict:
        if self.clipnorm is None:
            return grads
        total = float(
            np.sqrt(sum(float(np.sum(g.astype(np.float64) ** 2)) for g in grads.values()))
        )
        if total <= self.clipnorm or total == 0.0:
            return grads
        scale = self.clipnorm / total
        return {k: g * scale for k, g in grads.items()}

    def _update_one(self, key, param, grad):  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, learning_rate=0.01, momentum=0.0, clipnorm=None,
                 weight_decay=0.0):
        super().__init__(learning_rate, clipnorm, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity: dict = {}

    def _update_one(self, key, param, grad):
        if self.momentum:
            v = self._velocity.get(key)
            if v is None:
                v = np.zeros_like(param)
            v = self.momentum * v - self.learning_rate * grad
            self._velocity[key] = v
            param += v
        else:
            param -= self.learning_rate * grad


class RMSprop(Optimizer):
    """RMSprop (Hinton): scale updates by a running RMS of gradients."""

    def __init__(self, learning_rate=0.001, rho=0.9, epsilon=1e-7,
                 clipnorm=None, weight_decay=0.0):
        super().__init__(learning_rate, clipnorm, weight_decay)
        self.rho = float(rho)
        self.epsilon = float(epsilon)
        self._ms: dict = {}

    def _update_one(self, key, param, grad):
        ms = self._ms.get(key)
        if ms is None:
            ms = np.zeros_like(param)
        ms = self.rho * ms + (1.0 - self.rho) * grad * grad
        self._ms[key] = ms
        param -= self.learning_rate * grad / (np.sqrt(ms) + self.epsilon)


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        learning_rate=0.001,
        beta_1=0.9,
        beta_2=0.999,
        epsilon=1e-7,
        clipnorm=None,
        weight_decay=0.0,
    ):
        super().__init__(learning_rate, clipnorm, weight_decay)
        self.beta_1 = float(beta_1)
        self.beta_2 = float(beta_2)
        self.epsilon = float(epsilon)
        self._m: dict = {}
        self._v: dict = {}

    def _update_one(self, key, param, grad):
        m = self._m.get(key)
        v = self._v.get(key)
        if m is None:
            m = np.zeros_like(param)
            v = np.zeros_like(param)
        m = self.beta_1 * m + (1.0 - self.beta_1) * grad
        v = self.beta_2 * v + (1.0 - self.beta_2) * grad * grad
        self._m[key] = m
        self._v[key] = v
        t = self.iterations
        m_hat = m / (1.0 - self.beta_1**t)
        v_hat = v / (1.0 - self.beta_2**t)
        param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)


_REGISTRY = {"sgd": SGD, "rmsprop": RMSprop, "adam": Adam}


def get(identifier) -> Optimizer:
    """Resolve an optimizer instance from a name, class or instance."""
    if isinstance(identifier, Optimizer):
        return identifier
    if isinstance(identifier, type) and issubclass(identifier, Optimizer):
        return identifier()
    try:
        return _REGISTRY[identifier]()
    except KeyError:
        raise ValueError(
            f"unknown optimizer {identifier!r}; options: {sorted(_REGISTRY)}"
        ) from None
