"""Global configuration for the numpy neural-network framework.

The framework keeps a single global floating-point dtype.  Training the
paper's models uses ``float32`` (fast, matches what TensorFlow would do on
the authors' workstation), while the finite-difference gradient checks in
the test-suite switch to ``float64`` for numerical headroom.
"""

from __future__ import annotations

import contextlib

import numpy as np

_DTYPE = np.float32

#: Small constant used to stabilise logarithms and divisions.
EPSILON = 1e-7


def floatx() -> np.dtype:
    """Return the current global floating point dtype."""
    return _DTYPE


def set_floatx(dtype) -> None:
    """Set the global floating point dtype (``np.float32`` or ``np.float64``)."""
    global _DTYPE
    dtype = np.dtype(dtype)
    if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(f"unsupported float dtype: {dtype}")
    _DTYPE = dtype.type


@contextlib.contextmanager
def float_precision(dtype):
    """Context manager that temporarily changes the global float dtype."""
    previous = floatx()
    set_floatx(dtype)
    try:
        yield
    finally:
        set_floatx(previous)


def asfloat(array) -> np.ndarray:
    """Cast ``array`` to the global float dtype (no copy when already right)."""
    return np.asarray(array, dtype=floatx())
