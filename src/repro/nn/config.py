"""Global configuration for the numpy neural-network framework.

The framework keeps a single global floating-point dtype.  Training the
paper's models uses ``float32`` (fast, matches what TensorFlow would do on
the authors' workstation), while the finite-difference gradient checks in
the test-suite switch to ``float64`` for numerical headroom.
"""

from __future__ import annotations

import contextlib

import numpy as np

_DTYPE = np.float32

#: Small constant used to stabilise logarithms and divisions.
EPSILON = 1e-7


def floatx() -> np.dtype:
    """Return the current global floating point dtype."""
    return _DTYPE


def set_floatx(dtype) -> None:
    """Set the global floating point dtype (``np.float32`` or ``np.float64``)."""
    global _DTYPE
    dtype = np.dtype(dtype)
    if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(f"unsupported float dtype: {dtype}")
    _DTYPE = dtype.type


@contextlib.contextmanager
def float_precision(dtype):
    """Context manager that temporarily changes the global float dtype."""
    previous = floatx()
    set_floatx(dtype)
    try:
        yield
    finally:
        set_floatx(previous)


def asfloat(array) -> np.ndarray:
    """Cast ``array`` to the global float dtype (no copy when already right)."""
    return np.asarray(array, dtype=floatx())


_BATCH_INVARIANT = False


def batch_invariant_enabled() -> bool:
    """Whether matmuls are currently forced onto the batch-invariant path."""
    return _BATCH_INVARIANT


def set_batch_invariant(enabled: bool) -> None:
    """Toggle batch-invariant matmul kernels (see :func:`matmul`)."""
    global _BATCH_INVARIANT
    _BATCH_INVARIANT = bool(enabled)


@contextlib.contextmanager
def batch_invariant(enabled: bool = True):
    """Context manager forcing bitwise batch-size-invariant inference.

    BLAS ``gemm``/``gemv`` pick different blocking (and therefore different
    accumulation orders) depending on the number of rows, so the same
    sample can produce last-ulp-different outputs in a batch of 1 versus a
    batch of 64.  Inside this context, 2-D matmuls route through
    ``np.einsum`` whose per-element accumulation order is fixed, making a
    row of ``predict(batch)`` bitwise identical no matter which other rows
    share the batch.  The multi-stream serving engine relies on this to
    keep micro-batched detections byte-identical to solo-stream runs;
    training keeps the fast BLAS path by default.
    """
    previous = _BATCH_INVARIANT
    set_batch_invariant(enabled)
    try:
        yield
    finally:
        set_batch_invariant(previous)


def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a @ b`` with an opt-in batch-invariant kernel.

    Stacked (3-D+) operands already run one independent GEMM per batch
    element, which is invariant by construction, so only the 2-D case —
    where BLAS blocking depends on the row count — is rerouted.
    """
    if _BATCH_INVARIANT and a.ndim == 2 and b.ndim == 2:
        return np.einsum("ij,jk->ik", a, b)
    return a @ b
