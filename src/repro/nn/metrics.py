"""Training-time metrics computed on predictions.

These are lightweight epoch metrics for ``Model.fit`` logging; the full
paper-style evaluation (segment *and* event level) lives in
:mod:`repro.eval.metrics`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["binary_accuracy", "accuracy", "get"]


def binary_accuracy(y_true, y_pred, threshold=0.5) -> float:
    """Fraction of sigmoid outputs on the right side of ``threshold``."""
    y_true = np.asarray(y_true).reshape(-1)
    y_hat = (np.asarray(y_pred).reshape(-1) >= threshold).astype(int)
    return float(np.mean(y_hat == y_true.astype(int)))


def accuracy(y_true, y_pred) -> float:
    """Argmax accuracy for one-hot / probability-row predictions."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_pred.ndim == 1 or y_pred.shape[-1] == 1:
        return binary_accuracy(y_true, y_pred)
    return float(np.mean(y_pred.argmax(axis=-1) == y_true.argmax(axis=-1)))


_REGISTRY = {"binary_accuracy": binary_accuracy, "accuracy": accuracy}


def get(identifier):
    if callable(identifier):
        return identifier
    try:
        return _REGISTRY[identifier]
    except KeyError:
        raise ValueError(
            f"unknown metric {identifier!r}; options: {sorted(_REGISTRY)}"
        ) from None
