"""Training callbacks.

The paper's protocol is "200 epochs, early stopping with patience 20 on the
validation loss, restore best weights" — exactly what
:class:`EarlyStopping` implements.
"""

from __future__ import annotations

import copy
import json
import time

__all__ = [
    "Callback",
    "EarlyStopping",
    "History",
    "CSVLogger",
    "TelemetryCallback",
    "ReduceLROnPlateau",
    "LambdaCallback",
]


class Callback:
    """Base callback; the model attaches itself as ``self.model``."""

    def __init__(self):
        self.model = None

    def set_model(self, model) -> None:
        self.model = model

    def on_train_begin(self, logs=None) -> None: ...

    def on_train_end(self, logs=None) -> None: ...

    def on_epoch_begin(self, epoch, logs=None) -> None: ...

    def on_epoch_end(self, epoch, logs=None) -> None: ...


class History(Callback):
    """Records per-epoch logs; always installed by ``Model.fit``."""

    def __init__(self):
        super().__init__()
        self.history: dict[str, list[float]] = {}
        self.epochs: list[int] = []

    def on_train_begin(self, logs=None) -> None:
        self.history = {}
        self.epochs = []

    def on_epoch_end(self, epoch, logs=None) -> None:
        self.epochs.append(epoch)
        for key, value in (logs or {}).items():
            self.history.setdefault(key, []).append(value)


class EarlyStopping(Callback):
    """Stop when a monitored quantity stops improving.

    Parameters
    ----------
    monitor:
        Key in the epoch logs (``'val_loss'`` by default).
    patience:
        Epochs without improvement tolerated before stopping.
    min_delta:
        Minimum change counting as an improvement.
    restore_best_weights:
        Put the best-epoch weights back on the model when stopping (and at
        the natural end of training), as the paper does.
    mode:
        'min' (losses) or 'max' (accuracies).
    """

    def __init__(
        self,
        monitor="val_loss",
        patience=20,
        min_delta=0.0,
        restore_best_weights=True,
        mode="min",
    ):
        super().__init__()
        if mode not in ("min", "max"):
            raise ValueError(f"mode must be 'min' or 'max', got {mode!r}")
        self.monitor = monitor
        self.patience = int(patience)
        self.min_delta = float(abs(min_delta))
        self.restore_best_weights = bool(restore_best_weights)
        self.mode = mode
        self.best: float | None = None
        self.best_epoch = -1
        self.wait = 0
        self.stopped_epoch = -1
        self._best_weights = None

    def _is_improvement(self, value: float) -> bool:
        if self.best is None:
            return True
        if self.mode == "min":
            return value < self.best - self.min_delta
        return value > self.best + self.min_delta

    def on_train_begin(self, logs=None) -> None:
        self.best = None
        self.best_epoch = -1
        self.wait = 0
        self.stopped_epoch = -1
        self._best_weights = None

    def on_epoch_end(self, epoch, logs=None) -> None:
        logs = logs or {}
        if self.monitor not in logs:
            return
        value = float(logs[self.monitor])
        if self._is_improvement(value):
            self.best = value
            self.best_epoch = epoch
            self.wait = 0
            if self.restore_best_weights:
                self._best_weights = copy.deepcopy(self.model.get_weights())
        else:
            self.wait += 1
            if self.wait >= self.patience:
                self.stopped_epoch = epoch
                self.model.stop_training = True

    def on_train_end(self, logs=None) -> None:
        if self.restore_best_weights and self._best_weights is not None:
            self.model.set_weights(self._best_weights)


class CSVLogger(Callback):
    """Append per-epoch logs to a CSV file."""

    def __init__(self, path, delimiter=","):
        super().__init__()
        self.path = str(path)
        self.delimiter = delimiter
        self._keys: list[str] | None = None
        self._fh = None

    def on_train_begin(self, logs=None) -> None:
        self._fh = open(self.path, "w", encoding="utf-8")
        self._keys = None

    def on_epoch_end(self, epoch, logs=None) -> None:
        logs = logs or {}
        if self._keys is None:
            self._keys = sorted(logs)
            self._fh.write(self.delimiter.join(["epoch", *self._keys]) + "\n")
        row = [str(epoch)] + [f"{logs.get(k, float('nan')):.6g}" for k in self._keys]
        self._fh.write(self.delimiter.join(row) + "\n")
        # Flush per epoch: early stopping or a crash must not lose rows.
        self._fh.flush()

    def on_train_end(self, logs=None) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class TelemetryCallback(Callback):
    """Stream one JSON record per epoch to a JSONL file.

    Each line carries the epoch index, its wall-clock duration and every
    entry of the epoch logs (loss, metrics, val_*); a final ``train_end``
    line summarises the run.  Lines are flushed as written, so a live
    training run can be tailed.  Epoch durations also land in the
    ``fit/epoch_ms`` histogram of ``registry`` (default: the global one).
    """

    def __init__(self, path, registry=None):
        super().__init__()
        self.path = str(path)
        self._registry = registry
        self._fh = None
        self._epoch_start = 0.0
        self._train_start = 0.0
        self._epochs = 0

    def _histogram(self):
        if self._registry is None:
            from ..obs import get_registry

            self._registry = get_registry()
        return self._registry.histogram("fit/epoch_ms")

    def on_train_begin(self, logs=None) -> None:
        self._fh = open(self.path, "w", encoding="utf-8")
        self._train_start = time.perf_counter()
        self._epochs = 0

    def on_epoch_begin(self, epoch, logs=None) -> None:
        self._epoch_start = time.perf_counter()

    def on_epoch_end(self, epoch, logs=None) -> None:
        duration_s = time.perf_counter() - self._epoch_start
        self._epochs = epoch + 1
        self._histogram().observe(1000.0 * duration_s)
        record = {"event": "epoch", "epoch": epoch,
                  "duration_s": round(duration_s, 6)}
        for key, value in (logs or {}).items():
            record[key] = float(value)
        self._fh.write(json.dumps(record) + "\n")
        self._fh.flush()

    def on_train_end(self, logs=None) -> None:
        if self._fh is None:
            return
        total_s = time.perf_counter() - self._train_start
        self._fh.write(json.dumps({
            "event": "train_end",
            "epochs": self._epochs,
            "total_s": round(total_s, 6),
        }) + "\n")
        self._fh.close()
        self._fh = None


class ReduceLROnPlateau(Callback):
    """Multiply the learning rate by ``factor`` when progress stalls."""

    def __init__(
        self, monitor="val_loss", factor=0.5, patience=5, min_lr=1e-6, mode="min"
    ):
        super().__init__()
        if not 0.0 < factor < 1.0:
            raise ValueError(f"factor must be in (0, 1), got {factor}")
        self.monitor = monitor
        self.factor = float(factor)
        self.patience = int(patience)
        self.min_lr = float(min_lr)
        self.mode = mode
        self.best: float | None = None
        self.wait = 0

    def on_train_begin(self, logs=None) -> None:
        self.best = None
        self.wait = 0

    def on_epoch_end(self, epoch, logs=None) -> None:
        logs = logs or {}
        if self.monitor not in logs:
            return
        value = float(logs[self.monitor])
        better = self.best is None or (
            value < self.best if self.mode == "min" else value > self.best
        )
        if better:
            self.best = value
            self.wait = 0
            return
        self.wait += 1
        if self.wait >= self.patience:
            opt = self.model.optimizer
            new_lr = max(opt.learning_rate * self.factor, self.min_lr)
            if new_lr < opt.learning_rate:
                opt.learning_rate = new_lr
            self.wait = 0


class LambdaCallback(Callback):
    """Wrap ad-hoc functions as a callback."""

    def __init__(self, on_epoch_end=None, on_train_begin=None, on_train_end=None):
        super().__init__()
        self._on_epoch_end = on_epoch_end
        self._on_train_begin = on_train_begin
        self._on_train_end = on_train_end

    def on_train_begin(self, logs=None) -> None:
        if self._on_train_begin:
            self._on_train_begin(logs)

    def on_epoch_end(self, epoch, logs=None) -> None:
        if self._on_epoch_end:
            self._on_epoch_end(epoch, logs)

    def on_train_end(self, logs=None) -> None:
        if self._on_train_end:
            self._on_train_end(logs)
