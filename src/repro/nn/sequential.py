"""``Sequential``: the linear-stack convenience wrapper.

The paper's own CNN is branched and needs the functional API, but the
baselines (MLP, LSTM stacks) are linear chains — this mirrors
``keras.Sequential`` for those.
"""

from __future__ import annotations

from .graph import Input
from .model import Model

__all__ = ["Sequential"]


def Sequential(input_shape, layers, name="sequential") -> Model:
    """Build a :class:`~repro.nn.model.Model` from a list of layers.

    Parameters
    ----------
    input_shape:
        Per-sample input shape (no batch axis).
    layers:
        Layer instances applied in order.  Each must be unused (layers
        cannot be shared between models).

    Example::

        model = nn.Sequential((40, 9), [
            nn.layers.Flatten(),
            nn.layers.Dense(64, activation="relu"),
            nn.layers.Dense(1, activation="sigmoid"),
        ])
    """
    layers = list(layers)
    if not layers:
        raise ValueError("Sequential needs at least one layer")
    node = Input(input_shape)
    inp = node
    for layer in layers:
        node = layer(node)
    return Model(inp, node, name=name)
