# Developer entry points. `make test` is the tier-1 gate; `make lint`
# enforces the no-print and metric-name rules in library code; `make
# check` runs lints + tests.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint check http-smoke bench profile faults serve-bench \
	parallel-bench tail-demo alerts-demo fleet-demo fleet-bench slo-demo \
	quant-demo quant-bench

# tests/test_detector_block.py (the push_block ≡ push_collect
# bit-identity gate for the serve fast path) rides along here, so
# `make check` always re-proves the identity.
test:
	$(PYTHON) -m pytest -x -q

lint:
	$(PYTHON) scripts/check_no_print.py
	$(PYTHON) scripts/check_metric_names.py

# End-to-end smoke of the observability endpoint: serve a small alerting
# fleet on an ephemeral port, hit every route, lint the /metrics body.
http-smoke:
	$(PYTHON) scripts/http_smoke.py

check: lint test http-smoke fleet-demo slo-demo quant-demo

bench:
	$(PYTHON) -m pytest benchmarks -q

profile:
	$(PYTHON) -m repro --scale quick profile

faults:
	$(PYTHON) -m pytest tests -q -k "faults" && \
	$(PYTHON) -m repro --scale quick faults --incident-dir benchmarks/results/incidents

serve-bench:
	$(PYTHON) -m pytest benchmarks/test_bench_serve.py -q

# Parallel fold/grid scaling + cache warm-start numbers, archived to
# benchmarks/results/parallel_scaling.txt.
parallel-bench:
	$(PYTHON) -m pytest benchmarks/test_bench_parallel.py -q

# Quick serve workload with the dashboard rendered once to stdout, then
# the exposition linted — exercises the whole export path end to end.
tail-demo:
	mkdir -p benchmarks/results
	$(PYTHON) -m repro tail --once --streams 8 --duration 4 \
		--metrics-out benchmarks/results/serve_exposition.prom
	$(PYTHON) scripts/check_metric_names.py --exposition \
		benchmarks/results/serve_exposition.prom

# Small sharded-fleet run (bit-identity + worker-kill failover arms) as
# a fast end-to-end gate for `make check`; `timeout` guards wall clock
# so a wedged worker/supervisor fails the build instead of hanging it.
fleet-demo:
	timeout 300 $(PYTHON) -m repro fleet-bench --streams 12 --shards 3

# Full fleet scaling benchmark (>= 64 streams / 4 shards), archived to
# benchmarks/results/fleet_scaling.txt with the merged exposition linted.
fleet-bench:
	timeout 900 $(PYTHON) -m pytest benchmarks/test_bench_fleet.py -q

# Scenario-driven alert-pipeline evaluation with persistent event stores
# under benchmarks/results/alert_stores/; the report is archived for
# scripts/update_experiments_md.py (ALERTS placeholder).
alerts-demo:
	mkdir -p benchmarks/results
	$(PYTHON) -m repro alerts --duration 6 \
		--store-dir benchmarks/results/alert_stores \
		| tee benchmarks/results/alert_pipeline.txt

# Small quantized-serving run (float32 / int8 / int8+pruned arms with
# the bit-identity contract checks) as a fast end-to-end gate for
# `make check`; `timeout` guards wall clock.
quant-demo:
	timeout 600 $(PYTHON) -m repro --scale quick quant-bench \
		--streams 8 --duration 2

# Full quantized-serving benchmark (32 streams, speedup + sensitivity
# gates), archived to benchmarks/results/quant_scaling.txt.
quant-bench:
	timeout 900 $(PYTHON) -m pytest benchmarks/test_bench_quant.py -q

# SLO engine end to end: budget attribution, error-budget accounting and
# the synthetic-overload fast-burn alert, archived for
# scripts/update_experiments_md.py (SLO placeholder). Sleep-free — burn
# windows run on stream time — so it is cheap enough for `make check`.
slo-demo:
	mkdir -p benchmarks/results
	$(PYTHON) -m repro slo | tee benchmarks/results/slo_report.txt
