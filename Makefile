# Developer entry points. `make test` is the tier-1 gate; `make lint`
# enforces the no-print rule in library code; `make check` runs both.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint check bench profile faults serve-bench

test:
	$(PYTHON) -m pytest -x -q

lint:
	$(PYTHON) scripts/check_no_print.py

check: lint test

bench:
	$(PYTHON) -m pytest benchmarks -q

profile:
	$(PYTHON) -m repro --scale quick profile

faults:
	$(PYTHON) -m pytest tests -q -k "faults" && \
	$(PYTHON) -m repro --scale quick faults

serve-bench:
	$(PYTHON) -m pytest benchmarks/test_bench_serve.py -q
