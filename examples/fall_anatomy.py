#!/usr/bin/env python3
"""Figure 1 in data: the four stages of a fall, and why 150 ms matters.

Generates one fall of each macro-category (from walking, from sitting,
from standing-to-sit, from height) and prints per-stage statistics plus an
ASCII strip chart of the acceleration magnitude with the stage boundaries
marked — the textual equivalent of the paper's Figure 1.

Run:  python examples/fall_anatomy.py
"""

from __future__ import annotations

import numpy as np

from repro.datasets import TASKS, make_subjects
from repro.datasets.synthesis.generator import synthesize_recording
from repro.experiments import fall_anatomy

SHOWCASES = [
    (30, "forward fall while walking (trip)"),
    (27, "backward fall while sitting (fainting)"),
    (21, "backward fall when trying to sit down"),
    (39, "forward fall from height"),
]


def strip_chart(recording, width: int = 78, height: int = 10) -> str:
    """ASCII rendering of |accel| with onset/impact markers."""
    mag = np.linalg.norm(recording.accel, axis=1)
    n = mag.size
    bins = np.array_split(np.arange(n), width)
    values = np.array([mag[b].max() for b in bins])
    top = max(values.max(), 2.0)
    rows = []
    for level in range(height, 0, -1):
        threshold = top * level / height
        rows.append("".join("#" if v >= threshold else " " for v in values))
    axis = [" "] * width
    for mark, char in ((recording.fall_onset, "O"), (recording.impact, "X")):
        column = min(int(mark / n * width), width - 1)
        axis[column] = char
    rows.append("".join(axis))
    rows.append(f"O = fall onset, X = impact; y-axis 0..{top:.1f} g")
    return "\n".join(rows)


def main() -> None:
    subject = make_subjects("FIG", 1, seed=4)[0]
    for task_id, label in SHOWCASES:
        recording = synthesize_recording(TASKS[task_id], subject, base_seed=11)
        anatomy = fall_anatomy(recording)
        print(f"\n=== task {task_id}: {label} ===")
        print(f"falling phase: {anatomy['falling_duration_ms']:.0f} ms "
              f"(onset {anatomy['onset_s']:.2f} s, impact "
              f"{anatomy['impact_s']:.2f} s)")
        for stage, stats in anatomy["stages"].items():
            if stats.get("duration_ms", 0.0) == 0.0:
                continue
            print(f"  {stage:24s} {stats['duration_ms']:6.0f} ms  "
                  f"|a| [{stats['accel_mag_min']:.2f}, "
                  f"{stats['accel_mag_max']:.2f}] g  "
                  f"|w| max {stats['gyro_mag_max']:.0f} deg/s")
        usable = anatomy["stages"]["falling_usable"]["duration_ms"]
        print(f"  -> usable pre-impact evidence after the 150 ms cut: "
              f"{usable:.0f} ms")
        print(strip_chart(recording))


if __name__ == "__main__":
    main()
