#!/usr/bin/env python3
"""Real-time airbag control on streaming IMU samples.

The deployment scenario from the paper's introduction: a worker wears a
Protechto-style airbag jacket; samples arrive at 100 Hz; the detector must
trigger inflation at least 150 ms before ground impact for the bag to be
fully extended.

This example:

1. trains a small CNN (quickly, on synthetic subjects);
2. quantizes it to int8 — the arithmetic the MCU runs;
3. wraps it in the streaming :class:`FallDetector` + airbag state machine;
4. replays a *held-out subject's* trials sample by sample: a backward fall
   from walking, a fall from height (the hard case), and a vigorous
   jump-over-obstacle ADL (the false-positive trap);
5. reports, per trial, whether and when the airbag fired and whether it
   was fully inflated before impact.

Run:  python examples/airbag_controller.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    AirbagController,
    DetectorConfig,
    FallDetector,
    PreprocessConfig,
    TrainingConfig,
    build_lightweight_cnn,
    build_segments,
    train_model,
)
from repro.datasets import TASKS, build_selfcollected, make_subjects
from repro.datasets.synthesis.generator import synthesize_recording
from repro.quant import QuantizedModel


def train_quantized_model():
    print("training a detector on 4 synthetic subjects ...")
    dataset = build_selfcollected(n_subjects=4, duration_scale=0.4, seed=21)
    segments = build_segments(dataset, PreprocessConfig())
    subjects = segments.subjects
    train = segments.by_subjects(subjects[:3])
    val = segments.by_subjects(subjects[3:])
    model, _ = train_model(
        build_lightweight_cnn, train, val,
        TrainingConfig(epochs=15, patience=5),
    )
    print("post-training int8 quantization ...")
    rng = np.random.default_rng(0)
    calib = train.X[rng.choice(len(train), size=min(256, len(train)),
                               replace=False)]
    return QuantizedModel.convert(model, calib)


def replay_trial(qmodel, recording, label: str) -> None:
    detector = FallDetector(qmodel, DetectorConfig(threshold=0.5))
    airbag = AirbagController(detector, inflation_ms=150.0)
    for i in range(recording.n_samples):
        airbag.push(recording.accel[i], recording.gyro[i])

    print(f"\n--- {label} ---")
    if recording.is_fall:
        impact_t = recording.impact / recording.fs
        onset_t = recording.fall_onset / recording.fs
        print(f"fall onset at {onset_t:.2f} s, impact at {impact_t:.2f} s "
              f"(falling phase {1000 * (impact_t - onset_t):.0f} ms)")
        if airbag.trigger is None:
            print("airbag: NOT fired -> fall missed")
        else:
            lead = impact_t - airbag.trigger.time_s
            verdict = ("fully inflated before impact"
                       if airbag.protects(impact_t)
                       else "TOO LATE (bag still inflating at impact)")
            print(f"airbag: fired at {airbag.trigger.time_s:.2f} s "
                  f"(p={airbag.trigger.probability:.2f}), "
                  f"{1000 * lead:.0f} ms before impact -> {verdict}")
    else:
        if airbag.trigger is None:
            print("airbag: silent through the whole activity (correct)")
        else:
            print(f"airbag: FALSE ACTIVATION at {airbag.trigger.time_s:.2f} s "
                  "-> discomfort + recharge cost")


def main() -> None:
    qmodel = train_quantized_model()
    # A subject the detector has never seen.
    unseen = make_subjects("NEW", 1, seed=999)[0]
    trials = [
        (TASKS[34], "backward fall while walking (slip)"),
        (TASKS[39], "forward fall from height (hardest case)"),
        (TASKS[44], "walk + jump over obstacle (false-positive trap)"),
        (TASKS[6], "ordinary walk with turn"),
    ]
    for task, label in trials:
        recording = synthesize_recording(task, unseen, base_seed=5)
        replay_trial(qmodel, recording, label)


if __name__ == "__main__":
    main()
