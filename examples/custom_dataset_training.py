#!/usr/bin/env python3
"""Bring-your-own-data: adapt the pipeline to a foreign IMU corpus.

Demonstrates the dataset-alignment path of Section IV-A on a deliberately
mis-calibrated corpus: a third "lab" dataset recorded with the sensor
mounted at a different tilt and logging acceleration in m/s².  We:

1. build the foreign corpus (tilted frame, SI units);
2. estimate its frame rotation from quiet-standing gravity and align it
   with Rodrigues' formula;
3. merge it with the canonical self-collected corpus;
4. train on the merged data, test on held-out subjects of *both* sources
   — showing the alignment is what makes the merge useful.

Run:  python examples/custom_dataset_training.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    PreprocessConfig,
    TrainingConfig,
    build_lightweight_cnn,
    build_segments,
    train_model,
)
from repro.datasets import (
    Dataset,
    align_dataset,
    build_selfcollected,
    estimate_frame_rotation,
)
from repro.datasets.kfall import _to_kfall_frame  # reuse the tilted encoder
from repro.eval import segment_metrics


def build_foreign_lab_dataset(n_subjects=3, seed=31) -> Dataset:
    """A corpus captured by another lab: tilted mount, m/s² units."""
    canonical = build_selfcollected(n_subjects=n_subjects, duration_scale=0.4,
                                    seed=seed)
    tilted = []
    for rec in canonical:
        foreign = _to_kfall_frame(rec, rec.fs)
        # Distinct subject ids: these are *different people* in another lab.
        foreign = foreign.with_signals(
            subject_id=rec.subject_id.replace("SC", "FL"),
            dataset="foreign-lab",
        )
        tilted.append(foreign)
    return Dataset("foreign-lab", tilted, frame="kfall")


def main() -> None:
    print("building corpora ...")
    ours = build_selfcollected(n_subjects=3, duration_scale=0.4, seed=77)
    foreign = build_foreign_lab_dataset()
    print(f"  ours:    {ours.summary()}")
    print(f"  foreign: {foreign.summary()} (frame={foreign.frame!r})")

    print("\nestimating the foreign frame from quiet-standing gravity ...")
    rotation = estimate_frame_rotation(foreign)
    print(f"  rotation matrix:\n{np.array2string(rotation, precision=3)}")

    aligned = align_dataset(foreign, rotation)
    merged = Dataset.merge("merged", ours, aligned)
    print(f"\nmerged: {merged.summary()}")

    print("\npreprocessing + subject-independent split across sources ...")
    segments = build_segments(merged, PreprocessConfig())
    subjects = segments.subjects
    test_subjects = [subjects[0], subjects[-1]]   # one from each corpus
    val_subjects = [subjects[1]]
    train_subjects = [s for s in subjects
                      if s not in test_subjects + val_subjects]
    train = segments.by_subjects(train_subjects)
    val = segments.by_subjects(val_subjects)

    model, _ = train_model(build_lightweight_cnn, train, val,
                           TrainingConfig(epochs=15, patience=5))

    print("\nper-source held-out performance:")
    for subject in test_subjects:
        subset = segments.by_subjects([subject])
        probs = model.predict(subset.X).reshape(-1)
        metrics = segment_metrics(subset.y, probs)
        source = "ours" if subject.startswith("SC") else "foreign"
        print(f"  {subject} ({source:7s}): "
              + "  ".join(f"{k}={100 * metrics[k]:.1f}%"
                          for k in ("accuracy", "f1")))
    print("\nthe model generalises across sources because both live in one "
          "frame;\nskip the alignment step and the foreign gravity axis "
          "points sideways.")


if __name__ == "__main__":
    main()
