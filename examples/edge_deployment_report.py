#!/usr/bin/env python3
"""Edge deployment study: quantize, analyse, and emit C for the STM32F722.

Reproduces Section IV-C's deployment story end to end:

1. train the 400 ms CNN briefly;
2. post-training int8 quantization, with float-vs-int8 parity check;
3. flash/RAM/latency analysis against the STM32F722's 256 KiB budgets,
   including the activation-arena plan (TFLite-Micro-style buffer reuse);
4. generate the standalone C inference source an embedded engineer would
   drop into the firmware tree (written next to this script).

Run:  python examples/edge_deployment_report.py
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.edge import generate_c_source, plan_arena
from repro.eval.reports import render_edge_report
from repro.experiments import QUICK, run_edge_experiment


def main() -> None:
    print("training + quantizing (quick scale) ...")
    result = run_edge_experiment(QUICK)
    report = result["report"]

    print("\n=== float32 vs int8 (held-out subjects) ===")
    for name, metrics in (("float32", result["float_metrics"]),
                          ("int8", result["int8_metrics"])):
        print(f"  {name:8s} "
              + "  ".join(f"{k}={100 * metrics[k]:.2f}%"
                          for k in ("accuracy", "precision", "recall", "f1")))
    print(f"  decision agreement: {100 * result['decision_agreement']:.2f}%")
    print(f"  F1 drop: {result['f1_drop_points']:.2f} points "
          "(paper: 'performance remains unchanged')")

    print("\n=== deployment analysis (STM32F722, 216 MHz Cortex-M7) ===")
    print(render_edge_report(report))
    print(f"\n  real-time margin: {report['real_time_margin']:.0f}x "
          f"(one inference + fusion per {report['hop_budget_ms']:.0f} ms hop)")
    print(f"  fits flash: {report['fits_flash']}, fits RAM: "
          f"{report['fits_ram']}, meets deadline: {report['meets_deadline']}")

    qmodel = result["qmodel"]
    arena = plan_arena(qmodel)
    print("\n=== activation arena plan ===")
    print(f"  naive (one buffer per tensor): {arena['naive_bytes']} B")
    print(f"  planned arena:                 {arena['arena_bytes']} B")
    print(f"  theoretical lower bound:       {arena['lower_bound_bytes']} B")

    print("\n=== per-op latency breakdown ===")
    for name, kind, ms in report["latency_breakdown"]["per_op"]:
        print(f"  {name:20s} {kind:12s} {1000 * ms:8.1f} us")

    out = pathlib.Path(__file__).with_name("fall_cnn_generated.c")
    rng = np.random.default_rng(0)
    demo_input = rng.normal(size=(1, *qmodel.input_shape)).astype(np.float32)
    out.write_text(generate_c_source(qmodel, include_main=True,
                                     test_input=demo_input))
    print(f"\nC inference source written to {out}")
    print("compile with:  cc -O2 -std=c99 fall_cnn_generated.c -lm")


if __name__ == "__main__":
    main()
