#!/usr/bin/env python3
"""Quickstart: train the paper's lightweight CNN and evaluate it.

Walks the whole method on a small synthetic corpus in a couple of
minutes:

1. generate the KFall-like and self-collected-like datasets;
2. align frames/units and merge (Rodrigues rotation, Section IV-A);
3. filter + segment with the 400 ms / 50 % configuration, withholding the
   last 150 ms of every falling phase (airbag inflation time);
4. train with augmentation, class weights and output-bias initialisation
   under a subject-independent split;
5. report segment-level metrics (Table III style) and event-level miss /
   false-positive rates (Table IV style).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    PreprocessConfig,
    TrainingConfig,
    build_lightweight_cnn,
    build_merged_dataset,
    build_segments,
    evaluate_events,
    subject_folds,
    train_model,
)
from repro.eval import segment_metrics


def main() -> None:
    print("1) generating synthetic KFall + self-collected data ...")
    dataset = build_merged_dataset(
        kfall_subjects=4, selfcollected_subjects=4,
        duration_scale=0.4, seed=7,
    )
    print(f"   {dataset.summary()}")

    print("2) preprocessing (5 Hz Butterworth, 400 ms windows, 50 % overlap,"
          " 150 ms truncation) ...")
    segments = build_segments(dataset, PreprocessConfig())
    summary = segments.class_summary()
    print(f"   {summary['segments']} segments, "
          f"{summary['falling']} falling "
          f"({100 * summary['falling_fraction']:.1f} % — the imbalance the "
          "paper fights with class weights)")

    print("3) subject-independent split ...")
    fold = subject_folds(segments.subjects, k=4, n_val_subjects=1, seed=0)[0]
    train = segments.by_subjects(fold.train_subjects)
    val = segments.by_subjects(fold.val_subjects)
    test = segments.by_subjects(fold.test_subjects)
    print(f"   train={fold.train_subjects} val={fold.val_subjects} "
          f"test={fold.test_subjects}")

    print("4) training the lightweight three-branch CNN ...")
    model, history = train_model(
        build_lightweight_cnn, train, val,
        TrainingConfig(epochs=20, patience=6, verbose=1),
    )
    print(f"   stopped after {len(history.epochs)} epochs; "
          f"{model.count_params()} parameters")

    print("5) evaluating on held-out subjects ...")
    probabilities = model.predict(test.X).reshape(-1)
    metrics = segment_metrics(test.y, probabilities)
    print("   segment level (macro, like Table III): "
          + "  ".join(f"{k}={100 * metrics[k]:.2f}%"
                      for k in ("accuracy", "precision", "recall", "f1")))
    events = evaluate_events(test, probabilities)
    print(f"   event level (like Table IV): "
          f"falls missed {events.fall_miss_rate:.1f}% | "
          f"ADL false positives {events.adl_false_positive_rate:.1f}%")

    np.set_printoptions(precision=3)
    print("\nmodel summary:\n" + model.summary())


if __name__ == "__main__":
    main()
