"""Unit tests for the deterministic bounded exponential backoff."""

import pytest

from repro.utils import Backoff


def test_schedule_is_bounded_exponential():
    backoff = Backoff(initial_s=0.05, factor=2.0, max_s=0.3, max_attempts=5)
    assert backoff.schedule() == [0.05, 0.1, 0.2, 0.3, 0.3]


def test_next_consumes_attempts_in_schedule_order():
    backoff = Backoff(initial_s=0.01, factor=3.0, max_s=1.0, max_attempts=4)
    expected = backoff.schedule()
    assert [backoff.next() for _ in range(4)] == expected


def test_exhaustion_raises_and_is_observable():
    backoff = Backoff(initial_s=0.01, max_attempts=2)
    assert not backoff.exhausted
    backoff.next()
    backoff.next()
    assert backoff.exhausted
    with pytest.raises(RuntimeError):
        backoff.next()


def test_reset_restores_the_full_schedule():
    backoff = Backoff(initial_s=0.02, factor=2.0, max_s=1.0, max_attempts=3)
    consumed = [backoff.next(), backoff.next()]
    backoff.reset()
    assert not backoff.exhausted
    assert [backoff.next() for _ in range(3)] == backoff.schedule()
    assert consumed == backoff.schedule()[:2]


def test_schedule_does_not_consume_attempts():
    backoff = Backoff(max_attempts=3)
    backoff.schedule()
    backoff.schedule()
    assert backoff.next() == backoff.schedule()[0]


def test_deterministic_no_jitter():
    # Two identical instances must agree delay-for-delay: the supervisor
    # tests and benchmarks predict restart timing from the schedule.
    a = Backoff(initial_s=0.05, factor=2.0, max_s=2.0, max_attempts=5)
    b = Backoff(initial_s=0.05, factor=2.0, max_s=2.0, max_attempts=5)
    assert [a.next() for _ in range(5)] == [b.next() for _ in range(5)]


@pytest.mark.parametrize("kwargs", [
    {"initial_s": 0.0},
    {"initial_s": -1.0},
    {"factor": 0.5},
    {"max_s": 0.01, "initial_s": 0.05},
    {"max_attempts": 0},
])
def test_validation_rejects_bad_parameters(kwargs):
    with pytest.raises(ValueError):
        Backoff(**kwargs)
