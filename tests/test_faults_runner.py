"""Fault-scenario evaluation harness: runner, report, and CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.eval.reports import render_faults_report
from repro.experiments import run_fault_scenarios, stream_recording
from repro.experiments.configs import QUICK


@pytest.fixture(scope="module")
def fallback_results():
    """One fallback-only evaluation shared by every structural test."""
    return run_fault_scenarios(
        QUICK, scenarios=["dropout", "gyro_dead"], model=None
    )


class TestRunner:
    def test_result_structure(self, fallback_results):
        r = fallback_results
        assert r["mode"] == "fallback-only"
        assert set(r["scenarios"]) == {"dropout", "gyro_dead"}
        for stats in [r["clean"], *r["scenarios"].values()]:
            assert stats["events"] == r["recordings"]
            assert stats["falls"] + stats["adls"] == stats["events"]
            assert 0.0 <= stats["sensitivity"] <= 100.0
            assert 0.0 <= stats["false_alarm_rate"] <= 100.0
            assert set(stats["states_seen"]) <= {"healthy", "degraded",
                                                 "fault"}

    def test_fallback_meets_the_sensitivity_floor(self, fallback_results):
        assert fallback_results["clean"]["sensitivity"] >= 80.0

    def test_faults_are_visible_in_the_counters(self, fallback_results):
        assert fallback_results["scenarios"]["dropout"][
            "gap_filled_samples"] > 0
        assert "fault" in fallback_results["scenarios"]["gyro_dead"][
            "states_seen"]

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_fault_scenarios(QUICK, scenarios=["quantum_flu"], model=None)

    def test_report_renders_every_row(self, fallback_results):
        report = render_faults_report(fallback_results)
        for token in ("clean", "dropout", "gyro_dead", "Sens %",
                      "fallback-only"):
            assert token in report
        assert "nan" not in report   # NaN rates render as '-'

    def test_stream_recording_verdict(self, fallback_results):
        from repro.core.detector import DetectorConfig, FallDetector
        from repro.experiments import build_experiment_dataset

        dataset = build_experiment_dataset(QUICK)
        fall = next(r for r in dataset if r.is_fall)
        detector = FallDetector(None, DetectorConfig())
        verdict = stream_recording(detector, fall)
        assert verdict["is_fall"]
        assert "detected" in verdict
        assert verdict["health"]["health"] in ("healthy", "degraded", "fault")


class TestCli:
    def test_faults_defaults_parsed(self):
        args = build_parser().parse_args(["faults"])
        assert args.scenarios is None
        assert args.epochs == 4
        assert not args.fallback_only
        assert args.deadline_ms is None

    def test_faults_prints_comparison_table(self, capsys):
        code = main(["--scale", "quick", "faults", "--fallback-only",
                     "--scenarios", "dropout"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fault-scenario robustness" in out
        assert "clean" in out and "dropout" in out
        assert "detector mode: fallback-only" in out


def test_incident_dir_capped_at_max_incidents(tmp_path):
    """`repro faults --incident-dir --max-incidents N` leaves at most N
    incident files behind, and reports only the survivors."""
    result = run_fault_scenarios(
        QUICK, scenarios=["nan_burst"], model=None,
        incident_dir=str(tmp_path), max_incidents=2,
    )
    on_disk = sorted(tmp_path.glob("incident-*.jsonl"))
    assert 0 < len(on_disk) <= 2
    assert sorted(result["incident_paths"]) == [str(p) for p in on_disk]
