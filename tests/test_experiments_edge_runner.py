"""The Section IV-C experiment runner end to end (QUICK scale)."""

from __future__ import annotations

import pytest

from repro.experiments import QUICK, run_edge_experiment


@pytest.mark.slow
class TestEdgeRunner:
    @pytest.fixture(scope="class")
    def result(self):
        return run_edge_experiment(QUICK)

    def test_parity_metrics_present_and_sane(self, result):
        assert 0.9 <= result["decision_agreement"] <= 1.0
        assert abs(result["f1_drop_points"]) < 10.0
        for key in ("accuracy", "precision", "recall", "f1"):
            assert 0.0 <= result["float_metrics"][key] <= 1.0
            assert 0.0 <= result["int8_metrics"][key] <= 1.0

    def test_deployment_report_complete(self, result):
        report = result["report"]
        for key in ("flash_kib", "ram_kib", "latency_ms", "fusion_ms",
                    "fits_flash", "fits_ram", "meets_deadline", "energy"):
            assert key in report
        assert report["fits_flash"] and report["fits_ram"]
        assert report["energy"]["inference_energy_uj"] > 0

    def test_qmodel_usable_for_codegen(self, result):
        from repro.edge import generate_c_source

        source = generate_c_source(result["qmodel"])
        assert "fall_cnn_invoke" in source
        assert "requant" in source
