"""Flight recorder: ring bounds, triggers, incident I/O, replay identity."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.architecture import build_lightweight_cnn
from repro.core.detector import DetectorConfig, FallDetector
from repro.faults import builtin_scenarios
from repro.obs import (
    FlightConfig,
    FlightRecorder,
    load_incident,
    render_replay_report,
    replay_incident,
)
from repro.obs.metrics import MetricsRegistry


class _ContentModel:
    """Deterministic stand-in: probability derived from window content."""

    def predict(self, x):
        x = np.asarray(x)
        if x.shape[0] == 0:
            return np.empty((0, 1))
        return np.abs(np.tanh(x.sum(axis=(1, 2), keepdims=True)))[:, :, 0]


def _detector(model, config=None, recorder=None):
    return FallDetector(
        model, config or DetectorConfig(),
        registry=MetricsRegistry(), metric_prefix="t", recorder=recorder,
    )


def _quiet_stream(n, seed=0, fs=100.0):
    rng = np.random.default_rng(seed)
    accel = rng.normal(0.0, 0.02, size=(n, 3))
    accel[:, 2] += 1.0
    gyro = rng.normal(0.0, 2.0, size=(n, 3))
    t = np.arange(n) / fs
    return accel, gyro, t


# ----------------------------------------------------------------------
# recorder mechanics
# ----------------------------------------------------------------------
def test_config_validation():
    with pytest.raises(ValueError):
        FlightConfig(capacity=0)
    with pytest.raises(ValueError):
        FlightConfig(post_trigger_samples=-1)
    with pytest.raises(ValueError):
        FlightConfig(max_incidents=0)
    with pytest.raises(ValueError):
        FlightConfig(triggers=("detection", "nonsense"))


def test_ring_is_bounded():
    rec = FlightRecorder(FlightConfig(capacity=16, triggers=()))
    det = _detector(None, recorder=rec)   # fallback-only: cheap samples
    accel, gyro, t = _quiet_stream(200)
    for i in range(200):
        det.push(accel[i], gyro[i], t[i])
    events = rec.events()
    assert len(events) == 16
    # Oldest events were evicted: the ring holds the most recent samples.
    sample_idx = [e["i"] for e in events if e["kind"] == "sample"]
    assert min(sample_idx) > 100


def test_trigger_freeze_and_post_context(tmp_path):
    rec = FlightRecorder(
        FlightConfig(capacity=512, post_trigger_samples=10,
                     out_dir=str(tmp_path)),
        stream_id="unit",
    )
    det = _detector(None, recorder=rec)
    accel, gyro, t = _quiet_stream(120)
    for i in range(60):
        det.push(accel[i], gyro[i], t[i])
    assert not rec.pending and not rec.incidents
    rec.mark("operator")
    assert rec.pending
    for i in range(60, 120):
        det.push(accel[i], gyro[i], t[i])
    assert not rec.pending
    assert len(rec.incidents) == 1
    incident = rec.incidents[0]
    assert incident.meta["trigger"] == "mark"
    assert incident.meta["stream_id"] == "unit"
    assert incident.meta["config_sha256"]
    assert incident.meta["metrics"]["health"]["health"] == "fault"  # no model
    # Exactly 10 samples of post-trigger context follow the mark event.
    kinds = [e["kind"] for e in incident.events]
    after_mark = kinds[kinds.index("mark") + 1:]
    assert after_mark.count("sample") == 10
    assert incident.path and incident.path.endswith("-mark.jsonl")


def test_flush_and_max_incidents(tmp_path):
    rec = FlightRecorder(
        FlightConfig(capacity=64, post_trigger_samples=1000,
                     out_dir=str(tmp_path), max_incidents=2),
        stream_id="cap",
    )
    det = _detector(None, recorder=rec)
    accel, gyro, t = _quiet_stream(30)
    for i in range(30):
        det.push(accel[i], gyro[i], t[i])
    rec.mark()
    assert rec.pending                    # countdown longer than the data
    assert rec.flush() is not None        # force-freeze
    assert not rec.pending
    rec.mark()
    rec.flush()
    assert len(rec.incidents) == 2
    rec.mark()                            # over the cap: suppressed
    assert rec.suppressed_triggers == 1
    assert not rec.pending
    assert len(rec.incident_paths) == 2


def test_load_incident_validation(tmp_path):
    good = tmp_path / "ok.jsonl"
    rec = FlightRecorder(FlightConfig(out_dir=str(tmp_path)), stream_id="v")
    det = _detector(None, recorder=rec)
    accel, gyro, t = _quiet_stream(10)
    for i in range(10):
        det.push(accel[i], gyro[i], t[i])
    rec.mark()
    rec.flush()
    incident = load_incident(rec.incident_paths[0])
    assert incident.meta["trigger"] == "mark"
    assert incident.samples() and incident.stream_id == "v"

    (tmp_path / "empty.jsonl").write_text("")
    with pytest.raises(ValueError, match="empty"):
        load_incident(tmp_path / "empty.jsonl")
    good.write_text('{"format": "something-else", "version": 1}\n')
    with pytest.raises(ValueError, match="not a repro-incident"):
        load_incident(good)
    good.write_text('{"format": "repro-incident", "version": 99}\n')
    with pytest.raises(ValueError, match="version"):
        load_incident(good)
    # Tamper detection: header declares more events than the file holds.
    lines = open(rec.incident_paths[0], encoding="utf-8").read().splitlines()
    truncated = tmp_path / "trunc.jsonl"
    truncated.write_text("\n".join(lines[:-2]) + "\n")
    with pytest.raises(ValueError, match="declares"):
        load_incident(truncated)


def test_reset_clears_ring_and_freezes_pending():
    rec = FlightRecorder(FlightConfig(capacity=512, post_trigger_samples=50))
    det = _detector(None, recorder=rec)
    accel, gyro, t = _quiet_stream(40)
    for i in range(40):
        det.push(accel[i], gyro[i], t[i])
    rec.mark()
    det.reset()
    # The pending capture froze at the reset boundary instead of leaking
    # into the next trial, and the ring restarted from the reset event.
    assert len(rec.incidents) == 1
    assert rec.events()[0]["kind"] == "reset"


# ----------------------------------------------------------------------
# deterministic replay
# ----------------------------------------------------------------------
def test_replay_identity_cnn_recorded_and_live(tmp_path):
    config = DetectorConfig()
    model = _ContentModel()
    rec = FlightRecorder(
        FlightConfig(capacity=4096, post_trigger_samples=30,
                     out_dir=str(tmp_path)),
        stream_id="cnn",
    )
    det = _detector(model, config, recorder=rec)
    det.reset()
    accel, gyro, t = _quiet_stream(300, seed=3)
    accel[150:155] = np.nan               # NaN burst: repair + degraded
    for i in range(300):
        det.push(accel[i], gyro[i], t[i])
    rec.flush()
    assert rec.incident_paths
    path = rec.incident_paths[-1]

    result = replay_incident(path, model="recorded")
    assert result["identical"], result
    assert result["windows"] > 0
    # Live-model replay recomputes every probability and still matches
    # bit for bit (same process, deterministic forward).
    live = replay_incident(path, model=model)
    assert live["identical"], live
    assert live["model"] == "live"
    report = render_replay_report(result)
    assert "REPLAY IDENTICAL" in report


def test_replay_fallback_only_incident():
    rec = FlightRecorder(FlightConfig(capacity=2048,
                                      post_trigger_samples=20))
    det = _detector(None, recorder=rec)
    det.reset()
    accel, gyro, t = _quiet_stream(260, seed=5)
    accel[120:150, 2] -= 0.9              # free-fall dip: fallback fires
    accel[150:155, 2] += 3.0
    for i in range(260):
        det.push(accel[i], gyro[i], t[i])
    rec.flush()
    incident = rec.incidents[-1]
    assert incident.meta["has_model"] is False
    assert any(e["source"] == "fallback" for e in incident.decisions())
    result = replay_incident(incident, model="recorded")
    assert result["identical"], result


def test_replay_detects_tampered_probability(tmp_path):
    model = _ContentModel()
    rec = FlightRecorder(
        FlightConfig(capacity=4096, out_dir=str(tmp_path)), stream_id="tam")
    det = _detector(model, recorder=rec)
    det.reset()
    accel, gyro, t = _quiet_stream(200, seed=9)
    for i in range(200):
        det.push(accel[i], gyro[i], t[i])
    rec.flush()
    path = rec.incident_paths[-1]
    # Corrupt one recorded raw sample; the live-model replay must notice
    # (window hashes and probabilities diverge downstream).
    lines = open(path, encoding="utf-8").read().splitlines()
    out = []
    poisoned = False
    for line in lines:
        event = json.loads(line)
        if not poisoned and event.get("kind") == "sample":
            event["accel"][2] += 0.5
            poisoned = True
        out.append(json.dumps(event))
    tampered = tmp_path / "tampered.jsonl"
    tampered.write_text("\n".join(out) + "\n")
    result = replay_incident(tampered, model=model)
    assert not result["identical"]
    assert result["window_hash_diffs"] > 0 or result["probability_diffs"] > 0
    assert "DIVERGED" in render_replay_report(result)


def test_replay_injects_recorded_latency():
    """Deadline outcomes replay from the record, not the replay machine."""
    class _Slow:
        def __init__(self):
            self.calls = 0

        def predict(self, x):
            return np.full((np.asarray(x).shape[0], 1), 0.1)

    rec = FlightRecorder(FlightConfig(capacity=4096,
                                      triggers=("deadline",)))
    config = DetectorConfig(deadline_ms=1e-9)   # everything violates
    det = _detector(_Slow(), config, recorder=rec)
    det.reset()
    accel, gyro, t = _quiet_stream(200, seed=2)
    for i in range(200):
        det.push(accel[i], gyro[i], t[i])
    rec.flush()
    incident = rec.incidents[-1]
    assert any(e["violation"] for e in incident.windows())
    result = replay_incident(incident, model="recorded")
    assert result["identical"], result
    assert result["deadline_diffs"] == 0


# ----------------------------------------------------------------------
# property test: every built-in fault scenario replays identically
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(builtin_scenarios(seed=7)))
def test_replay_identity_under_every_builtin_scenario(name):
    scenario = builtin_scenarios(seed=7)[name]
    config = DetectorConfig()
    model = build_lightweight_cnn(config.window_samples)
    rec = FlightRecorder(FlightConfig(capacity=8192,
                                      post_trigger_samples=40))
    det = _detector(model, config, recorder=rec)

    n = 500
    accel, gyro, t = _quiet_stream(n, seed=11)
    accel[200:230, 2] -= 0.85             # a fall-like dip mid-stream
    accel[230:240, 2] += 3.5
    gyro[200:230] += 80.0
    t, accel, gyro = scenario.apply_arrays(t, accel, gyro)

    det.reset()
    for i in range(len(t)):
        det.push(accel[i], gyro[i], float(t[i]))
    recorded_transitions = det.health_transitions
    rec.flush()
    assert rec.incidents, f"{name}: no incident captured"
    incident = rec.incidents[-1]

    result = replay_incident(incident, model="recorded")
    assert result["identical"], (name, result)
    assert result["decision_diffs"] == 0
    assert result["health_transition_diffs"] == 0
    # The recorded health transitions really were exercised (sanity: the
    # property is not vacuous for scenarios that degrade the stream).
    if name in ("nan_burst", "gyro_dead"):
        assert recorded_transitions


def test_directory_incident_cap_prunes_oldest(tmp_path):
    """Many recorders sharing one out_dir: max_dir_incidents bounds the
    directory, oldest files pruned first, newest always kept."""
    import os
    import time

    for i in range(5):
        rec = FlightRecorder(
            FlightConfig(post_trigger_samples=0, out_dir=str(tmp_path),
                         max_dir_incidents=3),
            stream_id=f"s{i:03d}",
        )
        rec.mark()                         # freezes + writes immediately
        # Distinct mtimes so "oldest" is well defined on coarse clocks.
        past = time.time() - (5 - i)
        os.utime(rec.incident_paths[0], (past, past))
    names = sorted(p.name for p in tmp_path.glob("incident-*.jsonl"))
    assert len(names) == 3
    assert [n.split("-")[1] for n in names] == ["s002", "s003", "s004"]
    # The capping recorder never pruned its own just-written file.
    assert any("s004" in n for n in names)

    with pytest.raises(ValueError, match="max_dir_incidents"):
        FlightConfig(max_dir_incidents=0)
