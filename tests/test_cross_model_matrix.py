"""Model x window-size build matrix and multi-rate pipeline support."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PreprocessConfig, preprocess_recording
from repro.core.baselines import MODEL_BUILDERS, RELATED_WORK_BUILDERS
from repro.datasets import TASKS, make_subjects
from repro.datasets.synthesis.generator import synthesize_recording


class TestModelWindowMatrix:
    @pytest.mark.parametrize("name", list(MODEL_BUILDERS)
                             + list(RELATED_WORK_BUILDERS))
    @pytest.mark.parametrize("window", [10, 20, 30, 40])
    def test_every_model_supports_every_paper_window(self, name, window):
        builder = {**MODEL_BUILDERS, **RELATED_WORK_BUILDERS}[name]
        model = builder(window, 9, output_bias=-3.0, seed=0)
        x = np.zeros((3, window, 9), dtype=np.float32)
        p = model.predict(x)
        assert p.shape == (3, 1)
        assert np.all((p >= 0.0) & (p <= 1.0))
        # Bias initialisation reached the sigmoid head.
        assert np.all(p < 0.3)

    @pytest.mark.parametrize("name", list(MODEL_BUILDERS))
    def test_one_train_step_decreases_loss_eventually(self, name):
        builder = MODEL_BUILDERS[name]
        model = builder(20, 9, output_bias=None, seed=0)
        model.compile("adam", "binary_crossentropy")
        rng = np.random.default_rng(0)
        x = rng.normal(size=(64, 20, 9)).astype(np.float32)
        y = (x[:, :, 0].mean(axis=1) > 0).astype(float)[:, None]
        first = model.train_on_batch(x, y)
        for _ in range(20):
            last = model.train_on_batch(x, y)
        assert last < first


class TestMultiRatePipeline:
    @pytest.mark.parametrize("fs", [50.0, 200.0])
    def test_pipeline_supports_other_sampling_rates(self, fs):
        subject = make_subjects("MR", 1, seed=0)[0]
        rec = synthesize_recording(TASKS[30], subject, fs=fs, base_seed=2)
        assert rec.fs == fs
        config = PreprocessConfig(window_ms=400, fs=fs)
        segments = preprocess_recording(rec, config)
        assert segments.X.shape[1] == int(round(0.4 * fs))
        assert segments.y.sum() > 0

    def test_annotations_scale_with_rate(self):
        subject = make_subjects("MR", 1, seed=0)[0]
        slow = synthesize_recording(TASKS[30], subject, fs=50.0, base_seed=2)
        fast = synthesize_recording(TASKS[30], subject, fs=200.0, base_seed=2)
        # Same physical script timing: onset in seconds must agree.
        assert slow.fall_onset / 50.0 == pytest.approx(
            fast.fall_onset / 200.0, abs=0.05
        )
