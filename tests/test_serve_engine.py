"""Multi-stream serving engine: batching, isolation and shedding.

The contracts under test:

* the engine's micro-batched detections for a stream are identical to
  serving that stream alone — even when another stream in the batch is
  feeding NaNs and timestamp gaps;
* one broken stream (a detector breaking its never-raises promise) is
  quarantined without stalling the others;
* bounded queues shed oldest-first and account for every drop;
* batch wall-clock feeds each stream's deadline machinery, so sustained
  pressure sheds the CNN per stream and the magnitude fallback takes
  over.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.detector import DetectorConfig
from repro.obs.metrics import MetricsRegistry
from repro.serve import ServeConfig, ServeEngine
from repro.serve.bench import ServeBenchConfig, synth_stream

CFG = DetectorConfig(window_ms=200.0, overlap=0.5, threshold=0.4,
                     consecutive_required=1)


class _ConstantModel:
    def __init__(self, probability=0.1):
        self.probability = probability

    def predict(self, x):
        return np.full((len(x), 1), self.probability)


class _SleepyModel(_ConstantModel):
    def __init__(self, sleep_s=0.002):
        super().__init__(0.1)
        self.sleep_s = sleep_s

    def predict(self, x):
        time.sleep(self.sleep_s)
        return super().predict(x)


class _PoisonBatchModel(_ConstantModel):
    """Raises whenever a saturated-at-the-rails window is in the batch."""

    def __init__(self):
        super().__init__(0.7)

    def predict(self, x):
        if np.any(np.abs(x) > 10.0):
            raise RuntimeError("poison window")
        return super().predict(x)


def _engine(model, detector_cfg=CFG, **kwargs):
    cfg = ServeConfig(detector=detector_cfg, **kwargs)
    return ServeEngine(model, cfg, registry=MetricsRegistry())


def _feed(engine, streams, step_every=10):
    """Round-robin interleave streams into the engine; collect per-stream."""
    detections = {stream_id: [] for stream_id in streams}
    n = max(len(t) for _, _, t in streams.values())
    for i in range(n):
        for stream_id, (accel, gyro, t) in streams.items():
            if i < len(t):
                engine.submit(stream_id, accel[i], gyro[i], t[i])
        if (i + 1) % step_every == 0:
            for stream_id, hit in engine.step():
                detections[stream_id].append(hit)
    for stream_id, hit in engine.step():
        detections[stream_id].append(hit)
    return detections


def _bench_streams(indices, n_streams=8, duration_s=2.0):
    bench = ServeBenchConfig(n_streams=n_streams, duration_s=duration_s,
                             detector=CFG)
    return {f"s{i}": synth_stream(i, bench) for i in indices}


def _faulted_stream(index):
    """A stream with a NaN burst and a long timestamp gap."""
    accel, gyro, t = _bench_streams([index])[f"s{index}"]
    accel = accel.copy()
    t = t.copy()
    accel[50:70] = np.nan
    t[120:] += 1.5
    return accel, gyro, t


def test_batched_matches_solo_with_faulty_neighbour():
    """A NaN/gap-faulted stream must not change healthy streams' output."""
    model = _ConstantModel(0.6)
    healthy = _bench_streams([0, 1, 2])
    solo = {}
    for stream_id, stream in healthy.items():
        solo.update(_feed(_engine(model), {stream_id: stream}))
    mixed = dict(healthy)
    mixed["bad"] = _faulted_stream(9)
    together = _feed(_engine(model), mixed)
    for stream_id in healthy:
        assert together[stream_id] == solo[stream_id]


def test_faulty_stream_degrades_only_itself():
    model = _ConstantModel(0.2)
    engine = _engine(model)
    streams = _bench_streams([0])
    streams["bad"] = _faulted_stream(9)
    _feed(engine, streams)
    report = engine.stream_report()
    assert report["bad"]["health"] != "healthy" or \
        engine.session("bad").detector.health_report()["repaired_samples"] > 0
    assert report["s0"]["health"] == "healthy"
    assert engine.session("s0").detector.health_report()["repaired_samples"] == 0


def test_quarantine_contains_raising_detector():
    model = _ConstantModel(0.2)
    engine = _engine(model)
    streams = _bench_streams([0, 1])
    _feed(engine, streams, step_every=50)

    class _Broken:
        health = "healthy"
        deadline_violations = 0
        fallback_detections = 0

        def health_report(self):
            return {"cnn_shed": False}

        def push_collect(self, *a, **k):
            raise RuntimeError("detector bug")

        def push_block(self, *a, **k):
            raise RuntimeError("detector bug")

    engine.session("s1").detector = _Broken()
    detections = _feed(engine, streams, step_every=50)
    report = engine.stream_report()
    assert report["s1"]["health"] == "quarantined"
    assert report["s0"]["health"] == "healthy"
    assert engine.stream_errors == 1
    # Quarantined stream stops accepting work; healthy one keeps flowing.
    accel, gyro, t = streams["s1"]
    assert engine.submit("s1", accel[0], gyro[0], None) is False
    assert detections["s0"] or engine.session("s0").detector.samples_seen > 0


def test_poisoned_batch_retries_per_window():
    """A window that crashes the model only hurts its own stream."""
    model = _PoisonBatchModel()
    engine = _engine(model)
    streams = _bench_streams([1, 2])  # quiet ADL streams (no fall event)
    accel, gyro, t = _bench_streams([4])["s4"]
    accel = accel.copy()
    accel[:] = 16.0  # pinned at the accelerometer rail: valid but extreme
    streams["poison"] = (accel, gyro, t)
    detections = _feed(engine, streams)
    assert engine.batch_errors > 0
    # Healthy streams still got CNN verdicts above threshold.
    assert detections["s1"] and detections["s2"]
    assert all(h.source == "cnn" for h in detections["s1"])
    poison = engine.session("poison").detector
    assert poison.health_report()["inference_errors"] > 0


def test_queue_overflow_sheds_oldest_and_counts():
    engine = _engine(_ConstantModel(), queue_capacity=4)
    accel = np.array([0.0, 0.0, 1.0])
    gyro = np.zeros(3)
    for i in range(10):
        assert engine.submit("s0", accel, gyro, i / 100.0)
    session = engine.session("s0")
    assert len(session.queue) == 4
    assert session.dropped_samples == 6
    assert engine.dropped_samples == 6
    # The freshest samples survived.
    assert session.queue[0][2] == pytest.approx(0.06)


def test_queue_depth_gauge_reports_burst_peak_then_steady_state():
    """The gauge exposes the deepest burst, then settles to 0 post-drain."""
    engine = _engine(_ConstantModel())
    observed = []
    real_gauge = engine._queue_depth_gauge

    class _SpyGauge:
        def set(self, value):
            observed.append(value)
            real_gauge.set(value)

    engine._queue_depth_gauge = _SpyGauge()
    accel = np.array([0.0, 0.0, 1.0])
    gyro = np.zeros(3)
    for i in range(10):
        engine.submit("s0", accel, gyro, i / 100.0)
    engine.step()
    # Pre-drain reading is the burst peak; the final reading is the
    # post-drain depth, so tail readers between bursts see 0, not a
    # stale pre-drain depth.
    assert observed[0] == 10.0
    assert observed[-1] == 0.0
    assert real_gauge.value == 0.0


def test_max_streams_rejects_new_streams():
    engine = _engine(_ConstantModel(), max_streams=2)
    accel = np.array([0.0, 0.0, 1.0])
    gyro = np.zeros(3)
    assert engine.submit("a", accel, gyro, 0.0)
    assert engine.submit("b", accel, gyro, 0.0)
    assert engine.submit("c", accel, gyro, 0.0) is False
    assert engine.rejected_streams == 1
    assert sorted(engine.stream_ids) == ["a", "b"]


def test_deadline_pressure_sheds_to_fallback_per_stream():
    """Slow batches trip per-stream shedding; fallback stays armed."""
    cfg = DetectorConfig(window_ms=200.0, overlap=0.5, threshold=0.4,
                         deadline_ms=0.05, degraded_after_violations=1,
                         shed_after_violations=2, consecutive_required=1)
    engine = _engine(_SleepyModel(0.002), cfg)
    streams = _bench_streams([0, 3])  # stream 0 has a fall event
    detections = _feed(engine, streams)
    report = engine.stream_report()
    for stream_id in streams:
        assert report[stream_id]["deadline_violations"] > 0
        assert report[stream_id]["cnn_shed"]
    # The fall stream still fires via the magnitude fallback.
    fallback_hits = [h for h in detections["s0"] if h.source == "fallback"]
    assert fallback_hits


def test_empty_step_is_safe_and_counts_a_batch():
    engine = _engine(_ConstantModel())
    assert engine.step() == []
    assert engine.batches == 1
    assert engine.windows_inferred == 0


def test_engine_requires_model():
    with pytest.raises(ValueError):
        ServeEngine(None, ServeConfig(), registry=MetricsRegistry())


def test_serve_config_validation():
    with pytest.raises(ValueError):
        ServeConfig(queue_capacity=0)
    with pytest.raises(ValueError):
        ServeConfig(max_streams=0)


def test_engine_report_shape():
    engine = _engine(_ConstantModel())
    _feed(engine, _bench_streams([0]))
    report = engine.report()
    assert report["streams"] == 1
    assert report["samples_in"] == 200
    assert report["windows_inferred"] > 0
    assert report["batch_size"]["count"] == report["batches"]
