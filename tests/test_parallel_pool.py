"""Tests for ``repro.parallel.pool``: determinism, fallback, containment.

The worker functions live at module level so they pickle across the pool
boundary.  The crash/raise helpers misbehave **only** inside a worker
(guarded by ``REPRO_PARALLEL_WORKER``), so the parent's serial retry of
the same task succeeds — exactly the containment contract under test.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import obs
from repro.obs import get_collector, get_registry
from repro.parallel import (
    JOBS_ENV,
    ParallelTask,
    last_run_stats,
    resolve_n_jobs,
    run_parallel,
    task_seed,
)


def _square(x):
    return x * x


def _affine(x, scale=1, offset=0):
    return x * scale + offset


def _draw(n):
    """Depends on the *global* RNG — the seeding discipline under test."""
    return np.random.random(n)


def _crash_in_worker():
    if os.environ.get("REPRO_PARALLEL_WORKER") == "1":
        os._exit(9)
    return "survived"


def _raise_in_worker():
    if os.environ.get("REPRO_PARALLEL_WORKER") == "1":
        raise RuntimeError("synthetic worker failure")
    return "survived"


def _traced(tag):
    with obs.span("poolwork/traced", tag=tag):
        get_registry().counter("poolwork/calls").inc()
    return tag


class TestResolveNJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_n_jobs() == 1
        assert resolve_n_jobs(None) == 1

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "3")
        assert resolve_n_jobs() == 3

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "3")
        assert resolve_n_jobs(2) == 2

    def test_zero_means_all_cores(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_n_jobs(0) == (os.cpu_count() or 1)
        monkeypatch.setenv(JOBS_ENV, "0")
        assert resolve_n_jobs() == (os.cpu_count() or 1)

    def test_garbage_env_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "many")
        assert resolve_n_jobs() == 1

    def test_worker_guard_forces_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_WORKER", "1")
        assert resolve_n_jobs(8) == 1


class TestTaskSeed:
    def test_deterministic_and_distinct(self):
        seeds = [task_seed(7, i) for i in range(8)]
        assert seeds == [task_seed(7, i) for i in range(8)]
        assert len(set(seeds)) == len(seeds)
        assert seeds != [task_seed(8, i) for i in range(8)]


class TestRunParallel:
    def test_order_and_values(self):
        tasks = [ParallelTask(_square, args=(i,)) for i in range(6)]
        results = run_parallel(tasks, n_jobs=2)
        assert [r.index for r in results] == list(range(6))
        assert [r.value for r in results] == [i * i for i in range(6)]

    def test_kwargs_and_names(self):
        tasks = [
            ParallelTask(_affine, args=(i,), kwargs={"scale": 10, "offset": 1},
                         name=f"t{i}")
            for i in range(3)
        ]
        results = run_parallel(tasks, n_jobs=2)
        assert [r.value for r in results] == [1, 11, 21]
        assert [r.name for r in results] == ["t0", "t1", "t2"]

    def test_bare_callables_accepted(self):
        results = run_parallel([_crash_in_worker], n_jobs=1)
        assert results[0].value == "survived"
        with pytest.raises(TypeError):
            run_parallel(["not callable"], n_jobs=1)

    @pytest.mark.parametrize("n_jobs", [2, 4])
    def test_seeding_identical_to_serial(self, n_jobs):
        tasks = [ParallelTask(_draw, args=(5,)) for _ in range(4)]
        serial = run_parallel(tasks, n_jobs=1, base_seed=7)
        pooled = run_parallel(tasks, n_jobs=n_jobs, base_seed=7)
        for s, p in zip(serial, pooled):
            np.testing.assert_array_equal(s.value, p.value)

    def test_explicit_task_seed_overrides_derived(self):
        fixed = [ParallelTask(_draw, args=(3,), seed=123) for _ in range(2)]
        results = run_parallel(fixed, n_jobs=1, base_seed=7)
        np.testing.assert_array_equal(results[0].value, results[1].value)

    def test_worker_crash_contained(self):
        tasks = [ParallelTask(_crash_in_worker) for _ in range(3)]
        results = run_parallel(tasks, n_jobs=2)
        assert [r.value for r in results] == ["survived"] * 3
        assert all(r.retried_serial for r in results)
        stats = last_run_stats()
        assert stats["mode"] == "process"
        assert stats["retried_serial"] == 3

    def test_worker_exception_retried_serially(self):
        tasks = [ParallelTask(_raise_in_worker) for _ in range(3)]
        results = run_parallel(tasks, n_jobs=2)
        assert [r.value for r in results] == ["survived"] * 3
        assert all(r.retried_serial for r in results)

    def test_stats_shape(self):
        run_parallel([ParallelTask(_square, args=(i,)) for i in range(3)],
                     n_jobs=1, label="statscheck")
        stats = last_run_stats()
        assert stats["label"] == "statscheck"
        assert stats["mode"] == "serial"
        assert stats["tasks"] == 3
        assert stats["wall_s"] > 0
        assert set(stats["per_worker_busy_s"]) == {"serial"}


class TestChildObservability:
    def test_child_metrics_merged_into_parent(self):
        registry = get_registry()
        before = registry.counter("poolwork/calls").value
        results = run_parallel(
            [ParallelTask(_traced, args=(f"m{i}",)) for i in range(3)],
            n_jobs=2)
        assert not any(r.retried_serial for r in results)
        assert registry.counter("poolwork/calls").value == before + 3

    def test_child_spans_adopted_with_fresh_ids(self):
        obs.enable_tracing()
        try:
            collector = get_collector()
            collector.clear()
            results = run_parallel(
                [ParallelTask(_traced, args=(f"s{i}",)) for i in range(3)],
                n_jobs=2)
            assert not any(r.retried_serial for r in results)
            records = collector.records()
            child = [r for r in records if r.name == "poolwork/traced"]
            assert len(child) == 3
            assert sorted(r.attrs["tag"] for r in child) == ["s0", "s1", "s2"]
            span_ids = [r.span_id for r in records]
            assert len(span_ids) == len(set(span_ids))
        finally:
            obs.disable_tracing()
            get_collector().clear()
