"""Serve-side observability: flight recording in the engine, the tail
dashboard, and the `repro tail` / `repro replay` CLI paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.core.detector import DetectorConfig
from repro.obs import FlightConfig, load_incident, replay_incident
from repro.obs.metrics import MetricsRegistry
from repro.serve import (
    ServeConfig,
    ServeEngine,
    TailConfig,
    render_dashboard,
    run_tail,
    sparkline,
)


class _ContentModel:
    def predict(self, x):
        x = np.asarray(x)
        if x.shape[0] == 0:
            return np.empty((0, 1))
        return np.abs(np.tanh(x.sum(axis=(1, 2), keepdims=True)))[:, :, 0]


def _quiet(n, seed=0, fs=100.0):
    rng = np.random.default_rng(seed)
    accel = rng.normal(0.0, 0.02, size=(n, 3))
    accel[:, 2] += 1.0
    gyro = rng.normal(0.0, 2.0, size=(n, 3))
    return accel, gyro, np.arange(n) / fs


# ----------------------------------------------------------------------
# engine + flight integration
# ----------------------------------------------------------------------
def test_engine_sessions_record_incidents(tmp_path):
    config = ServeConfig(
        detector=DetectorConfig(),
        flight=FlightConfig(out_dir=str(tmp_path), post_trigger_samples=20),
    )
    engine = ServeEngine(_ContentModel(), config,
                         registry=MetricsRegistry())
    accel, gyro, t = _quiet(220, seed=1)
    accel[100:105] = np.nan               # degrade one stream
    clean_a, clean_g, _ = _quiet(220, seed=2)
    for i in range(220):
        engine.submit("bad", accel[i], gyro[i], t[i])
        engine.submit("good", clean_a[i], clean_g[i], t[i])
        if (i + 1) % 20 == 0:
            engine.step()
    engine.step()
    assert engine.flush_incidents() >= 0
    paths = engine.incident_paths()
    assert paths                           # health flip froze incidents
    assert any("-bad-" in p for p in paths)
    # Serve-captured incidents replay bit-identically too: the stream
    # started at detector construction, so the whole epoch is in-ring.
    result = replay_incident(paths[0], model="recorded")
    assert result["identical"], result
    # Per-stream report surfaces the incident counts.
    report = engine.stream_report()
    assert report["bad"]["incidents"] > 0


def test_fleet_latency_merges_all_streams():
    engine = ServeEngine(_ContentModel(), ServeConfig(),
                         registry=MetricsRegistry())
    accel, gyro, t = _quiet(120, seed=3)
    for i in range(120):
        engine.submit("a", accel[i], gyro[i], t[i])
        engine.submit("b", accel[i], gyro[i], t[i])
    engine.step()
    fleet = engine.fleet_latency()
    per_stream = sum(
        engine.session(sid).detector.latency.count for sid in ("a", "b"))
    assert fleet.count == per_stream > 0


# ----------------------------------------------------------------------
# dashboard
# ----------------------------------------------------------------------
def test_sparkline():
    assert sparkline([]) == "(no samples yet)"
    assert sparkline([1.0, 1.0, 1.0]) == "▁▁▁"
    line = sparkline([0.0, 1.0, 2.0, 3.0])
    assert len(line) == 4 and line[0] == "▁" and line[-1] == "█"
    assert len(sparkline(list(range(100)), width=10)) == 10


def test_run_tail_frames_and_dashboard_content():
    frames = []
    config = TailConfig(n_streams=4, duration_s=3.0, interval_s=0.5,
                        max_rows=3)
    result = run_tail(_ContentModel(), config, on_frame=frames.append)
    assert result["frames"] == len(frames) >= 4
    frame = result["final_frame"]
    assert "repro tail — 4 streams" in frame
    assert "fleet window" in frame and "p95 trend" in frame
    # Worst-first ordering with the fault-injected streams on top, and
    # the row cap announces what it hid.
    lines = frame.splitlines()
    table = [ln for ln in lines if ln.startswith("s0")]
    assert len(table) == 3
    assert "more healthy streams not shown" in frame
    healths = result["stream_report"]
    assert healths["s001"]["health"] in ("degraded", "fault")  # nan burst
    assert healths["s002"]["health"] == "fault"                # dead gyro
    # Deterministic modulo wall-clock: the same workload renders the
    # same final frame once the latency-derived lines are dropped.
    def _stable(text):
        return [ln for ln in text.splitlines()
                if " ms" not in ln and not ln.startswith("p95 trend")]

    again = run_tail(_ContentModel(), config)
    assert _stable(again["final_frame"]) == _stable(frame)


def test_render_dashboard_without_sampler():
    engine = ServeEngine(_ContentModel(), ServeConfig(),
                         registry=MetricsRegistry())
    accel, gyro, t = _quiet(60, seed=4)
    for i in range(60):
        engine.submit("only", accel[i], gyro[i], t[i])
    engine.step()
    frame = render_dashboard(engine)
    assert "p95 trend" not in frame        # sampler-fed line is optional
    assert "only" in frame


def test_run_tail_exposition_has_fleet_and_streams(tmp_path):
    config = TailConfig(n_streams=3, duration_s=2.0,
                        incident_dir=str(tmp_path))
    result = run_tail(_ContentModel(), config)
    text = result["exposition"]
    assert 'repro_serve_stream_health{stream="s000"}' in text
    assert "repro_serve_fleet_window_latency_ms_bucket" in text
    assert result["incident_paths"]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_tail_once_and_metrics_out(tmp_path, capsys):
    out = tmp_path / "exposition.prom"
    code = main(["tail", "--once", "--streams", "3", "--duration", "2",
                 "--metrics-out", str(out)])
    assert code == 0
    stdout = capsys.readouterr().out
    assert "repro tail — 3 streams" in stdout
    assert "\x1b[" not in stdout           # --once: no ANSI refresh codes
    assert out.exists()
    assert "# TYPE" in out.read_text(encoding="utf-8")


def test_cli_replay_roundtrip(tmp_path, capsys):
    from repro.obs import FlightRecorder
    from repro.core.detector import FallDetector

    rec = FlightRecorder(FlightConfig(out_dir=str(tmp_path)),
                         stream_id="cli")
    detector = FallDetector(_ContentModel(), DetectorConfig(),
                            registry=MetricsRegistry(), metric_prefix="t",
                            recorder=rec)
    detector.reset()
    accel, gyro, t = _quiet(200, seed=6)
    for i in range(200):
        detector.push(accel[i], gyro[i], t[i])
    rec.flush()
    path = rec.incident_paths[-1]

    code = main(["replay", path])
    assert code == 0
    assert "REPLAY IDENTICAL" in capsys.readouterr().out
    # A diverging incident exits non-zero (regression-test semantics).
    lines = open(path, encoding="utf-8").read().splitlines()
    import json
    doctored = []
    for line in lines:
        event = json.loads(line)
        if event.get("kind") == "window" and event.get("prob") is not None:
            event["prob"] = 0.999
        doctored.append(json.dumps(event))
    bad = tmp_path / "doctored.jsonl"
    bad.write_text("\n".join(doctored) + "\n")
    code = main(["replay", str(bad)])
    assert code == 1
    assert "DIVERGED" in capsys.readouterr().out


def test_cli_tail_parser_defaults():
    from repro.cli import build_parser

    args = build_parser().parse_args(["tail"])
    assert args.streams == 8 and args.duration == 6.0
    assert not args.once and args.metrics_out is None
    args = build_parser().parse_args(["replay", "x.jsonl"])
    assert args.incident == "x.jsonl" and args.weights is None
    args = build_parser().parse_args(
        ["faults", "--incident-dir", "out"])
    assert args.incident_dir == "out"


def test_load_incident_from_cli_artifacts(tmp_path):
    """Incidents written through the serve path load as Incident objects."""
    config = TailConfig(n_streams=3, duration_s=2.0,
                        incident_dir=str(tmp_path))
    result = run_tail(_ContentModel(), config)
    incident = load_incident(result["incident_paths"][0])
    assert incident.meta["format"] == "repro-incident"
    assert incident.samples()
    with pytest.raises(ValueError):
        TailConfig(n_streams=0)
